"""Sim-core benchmark suite and perf-regression gate.

Standalone driver (no pytest-benchmark dependency) that measures the
simulation substrate's hot paths and the end-to-end experiment loop,
then emits ``BENCH_simcore.json``::

    PYTHONPATH=src python benchmarks/bench_suite.py                # print table
    PYTHONPATH=src python benchmarks/bench_suite.py --update      # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_suite.py --check       # CI gate

``--check`` compares fresh ops/sec against the committed baseline
(``BENCH_simcore.json`` at the repo root) and fails when any bench loses
more than ``--threshold`` (default 20%) of its throughput. ``--output``
writes the fresh measurements as JSON (the CI job uploads it as an
artifact so the trajectory is recorded even on green runs).

The committed baseline is machine-dependent by nature; refresh it with
``--update`` on the reference runner whenever the hot path changes
intentionally (see docs/benchmarking.md for the workflow — speeding
things up also warrants an update, or the gate slowly goes blind).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_simcore.json"
SCHEMA = 1


# ---------------------------------------------------------------- benches


def bench_event_queue_throughput() -> dict:
    """100k chained schedule+dispatch events (mirrors
    benchmarks/bench_engine.py::test_event_queue_throughput)."""
    from repro.sim.engine import Simulator

    ops = 100_000

    def run() -> int:
        sim = Simulator()
        remaining = [ops]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run()
        return sim.dispatched

    return _time_best(run, ops=ops, expect=ops)


def bench_rearm_churn() -> dict:
    """100k Simulator.rearm cycles on one handle — the periodic-tick /
    preemption-timer fast path introduced with the free-list engine."""
    from repro.sim.engine import Simulator

    ops = 100_000

    def run() -> int:
        sim = Simulator()
        remaining = [ops]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.rearm(handle, sim.now + 10)

        handle = sim.schedule(10, tick)
        sim.run()
        return sim.dispatched

    return _time_best(run, ops=ops, expect=ops)


def bench_cancel_rearm_storm() -> dict:
    """50k arm/cancel/re-arm triples: lazy-deletion + compaction path."""
    from repro.sim.engine import Simulator

    ops = 50_000

    def run() -> int:
        sim = Simulator()
        remaining = [ops]

        def fire():
            remaining[0] -= 1
            if remaining[0] > 0:
                ev = sim.schedule(20, fire)
                sim.cancel(ev)
                sim.schedule(10, fire)

        sim.schedule(10, fire)
        sim.run()
        return sim.dispatched

    return _time_best(run, ops=ops, expect=ops)


def bench_timer_wheel_churn() -> dict:
    """Add/advance/fire 20k wheel timers across levels."""
    from repro.guest.timerwheel import TimerWheel

    ops = 20_000

    def run() -> int:
        w = TimerWheel()
        for i in range(ops):
            w.add(1 + (i * 37) % 70_000, lambda: None)
        return len(w.advance_to(70_001))

    return _time_best(run, ops=ops, expect=ops)


def bench_hrtimer_queue_churn() -> dict:
    """Interleaved add/cancel/rearm/pop on the hrtimer heap."""
    from repro.guest.hrtimer import HrtimerQueue

    ops = 10_000

    def run() -> int:
        q = HrtimerQueue()
        handles = []
        for i in range(ops):
            handles.append(q.add((i * 13) % 50_000, lambda: None))
        for h in handles[::3]:
            q.cancel(h)
        for h in handles[::3]:
            q.rearm(h, h.expires_ns + 7)
        return len(q.pop_expired(50_007))

    return _time_best(run, ops=ops, expect=ops)


def bench_syncstorm_smoke() -> dict:
    """End-to-end experiment loop: sync-heavy workload, tickless mode.

    ops/sec here is *dispatched engine events* per wall-clock second —
    the figure the experiment sweeps are bottlenecked on.
    """
    from repro.config import TickMode
    from repro.experiments.runner import run_workload
    from repro.workloads.micro import SyncStormWorkload

    dispatched = 0

    def grab(sim, machine, hv, vm) -> None:
        nonlocal dispatched
        dispatched = sim.dispatched

    def run() -> int:
        metrics = run_workload(
            SyncStormWorkload(threads=4, events_per_second=4000.0,
                              duration_cycles=60_000_000),
            tick_mode=TickMode.TICKLESS,
            seed=9,
            inspect=grab,
        )
        return metrics.total_exits

    out = _time_best(run, ops=None, repeats=3)
    out["ops"] = dispatched
    out["ops_per_sec"] = round(dispatched / out["wall_s"], 1)
    out["dispatched"] = dispatched
    # End-to-end wall clock swings far more than the microbenches on a
    # shared runner; record the trajectory but do not gate on it.
    out["gate"] = False
    return out


def bench_fleet_host_smoke() -> dict:
    """End-to-end fleet shard: one overcommitted host packing 6 guests
    at oc4 with poisson arrivals, paratick mode.

    This is the unit the fleet layer fans out per host — its wall clock
    bounds how fast a rack sweeps through ``repro.experiments.parallel``.
    Like syncstorm_smoke, ops/sec is dispatched engine events per
    second and the bench records trajectory without gating.
    """
    from repro.config import TickMode
    from repro.fleet.hostsim import run_host
    from repro.sim.timebase import MSEC

    dispatched = 0

    def grab(sim, machine, hv, vms) -> None:
        nonlocal dispatched
        dispatched = sim.dispatched

    def run() -> int:
        metrics = run_host(
            guest_kind="micro.pingpong",
            guest_params={"rounds": 10, "work_cycles": 20_000,
                          "same_vcpu": False},
            guests=6,
            consolidation=4,
            tick_mode=TickMode.PARATICK,
            burst="poisson",
            burst_window_ns=2 * MSEC,
            seed=7,
            horizon_ns=400 * MSEC,
            inspect=grab,
        )
        return metrics.exits.total

    out = _time_best(run, ops=None, repeats=3)
    out["ops"] = dispatched
    out["ops_per_sec"] = round(dispatched / out["wall_s"], 1)
    out["dispatched"] = dispatched
    out["gate"] = False
    return out


BENCHES: dict[str, Callable[[], dict]] = {
    "event_queue_throughput": bench_event_queue_throughput,
    "rearm_churn": bench_rearm_churn,
    "cancel_rearm_storm": bench_cancel_rearm_storm,
    "timer_wheel_churn": bench_timer_wheel_churn,
    "hrtimer_queue_churn": bench_hrtimer_queue_churn,
    "syncstorm_smoke": bench_syncstorm_smoke,
    "fleet_host_smoke": bench_fleet_host_smoke,
}


def _time_best(run: Callable[[], int], *, ops: int | None,
               expect: int | None = None, repeats: int = 5) -> dict:
    """Best-of-N wall clock (min is the standard noise filter for
    throughput benches: interference only ever adds time)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    if expect is not None and result != expect:
        raise AssertionError(f"bench returned {result}, expected {expect}")
    out = {"wall_s": round(best, 6), "repeats": repeats}
    if ops is not None:
        out["ops"] = ops
        out["ops_per_sec"] = round(ops / best, 1)
    return out


# ------------------------------------------------------------------ driver


def run_suite(names: list[str] | None = None, progress: bool = True) -> dict:
    results: dict[str, dict] = {}
    for name, fn in BENCHES.items():
        if names and name not in names:
            continue
        results[name] = fn()
        if progress:
            r = results[name]
            print(f"  {name:<28} {r['wall_s']*1e3:9.1f} ms   "
                  f"{r.get('ops_per_sec', 0):>12,.0f} ops/s")
    return {"schema": SCHEMA, "benches": results}


def check(fresh: dict, baseline_path: Path, threshold: float) -> list[str]:
    """Compare fresh ops/sec to the committed baseline; list failures."""
    base = json.loads(baseline_path.read_text())
    if base.get("schema") != SCHEMA:
        return [f"baseline schema {base.get('schema')} != {SCHEMA}; re-run --update"]
    problems: list[str] = []
    for name, want in base["benches"].items():
        got = fresh["benches"].get(name)
        if got is None:
            problems.append(f"{name}: missing from fresh run")
            continue
        base_ops = want.get("ops_per_sec")
        fresh_ops = got.get("ops_per_sec")
        if not base_ops or not fresh_ops:
            continue
        if want.get("gate") is False:
            print(f"  ---  {name:<28} {fresh_ops:>12,.0f} ops/s "
                  f"(recorded, not gated)")
            continue
        ratio = fresh_ops / base_ops
        status = "OK " if ratio >= 1.0 - threshold else "FAIL"
        print(f"  {status} {name:<28} {fresh_ops:>12,.0f} ops/s "
              f"(baseline {base_ops:,.0f}, {ratio:5.2f}x)")
        if ratio < 1.0 - threshold:
            problems.append(
                f"{name}: throughput {fresh_ops:,.0f} ops/s is "
                f"{(1 - ratio) * 100:.1f}% below baseline {base_ops:,.0f} "
                f"(threshold {threshold * 100:.0f}%)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed baseline; exit 1 on regression")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the committed baseline from this run")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument("--output", type=Path, default=None,
                    help="also write fresh results to this JSON file")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional throughput loss that fails --check (default 0.20)")
    ap.add_argument("--bench", action="append", default=None,
                    help="run only the named bench (repeatable)")
    args = ap.parse_args(argv)

    print("sim-core benchmark suite")
    fresh = run_suite(args.bench)

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.update:
        # Historical annotations (e.g. the pre-rewrite engine numbers)
        # survive baseline refreshes.
        if args.baseline.exists():
            prior = json.loads(args.baseline.read_text())
            if "reference" in prior:
                fresh["reference"] = prior["reference"]
        args.baseline.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
        return 0
    if args.check:
        print("perf-regression check:")
        problems = check(fresh, args.baseline, args.threshold)
        for p in problems:
            print(f"REGRESSION: {p}")
        print("perf gate:", "clean" if not problems else f"{len(problems)} regressions")
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
