"""Benchmark: Table 1 — periodic vs tickless exit counts (§3.3).

Regenerates the analytical table (must match the paper digit-for-digit)
and cross-checks W1/W3 on the full simulator.

Also runnable as a script (the parallel-engine smoke driver)::

    python benchmarks/bench_table1.py --jobs 4          # parallel sweep
    python benchmarks/bench_table1.py --jobs 4          # second run: cached
    python benchmarks/bench_table1.py --no-cache
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

import sys
from pathlib import Path

if not __package__:  # script mode: make src/ and the repo root importable
    _root = Path(__file__).resolve().parents[1]
    sys.path[:0] = [str(_root), str(_root / "src")]

from repro.core.model import TABLE1_PAPER
from repro.experiments import table1


def test_table1_analytical(benchmark):
    rows = benchmark(table1.analytical_rows)
    print("\n" + table1.render())
    for row in rows:
        assert (row.periodic, row.tickless) == (row.paper_periodic, row.paper_tickless), (
            f"{row.workload}: computed ({row.periodic}, {row.tickless}) != paper "
            f"({row.paper_periodic}, {row.paper_tickless})"
        )
    assert {r.workload for r in rows} == set(TABLE1_PAPER)


def test_table1_simulated_cross_check(benchmark):
    out = benchmark.pedantic(table1.simulated_cross_check, rounds=1, iterations=1)
    print("\nSimulated exits/s:", out)
    # W1 (idle, 16 vCPU, 250 Hz): periodic pays ~one exit per tick per
    # vCPU (4000/s); tickless is near-silent.
    assert 3_500 <= out["W1"]["periodic"] <= 4_600
    assert out["W1"]["tickless"] < 200
    # W3 (sync storm): the §3.3 reversal — tickless now exceeds periodic.
    assert out["W3"]["tickless"] > out["W3"]["periodic"]


def test_table1_w2_overcommitted_scaling(benchmark):
    """W2 = 4 x W1 with the vCPUs time-sharing physical CPUs: exits
    scale with the VM count even though the host is overcommitted 4:1 —
    the §3.1 throughput sink."""
    from repro.config import TickMode
    from repro.experiments.overcommit import run_idle_overcommit
    from repro.sim.timebase import SEC

    def run():
        return {
            mode: run_idle_overcommit(
                mode, vms=4, vcpus_per_vm=16, pcpus=16, duration_ns=SEC // 2
            )
            for mode in (TickMode.PERIODIC, TickMode.TICKLESS)
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    per, nohz = out[TickMode.PERIODIC], out[TickMode.TICKLESS]
    print(f"\nW2 simulated: periodic {per.exits_per_second:,.0f}/s "
          f"(busy {per.busy_fraction:.1%}/CPU), tickless {nohz.exits_per_second:,.0f}/s")
    # 64 idle vCPUs at 250 Hz -> ~16k exits/s under periodic ticks.
    assert 13_000 <= per.exits_per_second <= 18_500
    assert nohz.exits_per_second < 500


def main(argv: list[str] | None = None) -> int:
    """Script driver: the Table 1 reproduction through the grid engine."""
    import time

    from repro.experiments.parallel import progress_reporter
    from benchmarks._driver import grid_arg_parser, report_grid

    ap = grid_arg_parser(__doc__)
    ap.add_argument("--duration-ms", type=int, default=1000,
                    help="simulated milliseconds of W1/W3 per cell (default 1000)")
    args = ap.parse_args(argv)

    print(table1.render())
    stats, cb = progress_reporter()
    start = time.perf_counter()
    out = table1.simulated_cross_check(
        duration_ns=args.duration_ms * 1_000_000, seed=args.seed,
        jobs=args.jobs, cache_dir=args.cache_dir,
        use_cache=not args.no_cache, progress=cb,
    )
    elapsed = time.perf_counter() - start
    print("\nSimulated cross-check (exits/s at 250 Hz, 16 vCPUs):")
    for name, modes in out.items():
        print(f"  {name}: " + ", ".join(f"{m}={v:,.0f}" for m, v in modes.items()))
    return report_grid(stats, jobs=args.jobs, elapsed=elapsed)


if __name__ == "__main__":
    raise SystemExit(main())
