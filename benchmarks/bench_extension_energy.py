"""Extension benchmark: energy (paper §2 motivation + §6.2 claim).

Two measurements on the cpuidle+energy extension:

1. §2 cites [12]: periodic ticks can dominate the energy of idle
   systems — an idle VM under periodic ticks must burn a multiple of
   the tickless VM's energy.
2. §6.2: "improved throughput ... reduces energy consumption" —
   paratick must use less energy than tickless for the same
   blocking-sync work.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

from repro.config import TickMode
from repro.experiments.runner import run_workload
from repro.metrics.energy import estimate_energy
from repro.sim.timebase import SEC
from repro.workloads.micro import IdleWorkload, SyncStormWorkload


def idle_energy(mode: TickMode) -> float:
    m = run_workload(
        IdleWorkload(vcpus=4),
        tick_mode=mode,
        noise=False,
        cpuidle=True,
        horizon_ns=SEC,
    )
    return estimate_energy(m).total_j


def sync_energy(mode: TickMode) -> tuple[float, float]:
    m = run_workload(
        SyncStormWorkload(threads=4, events_per_second=4000.0, duration_cycles=150_000_000),
        tick_mode=mode,
        seed=4,
        cpuidle=True,
    )
    e = estimate_energy(m)
    return e.total_j, e.active_j


def test_idle_vm_energy_dominated_by_periodic_ticks(benchmark):
    def run():
        return {mode: idle_energy(mode) for mode in TickMode}

    joules = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for mode, j in joules.items():
        print(f"  {mode.value:<9} {j:7.3f} J per idle 4-vCPU second")
    # §2/[12]: periodic ticks keep waking the cores (and pay C-state
    # exits); the idle VM burns a multiple of the tickless one's energy.
    assert joules[TickMode.PERIODIC] > 1.5 * joules[TickMode.TICKLESS]
    assert joules[TickMode.PARATICK] <= joules[TickMode.TICKLESS] * 1.05


def test_paratick_reduces_energy_for_same_work(benchmark):
    def run():
        return {mode: sync_energy(mode) for mode in (TickMode.TICKLESS, TickMode.PARATICK)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for mode, (total, active) in out.items():
        print(f"  {mode.value:<9} total {total:6.3f} J (active {active:6.3f} J)")
    nohz_total, nohz_active = out[TickMode.TICKLESS]
    para_total, para_active = out[TickMode.PARATICK]
    # Same application work, fewer exit cycles -> less active energy
    # (§6.2's claim), and no regression in total.
    assert para_active < nohz_active
    assert para_total < nohz_total * 1.02