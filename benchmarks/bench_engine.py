"""Microbenchmarks of the simulation substrate itself.

Not a paper experiment — these keep the simulator fast enough that the
table sweeps stay tractable, and catch performance regressions in the
hot paths (event queue, timer wheel, hrtimers, full-stack op loop).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

from repro.config import TickMode
from repro.experiments.runner import run_workload
from repro.guest.hrtimer import HrtimerQueue
from repro.guest.timerwheel import TimerWheel
from repro.sim.engine import Simulator
from repro.workloads.micro import SyncStormWorkload


def test_event_queue_throughput(benchmark):
    """Schedule+dispatch 100k chained events."""

    def run():
        sim = Simulator()
        remaining = [100_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run()
        return sim.dispatched

    assert benchmark(run) == 100_000


def test_timer_wheel_churn(benchmark):
    """Add/advance/fire 20k wheel timers across levels."""

    def run():
        w = TimerWheel()
        fired = 0
        for i in range(20_000):
            w.add(1 + (i * 37) % 70_000, lambda: None)
        fired += len(w.advance_to(70_001))
        return fired

    assert benchmark(run) == 20_000


def test_hrtimer_queue_churn(benchmark):
    """Interleaved add/cancel/pop on the hrtimer heap."""

    def run():
        q = HrtimerQueue()
        handles = []
        for i in range(10_000):
            handles.append(q.add((i * 13) % 50_000, lambda: None))
        for h in handles[::3]:
            q.cancel(h)
        return len(q.pop_expired(50_000))

    assert benchmark(run) > 0


def test_full_stack_events_per_second(benchmark):
    """End-to-end simulator throughput on a sync-heavy workload."""

    def run():
        m = run_workload(
            SyncStormWorkload(threads=4, events_per_second=4000.0, duration_cycles=60_000_000),
            tick_mode=TickMode.TICKLESS,
            seed=9,
        )
        return m.total_exits

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 100


def test_observability_overhead_ratio(benchmark):
    """Wall-clock cost of the full virtual-perf stack (profiler + steal
    + latency histograms + ring export) relative to a bare run of the
    same workload. The off-path is separately proven free in
    tests/obs/test_wiring.py; this pins the *on*-path to a bounded
    multiple so a regression in the hot hooks shows up here."""
    import time

    from repro.obs import ObsConfig, Observability

    def workload():
        return SyncStormWorkload(
            threads=4, events_per_second=4000.0, duration_cycles=60_000_000)

    def bare():
        return run_workload(workload(), tick_mode=TickMode.TICKLESS, seed=9)

    def probed():
        obs = Observability(ObsConfig(trace_export=True))
        return run_workload(workload(), tick_mode=TickMode.TICKLESS, seed=9,
                            obs=obs)

    bare()  # warm caches so both sides are measured hot
    t0 = time.perf_counter()
    base_metrics = bare()
    bare_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    probed_metrics = benchmark.pedantic(probed, rounds=1, iterations=1)
    probed_s = time.perf_counter() - t0

    # Observation must not perturb the simulation it is measuring.
    assert probed_metrics.to_json_dict() == base_metrics.to_json_dict()

    ratio = probed_s / bare_s
    print(f"obs on/off wall-clock ratio: {ratio:.2f}x "
          f"({probed_s * 1e3:.0f} ms vs {bare_s * 1e3:.0f} ms)")
    # Generous ceiling: catches pathological regressions (e.g. sampling
    # per-account instead of per-period), not scheduler jitter.
    assert ratio < 20.0
