"""Benchmark: the §3.3 crossover between periodic and tickless.

§3.3: "tickless kernels are preferable as long as the average idle
period T_idle is longer than the average vCPU tick period divided by
the number of vCPUs sharing the same physical CPU."

Checked both analytically (closed form) and on the simulator: a
nanosleep-driven workload sweeps the idle-period length; below the
tick period the tickless guest takes *more* exits than the periodic
one, above it fewer.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

from repro.config import TickMode
from repro.core.model import (
    FORMULA_CONVENTION,
    VmLoadModel,
    crossover_idle_period_ns,
    periodic_exits,
    tickless_exits_from_idle_period,
)
from repro.experiments.runner import run_workload
from repro.sim.timebase import MSEC, USEC
from repro.workloads.micro import IdlePeriodWorkload


def test_crossover_analytical(benchmark):
    def sweep():
        vm = VmLoadModel(vcpus=1, tick_hz=250, load=0.5)
        out = {}
        for t_idle_us in (100, 500, 2_000, 8_000, 32_000):
            p = periodic_exits([vm], 1.0, FORMULA_CONVENTION)
            t = tickless_exits_from_idle_period([vm], 1.0, t_idle_us / 1e6, FORMULA_CONVENTION)
            out[t_idle_us] = (p, t)
        return out

    out = benchmark(sweep)
    print("\nT_idle(us) -> (periodic, tickless) exits/s:", out)
    cross_ns = crossover_idle_period_ns(4 * MSEC, 1.0)
    assert cross_ns == 4 * MSEC  # 1:1 sharing: crossover at the tick period
    # Below the crossover tickless is worse, above it better.
    assert out[100][1] > out[100][0]
    assert out[32_000][1] < out[32_000][0]


def test_crossover_simulated(benchmark):
    def sweep():
        rates = {}
        for idle_ns in (500 * USEC, 50 * MSEC):
            per = {}
            for mode in (TickMode.PERIODIC, TickMode.TICKLESS):
                m = run_workload(
                    IdlePeriodWorkload(idle_ns, iterations=150),
                    tick_mode=mode,
                    seed=2,
                    noise=False,
                )
                per[mode.value] = m.total_exits / (m.exec_time_ns / 1e9)
            rates[idle_ns] = per
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nsimulated exits/s:", rates)
    short, long_ = rates[500 * USEC], rates[50 * MSEC]
    assert short["tickless"] > short["periodic"], "short idle: periodic should win"
    assert long_["tickless"] < long_["periodic"], "long idle: tickless should win"
