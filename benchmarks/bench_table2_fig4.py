"""Benchmark: Table 2 + Fig. 4 — sequential PARSEC (§6.1).

Paper: −50 % VM exits, +7 % system throughput, −2 % execution time on
average across 13 benchmarks. Shape assertions: the exit reduction
matches closely (it is mechanical); throughput/exec-time improvements
must be directionally right with the documented conservative magnitude
(see EXPERIMENTS.md).

Also runnable as a script: ``python benchmarks/bench_table2_fig4.py --jobs 4``.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

import sys
from pathlib import Path

if not __package__:  # script mode: make src/ and the repo root importable
    _root = Path(__file__).resolve().parents[1]
    sys.path[:0] = [str(_root), str(_root / "src")]

from repro.experiments import table2_fig4


def test_table2_fig4_sequential_parsec(benchmark):
    result = benchmark.pedantic(
        table2_fig4.run, kwargs={"target_cycles": 300_000_000}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    agg = result.aggregate
    # Exits: paper −50 %; mechanical, must be close.
    assert -0.70 <= agg.vm_exits <= -0.30
    # Throughput: paper +7 %; direction + conservative band.
    assert agg.throughput > 0.0
    # Execution time: paper −2 %; small improvement, never a regression
    # beyond noise (§6.1: "not affected negatively").
    assert agg.exec_time <= 0.005
    # Per-benchmark: paratick must never *increase* exits (§4.2's
    # never-worse-than-tickless guarantee).
    for comp in result.per_benchmark:
        assert comp.vm_exits < 0, f"{comp.label} gained exits"


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.parallel import progress_reporter
    from benchmarks._driver import grid_arg_parser, report_grid

    ap = grid_arg_parser(__doc__)
    ap.add_argument("--quick", action="store_true", help="smaller cycle budget")
    args = ap.parse_args(argv)
    stats, cb = progress_reporter()
    result = table2_fig4.run(
        target_cycles=120_000_000 if args.quick else 300_000_000,
        seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir,
        use_cache=not args.no_cache, progress=cb,
    )
    print(result.render())
    return report_grid(stats, jobs=args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
