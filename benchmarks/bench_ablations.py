"""Benchmark: ablations of paratick's design choices (§5) and the DID
comparison (§7).

Also runnable as a script: ``python benchmarks/bench_ablations.py --jobs 4``.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

import sys
from pathlib import Path

if not __package__:  # script mode: make src/ and the repo root importable
    _root = Path(__file__).resolve().parents[1]
    sys.path[:0] = [str(_root), str(_root / "src")]

from repro.experiments import ablations


def test_keep_timer_heuristic(benchmark):
    """§5.2.5: tearing the idle-entry timer down at idle exit costs
    extra exits — the reason the paper keeps it armed."""
    row = benchmark.pedantic(ablations.ablate_keep_timer, rounds=1, iterations=1)
    print(f"\n{row.name}: {row.variant_exits:,} vs {row.reference_exits:,} ({row.exit_delta:+.1%})")
    assert row.exit_delta > 0.10, "disabling the heuristic should cost >10% more exits"


def test_last_tick_heuristic(benchmark):
    """§5.1: without the last-tick update, the host injects redundant
    virtual ticks on entries that already carry a timer interrupt."""
    row = benchmark.pedantic(ablations.ablate_last_tick_heuristic, rounds=1, iterations=1)
    print(f"\n{row.name}: {row.variant_exits:,} vs {row.reference_exits:,} ({row.exit_delta:+.1%})")
    assert row.exit_delta > 0.10, "redundant virtual ticks expected without the heuristic"


def test_halt_polling_burns_cycles(benchmark):
    """§6: halt polling consumes CPU without improving runtime for
    contended workloads — why the paper disables it."""
    rows = benchmark.pedantic(ablations.ablate_halt_polling, rounds=1, iterations=1)
    print()
    for r in rows:
        print(f"  poll={r.poll_ns:>7,}ns exec={r.exec_time_ns / 1e6:8.2f}ms cycles={r.total_cycles / 1e6:7.0f}M")
    off, on = rows[0], rows[-1]
    assert on.total_cycles > off.total_cycles, "polling must burn extra cycles"
    # Runtime may improve marginally at best.
    assert on.exec_time_ns > off.exec_time_ns * 0.97


def test_frequency_mismatch_and_rate_adaptation(benchmark):
    """§4.1: virtual-tick delivery accuracy vs host tick rate, with and
    without the preemption-timer backstop the paper's design calls for."""
    rows = benchmark.pedantic(ablations.ablate_frequency_mismatch, rounds=1, iterations=1)
    print()
    for r in rows:
        print(f"  host {r.host_hz:>5} Hz adapt={'on ' if r.rate_adapt else 'off'} -> "
              f"~{r.delivered_hz:.0f}/s of {r.guest_hz} ({r.total_exits:,} exits)")
    by = {(r.host_hz, r.rate_adapt): r for r in rows}
    # Matching or faster host rates deliver the full guest rate already.
    assert by[(250, False)].delivered_hz > 230
    assert by[(1000, False)].delivered_hz > 230
    # A slower host degrades delivery toward its own rate...
    assert by[(100, False)].delivered_hz < 150
    # ...and the backstop restores it, at the cost of extra exits.
    assert by[(100, True)].delivered_hz > 230
    assert by[(100, True)].total_exits > by[(100, False)].total_exits


def test_virtual_eoi(benchmark):
    """Pre-APICv hosts (EOI traps): paratick's relative reduction is
    diluted by the extra universal exits but stays firmly negative."""
    rows = benchmark.pedantic(ablations.ablate_virtual_eoi, rounds=1, iterations=1)
    print()
    for r in rows:
        print(f"  virtual_eoi={r.virtual_eoi}: exits {r.exit_reduction:+.1%} "
              f"(baseline {r.base_exits:,})")
    with_eoi = next(r for r in rows if r.virtual_eoi)
    without = next(r for r in rows if not r.virtual_eoi)
    assert without.base_exits > with_eoi.base_exits, "trapped EOIs must add exits"
    assert without.exit_reduction < -0.15, "paratick must still win"
    assert without.exit_reduction > with_eoi.exit_reduction, (
        "universal EOI exits dilute the relative reduction"
    )


def test_exit_cost_sensitivity(benchmark):
    """Throughput gain scales with per-exit cost; exit counts do not."""
    rows = benchmark.pedantic(ablations.ablate_exit_cost_sensitivity, rounds=1, iterations=1)
    print()
    for r in rows:
        print(f"  pollution={r.pollution_cycles:>7,}cy: throughput {r.throughput_gain:+.1%}, "
              f"exits {r.exit_reduction:+.1%}")
    gains = [r.throughput_gain for r in rows]
    assert gains == sorted(gains), "gain must grow with per-exit cost"
    exits = [r.exit_reduction for r in rows]
    assert max(exits) - min(exits) < 0.10, "exit counts must be cost-insensitive"


def test_did_comparison(benchmark):
    """§7: DID removes even host-tick exits but dedicates a core; it
    only wins on large machines."""
    est, crossover, base, para = benchmark.pedantic(ablations.ablate_did, rounds=1, iterations=1)
    print(
        f"\nDID: exits {est.vm_exits:+.1%}, gross throughput "
        f"{est.throughput_without_core_loss:+.1%}, net (16 CPUs) {est.throughput:+.1%}, "
        f"breakeven ~{crossover:.0f} CPUs"
    )
    assert est.vm_exits < para.total_exits / base.total_exits - 1, "DID must remove more exits than paratick"
    assert est.throughput < est.throughput_without_core_loss, "the dedicated core must cost something"
    assert crossover > 16, "on the paper's argument DID loses on mid-size machines"


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.parallel import progress_reporter
    from benchmarks._driver import grid_arg_parser, report_grid

    args = grid_arg_parser(__doc__).parse_args(argv)
    stats, cb = progress_reporter()
    engine = {"jobs": args.jobs, "cache_dir": args.cache_dir,
              "use_cache": not args.no_cache, "progress": cb}
    kt = ablations.ablate_keep_timer(seed=args.seed, **engine)
    lt = ablations.ablate_last_tick_heuristic(seed=args.seed, **engine)
    for row in (kt, lt):
        print(f"{row.name}: {row.variant_exits:,} vs {row.reference_exits:,} "
              f"({row.exit_delta:+.1%})")
    for r in ablations.ablate_halt_polling(seed=args.seed, **engine):
        print(f"halt_poll={r.poll_ns:>7,}ns exec={r.exec_time_ns / 1e6:8.2f}ms "
              f"cycles={r.total_cycles / 1e6:7.0f}M")
    for r in ablations.ablate_frequency_mismatch(seed=args.seed, **engine):
        print(f"host {r.host_hz:>5} Hz adapt={'on ' if r.rate_adapt else 'off'} -> "
              f"~{r.delivered_hz:.0f}/s of {r.guest_hz} ({r.total_exits:,} exits)")
    for r in ablations.ablate_virtual_eoi(seed=args.seed, **engine):
        print(f"virtual_eoi={r.virtual_eoi}: exits {r.exit_reduction:+.1%} "
              f"(baseline {r.base_exits:,})")
    est, crossover, _base, _para = ablations.ablate_did(seed=args.seed, **engine)
    print(f"DID: exits {est.vm_exits:+.1%}, net throughput {est.throughput:+.1%}, "
          f"breakeven ~{crossover:.0f} CPUs")
    return report_grid(stats, jobs=args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
