"""Extension benchmark: paratick on network services (paper §8).

The paper's future work targets high-performance I/O. We sweep NIC
generations (10 GbE vs 100 GbE-class round trips) on an RPC workload:
the faster the network, the larger the share of each request spent on
tick-management exits — so paratick's benefit must *grow* with link
speed, mirroring §6.3's storage-device argument.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

from repro.config import TickMode
from repro.experiments.runner import run_workload
from repro.hw.nic import DATACENTER_10G, DATACENTER_100G
from repro.workloads.netserve import NetServiceWorkload


def compare(profile, *, seed=0):
    wl = NetServiceWorkload(workers=2, requests=400, profile=profile)
    base = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=seed)
    cand = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed)
    return {
        "exits": cand.total_exits / base.total_exits - 1.0,
        "rps": base.exec_time_ns / cand.exec_time_ns - 1.0,  # requests/s gain
        "base_rps": 800 / (base.exec_time_ns / 1e9),
    }


def test_net_service_paratick_gain_grows_with_link_speed(benchmark):
    def run():
        return {
            "10G": compare(DATACENTER_10G),
            "100G": compare(DATACENTER_100G),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for link, r in out.items():
        print(f"  {link}: exits {r['exits']:+.1%}, request throughput {r['rps']:+.1%} "
              f"(baseline {r['base_rps']:,.0f} req/s)")
    assert out["10G"]["exits"] < -0.10
    assert out["100G"]["rps"] > out["10G"]["rps"], (
        "paratick's gain must grow with link speed (§4.2's argument)"
    )
    assert out["100G"]["rps"] > 0.05
