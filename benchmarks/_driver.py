"""Shared plumbing for the benchmark script drivers.

Every ``bench_*.py`` doubles as a standalone script routed through the
parallel experiment engine; this module keeps their argparse surface and
cache-stat reporting identical.
"""

from __future__ import annotations

import argparse
from collections import Counter


def grid_arg_parser(doc: str | None = None) -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        description=doc, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for independent grid cells")
    ap.add_argument("--no-cache", action="store_true",
                    help="ignore and do not write the on-disk result cache")
    ap.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="result cache location (default: $REPRO_CACHE_DIR or .repro-cache)")
    ap.add_argument("--seed", type=int, default=0, help="root RNG seed")
    return ap


def report_grid(stats: Counter, *, jobs: int | None, elapsed: float | None = None) -> int:
    """Print the cache/execute tally; exit status 1 if any cell failed."""
    total = stats["cached"] + stats["ran"]
    timing = f", {elapsed:.2f}s" if elapsed is not None else ""
    print(f"\ngrid: {stats['cached']}/{total} cells from cache, "
          f"{stats['ran']} executed, {stats['failed']} failed "
          f"(jobs={jobs}{timing})")
    return 1 if stats["failed"] else 0
