"""Benchmark: Table 4 + Fig. 6 — fio storage workloads (§6.3).

Paper: −34 % VM exits, +20 % I/O throughput, −18 % execution time on
average; reads benefit more than writes (Fig. 6c).

Also runnable as a script: ``python benchmarks/bench_table4_fig6.py --jobs 4``.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

import sys
from pathlib import Path

if not __package__:  # script mode: make src/ and the repo root importable
    _root = Path(__file__).resolve().parents[1]
    sys.path[:0] = [str(_root), str(_root / "src")]

from repro.experiments import table4_fig6


def test_table4_fig6_fio(benchmark):
    result = benchmark.pedantic(
        table4_fig6.run, kwargs={"total_bytes": 16 << 20}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    agg = result.aggregate
    # Exits: paper −34 % — mechanical, tight band.
    assert -0.55 <= agg.vm_exits <= -0.20
    # I/O throughput: positive, and exec time mirrors it (Table 4's
    # near-equality of the two columns).
    assert agg.throughput > 0.02
    assert agg.exec_time < -0.02
    # Fig. 6c: reads gain more than writes.
    by_cat = {c.label: c for c in result.per_category}
    read_gain = (by_cat["seqr"].throughput + by_cat["rndr"].throughput) / 2
    write_gain = (by_cat["seqwr"].throughput + by_cat["rndwr"].throughput) / 2
    assert read_gain > write_gain, f"reads {read_gain:+.1%} <= writes {write_gain:+.1%}"


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.parallel import progress_reporter
    from repro.workloads.fio import BLOCK_SIZES
    from benchmarks._driver import grid_arg_parser, report_grid

    ap = grid_arg_parser(__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer bytes, fewer block sizes")
    args = ap.parse_args(argv)
    stats, cb = progress_reporter()
    result = table4_fig6.run(
        total_bytes=(4 << 20) if args.quick else (16 << 20),
        block_sizes=BLOCK_SIZES[:2] if args.quick else BLOCK_SIZES,
        seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir,
        use_cache=not args.no_cache, progress=cb,
    )
    print(result.render())
    return report_grid(stats, jobs=args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
