"""Benchmark: Table 4 + Fig. 6 — fio storage workloads (§6.3).

Paper: −34 % VM exits, +20 % I/O throughput, −18 % execution time on
average; reads benefit more than writes (Fig. 6c).
"""

from __future__ import annotations

from repro.experiments import table4_fig6


def test_table4_fig6_fio(benchmark):
    result = benchmark.pedantic(
        table4_fig6.run, kwargs={"total_bytes": 16 << 20}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    agg = result.aggregate
    # Exits: paper −34 % — mechanical, tight band.
    assert -0.55 <= agg.vm_exits <= -0.20
    # I/O throughput: positive, and exec time mirrors it (Table 4's
    # near-equality of the two columns).
    assert agg.throughput > 0.02
    assert agg.exec_time < -0.02
    # Fig. 6c: reads gain more than writes.
    by_cat = {c.label: c for c in result.per_category}
    read_gain = (by_cat["seqr"].throughput + by_cat["rndr"].throughput) / 2
    write_gain = (by_cat["seqwr"].throughput + by_cat["rndwr"].throughput) / 2
    assert read_gain > write_gain, f"reads {read_gain:+.1%} <= writes {write_gain:+.1%}"
