"""Benchmark: Table 3 + Fig. 5 — multithreaded PARSEC (§6.2).

Paper averages: small −42 %/+12 %/−1 %, medium −47 %/+13 %/−3 %,
large −44 %/+16 %/−1 % (exits / throughput / exec time).

Shape assertions: exit reductions in band for every size; throughput
positive and larger than the sequential aggregate; execution-time
improvement far smaller than the throughput improvement (the critical-
path argument of §4.2/§6.2).
"""

from __future__ import annotations

import pytest

from repro.experiments import table3_fig5
from repro.experiments.scenarios import LARGE, MEDIUM, SMALL

@pytest.mark.parametrize("size", [SMALL, MEDIUM, LARGE], ids=lambda s: s.name)
def test_table3_fig5_multithreaded_parsec(benchmark, size):
    result = benchmark.pedantic(
        table3_fig5.run_size,
        args=(size,),
        kwargs={"target_cycles": table3_fig5.DEFAULT_BUDGETS[size.name]},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    agg = result.aggregate
    assert -0.70 <= agg.vm_exits <= -0.20, f"{size.name}: exits {agg.vm_exits:+.1%}"
    assert agg.throughput > 0.0
    # §6.2: throughput gains do not translate into comparable runtime
    # gains for multithreaded workloads.
    assert agg.exec_time <= 0.01
    assert abs(agg.exec_time) < agg.throughput
    for comp in result.per_benchmark:
        assert comp.vm_exits < 0, f"{comp.label} gained exits"
