"""Benchmark: Table 3 + Fig. 5 — multithreaded PARSEC (§6.2).

Paper averages: small −42 %/+12 %/−1 %, medium −47 %/+13 %/−3 %,
large −44 %/+16 %/−1 % (exits / throughput / exec time).

Shape assertions: exit reductions in band for every size; throughput
positive and larger than the sequential aggregate; execution-time
improvement far smaller than the throughput improvement (the critical-
path argument of §4.2/§6.2).

Also runnable as a script: ``python benchmarks/bench_table3_fig5.py --jobs 4``.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.perf

import sys
from pathlib import Path

if not __package__:  # script mode: make src/ and the repo root importable
    _root = Path(__file__).resolve().parents[1]
    sys.path[:0] = [str(_root), str(_root / "src")]

import pytest

from repro.experiments import table3_fig5
from repro.experiments.scenarios import LARGE, MEDIUM, SMALL

@pytest.mark.parametrize("size", [SMALL, MEDIUM, LARGE], ids=lambda s: s.name)
def test_table3_fig5_multithreaded_parsec(benchmark, size):
    result = benchmark.pedantic(
        table3_fig5.run_size,
        args=(size,),
        kwargs={"target_cycles": table3_fig5.DEFAULT_BUDGETS[size.name]},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    agg = result.aggregate
    assert -0.70 <= agg.vm_exits <= -0.20, f"{size.name}: exits {agg.vm_exits:+.1%}"
    assert agg.throughput > 0.0
    # §6.2: throughput gains do not translate into comparable runtime
    # gains for multithreaded workloads.
    assert agg.exec_time <= 0.01
    assert abs(agg.exec_time) < agg.throughput
    for comp in result.per_benchmark:
        assert comp.vm_exits < 0, f"{comp.label} gained exits"


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.parallel import progress_reporter
    from benchmarks._driver import grid_arg_parser, report_grid

    ap = grid_arg_parser(__doc__)
    ap.add_argument("--size", choices=["small", "medium", "large", "all"], default="all")
    ap.add_argument("--quick", action="store_true", help="smaller cycle budget")
    args = ap.parse_args(argv)
    stats, cb = progress_reporter()
    for size in (SMALL, MEDIUM, LARGE):
        if args.size not in ("all", size.name):
            continue
        budget = table3_fig5.DEFAULT_BUDGETS[size.name]
        if args.quick:
            budget = max(20_000_000, budget // 3)
        result = table3_fig5.run_size(
            size, target_cycles=budget, seed=args.seed,
            jobs=args.jobs, cache_dir=args.cache_dir,
            use_cache=not args.no_cache, progress=cb,
        )
        print(result.render())
        print()
    return report_grid(stats, jobs=args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
