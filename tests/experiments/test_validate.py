"""The self-validation battery must pass (it ships to users)."""

from __future__ import annotations

from repro.experiments import validate


def test_validation_battery_passes():
    results = validate.run_all()
    failing = [r for r in results if not r.passed]
    assert not failing, "; ".join(f"{r.name}: {r.detail}" for r in failing)
    assert len(results) == len(validate.ALL_CHECKS)


def test_checks_report_detail():
    for r in validate.run_all():
        assert r.detail  # human-readable evidence, not bare booleans
