"""Determinism, equivalence, cache and fault-path tests for the
parallel experiment engine (:mod:`repro.experiments.parallel`).

The engine's contract, in test form:

* the same :class:`RunSpec` always produces the identical
  :class:`RunMetrics`, no matter whether it runs in-process or in a
  worker, fresh or from cache;
* the cache is keyed by spec content — any knob change invalidates the
  cell, corruption is discarded rather than fatal;
* a raising, timing-out or crashing cell is retried and then reported
  in ``failed_specs`` without sinking the rest of the grid.
"""

from __future__ import annotations

import io
import json
import os
import time

import pytest

from repro.config import HostFeatures, TickMode
from repro.experiments import parallel
from repro.experiments.parallel import (
    GridError,
    ResultCache,
    RunSpec,
    WorkloadSpec,
    encode_result,
    execute_spec,
    progress_reporter,
    register_workload,
    run_grid,
    spec_from_dict,
    spec_key,
    spec_to_dict,
)
from repro.experiments.runner import run_comparison, run_replicated_comparison
from repro.metrics.perf import RunMetrics
from repro.resilience.integrity import attach_footer, split_verified
from repro.workloads.micro import PingPongWorkload

# Fault-injection workload factories. Registered at import time in the
# parent process; the fork-based pool inherits the registry, so workers
# can resolve these kinds too.


def _boom_factory(**kw):
    raise RuntimeError("boom")


def _sleep_factory(seconds=5.0, **kw):
    time.sleep(seconds)
    raise AssertionError("unreachable: the per-run alarm should fire first")


def _crash_factory(**kw):
    os._exit(3)  # hard worker death: exercises BrokenProcessPool recovery


register_workload("test.boom", _boom_factory)
register_workload("test.sleep", _sleep_factory)
register_workload("test.crash", _crash_factory)


def cheap_spec(seed: int = 0, **changes) -> RunSpec:
    """A sub-millisecond deterministic cell (40-round ping-pong)."""
    spec = RunSpec(
        WorkloadSpec.make("micro.pingpong", rounds=40, work_cycles=10_000),
        tick_mode=TickMode.PARATICK,
        seed=seed,
        noise=False,
    )
    return spec.with_(**changes) if changes else spec


# --------------------------------------------------------------------------
# Spec encoding and keys
# --------------------------------------------------------------------------


def test_spec_key_stable_across_construction():
    a = cheap_spec()
    b = RunSpec(
        WorkloadSpec.make("micro.pingpong", work_cycles=10_000, rounds=40),
        tick_mode=TickMode.PARATICK, seed=0, noise=False,
    )
    assert a == b
    assert spec_key(a) == spec_key(b)


@pytest.mark.parametrize(
    "change",
    [
        {"seed": 1},
        {"tick_mode": TickMode.TICKLESS},
        {"tick_hz": 1000},
        {"noise": True},
        {"cost_overrides": (("pollution", 9000),)},
        {"features": HostFeatures(halt_poll_ns=50_000)},
        {"keep_timer_on_idle_exit": False},
        {"workload": WorkloadSpec.make("micro.pingpong", rounds=41, work_cycles=10_000)},
    ],
    ids=lambda c: next(iter(c)),
)
def test_spec_key_sensitive_to_every_knob(change):
    assert spec_key(cheap_spec()) != spec_key(cheap_spec(**change))


def test_spec_dict_round_trip():
    spec = cheap_spec(
        cost_overrides=(("pollution", 9000),),
        features=HostFeatures(halt_poll_ns=50_000),
        label="rt",
    )
    back = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
    assert back == spec
    assert spec_key(back) == spec_key(spec)


def test_run_metrics_json_round_trip():
    m = execute_spec(cheap_spec())
    assert isinstance(m, RunMetrics)
    back = RunMetrics.from_json_dict(json.loads(json.dumps(m.to_json_dict())))
    assert back.to_json_dict() == m.to_json_dict()
    assert back.label == m.label
    assert back.exits == m.exits
    assert back.total_exits == m.total_exits


# --------------------------------------------------------------------------
# Determinism and serial/parallel equivalence
# --------------------------------------------------------------------------


def test_same_spec_twice_is_identical():
    spec = cheap_spec()
    assert encode_result(execute_spec(spec)) == encode_result(execute_spec(spec))


def test_serial_and_worker_results_identical():
    specs = [cheap_spec(seed=s, tick_mode=m)
             for s in (0, 1) for m in (TickMode.TICKLESS, TickMode.PARATICK)]
    serial = run_grid(specs, jobs=1, use_cache=False)
    pooled = run_grid(specs, jobs=2, use_cache=False)
    assert serial.complete and pooled.complete
    assert serial.executed == pooled.executed == len(specs)
    for spec in specs:
        assert encode_result(serial[spec]) == encode_result(pooled[spec])


def test_grid_matches_direct_execution():
    spec = cheap_spec(seed=3)
    grid = run_grid([spec], jobs=1, use_cache=False)
    assert encode_result(grid[spec]) == encode_result(execute_spec(spec))


def test_grid_dedups_repeated_specs():
    spec = cheap_spec()
    grid = run_grid([spec, spec, spec], jobs=1, use_cache=False)
    assert grid.executed == 1
    assert len(grid.ordered()) == 3
    assert all(r is grid[spec] for r in grid.ordered())


def test_missing_spec_raises_grid_error():
    grid = run_grid([cheap_spec()], jobs=1, use_cache=False)
    with pytest.raises(GridError):
        grid[cheap_spec(seed=99)]


# --------------------------------------------------------------------------
# Result cache
# --------------------------------------------------------------------------


def test_cache_hit_skips_execution(tmp_path):
    specs = [cheap_spec(seed=s) for s in (0, 1)]
    first = run_grid(specs, jobs=1, cache_dir=tmp_path)
    assert (first.executed, first.cache_hits) == (2, 0)
    second = run_grid(specs, jobs=1, cache_dir=tmp_path)
    assert (second.executed, second.cache_hits) == (0, 2)
    for spec in specs:
        assert encode_result(first[spec]) == encode_result(second[spec])


def test_cached_equals_fresh_bit_for_bit(tmp_path):
    spec = cheap_spec()
    fresh = run_grid([spec], jobs=1, cache_dir=tmp_path)[spec]
    cached = run_grid([spec], jobs=1, cache_dir=tmp_path)[spec]
    assert cached.to_json_dict() == fresh.to_json_dict()


def test_knob_change_invalidates_cache(tmp_path):
    run_grid([cheap_spec()], jobs=1, cache_dir=tmp_path)
    changed = run_grid([cheap_spec(tick_hz=1000)], jobs=1, cache_dir=tmp_path)
    assert (changed.executed, changed.cache_hits) == (1, 0)


def test_use_cache_false_forces_execution(tmp_path):
    spec = cheap_spec()
    run_grid([spec], jobs=1, cache_dir=tmp_path)
    bypass = run_grid([spec], jobs=1, cache_dir=tmp_path, use_cache=False)
    assert (bypass.executed, bypass.cache_hits) == (1, 0)


def test_corrupted_cache_file_discarded_not_fatal(tmp_path):
    spec = cheap_spec()
    cache = ResultCache(tmp_path)
    path = cache.path_for(spec_key(spec))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ not json")
    grid = run_grid([spec], jobs=1, cache_dir=tmp_path)
    assert (grid.executed, grid.cache_hits) == (1, 0)
    # The corrupt file was replaced by a valid one: next run hits.
    again = run_grid([spec], jobs=1, cache_dir=tmp_path)
    assert (again.executed, again.cache_hits) == (0, 1)


def test_stale_cache_version_discarded(tmp_path):
    spec = cheap_spec()
    cache = ResultCache(tmp_path)
    cache.store(spec, encode_result(execute_spec(spec)))
    path = cache.path_for(spec_key(spec))
    body, status = split_verified(path.read_text())
    assert status == "ok"
    payload = json.loads(body)
    payload["version"] = parallel.CACHE_VERSION + 1
    path.write_text(attach_footer(json.dumps(payload)))
    assert cache.load(spec) is None
    assert not path.exists(), "stale-format file should be discarded"


def test_unwritable_cache_store_degrades_to_no_cache(tmp_path):
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("plain file where the cache root should be")
    spec = cheap_spec()
    with pytest.warns(RuntimeWarning, match="result cache disabled"):
        grid = run_grid([spec, cheap_spec(seed=1)], jobs=1, cache_dir=bogus)
    assert grid.complete and grid.executed == 2
    assert grid[spec] is not None


def test_worker_results_land_in_cache(tmp_path):
    specs = [cheap_spec(seed=s) for s in (0, 1)]
    run_grid(specs, jobs=2, cache_dir=tmp_path)
    second = run_grid(specs, jobs=2, cache_dir=tmp_path)
    assert (second.executed, second.cache_hits) == (0, 2)


# --------------------------------------------------------------------------
# Fault paths
# --------------------------------------------------------------------------


def _statuses(events):
    return [e.status for e in events]


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
def test_raising_cell_retried_then_reported(jobs):
    boom = RunSpec(WorkloadSpec.make("test.boom"))
    good = [cheap_spec(seed=s) for s in (0, 1)]
    events = []
    grid = run_grid([boom] + good, jobs=jobs, use_cache=False,
                    progress=events.append)
    assert not grid.complete
    [failed] = grid.failed_specs
    assert failed.spec == boom
    assert failed.attempts == 2, "one automatic retry, then reported"
    assert "boom" in failed.error
    # The rest of the grid completed regardless.
    for spec in good:
        assert grid[spec] is not None
    assert _statuses(events).count("retry") == 1
    with pytest.raises(GridError, match="failed"):
        grid.raise_if_failed()


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
def test_timeout_enforced_per_run(jobs):
    stuck = RunSpec(WorkloadSpec.make("test.sleep", seconds=30.0))
    grid = run_grid([stuck], jobs=jobs, use_cache=False,
                    timeout_s=0.2, retries=0)
    [failed] = grid.failed_specs
    assert "RunTimeout" in failed.error
    assert failed.attempts == 1


def test_worker_crash_recovered_gracefully():
    """A worker dying mid-run (os._exit) breaks the pool; the engine
    rebuilds it and reports the casualty instead of raising."""
    crash = RunSpec(WorkloadSpec.make("test.crash"))
    grid = run_grid([crash], jobs=2, use_cache=False, retries=1)
    assert grid.results == {}
    [failed] = grid.failed_specs
    assert failed.spec == crash
    assert failed.attempts == 2
    # The engine is fully usable afterwards.
    spec = cheap_spec()
    assert run_grid([spec], jobs=2, use_cache=False).complete


def test_failed_cells_leave_holes_in_ordered():
    boom = RunSpec(WorkloadSpec.make("test.boom"))
    good = cheap_spec()
    grid = run_grid([boom, good], jobs=1, use_cache=False, retries=0)
    assert grid.ordered()[0] is None
    assert grid.ordered()[1] is grid[good]


# --------------------------------------------------------------------------
# Progress reporting
# --------------------------------------------------------------------------


def test_progress_reporter_tallies_and_prints(tmp_path):
    specs = [cheap_spec(seed=s) for s in (0, 1)]
    out = io.StringIO()
    stats, cb = progress_reporter(stream=out)
    run_grid(specs, jobs=1, cache_dir=tmp_path, progress=cb)
    run_grid(specs, jobs=1, cache_dir=tmp_path, progress=cb)
    assert stats["ran"] == 2 and stats["cached"] == 2
    lines = out.getvalue().strip().splitlines()
    assert len(lines) == 4
    assert all("micro.pingpong" in line for line in lines)


# --------------------------------------------------------------------------
# Comparison drivers on top of the engine
# --------------------------------------------------------------------------


def _workload():
    return PingPongWorkload(rounds=40, work_cycles=10_000)


def test_run_comparison_propagates_label_into_runs():
    comp, base, cand = run_comparison(_workload(), label="mylabel", noise=False)
    assert comp.label == "mylabel"
    assert base.label == "mylabel/tickless"
    assert cand.label == "mylabel/paratick"


def test_run_comparison_default_label_is_workload_name():
    comp, base, cand = run_comparison(_workload(), noise=False)
    assert comp.label == "micro.pingpong"
    assert base.label == "micro.pingpong/tickless"


def test_replicated_comparison_engine_matches_serial_loop():
    seeds = (0, 1)
    mean, sds = run_replicated_comparison(
        _workload(), seeds=seeds, noise=False, jobs=2
    )
    expected = [run_comparison(_workload(), seed=s, noise=False)[0] for s in seeds]
    assert mean.label == "micro.pingpong"
    assert mean.vm_exits == pytest.approx(
        sum(c.vm_exits for c in expected) / len(expected))
    assert mean.exec_time == pytest.approx(
        sum(c.exec_time for c in expected) / len(expected))
    assert set(sds) == {"vm_exits", "throughput", "exec_time"}


def test_replicated_comparison_uses_cache(tmp_path):
    events = []
    run_replicated_comparison(
        _workload(), seeds=(0, 1), noise=False,
        cache_dir=tmp_path, use_cache=True, progress=events.append,
    )
    run_replicated_comparison(
        _workload(), seeds=(0, 1), noise=False,
        cache_dir=tmp_path, use_cache=True, progress=events.append,
    )
    assert _statuses(events).count("ran") == 4
    assert _statuses(events).count("cached") == 4


def test_replicated_comparison_empty_seeds_raises():
    with pytest.raises(ValueError, match="seed"):
        run_replicated_comparison(_workload(), seeds=())


def test_spec_for_rejects_live_tracer():
    with pytest.raises(GridError, match="tracer"):
        parallel.spec_for(_workload(), tick_mode=TickMode.PARATICK, tracer=object())


def test_describe_workload_round_trips_pingpong():
    ws = parallel.describe_workload(_workload())
    assert ws == WorkloadSpec.make(
        "micro.pingpong", rounds=40, work_cycles=10_000, same_vcpu=False)
    built = ws.build()
    assert isinstance(built, PingPongWorkload) and built.rounds == 40


def test_unknown_workload_kind_raises():
    with pytest.raises(GridError, match="unknown workload kind"):
        WorkloadSpec.make("no.such.kind").build()
