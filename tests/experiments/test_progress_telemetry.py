"""Progress-callback and harness-telemetry behavior of ``run_grid``.

Covers the extended :class:`ProgressEvent` (per-attempt wall-clock,
cache-hit flag) across every settle path — ran, cached, retry, timeout,
failed — plus the two house guarantees of the telemetry subsystem:
a raising callback is contained (never sinks the grid), and a detached
telemetry object is never touched beyond its ``enabled`` flag.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.config import TickMode
from repro.experiments.parallel import (
    ProgressEvent,
    RunSpec,
    WorkloadSpec,
    encode_result,
    register_workload,
    run_grid,
)
from repro.obs.export import validate_chrome_trace
from repro.telemetry import HarnessTelemetry, validate_prometheus_text


def _boom_factory(**kw):
    raise RuntimeError("boom")


def _sleep_factory(seconds=5.0, **kw):
    time.sleep(seconds)
    raise AssertionError("unreachable: the per-run alarm should fire first")


register_workload("test.boom", _boom_factory)
register_workload("test.sleep", _sleep_factory)


def cheap_spec(seed: int = 0, **changes) -> RunSpec:
    spec = RunSpec(
        WorkloadSpec.make("micro.pingpong", rounds=40, work_cycles=10_000),
        tick_mode=TickMode.PARATICK,
        seed=seed,
        noise=False,
    )
    return spec.with_(**changes) if changes else spec


class ExplodingTelemetry:
    """Detached telemetry that fails the test on any deeper touch."""

    enabled = False

    def __getattr__(self, name):
        raise AssertionError(f"detached telemetry touched: {name}")


# --------------------------------------------------------------------------
# ProgressEvent extensions
# --------------------------------------------------------------------------


class TestProgressEvent:
    def test_new_fields_are_defaulted(self):
        # Pre-telemetry construction sites must keep working unchanged.
        ev = ProgressEvent(cheap_spec(), "ran", 1, 2)
        assert ev.duration_s is None
        assert ev.cache_hit is False

    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
    def test_ran_events_carry_wall_clock(self, jobs):
        events = []
        run_grid([cheap_spec(seed=s) for s in (0, 1)], jobs=jobs,
                 use_cache=False, progress=events.append)
        assert [e.status for e in events] == ["ran", "ran"]
        for e in events:
            assert isinstance(e.duration_s, float) and e.duration_s >= 0
            assert e.cache_hit is False

    def test_cached_events_flagged(self, tmp_path):
        spec = cheap_spec()
        run_grid([spec], jobs=1, cache_dir=tmp_path)
        events = []
        run_grid([spec], jobs=1, cache_dir=tmp_path, progress=events.append)
        [ev] = events
        assert ev.status == "cached"
        assert ev.cache_hit is True
        assert ev.duration_s is None  # nothing executed

    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
    def test_retry_and_failed_events_carry_duration(self, jobs):
        boom = RunSpec(WorkloadSpec.make("test.boom"))
        events = []
        grid = run_grid([boom], jobs=jobs, use_cache=False, retries=1,
                        progress=events.append)
        assert not grid.complete
        assert [e.status for e in events] == ["retry", "failed"]
        for e in events:
            assert isinstance(e.duration_s, float) and e.duration_s >= 0

    def test_timeout_events_carry_duration(self):
        stuck = RunSpec(WorkloadSpec.make("test.sleep", seconds=30.0))
        events = []
        run_grid([stuck], jobs=1, use_cache=False, timeout_s=0.2, retries=0,
                 progress=events.append)
        [ev] = events
        assert ev.status == "failed" and "RunTimeout" in ev.error
        assert ev.duration_s >= 0.2


class TestCallbackContainment:
    def test_raising_callback_warns_once_and_grid_completes(self):
        specs = [cheap_spec(seed=s) for s in (0, 1, 2)]
        calls = []

        def bad(event):
            calls.append(event)
            raise RuntimeError("observer bug")

        with pytest.warns(RuntimeWarning, match="progress callback disabled"):
            grid = run_grid(specs, jobs=1, use_cache=False, progress=bad)
        assert grid.complete and grid.executed == 3
        assert len(calls) == 1, "disabled after the first raise"


# --------------------------------------------------------------------------
# Harness telemetry through the grid
# --------------------------------------------------------------------------


class TestGridTelemetry:
    def test_counters_and_spans_match_outcomes(self, tmp_path):
        tel = HarnessTelemetry()
        specs = [cheap_spec(seed=s) for s in (0, 1)]
        run_grid(specs, jobs=1, cache_dir=tmp_path, telemetry=tel)
        run_grid(specs, jobs=1, cache_dir=tmp_path, telemetry=tel)
        m = tel.metrics
        assert m.counter_value("cells", status="ran") == 2
        assert m.counter_value("cells", status="cached") == 2
        assert m.counter_value("cache_misses") == 2
        assert m.counter_value("cache_writes") == 2
        assert m.counter_value("cache_hits") == 2
        names = [s.name for s in tel.tracer.spans()]
        assert names.count("grid.run") == 2
        assert names.count("shard.execute") == 2
        hist = m.histogram("shard_wall_ns", status="ran")
        assert hist is not None and hist.count == 2

    def test_failure_paths_recorded(self):
        tel = HarnessTelemetry()
        boom = RunSpec(WorkloadSpec.make("test.boom"))
        run_grid([boom], jobs=1, use_cache=False, retries=1, telemetry=tel)
        assert tel.metrics.counter_value("cells", status="retry") == 1
        assert tel.metrics.counter_value("cells", status="failed") == 1
        instants = [i.name for i in tel.tracer.instants()]
        assert "shard.retry" in instants and "shard.failed" in instants

    def test_pool_records_worker_lanes_and_gauge(self):
        tel = HarnessTelemetry()
        specs = [cheap_spec(seed=s) for s in (0, 1, 2)]
        run_grid(specs, jobs=2, use_cache=False, telemetry=tel)
        [gauge] = tel.metrics.to_json_dict()["pool_workers"]["series"]
        assert gauge["value"] == 2
        lanes = {s.lane for s in tel.tracer.spans() if s.name == "shard.execute"}
        assert lanes and all(lane.startswith("worker-") for lane in lanes)

    def test_grid_attrs_summarize_outcomes(self, tmp_path):
        tel = HarnessTelemetry()
        run_grid([cheap_spec()], jobs=1, cache_dir=tmp_path, telemetry=tel)
        [grid_span] = [s for s in tel.tracer.spans() if s.name == "grid.run"]
        assert grid_span.attrs["executed"] == 1
        assert grid_span.attrs["cache_hits"] == 0
        assert grid_span.attrs["failed"] == 0

    def test_exports_validate_after_real_grid(self):
        tel = HarnessTelemetry()
        run_grid([cheap_spec()], jobs=1, use_cache=False, telemetry=tel)
        assert validate_prometheus_text(tel.metrics.to_prometheus()) == []
        assert validate_chrome_trace(tel.chrome_trace()) == []


class TestZeroOverheadDetached:
    def test_disabled_telemetry_never_touched(self, tmp_path):
        grid = run_grid([cheap_spec()], jobs=1, cache_dir=tmp_path,
                        telemetry=ExplodingTelemetry())
        assert grid.complete and grid.executed == 1

    def test_disabled_telemetry_on_failure_paths(self):
        boom = RunSpec(WorkloadSpec.make("test.boom"))
        grid = run_grid([boom, cheap_spec()], jobs=1, use_cache=False,
                        retries=1, telemetry=ExplodingTelemetry())
        assert len(grid.failed_specs) == 1 and grid.executed == 1

    def test_results_bit_identical_with_and_without_telemetry(self):
        spec = cheap_spec()
        plain = run_grid([spec], jobs=1, use_cache=False)
        observed = run_grid([spec], jobs=1, use_cache=False,
                            telemetry=HarnessTelemetry())
        assert encode_result(plain[spec]) == encode_result(observed[spec])

    def test_cache_bytes_identical_with_and_without_telemetry(self, tmp_path):
        from repro.experiments.parallel import ResultCache, spec_key

        spec = cheap_spec()
        a, b = tmp_path / "a", tmp_path / "b"
        run_grid([spec], jobs=1, cache_dir=a)
        run_grid([spec], jobs=1, cache_dir=b, telemetry=HarnessTelemetry())
        pa = ResultCache(a).path_for(spec_key(spec))
        pb = ResultCache(b).path_for(spec_key(spec))
        # Footer and body must both match: the cache bytes are identical
        # with telemetry on or off.
        assert pa.read_bytes() == pb.read_bytes()


# --------------------------------------------------------------------------
# Satellite: run-summary helpers every driver prints
# --------------------------------------------------------------------------


class TestRunSummaryHelpers:
    def test_format_run_summary_counts_everything(self, tmp_path):
        from repro.fleet.report import format_run_summary

        boom = RunSpec(WorkloadSpec.make("test.boom"))
        good = cheap_spec()
        run_grid([good], jobs=1, cache_dir=tmp_path)
        grid = run_grid([good, boom], jobs=1, cache_dir=tmp_path, retries=0)
        assert format_run_summary("mygrid", grid) == \
            "mygrid: 2 cell(s), 1 cached, 0 executed, 1 FAILED"

    def test_failed_lines_carry_error_and_attempts(self):
        from repro.fleet.report import failed_lines

        boom = RunSpec(WorkloadSpec.make("test.boom"))
        grid = run_grid([boom], jobs=1, use_cache=False, retries=1)
        [line] = failed_lines(grid)
        assert line.startswith("[FAIL]")
        assert "boom" in line and "2 attempts" in line
