"""Tests for CSV export and the overcommit scenarios."""

from __future__ import annotations

import csv

import pytest

from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.export import comparisons_to_csv, export_fig6, write_csv
from repro.experiments.overcommit import compare_modes, run_idle_overcommit
from repro.metrics.report import Comparison
from repro.sim.timebase import SEC


class TestCsvExport:
    def test_csv_roundtrip(self):
        comps = [Comparison("a", -0.5, 0.1, -0.02), Comparison("b", -0.3, 0.2, -0.01)]
        text = comparisons_to_csv(comps)
        rows = list(csv.reader(text.splitlines()))
        assert rows[0] == ["label", "vm_exits", "throughput", "exec_time"]
        assert rows[1][0] == "a"
        assert float(rows[1][1]) == pytest.approx(-0.5)
        assert len(rows) == 3

    def test_write_csv_creates_dirs(self, tmp_path):
        p = write_csv(tmp_path / "nested" / "out.csv", [Comparison("x", 0, 0, 0)])
        assert p.exists()
        assert "label" in p.read_text()

    def test_export_fig4_headers(self, tmp_path):
        from repro.experiments.export import export_fig4

        p = export_fig4(tmp_path, target_cycles=20_000_000)
        rows = list(csv.reader(p.read_text().splitlines()))
        assert len(rows) == 15  # 13 benchmarks + aggregate + header
        assert rows[0] == ["label", "vm_exits", "throughput", "exec_time"]

    def test_export_fig5_small_only(self, tmp_path):
        from repro.experiments.export import export_fig5

        paths = export_fig5(tmp_path, sizes=("small",), target_cycles=20_000_000)
        assert len(paths) == 1
        assert "small" in paths[0].name
        assert len(paths[0].read_text().splitlines()) == 15

    def test_export_fig6_writes_five_rows(self, tmp_path):
        p = export_fig6(tmp_path, total_bytes=1 << 20)
        rows = list(csv.reader(p.read_text().splitlines()))
        # 4 categories + 1 aggregate + header
        assert len(rows) == 6
        assert rows[0][1] == "vm_exits" and rows[0][2] == "io_throughput"
        labels = [r[0] for r in rows[1:]]
        assert set(labels[:4]) == {"seqr", "seqwr", "rndr", "rndwr"}


class TestOvercommit:
    def test_periodic_idle_overcommit_is_expensive(self):
        """W2 regime: periodic ticks cost exits and busy time even for
        fully idle guests; tickless/paratick stay quiet (§3.1)."""
        out = compare_modes(vms=2, vcpus_per_vm=4, pcpus=2, duration_ns=SEC // 2)
        periodic = out[TickMode.PERIODIC]
        tickless = out[TickMode.TICKLESS]
        paratick = out[TickMode.PARATICK]
        # 8 idle vCPUs at 250 Hz -> thousands of exits/s under periodic.
        assert periodic.exits_per_second > 1_500
        assert tickless.exits_per_second < 200
        assert paratick.exits_per_second <= tickless.exits_per_second + 10
        assert periodic.busy_fraction > 5 * tickless.busy_fraction

    def test_scaling_with_vm_count(self):
        """W1 -> W2: four times the VMs, about four times the exits."""
        one = run_idle_overcommit(TickMode.PERIODIC, vms=1, vcpus_per_vm=4, pcpus=2, duration_ns=SEC // 2)
        four = run_idle_overcommit(TickMode.PERIODIC, vms=4, vcpus_per_vm=4, pcpus=2, duration_ns=SEC // 2)
        assert four.total_exits == pytest.approx(4 * one.total_exits, rel=0.15)

    def test_time_sharing_actually_happens(self):
        out = run_idle_overcommit(TickMode.PERIODIC, vms=2, vcpus_per_vm=2, pcpus=1, duration_ns=SEC // 2)
        assert out.host_switches > 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_idle_overcommit(TickMode.PERIODIC, vms=0)


class TestNetWorkload:
    def test_net_service_runs_and_blocks(self):
        from repro.experiments.runner import run_workload
        from repro.host.exitreasons import ExitReason
        from repro.workloads.netserve import NetServiceWorkload

        wl = NetServiceWorkload(workers=2, requests=50)
        m = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=1, noise=False)
        # Every RPC kicks the NIC once and blocks.
        assert m.exits.by_reason(ExitReason.IO_INSTRUCTION) == 100
        assert m.exits.by_reason(ExitReason.HLT) >= 80

    def test_faster_nic_faster_service(self):
        from repro.experiments.runner import run_workload
        from repro.hw.nic import DATACENTER_10G, DATACENTER_100G
        from repro.workloads.netserve import NetServiceWorkload

        def t(profile):
            wl = NetServiceWorkload(workers=1, requests=100, profile=profile)
            return run_workload(wl, seed=2, noise=False).exec_time_ns

        assert t(DATACENTER_100G) < t(DATACENTER_10G)
