"""Tests for the experiment runner, scenarios and experiment modules."""

from __future__ import annotations

import pytest

from repro.config import MachineSpec, TickMode
from repro.errors import ConfigError, WorkloadError
from repro.experiments.runner import run_comparison, run_workload
from repro.experiments.scenarios import LARGE, MEDIUM, SMALL, pin_spread, pins_for_size
from repro.experiments.table1 import analytical_rows
from repro.sim.timebase import MSEC, SEC
from repro.workloads.micro import PingPongWorkload
from repro.workloads.parsec import benchmark


class TestPinSpread:
    def test_small_on_one_socket(self):
        pins = pins_for_size(SMALL)
        spec = MachineSpec()
        assert len(pins) == 4
        assert {spec.socket_of(c) for c in pins} == {0}

    def test_medium_two_sockets(self):
        pins = pins_for_size(MEDIUM)
        spec = MachineSpec()
        assert len(pins) == 16
        assert {spec.socket_of(c) for c in pins} == {0, 1}

    def test_large_four_sockets(self):
        pins = pins_for_size(LARGE)
        spec = MachineSpec()
        assert len(pins) == 64
        assert {spec.socket_of(c) for c in pins} == {0, 1, 2, 3}
        assert len(set(pins)) == 64  # no double placement

    def test_uneven_spread_rejected(self):
        with pytest.raises(ConfigError):
            pin_spread(MachineSpec(), 5, 2)

    def test_socket_overflow_rejected(self):
        with pytest.raises(ConfigError):
            pin_spread(MachineSpec(sockets=1, cpus_per_socket=4), 8, 1)


class TestRunner:
    def test_returns_complete_metrics(self):
        m = run_workload(PingPongWorkload(rounds=50), seed=1)
        assert m.exec_time_ns > 0
        assert m.total_cycles > 0
        assert m.total_exits > 0
        assert m.extra["vcpus"] == 2

    def test_incomplete_workload_raises(self):
        wl = benchmark("blackscholes", target_cycles=2_200_000_000)  # ~1s of work
        with pytest.raises(WorkloadError):
            run_workload(wl, horizon_ns=10 * MSEC)

    def test_device_attached_on_demand(self):
        from repro.workloads import fio

        m = run_workload(fio.job("seqr", 4096, total_bytes=32 * 4096), seed=2)
        assert m.exits.by_tag(__import__("repro.host.exitreasons", fromlist=["ExitTag"]).ExitTag.IO) > 0

    def test_noise_flag(self):
        base = run_workload(PingPongWorkload(rounds=800), seed=3, noise=False)
        noisy = run_workload(PingPongWorkload(rounds=800), seed=3, noise=True)
        # Daemons add application (GUEST_USER) work on top of the main
        # tasks over the same span.
        assert noisy.useful_cycles > base.useful_cycles

    def test_comparison_shares_seed_and_workload(self):
        comp, base, cand = run_comparison(PingPongWorkload(rounds=100), seed=4)
        assert base.extra["seed"] == cand.extra["seed"] == 4
        assert comp.label == "micro.pingpong"

    def test_paratick_default_candidate_wins_on_sync(self):
        comp, base, cand = run_comparison(PingPongWorkload(rounds=300), seed=5)
        assert comp.vm_exits < 0
        assert comp.throughput > 0

    def test_replicated_comparison_reports_mean_and_sd(self):
        """§6's methodology: several iterations, mean with ~5% spread."""
        from repro.experiments.runner import run_replicated_comparison

        mean, sds = run_replicated_comparison(
            PingPongWorkload(rounds=200), seeds=(0, 1, 2)
        )
        assert mean.vm_exits < 0
        assert set(sds) == {"vm_exits", "throughput", "exec_time"}
        # Across-seed spread stays modest (the paper's "deviation of 5%").
        assert sds["vm_exits"] < 0.08

    def test_replicated_needs_seeds(self):
        from repro.experiments.runner import run_replicated_comparison

        with pytest.raises(ValueError):
            run_replicated_comparison(PingPongWorkload(rounds=10), seeds=())


class TestExperimentModules:
    def test_table1_rows_match_paper(self):
        assert all(r.matches_paper for r in analytical_rows())

    def test_table2_runs_on_subset(self):
        """Smoke-run the Fig. 4 driver at tiny scale."""
        from repro.experiments import table2_fig4

        res = table2_fig4.run(target_cycles=30_000_000)
        assert len(res.per_benchmark) == 13
        assert res.aggregate.vm_exits < 0
        assert "Table 2" in res.render()

    def test_table3_small_subset(self):
        from repro.experiments import table3_fig5

        res = table3_fig5.run_size(
            SMALL, benches=("streamcluster", "swaptions"), target_cycles=30_000_000
        )
        assert len(res.per_benchmark) == 2
        assert res.aggregate.vm_exits < 0

    def test_table4_tiny(self):
        from repro.experiments import table4_fig6

        res = table4_fig6.run(total_bytes=1 << 20, block_sizes=(4096,))
        assert len(res.per_category) == 4
        assert res.aggregate.vm_exits < 0
        assert res.aggregate.throughput > 0
