"""Span tracer contract: bounded ring, JSONL sink resilience, readers.

The tracer observes the harness, so its own failure modes must be
harmless: overflow is counted (never unbounded memory), a failing sink
disables itself with a warning instead of sinking the grid, and the
JSONL reader tolerates files truncated by a crash.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.spans import (
    InstantRecord,
    SpanRecord,
    SpanTracer,
    read_jsonl,
)


class TestRecording:
    def test_span_context_measures_and_records(self):
        t = SpanTracer()
        with t.span("work", lane="sched", cells=3) as attrs:
            attrs["extra"] = "yes"
        [rec] = t.spans()
        assert rec.name == "work"
        assert rec.lane == "sched"
        assert rec.dur_ns >= 0
        assert rec.attrs == {"cells": 3, "extra": "yes"}

    def test_exceptional_span_still_recorded_with_error(self):
        t = SpanTracer()
        with pytest.raises(ValueError, match="inner"):
            with t.span("work"):
                raise ValueError("inner")
        [rec] = t.spans()
        assert "ValueError" in rec.attrs["error"]

    def test_instant_records_point_event(self):
        t = SpanTracer()
        t.instant("cache.probe", lane="cache", spec="x")
        [rec] = t.instants()
        assert isinstance(rec, InstantRecord)
        assert rec.ts_ns >= 0 and rec.attrs == {"spec": "x"}

    def test_add_span_clamps_negative_times(self):
        t = SpanTracer()
        rec = t.add_span("w", ts_ns=-5, dur_ns=-7)
        assert (rec.ts_ns, rec.dur_ns) == (0, 0)

    def test_timestamps_are_monotonic_per_tracer(self):
        t = SpanTracer()
        a = t.now_ns()
        b = t.now_ns()
        assert 0 <= a <= b

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanTracer(capacity=0)


class TestBoundedRing:
    def test_overflow_evicts_oldest_and_counts_drops(self):
        t = SpanTracer(capacity=4)
        for i in range(6):
            t.instant(f"e{i}")
        assert len(t) == 4
        assert t.dropped == 2
        assert [r.name for r in t.records] == ["e2", "e3", "e4", "e5"]

    def test_lanes_in_first_appearance_order(self):
        t = SpanTracer()
        t.instant("a", lane="cache")
        t.instant("b", lane="harness")
        t.instant("c", lane="cache")
        t.instant("d", lane="worker-1")
        assert t.lanes() == ["cache", "harness", "worker-1"]


class TestJsonlSink:
    def test_sink_receives_every_record_even_past_capacity(self):
        sink = io.StringIO()
        t = SpanTracer(capacity=2, sink=sink)
        for i in range(5):
            t.instant(f"e{i}")
        lines = [json.loads(x) for x in sink.getvalue().splitlines()]
        assert [r["name"] for r in lines] == [f"e{i}" for i in range(5)]
        assert len(t) == 2  # the ring still only retains `capacity`

    def test_failing_sink_warns_once_and_recording_continues(self):
        class Boom(io.StringIO):
            def write(self, s):
                raise OSError("disk full")

        t = SpanTracer(sink=Boom())
        with pytest.warns(RuntimeWarning, match="sink disabled"):
            t.instant("first")
        # No further warnings: the sink is detached, the ring records on.
        t.instant("second")
        assert [r.name for r in t.records] == ["first", "second"]


class TestJsonlFile:
    def test_write_read_round_trip(self, tmp_path):
        t = SpanTracer()
        t.add_span("grid.run", 0, 1000, cells=2)
        t.instant("cache.hit", lane="cache")
        path = str(tmp_path / "spans.jsonl")
        assert t.write_jsonl(path) == 2
        header, records = read_jsonl(path)
        assert header["records"] == 2 and header["dropped"] == 0
        assert [r["type"] for r in records] == ["span", "instant"]
        assert records[0]["attrs"] == {"cells": 2}

    def test_reader_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = SpanRecord("ok", 0, 5).to_json_dict()
        path.write_text(
            json.dumps(good) + "\n"
            + "{ truncated by a cra\n"
            + "[1, 2, 3]\n"
            + json.dumps(good) + "\n"
        )
        header, records = read_jsonl(str(path))
        assert header == {}  # streamed files carry no header
        assert len(records) == 2
