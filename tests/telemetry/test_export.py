"""Harness timeline export and the HarnessTelemetry facade outputs.

The Chrome trace must pass the same validator the obs exporter is held
to, and ``write_outputs`` must produce all four artifacts in a form
their respective validators/readers accept.
"""

from __future__ import annotations

import json

from repro.obs.export import validate_chrome_trace
from repro.telemetry import HarnessTelemetry, harness_chrome_trace
from repro.telemetry.metrics import validate_prometheus_text
from repro.telemetry.report import report_lines
from repro.telemetry.spans import SpanTracer, read_jsonl


def _tracer() -> SpanTracer:
    t = SpanTracer()
    t.add_span("grid.run", 0, 5_000_000, cells=2)
    t.add_span("shard.execute", 1_000, 2_000_000, lane="worker-11", spec="a")
    t.add_span("shard.execute", 500, 1_500_000, lane="worker-12", spec="b")
    t.instant("cache.miss", lane="cache", spec="a")
    return t


class TestChromeTrace:
    def test_validates_clean(self):
        assert validate_chrome_trace(harness_chrome_trace(_tracer())) == []

    def test_process_and_lane_tracks(self):
        doc = harness_chrome_trace(_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0] == {"ph": "M", "name": "process_name", "pid": 0,
                           "tid": 0, "args": {"name": "harness"}}
        lane_names = [e["args"]["name"] for e in meta[1:]]
        assert lane_names == ["harness", "worker-11", "worker-12", "cache"]
        # tids are 1..N in first-appearance order; 0 is the process row.
        assert [e["tid"] for e in meta[1:]] == [1, 2, 3, 4]

    def test_spans_become_X_slices_in_us(self):
        doc = harness_chrome_trace(_tracer())
        [grid] = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "grid.run"]
        assert grid["ts"] == 0.0 and grid["dur"] == 5000.0  # ns -> µs
        assert grid["args"] == {"cells": 2}

    def test_instants_become_i_events(self):
        doc = harness_chrome_trace(_tracer())
        [miss] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert miss["s"] == "t" and miss["args"]["spec"] == "a"

    def test_non_scalar_attrs_are_reprd(self):
        t = SpanTracer()
        t.instant("e", payload={"not": "scalar"})
        doc = harness_chrome_trace(t)
        [ev] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert isinstance(ev["args"]["payload"], str)
        assert validate_chrome_trace(doc) == []

    def test_other_data_carries_epoch_and_drops(self):
        t = SpanTracer(capacity=1)
        t.instant("a")
        t.instant("b")
        doc = harness_chrome_trace(t)
        assert doc["otherData"]["dropped"] == 1
        assert doc["otherData"]["wall_epoch_s"] > 0


class TestWriteOutputs:
    def test_all_four_artifacts_written_and_valid(self, tmp_path):
        tel = HarnessTelemetry()
        with tel.span("grid.run", cells=1):
            tel.counter("cells", help="settled", status="ran")
            tel.observe("shard_wall_ns", 12_345, status="ran")
            tel.instant("cache.write", lane="cache")
        paths = tel.write_outputs(str(tmp_path))
        assert set(paths) == {"spans", "prometheus", "metrics_json", "trace"}

        header, records = read_jsonl(paths["spans"])
        assert header["records"] == len(records) == 2

        with open(paths["prometheus"]) as fh:
            assert validate_prometheus_text(fh.read()) == []

        with open(paths["metrics_json"]) as fh:
            snap = json.load(fh)
        assert snap["cells"]["series"][0]["value"] == 1

        with open(paths["trace"]) as fh:
            assert validate_chrome_trace(json.load(fh)) == []

    def test_report_renders_written_directory(self, tmp_path):
        tel = HarnessTelemetry()
        with tel.span("grid.run"):
            tel.counter("cells", status="ran")
        tel.instant("cache.miss", lane="cache")
        tel.write_outputs(str(tmp_path))
        text = "\n".join(report_lines(str(tmp_path)))
        assert "grid.run" in text
        assert "cache.miss" in text
        assert "cells" in text

    def test_report_on_empty_directory_says_so(self, tmp_path):
        text = "\n".join(report_lines(str(tmp_path)))
        assert "no telemetry artifacts" in text
