"""Metrics registry: recording semantics, Prometheus text, validation.

The exposition linter is itself under test here — CI trusts it to
reject malformed snapshots, so it must both pass the registry's own
output and catch seeded violations.
"""

from __future__ import annotations

import pytest

from repro.obs.histograms import Log2Histogram
from repro.telemetry.metrics import MetricsRegistry, validate_prometheus_text


class TestRecording:
    def test_counter_accumulates_per_label_set(self):
        r = MetricsRegistry()
        r.counter("cells", status="ran")
        r.counter("cells", 2, status="ran")
        r.counter("cells", status="cached")
        assert r.counter_value("cells", status="ran") == 3
        assert r.counter_value("cells", status="cached") == 1
        assert r.counter_value("cells", status="failed") == 0

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("cells", -1)

    def test_gauge_takes_latest_value(self):
        r = MetricsRegistry()
        r.gauge("pool_workers", 4)
        r.gauge("pool_workers", 2)
        [series] = r.to_json_dict()["pool_workers"]["series"]
        assert series["value"] == 2

    def test_observe_builds_log2_histogram(self):
        r = MetricsRegistry()
        for v in (100, 1000, 1_000_000):
            r.observe("wall_ns", v, status="ran")
        h = r.histogram("wall_ns", status="ran")
        assert isinstance(h, Log2Histogram)
        assert h.count == 3 and h.total == 1_001_100

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x", 1)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            MetricsRegistry().counter("ok", **{"bad-label": "v"})
        with pytest.raises(ValueError, match="prefix"):
            MetricsRegistry(prefix="0bad")


class TestPrometheusText:
    def _registry(self) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("cells", 3, help="settled cells", status="ran")
        r.gauge("pool_workers", 2, help="pool size")
        for v in (0, 1, 5, 900, 70_000):
            r.observe("wall_ns", v, help="shard wall")
        return r

    def test_own_output_passes_validator(self):
        assert validate_prometheus_text(self._registry().to_prometheus()) == []

    def test_counters_get_total_suffix(self):
        text = self._registry().to_prometheus()
        assert '# TYPE repro_harness_cells counter' in text
        assert 'repro_harness_cells_total{status="ran"} 3' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = self._registry().to_prometheus()
        # 0 -> le="0"; 1 -> le="1"; 5 -> le="7"; 900 -> le="1023";
        # 70_000 -> le="131071"; then +Inf == _count.
        assert 'repro_harness_wall_ns_bucket{le="0"} 1' in text
        assert 'repro_harness_wall_ns_bucket{le="1"} 2' in text
        assert 'repro_harness_wall_ns_bucket{le="7"} 3' in text
        assert 'repro_harness_wall_ns_bucket{le="+Inf"} 5' in text
        assert 'repro_harness_wall_ns_sum 70906' in text
        assert 'repro_harness_wall_ns_count 5' in text

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("c", spec='quo"te\nnl')
        text = r.to_prometheus()
        assert '\\"' in text and "\\n" in text
        assert validate_prometheus_text(text) == []

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestValidator:
    def test_sample_without_type_flagged(self):
        errors = validate_prometheus_text("orphan_metric 3\n")
        assert any("no preceding TYPE" in e for e in errors)

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="3"} 2\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 9\nh_count 5\n"
        )
        assert any("non-cumulative" in e for e in validate_prometheus_text(text))

    def test_missing_inf_bucket_flagged(self):
        text = '# TYPE h histogram\nh_bucket{le="1"} 1\nh_sum 1\nh_count 1\n'
        assert any("+Inf" in e for e in validate_prometheus_text(text))

    def test_non_numeric_value_flagged(self):
        errors = validate_prometheus_text("# TYPE g gauge\ng not_a_number\n")
        assert any("non-numeric" in e for e in errors)


class TestJsonAndMerge:
    def test_json_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("cells", 2, help="h", status="ran")
        snap = r.to_json_dict()
        assert snap == {
            "cells": {
                "type": "counter",
                "help": "h",
                "series": [{"labels": {"status": "ran"}, "value": 2}],
            }
        }

    def test_merge_adds_counters_and_merges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("cells", 2)
        b.counter("cells", 3)
        a.observe("wall_ns", 10)
        b.observe("wall_ns", 1000)
        a.merge(b)
        assert a.counter_value("cells") == 5
        h = a.histogram("wall_ns")
        assert h.count == 2 and h.total == 1010
