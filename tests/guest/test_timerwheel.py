"""Unit and property tests for the hierarchical timer wheel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GuestError
from repro.guest.timerwheel import TimerWheel


class TestBasics:
    def test_empty(self):
        w = TimerWheel()
        assert len(w) == 0
        assert w.next_expiry() is None
        assert w.advance_to(1000) == []

    def test_fire_at_expiry(self):
        w = TimerWheel()
        fired = []
        w.add(5, lambda: fired.append(5))
        out = w.advance_to(10)
        assert [t.expires_jiffies for t in out] == [5]
        for t in out:
            t.callback()
        assert fired == [5]
        assert len(w) == 0

    def test_past_expiry_fires_next_jiffy(self):
        w = TimerWheel(start_jiffies=100)
        t = w.add(50, lambda: None)  # already past
        assert t.expires_jiffies == 101
        assert [x.expires_jiffies for x in w.advance_to(101)] == [101]

    def test_cannot_run_backwards(self):
        w = TimerWheel(start_jiffies=10)
        with pytest.raises(GuestError):
            w.advance_to(5)

    def test_cancel(self):
        w = TimerWheel()
        t = w.add(10, lambda: None)
        assert w.cancel(t) is True
        assert w.cancel(t) is False
        assert w.cancel(None) is False
        assert w.advance_to(20) == []
        assert len(w) == 0

    def test_next_expiry_scans_levels(self):
        w = TimerWheel()
        w.add(100_000, lambda: None)  # deep level
        w.add(3, lambda: None)
        assert w.next_expiry() == 3

    def test_fire_order_across_levels(self):
        w = TimerWheel()
        expiries = [1, 63, 64, 65, 4096, 5000, 262144]
        for e in expiries:
            w.add(e, lambda: None)
        out = w.advance_to(300_000)
        assert [t.expires_jiffies for t in out] == sorted(expiries)

    def test_long_range_timer_cascades_correctly(self):
        """A timer far in the future fires exactly at its jiffy."""
        w = TimerWheel()
        w.add(1_000_000, lambda: None, name="far")
        assert w.advance_to(999_999) == []
        out = w.advance_to(1_000_000)
        assert len(out) == 1 and out[0].expires_jiffies == 1_000_000


class TestProperties:
    @given(deltas=st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_every_timer_fires_exactly_at_expiry(self, deltas):
        """The wheel never fires early and, with per-jiffy stepping,
        never later than the expiry jiffy."""
        w = TimerWheel()
        fired: dict[int, int] = {}

        def make_cb(idx):
            return lambda: None

        expiries = []
        for i, d in enumerate(deltas):
            t = w.add(d, make_cb(i), name=str(i))
            expiries.append(t.expires_jiffies)
        horizon = max(expiries)
        seen = []
        for t in w.advance_to(horizon):
            assert t.expires_jiffies <= w.current_jiffies
            seen.append(t.expires_jiffies)
        assert sorted(seen) == sorted(expiries)
        assert len(w) == 0

    @given(
        start=st.integers(min_value=0, max_value=10**6),
        deltas=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_firing_time_equals_expiry_even_with_offset_start(self, start, deltas):
        w = TimerWheel(start_jiffies=start)
        handles = [w.add(start + d, lambda: None) for d in deltas]
        by_expiry: dict[int, int] = {}
        cur = start
        horizon = max(t.expires_jiffies for t in handles)
        while cur < horizon:
            cur = min(cur + 1, horizon)
            for t in w.advance_to(cur):
                by_expiry.setdefault(t.expires_jiffies, cur)
        for t in handles:
            assert by_expiry[t.expires_jiffies] == t.expires_jiffies

    @given(deltas=st.lists(st.integers(min_value=1, max_value=50_000), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_cancel_half_fires_other_half(self, deltas):
        w = TimerWheel()
        handles = [w.add(d, lambda: None) for d in deltas]
        for h in handles[::2]:
            w.cancel(h)
        expected = sorted(h.expires_jiffies for h in handles[1::2])
        out = w.advance_to(max(deltas) + 1)
        assert sorted(t.expires_jiffies for t in out) == expected
