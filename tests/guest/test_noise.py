"""Tests for background daemon noise, standalone and through
``run_workload`` under all three tick modes."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.runner import run_workload
from repro.guest.noise import daemon_body, install_noise
from repro.sim.timebase import MSEC
from repro.workloads.micro import IdlePeriodWorkload, PingPongWorkload

MODES = list(TickMode)


class TestDaemonBody:
    def test_invalid_parameters_rejected(self):
        class FakeKernel:
            sim = None

        body = daemon_body(FakeKernel(), "s", mean_sleep_ns=0)
        with pytest.raises(ConfigError):
            next(body)
        body = daemon_body(FakeKernel(), "s", burst_cycles=0)
        with pytest.raises(ConfigError):
            next(body)


class TestInstallThroughRunWorkload:
    """``run_workload(noise=True)`` routes through install_noise; the
    daemons must perturb the run without ever blocking completion."""

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_run_completes_with_noise(self, mode):
        wl = PingPongWorkload(rounds=40, work_cycles=30_000)
        m = run_workload(wl, tick_mode=mode, seed=17, noise=True)
        assert m.exec_time_ns > 0

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_noise_adds_wakeups(self, mode):
        """Daemon sleep/wake cycles add idle transitions: an idle-heavy
        workload shows strictly more HLT exits (or at least equal work
        otherwise) with noise on."""
        wl = lambda: IdlePeriodWorkload(2 * MSEC, iterations=20, work_cycles=50_000)
        quiet = run_workload(wl(), tick_mode=mode, seed=23, noise=False, cpuidle=True)
        noisy = run_workload(wl(), tick_mode=mode, seed=23, noise=True, cpuidle=True)
        assert noisy.total_cycles > quiet.total_cycles
        # Periodic mode wakes on the fixed tick either way, so exits can
        # tie there; tickless/paratick pay per-wake timer management.
        if mode is TickMode.PERIODIC:
            assert noisy.total_exits >= quiet.total_exits
        else:
            assert noisy.total_exits > quiet.total_exits

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_noise_is_deterministic_per_seed(self, mode):
        def run(seed):
            return run_workload(
                PingPongWorkload(rounds=30, work_cycles=25_000),
                tick_mode=mode, seed=seed, noise=True,
            ).to_json_dict()

        assert run(29) == run(29)
        assert run(29) != run(30)


class TestInstallDirect:
    def test_daemons_per_vcpu_and_affinity(self):
        """install_noise pins daemons_per_vcpu daemons to every vCPU."""
        from repro.config import MachineSpec, VmSpec
        from repro.guest.kernel import GuestKernel
        from repro.host.kvm import Hypervisor
        from repro.hw.cpu import Machine
        from repro.sim.engine import Simulator

        sim = Simulator(seed=1)
        machine = Machine(sim, MachineSpec())
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(VmSpec(name="vm0", vcpus=2, tick_mode=TickMode.TICKLESS,
                                 pinned_cpus=(0, 1)))
        kernel = GuestKernel(vm)
        tasks = install_noise(kernel, daemons_per_vcpu=2)
        assert len(tasks) == 4
        assert sorted(t.affinity for t in tasks) == [0, 0, 1, 1]
        assert len({t.name for t in tasks}) == 4
