"""Behavioural tests of the three tick policies on the full stack.

These encode the paper's Fig. 1 / Fig. 3 state machines as observable
exit patterns — the core claims the reproduction rests on.
"""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.guest.task import Run, Sleep, Task
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.interrupts import Vector
from repro.sim.timebase import MSEC, SEC, USEC
from tests.integration.helpers import build_stack


def one_run(cycles):
    def body():
        yield Run(cycles)

    return body


def run_with_task(mode, body_factory, *, until=SEC, seed=0, tick_hz=250):
    sim, machine, hv, vm, kernel = build_stack(tick_mode=mode, seed=seed, tick_hz=tick_hz)
    done = []
    if body_factory is not None:
        kernel.add_task(Task("t", body_factory(), affinity=0))
        kernel.task_done_callbacks.append(lambda t: done.append(sim.now))
    hv.start()
    sim.run(until=until)
    return sim, machine, hv, vm, kernel, done


class TestNohzFig1:
    def test_boot_arms_tick_once(self):
        sim, machine, hv, vm, kernel, _ = run_with_task(
            TickMode.TICKLESS, None, until=2 * MSEC
        )
        # Boot: one deadline write; the first idle entry may rewrite.
        assert 1 <= vm.counters.by_tag(ExitTag.TIMER_PROGRAM) <= 2

    def test_active_tick_is_hrtimer_restarted(self):
        """Fig. 1a: handler does tick work then re-arms -> pairs of
        (PREEMPTION_TIMER, MSR_WRITE) exits at f_tick."""
        sim, machine, hv, vm, kernel, done = run_with_task(
            TickMode.TICKLESS, one_run(440_000_000), until=SEC
        )
        ticks = vm.counters.by_reason(ExitReason.PREEMPTION_TIMER)
        # 200ms of work at 250Hz = ~50 ticks.
        assert 40 <= ticks <= 60
        assert vm.counters.by_tag(ExitTag.TIMER_PROGRAM) >= ticks * 0.8

    def test_tick_frequency_parameter_respected(self):
        sim, machine, hv, vm, kernel, done = run_with_task(
            TickMode.TICKLESS, one_run(440_000_000), until=SEC, tick_hz=1000
        )
        ticks = vm.counters.by_reason(ExitReason.PREEMPTION_TIMER)
        assert 160 <= ticks <= 240  # ~200ms at 1000Hz

    def test_idle_entry_stops_tick(self):
        """Fig. 1b: a long-idle guest takes no guest-tick exits."""
        sim, machine, hv, vm, kernel, _ = run_with_task(TickMode.TICKLESS, None)
        assert vm.counters.by_reason(ExitReason.PREEMPTION_TIMER) == 0

    def test_idle_exit_restarts_tick(self):
        """Fig. 1c: after a sleep wake, the tick is re-armed (a
        TIMER_PROGRAM write beyond the boot one)."""

        def body():
            yield Sleep(20 * MSEC)
            yield Run(44_000_000)  # 20ms active: ticks must fire again

        sim, machine, hv, vm, kernel, done = run_with_task(TickMode.TICKLESS, body)
        assert done
        assert vm.counters.by_reason(ExitReason.PREEMPTION_TIMER) >= 3


class TestPeriodic:
    def test_boot_programs_periodic_lapic_once(self):
        sim, machine, hv, vm, kernel, _ = run_with_task(TickMode.PERIODIC, None)
        assert vm.counters.by_tag(ExitTag.TIMER_PROGRAM) == 1  # the TMICT write

    def test_ticks_continue_while_idle(self):
        """§3.1: the defining (bad) property — idle costs ticks."""
        sim, machine, hv, vm, kernel, _ = run_with_task(TickMode.PERIODIC, None)
        assert vm.counters.by_reason(ExitReason.HLT) >= 240

    def test_active_ticks_delivered_via_exits(self):
        sim, machine, hv, vm, kernel, done = run_with_task(
            TickMode.PERIODIC, one_run(440_000_000)
        )
        assert vm.counters.by_tag(ExitTag.TIMER_GUEST_TICK) >= 40

    def test_never_programs_deadline_msr(self):
        """Periodic mode predates deadline timers: no TSC_DEADLINE churn."""
        def body():
            for _ in range(10):
                yield Run(10_000_000)
                yield Sleep(5 * MSEC)

        sim, machine, hv, vm, kernel, done = run_with_task(TickMode.PERIODIC, body)
        assert vm.counters.by_tag(ExitTag.TIMER_PROGRAM) == 1


class TestParatickFig3:
    def test_boot_hypercall(self):
        sim, machine, hv, vm, kernel, _ = run_with_task(TickMode.PARATICK, None, until=MSEC)
        assert vm.counters.by_reason(ExitReason.HYPERCALL) == 1
        assert vm.paratick_enabled

    def test_active_guest_receives_virtual_ticks(self):
        """Fig. 2: ~f_tick vector-235 injections while running."""
        sim, machine, hv, vm, kernel, done = run_with_task(
            TickMode.PARATICK, one_run(440_000_000)
        )
        # ~200ms active at 250Hz.
        assert 40 <= vm.virtual_ticks_injected <= 60

    def test_active_guest_never_programs_tick_timer(self):
        """Fig. 3a: the virtual-tick handler never re-arms hardware."""
        sim, machine, hv, vm, kernel, done = run_with_task(
            TickMode.PARATICK, one_run(440_000_000)
        )
        assert vm.counters.by_tag(ExitTag.TIMER_PROGRAM) == 0

    def test_idle_guest_gets_no_virtual_ticks(self):
        """§4.1: ticks are injected on VM entry; a halted vCPU has no
        entries and must not be woken for ticks."""
        sim, machine, hv, vm, kernel, _ = run_with_task(TickMode.PARATICK, None)
        assert vm.virtual_ticks_injected == 0

    def test_wake_timer_armed_only_when_needed_and_sooner(self):
        """Fig. 3c/§5.2.4: sleep wake-ups arm the deadline; repeated
        idle entries with an armed-and-sooner timer do not rewrite."""

        def body():
            for _ in range(10):
                yield Run(500_000)
                yield Sleep(10 * MSEC)

        sim, machine, hv, vm, kernel, done = run_with_task(TickMode.PARATICK, body)
        assert done
        programs = vm.counters.by_tag(ExitTag.TIMER_PROGRAM)
        assert 1 <= programs <= 13  # ~one arm per sleep, never two

    def test_pending_timer_irq_updates_last_tick(self):
        """Fig. 2 / §5.1: a wake by the guest's own timer counts as the
        tick; no redundant 235 on the same entry."""

        def body():
            for _ in range(20):
                yield Run(500_000)
                yield Sleep(6 * MSEC)  # > tick period: every wake is 'stale'

        sim, machine, hv, vm, kernel, done = run_with_task(TickMode.PARATICK, body)
        # Wakes are LOCAL_TIMER-pending entries -> last_tick updated, so
        # virtual ticks only cover the brief active windows (few).
        assert vm.virtual_ticks_injected <= 22

    def test_stray_virtual_tick_rejected_in_other_modes(self):
        """§5.2.1: ticks arriving outside paratick mode are ignored."""
        sim, machine, hv, vm, kernel, _ = run_with_task(TickMode.TICKLESS, None, until=MSEC)
        vcpu = vm.vcpus[0]
        vcpu.exec.deliver(Vector.PARATICK_VIRTUAL_TICK, ExitTag.OTHER)
        sim.run(until=10 * MSEC)  # must not crash; handler ignores it

    def test_paratick_timer_exits_never_exceed_tickless(self):
        """§4.2's guarantee, on a mixed workload."""

        def body():
            for _ in range(30):
                yield Run(2_000_000)
                yield Sleep(3 * MSEC)

        *_, vm_nohz, k1, d1 = run_with_task(TickMode.TICKLESS, body)[2:5], None, None
        sim, machine, hv, vm_nohz, kernel, done = run_with_task(TickMode.TICKLESS, body)
        sim2, m2, h2, vm_para, k2, done2 = run_with_task(TickMode.PARATICK, body)
        assert done and done2
        assert vm_para.counters.timer_related <= vm_nohz.counters.timer_related


class TestAppHrtimers:
    """nanosleep-style precise timers are *not* paravirtualized."""

    def test_precise_sleep_is_precise(self):
        for mode in (TickMode.TICKLESS, TickMode.PARATICK):
            def body():
                yield Sleep(700 * USEC, precise=True)

            sim, machine, hv, vm, kernel, done = run_with_task(mode, body)
            assert done
            # Wake within ~100us of the requested time (boot + syscall
            # costs included), far below the 4ms jiffy.
            assert 700 * USEC <= done[0] <= 2 * MSEC, mode

    def test_periodic_mode_degrades_to_jiffies(self):
        def body():
            yield Sleep(700 * USEC, precise=True)

        sim, machine, hv, vm, kernel, done = run_with_task(TickMode.PERIODIC, body)
        assert done
        assert done[0] >= 4 * MSEC  # low-res timers: next tick boundary

    def test_paratick_still_programs_app_timers(self):
        """Paratick removes the tick, not application hrtimers."""

        def body():
            for _ in range(5):
                yield Run(200_000)
                yield Sleep(300 * USEC, precise=True)

        sim, machine, hv, vm, kernel, done = run_with_task(TickMode.PARATICK, body)
        assert done
        assert vm.counters.by_tag(ExitTag.TIMER_PROGRAM) >= 5
