"""Unit tests for the RCU model, sync primitives and the guest scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GuestError
from repro.guest.rcu import Rcu
from repro.guest.sched import GuestScheduler, RunQueue
from repro.guest.sync import Barrier, BoundedQueue, CondVar, Mutex
from repro.guest.task import Task, TaskState


def dummy_task(name="t", affinity=0):
    def body():
        yield None

    return Task(name, body(), affinity)


class TestRcu:
    def test_callback_after_grace_period(self):
        rcu = Rcu(1, ops_per_callback=1)
        rcu.note_update_op(0)
        assert rcu.needs_cpu(0)
        assert rcu.take_ready(0) == 0
        rcu.note_quiescent_state(0)
        assert rcu.take_ready(0) == 0  # only one QS so far
        rcu.note_quiescent_state(0)
        assert rcu.take_ready(0) == 1
        assert not rcu.needs_cpu(0)

    def test_rate_control(self):
        rcu = Rcu(1, ops_per_callback=4)
        for _ in range(12):
            rcu.note_update_op(0)
        assert rcu.pending(0) == 3

    def test_per_vcpu_isolation(self):
        rcu = Rcu(2, ops_per_callback=1)
        rcu.note_update_op(0)
        assert rcu.needs_cpu(0)
        assert not rcu.needs_cpu(1)
        rcu.note_quiescent_state(1)
        rcu.note_quiescent_state(1)
        assert rcu.take_ready(1) == 0
        assert rcu.pending(0) == 1

    def test_stats(self):
        rcu = Rcu(1, ops_per_callback=1)
        for _ in range(3):
            rcu.note_update_op(0)
        for _ in range(4):
            rcu.note_quiescent_state(0)
        rcu.take_ready(0)
        s = rcu.stats()
        assert s["enqueued"] == 3
        assert s["invoked"] == 3

    def test_invalid_args(self):
        with pytest.raises(GuestError):
            Rcu(0)
        with pytest.raises(GuestError):
            Rcu(1, ops_per_callback=0)

    @given(ops=st.integers(min_value=0, max_value=500), qs=st.integers(min_value=0, max_value=20))
    @settings(max_examples=50)
    def test_property_conservation(self, ops, qs):
        """enqueued == invoked + still-pending, always."""
        rcu = Rcu(1, ops_per_callback=3)
        invoked = 0
        for i in range(ops):
            rcu.note_update_op(0)
            if i % 5 == 0:
                for _ in range(qs):
                    rcu.note_quiescent_state(0)
                invoked += rcu.take_ready(0)
        s = rcu.stats()
        assert s["enqueued"] == invoked + rcu.pending(0)


class TestMutex:
    def test_uncontended(self):
        m = Mutex()
        a = dummy_task("a")
        assert m.try_lock(a)
        assert m.owner is a
        assert m.unlock(a) is None
        assert m.owner is None

    def test_contended_handoff(self):
        m = Mutex()
        a, b = dummy_task("a"), dummy_task("b")
        assert m.try_lock(a)
        assert not m.try_lock(b)
        woken = m.unlock(a)
        assert woken is b
        assert m.owner is b  # ownership handed off directly

    def test_double_lock_detected(self):
        m = Mutex()
        a = dummy_task("a")
        m.try_lock(a)
        with pytest.raises(GuestError):
            m.try_lock(a)

    def test_unlock_by_non_owner_detected(self):
        m = Mutex()
        a, b = dummy_task("a"), dummy_task("b")
        m.try_lock(a)
        with pytest.raises(GuestError):
            m.unlock(b)

    def test_fifo_waiters(self):
        m = Mutex()
        a, b, c = (dummy_task(x) for x in "abc")
        m.try_lock(a)
        m.try_lock(b)
        m.try_lock(c)
        assert m.unlock(a) is b
        assert m.unlock(b) is c
        assert m.contended_acquires == 2


class TestBarrier:
    def test_last_arriver_wakes_all(self):
        bar = Barrier(3)
        a, b, c = (dummy_task(x) for x in "abc")
        assert bar.arrive(a) == []
        assert bar.arrive(b) == []
        woken = bar.arrive(c)
        assert woken == [a, b]
        assert bar.generations == 1

    def test_cyclic_reuse(self):
        bar = Barrier(2)
        a, b = dummy_task("a"), dummy_task("b")
        for _ in range(5):
            assert bar.arrive(a) == []
            assert bar.arrive(b) == [a]
        assert bar.generations == 5

    def test_double_arrival_detected(self):
        bar = Barrier(3)
        a = dummy_task("a")
        bar.arrive(a)
        with pytest.raises(GuestError):
            bar.arrive(a)

    def test_single_party_never_blocks(self):
        bar = Barrier(1)
        assert bar.arrive(dummy_task()) == []


class TestCondVar:
    def test_wait_then_signal(self):
        cv = CondVar()
        a = dummy_task("a")
        assert cv.wait(a) is True
        assert cv.take(1) == [a]

    def test_signal_before_wait_banks_permit(self):
        """The lost-wakeup guard: early signals are not dropped."""
        cv = CondVar()
        assert cv.take(1) == []
        assert cv.permits == 1
        a = dummy_task("a")
        assert cv.wait(a) is False  # consumed the permit, no block
        assert cv.permits == 0

    def test_broadcast_does_not_bank(self):
        cv = CondVar()
        cv.take(-1)
        assert cv.permits == 0

    def test_broadcast_wakes_all(self):
        cv = CondVar()
        tasks = [dummy_task(str(i)) for i in range(4)]
        for t in tasks:
            cv.wait(t)
        assert cv.take(-1) == tasks

    def test_partial_signal(self):
        cv = CondVar()
        tasks = [dummy_task(str(i)) for i in range(3)]
        for t in tasks:
            cv.wait(t)
        assert cv.take(2) == tasks[:2]
        assert cv.waiters[0] is tasks[2]


class TestBoundedQueue:
    def test_put_get_no_blocking(self):
        q = BoundedQueue(2)
        p, c = dummy_task("p"), dummy_task("c")
        assert q.put(p, "x") == (False, None)
        blocked, item, wake = q.get(c)
        assert (blocked, item, wake) == (False, "x", None)

    def test_get_blocks_when_empty(self):
        q = BoundedQueue(2)
        c = dummy_task("c")
        blocked, item, wake = q.get(c)
        assert blocked and item is None and wake is None

    def test_put_wakes_blocked_getter_with_item(self):
        q = BoundedQueue(2)
        p, c = dummy_task("p"), dummy_task("c")
        q.get(c)
        blocked, wake = q.put(p, "v")
        assert not blocked and wake is c
        assert c.pending_value == "v"

    def test_put_blocks_when_full_and_handoff(self):
        q = BoundedQueue(1)
        p1, p2, c = dummy_task("p1"), dummy_task("p2"), dummy_task("c")
        assert q.put(p1, 1) == (False, None)
        blocked, wake = q.put(p2, 2)
        assert blocked and wake is None
        blocked, item, wake = q.get(c)
        assert not blocked and item == 1 and wake is p2
        # p2's pending item moved into the queue.
        blocked, item, _ = q.get(c)
        assert not blocked and item == 2

    def test_capacity_positive(self):
        with pytest.raises(GuestError):
            BoundedQueue(0)

    @given(ops=st.lists(st.sampled_from(["put", "get"]), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_property_fifo_and_conservation(self, ops):
        """Items come out in the order they went in; nothing is lost."""
        q = BoundedQueue(3)
        produced, consumed = [], []
        seq = 0
        for op in ops:
            t = dummy_task(op)
            if op == "put":
                blocked, wake = q.put(t, seq)
                produced.append(seq)  # blocked puts hand off later
                if wake is not None and wake.pending_value is not None:
                    consumed.append(wake.pending_value)
                seq += 1
            else:
                blocked, item, wake = q.get(t)
                if not blocked:
                    consumed.append(item)
        assert consumed == sorted(consumed)
        assert set(consumed) <= set(produced)


class TestGuestScheduler:
    def make(self, nvcpus=2):
        resched, done = [], []
        s = GuestScheduler(nvcpus, resched.append, done.append)
        return s, resched, done

    def test_add_and_pick(self):
        s, _, _ = self.make()
        t = dummy_task("t", affinity=1)
        s.add_task(t)
        assert s.runnable_waiting(1) == 1
        assert s.pick_next(1) is t
        assert t.state is TaskState.RUNNING
        assert s.current(1) is t

    def test_affinity_bounds_checked(self):
        s, _, _ = self.make(nvcpus=1)
        with pytest.raises(GuestError):
            s.add_task(dummy_task("t", affinity=3))

    def test_block_and_wake_notifies(self):
        s, resched, _ = self.make()
        t = dummy_task("t", affinity=0)
        s.add_task(t)
        s.pick_next(0)
        blocked = s.block_current(0, "x")
        assert blocked is t and t.state is TaskState.BLOCKED
        assert t.wait_reason == "x"
        s.wake(t)
        assert t.state is TaskState.RUNNABLE
        assert resched == [0]

    def test_wake_done_task_is_noop(self):
        s, resched, _ = self.make()
        t = dummy_task("t")
        t.state = TaskState.DONE
        s.wake(t)
        assert resched == []

    def test_wake_runnable_task_rejected(self):
        s, _, _ = self.make()
        t = dummy_task("t")
        s.add_task(t)
        with pytest.raises(GuestError):
            s.wake(t)

    def test_preempt_round_robin(self):
        s, _, _ = self.make(nvcpus=1)
        a, b = dummy_task("a"), dummy_task("b")
        s.add_task(a)
        s.add_task(b)
        assert s.pick_next(0) is a
        s.preempt_current(0)
        assert s.pick_next(0) is b
        s.preempt_current(0)
        assert s.pick_next(0) is a

    def test_finish_fires_callback(self):
        s, _, done = self.make()
        t = dummy_task("t")
        s.add_task(t)
        s.pick_next(0)
        s.finish_current(0)
        assert done == [t]
        assert t.state is TaskState.DONE
        assert s.alive_tasks() == 0

    def test_double_pick_rejected(self):
        s, _, _ = self.make()
        s.add_task(dummy_task("a"))
        s.add_task(dummy_task("b"))
        s.pick_next(0)
        with pytest.raises(GuestError):
            s.pick_next(0)
