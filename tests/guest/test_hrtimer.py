"""Unit and property tests for the guest hrtimer queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GuestError
from repro.guest.hrtimer import HrtimerQueue


class TestBasics:
    def test_empty_queue(self):
        q = HrtimerQueue()
        assert len(q) == 0
        assert q.next_expiry() is None
        assert q.pop_expired(10**12) == []

    def test_add_and_next_expiry(self):
        q = HrtimerQueue()
        q.add(500, lambda: None, name="a")
        q.add(100, lambda: None, name="b")
        q.add(900, lambda: None, name="c")
        assert q.next_expiry() == 100
        assert len(q) == 3

    def test_negative_expiry_rejected(self):
        with pytest.raises(GuestError):
            HrtimerQueue().add(-1, lambda: None)

    def test_pop_expired_in_order(self):
        q = HrtimerQueue()
        for t in (300, 100, 200, 400):
            q.add(t, lambda: None, name=str(t))
        out = q.pop_expired(300)
        assert [t.expires_ns for t in out] == [100, 200, 300]
        assert q.next_expiry() == 400
        assert len(q) == 1

    def test_pop_expired_ties_fifo(self):
        q = HrtimerQueue()
        a = q.add(100, lambda: None, name="first")
        b = q.add(100, lambda: None, name="second")
        out = q.pop_expired(100)
        assert out == [a, b]

    def test_cancel(self):
        q = HrtimerQueue()
        t = q.add(100, lambda: None)
        assert q.cancel(t) is True
        assert q.cancel(t) is False  # idempotent
        assert q.cancel(None) is False
        assert q.next_expiry() is None
        assert q.pop_expired(200) == []

    def test_cancelled_timer_not_counted(self):
        q = HrtimerQueue()
        t = q.add(100, lambda: None)
        q.add(200, lambda: None)
        q.cancel(t)
        assert len(q) == 1
        assert q.next_expiry() == 200

    def test_pending_names(self):
        q = HrtimerQueue()
        q.add(10, lambda: None, name="tick")
        t = q.add(20, lambda: None, name="wake")
        q.cancel(t)
        assert q.pending_names() == ["tick"]

    def test_callbacks_preserved(self):
        q = HrtimerQueue()
        fired = []
        q.add(5, lambda: fired.append("x"), name="x")
        for timer in q.pop_expired(5):
            timer.callback()
        assert fired == ["x"]


class TestProperties:
    @given(expiries=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_pop_expired_is_sorted_and_complete(self, expiries):
        q = HrtimerQueue()
        for e in expiries:
            q.add(e, lambda: None)
        cutoff = sorted(expiries)[len(expiries) // 2]
        out = q.pop_expired(cutoff)
        got = [t.expires_ns for t in out]
        assert got == sorted(e for e in expiries if e <= cutoff)
        assert len(q) == sum(1 for e in expiries if e > cutoff)

    @given(
        expiries=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=50),
        cancel_idx=st.data(),
    )
    @settings(max_examples=50)
    def test_cancel_then_next_expiry_consistent(self, expiries, cancel_idx):
        q = HrtimerQueue()
        handles = [q.add(e, lambda: None) for e in expiries]
        i = cancel_idx.draw(st.integers(min_value=0, max_value=len(handles) - 1))
        q.cancel(handles[i])
        alive = [e for j, e in enumerate(expiries) if j != i]
        assert q.next_expiry() == min(alive)
