"""Tests for the cpuidle (C-state) model and the energy estimator."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.runner import run_workload
from repro.guest.cpuidle import C1, C1E, C3, C6, C_STATES, CState, MenuGovernor
from repro.metrics.energy import EnergyModel, estimate_energy
from repro.sim.timebase import MSEC, SEC, USEC
from repro.workloads.micro import IdlePeriodWorkload, IdleWorkload


class TestGovernor:
    def test_no_timer_picks_deepest(self):
        assert MenuGovernor().select(None) is C6

    def test_short_idle_picks_shallow(self):
        assert MenuGovernor().select(5 * USEC) is C1

    def test_residency_thresholds(self):
        g = MenuGovernor()
        assert g.select(50 * USEC) is C1E
        assert g.select(150 * USEC) is C3
        assert g.select(2 * MSEC) is C6

    def test_zero_predicted_still_returns_a_state(self):
        assert MenuGovernor().select(0) is C_STATES[0]

    def test_states_validated(self):
        with pytest.raises(ConfigError):
            CState("bad", -1, 0, 0.5)
        with pytest.raises(ConfigError):
            CState("bad", 0, 0, 1.5)
        with pytest.raises(ConfigError):
            MenuGovernor(())


class TestCpuidleIntegration:
    def run_idle_period(self, idle_ns, *, mode=TickMode.TICKLESS):
        return run_workload(
            IdlePeriodWorkload(idle_ns, iterations=40, work_cycles=500_000),
            tick_mode=mode,
            seed=6,
            noise=False,
            cpuidle=True,
        )

    def test_residency_recorded_per_state(self):
        m = self.run_idle_period(20 * MSEC)
        cstate_keys = [k for k in m.extra if k.startswith("cstate_")]
        assert cstate_keys, "no residency recorded"
        total = sum(m.extra[k] for k in cstate_keys)
        # Most of the 40 x 20ms of idle shows up as residency.
        assert total >= 0.6 * 40 * 20 * MSEC

    def test_short_idles_use_shallow_states(self):
        """Sub-ms sleeps cannot reach C6."""
        m = self.run_idle_period(300 * USEC)
        assert m.extra.get("cstate_C6_ns", 0) == 0
        shallow = m.extra.get("cstate_C1E_ns", 0) + m.extra.get("cstate_C3_ns", 0) + m.extra.get("cstate_C1_ns", 0)
        assert shallow > 0

    def test_long_idles_reach_deep_states(self):
        m = self.run_idle_period(20 * MSEC)
        assert m.extra.get("cstate_C6_ns", 0) > 0

    def test_deep_states_slow_wakeups(self):
        """Exit latency shows: same workload runs longer with cpuidle on."""
        base = run_workload(
            IdlePeriodWorkload(20 * MSEC, iterations=40, work_cycles=500_000),
            tick_mode=TickMode.TICKLESS, seed=6, noise=False, cpuidle=False,
        )
        deep = self.run_idle_period(20 * MSEC)
        assert deep.exec_time_ns > base.exec_time_ns

    def test_cpuidle_off_records_nothing(self):
        m = run_workload(
            IdlePeriodWorkload(5 * MSEC, iterations=10), seed=1, cpuidle=False, noise=False
        )
        assert not [k for k in m.extra if k.startswith("cstate_")]


class TestEnergyModel:
    def test_idle_vm_energy_breakdown(self):
        m = run_workload(IdleWorkload(vcpus=2), tick_mode=TickMode.TICKLESS,
                         noise=False, cpuidle=True, horizon_ns=SEC)
        e = estimate_energy(m)
        # Nearly everything is C-state residency at deep-state power.
        assert e.cstate_j > 0
        assert e.cstate_j < 2 * 1.0 * 10.0 * 0.05 * 1.5  # ~C6 power bound
        assert e.active_j < 0.1 * e.total_j + 0.1

    def test_busy_vm_energy_mostly_active(self):
        from repro.workloads.parsec import benchmark

        m = run_workload(benchmark("swaptions", target_cycles=110_000_000),
                         seed=2, noise=False, cpuidle=True)
        e = estimate_energy(m)
        assert e.active_j > 0.8 * e.total_j

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            EnergyModel(active_power_w=0)
        with pytest.raises(ConfigError):
            EnergyModel(default_idle_fraction=2.0)

    def test_scaling_with_power(self):
        m = run_workload(IdleWorkload(vcpus=1), noise=False, cpuidle=True, horizon_ns=SEC // 2)
        lo = estimate_energy(m, model=EnergyModel(active_power_w=5.0))
        hi = estimate_energy(m, model=EnergyModel(active_power_w=20.0))
        assert hi.total_j == pytest.approx(4 * lo.total_j, rel=0.01)
