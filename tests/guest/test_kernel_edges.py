"""Edge-case tests of the guest kernel and op layer."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.errors import GuestError
from repro.guest import ops as gops
from repro.guest.noise import install_noise
from repro.guest.task import BlockRead, NetRequest, Run, Task
from repro.hw.cpu import CycleDomain
from repro.sim.timebase import MSEC, SEC
from tests.integration.helpers import build_stack


class TestOpsValidation:
    def test_compute_rejects_negative(self):
        with pytest.raises(GuestError):
            gops.Compute(-1)

    def test_compute_rejects_host_domain(self):
        with pytest.raises(GuestError):
            gops.Compute(10, CycleDomain.HOST_HANDLER)

    def test_pause_positive(self):
        with pytest.raises(GuestError):
            gops.Pause(0)

    def test_reprs_are_informative(self):
        assert "Compute" in repr(gops.Compute(5))
        assert "Wrmsr" in repr(gops.Wrmsr(0x6E0, 1))
        assert "Hlt" in repr(gops.Hlt())
        assert "Fault" in repr(gops.Fault())


class TestKernelWiring:
    def test_io_without_device_raises(self):
        sim, machine, hv, vm, kernel = build_stack()

        def body():
            yield BlockRead(4096)

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        with pytest.raises(GuestError):
            sim.run(until=SEC)

    def test_net_without_nic_raises(self):
        sim, machine, hv, vm, kernel = build_stack()

        def body():
            yield NetRequest(1024)

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        with pytest.raises(GuestError):
            sim.run(until=SEC)

    def test_double_device_attach_rejected(self):
        sim, machine, hv, vm, kernel = build_stack()
        kernel.attach_block_device(object())
        with pytest.raises(GuestError):
            kernel.attach_block_device(object())

    def test_double_kernel_attach_rejected(self):
        from repro.errors import HostError
        from repro.guest.kernel import GuestKernel

        sim, machine, hv, vm, kernel = build_stack()
        with pytest.raises(HostError):
            GuestKernel(vm)

    def test_unknown_task_op_rejected(self):
        sim, machine, hv, vm, kernel = build_stack()

        def body():
            yield "not an op"

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        with pytest.raises(GuestError):
            sim.run(until=SEC)

    def test_stop_shuts_executors_down(self):
        from repro.host.vcpu import VcpuState

        sim, machine, hv, vm, kernel = build_stack()

        def body():
            while True:
                yield Run(1_000_000)

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        sim.schedule(10 * MSEC, kernel.stop)
        sim.run(until=SEC)
        assert vm.vcpus[0].state is VcpuState.OFF
        # Once off, time passes without any further busy accounting.
        busy = machine.cpu(0).busy_ns()
        assert busy <= 30 * MSEC

    def test_spawn_external_wakes_halted_vcpu(self):
        sim, machine, hv, vm, kernel = build_stack()
        done = []
        hv.start()
        sim.run(until=100 * MSEC)  # VM is idle/halted now

        def body():
            yield Run(1_000_000)

        t = Task("late", body(), affinity=0)
        kernel.task_done_callbacks.append(lambda task: done.append(sim.now))
        kernel.spawn_external(t)
        sim.run(until=SEC)
        assert done and done[0] < 200 * MSEC


class TestPreemptionAccounting:
    def test_interrupted_compute_accounts_exactly_once(self):
        """A compute op split by interrupts books exactly its duration
        in GUEST_USER regardless of how many times it was preempted."""
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS, seed=3)
        work = 110_000_000  # 50ms: split by many host ticks and guest ticks
        done = []

        def body():
            yield Run(work)

        kernel.add_task(Task("t", body(), affinity=0))
        kernel.task_done_callbacks.append(lambda t: done.append(sim.now))
        hv.start()
        sim.run(until=SEC)
        assert done
        user_ns = machine.cpu(0).busy_ns(CycleDomain.GUEST_USER)
        expected_ns = machine.clock.cycles_to_ns(work)
        # Noise daemons add a little GUEST_USER of their own.
        assert expected_ns <= user_ns <= expected_ns * 1.02 + 2 * MSEC

    def test_on_done_fires_exactly_once_despite_preemption(self):
        sim, machine, hv, vm, kernel = build_stack(seed=4)
        fired = []
        # Long kernel compute with an on_done, delivered via the op API.
        kernel.push(0, gops.Compute(44_000_000, CycleDomain.GUEST_KERNEL,
                                    on_done=lambda: fired.append(sim.now)))
        hv.start()
        sim.run(until=SEC)
        assert len(fired) == 1


class TestNoise:
    def test_install_noise_adds_daemons_per_vcpu(self):
        sim, machine, hv, vm, kernel = build_stack(vcpus=2)
        tasks = install_noise(kernel, daemons_per_vcpu=3)
        assert len(tasks) == 6
        assert {t.affinity for t in tasks} == {0, 1}

    def test_noise_generates_idle_transitions(self):
        from repro.host.exitreasons import ExitReason

        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS)
        install_noise(kernel)
        hv.start()
        sim.run(until=SEC)
        # ~20 wakeups/s -> HLT exits in that order of magnitude.
        assert 5 <= vm.counters.by_reason(ExitReason.HLT) <= 120

    def test_noise_parameters_validated(self):
        from repro.errors import ConfigError
        from repro.guest.noise import daemon_body

        sim, machine, hv, vm, kernel = build_stack()
        with pytest.raises(ConfigError):
            next(daemon_body(kernel, "s", mean_sleep_ns=0))
