"""Differential fuzz sweep + unit tests for the fuzz harness.

The sweep runs 20 seeds, each expanded into a random scenario and
executed under all three tick modes in both solo and overcommitted
placements (120 sanitized runs total). Any failing seed is reported
with a ready-to-paste replay command.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.fuzz import (
    OVERCOMMIT,
    SOLO,
    USEFUL_ABS_SLACK,
    differential_problems,
    fuzz_many,
    fuzz_seed,
    placement_for,
    run_scenario,
    scenario_for_seed,
)
from repro.config import TickMode
from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics

SWEEP_SEEDS = range(20)


class TestScenarioGeneration:
    def test_deterministic(self):
        assert scenario_for_seed(42) == scenario_for_seed(42)

    def test_seeds_vary(self):
        scenarios = {scenario_for_seed(s) for s in SWEEP_SEEDS}
        assert len(scenarios) == len(SWEEP_SEEDS)

    def test_sweep_covers_multiple_workload_kinds(self):
        kinds = {scenario_for_seed(s).kind for s in SWEEP_SEEDS}
        assert len(kinds) >= 3, f"seed window too homogeneous: {kinds}"

    def test_workload_is_fresh_each_time(self):
        sc = scenario_for_seed(3)
        assert sc.make_workload() is not sc.make_workload()

    def test_describe_mentions_seed_and_kind(self):
        sc = scenario_for_seed(7)
        assert f"seed {sc.seed}" in sc.describe()
        assert sc.kind in sc.describe()


class TestPlacement:
    def test_solo_is_one_to_one(self):
        spec, pinned = placement_for(4, SOLO)
        assert spec.total_cpus == 4
        assert pinned == (0, 1, 2, 3)

    def test_overcommit_drops_one_pcpu(self):
        spec, pinned = placement_for(4, OVERCOMMIT)
        assert spec.total_cpus == 3
        assert pinned == (0, 1, 2, 0)

    def test_overcommit_single_vcpu_keeps_one_pcpu(self):
        spec, pinned = placement_for(1, OVERCOMMIT)
        assert spec.total_cpus == 1
        assert pinned == (0,)


def fake_metrics(useful: int) -> RunMetrics:
    return RunMetrics(
        label="fake", exec_time_ns=1, total_cycles=useful,
        useful_cycles=useful, overhead_cycles=0,
        exits=ExitCounters(), ledger={},
    )


class TestDifferentialComparison:
    def base(self, useful=100_000_000):
        return {mode: fake_metrics(useful) for mode in TickMode}

    def test_identical_work_is_clean(self):
        assert differential_problems(self.base()) == []

    def test_divergence_is_reported(self):
        per_mode = self.base()
        per_mode[TickMode.PERIODIC] = fake_metrics(80_000_000)
        problems = differential_problems(per_mode)
        assert len(problems) == 1
        assert "periodic" in problems[0]
        assert "diverge" in problems[0]

    def test_within_tolerance_is_clean(self):
        per_mode = self.base()
        per_mode[TickMode.PARATICK] = fake_metrics(101_000_000)  # +1%
        assert differential_problems(per_mode) == []

    def test_abs_slack_covers_tiny_runs(self):
        per_mode = self.base(useful=1000)
        per_mode[TickMode.PERIODIC] = fake_metrics(1000 + USEFUL_ABS_SLACK)
        assert differential_problems(per_mode) == []

    def test_missing_mode_skips_comparison(self):
        per_mode = self.base()
        del per_mode[TickMode.PERIODIC]
        assert differential_problems(per_mode) == []


class TestSingleRuns:
    def test_run_failure_is_reported_not_raised(self):
        sc = dataclasses.replace(scenario_for_seed(0), kind="pingpong",
                                 params=(("rounds", 10), ("work_cycles", 50_000),
                                         ("same_vcpu", 0)),
                                 horizon_ns=1)  # too short: workload can't finish
        metrics, sanitizer, problems = run_scenario(sc, TickMode.TICKLESS)
        assert metrics is None
        assert problems and "run failed" in problems[0]

    def test_report_labels_failing_cell(self):
        sc = scenario_for_seed(0)
        report = fuzz_seed(0, placements=(SOLO,))
        assert report.scenario == sc
        assert report.runs == len(TickMode)
        assert report.events > 0


@pytest.mark.slow
def test_fuzz_sweep_is_clean():
    """20 seeds x 3 tick modes x {solo, overcommitted}, all sanitized."""
    reports = fuzz_many(SWEEP_SEEDS)
    failing = {r.seed: r.problems for r in reports if not r.ok}
    detail = "\n".join(
        f"  seed {seed}: {problems[0]}" + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else "")
        for seed, problems in sorted(failing.items())
    )
    replay = " ".join(str(s) for s in sorted(failing))
    assert not failing, (
        f"fuzz sweep found violations in seeds {sorted(failing)}:\n{detail}\n"
        f"replay with: python -m repro fuzz --seed-list {replay}"
    )
    assert sum(r.runs for r in reports) == len(SWEEP_SEEDS) * len(TickMode) * 2
