"""Mutation self-tests for the CNTV (ARM generic timer) checker.

Same discipline as ``test_checkers.py``: each test breaks exactly one
invariant of the trapped-write → deadline → vtimer-IRQ pairing in a
synthetic stream and asserts that precisely the ``cntv`` checker fires.
The legal streams mirror what :class:`repro.hw.arm.ArmTimerHardware`
actually emits: first arm is CVAL then CTL=1 (two traps), steady-state
re-arm is a lone CVAL write, disarm is CTL=0, and every trap applies
synchronously as a ``deadline_set``/``deadline_clear`` at the same
instant.
"""

from __future__ import annotations

from repro.analysis.checkers import TickSanitizer

VCPU = "vm0/vcpu0"


def run_stream(records, mode=None) -> TickSanitizer:
    sanitizer = TickSanitizer(mode=mode)
    for time, source, kind, detail in records:
        sanitizer.emit(time, source, kind, detail)
    sanitizer.finish()
    return sanitizer


def firing(sanitizer) -> set[str]:
    return {v.checker for v in sanitizer.violations}


# The canonical ARM arm/re-arm/disarm/fire cycle, exactly as the
# backend traces it.
FIRST_ARM = [
    (0, VCPU, "cntv_cval", 100),          # CVAL latched, ENABLE still clear
    (1, VCPU, "cntv_ctl", 1),             # ENABLE set ...
    (1, VCPU, "deadline_set", 100),       # ... applies the latched CVAL
]
STEADY_REARM = [
    (120, VCPU, "cntv_cval", 300),        # lone CVAL write while enabled ...
    (120, VCPU, "deadline_set", 300),     # ... applies at the same instant
]
DISARM = [
    (150, VCPU, "cntv_ctl", 0),
    (150, VCPU, "deadline_clear", None),
]


class TestLegalStreams:
    def test_full_cycle_is_clean(self):
        fire = [(100, VCPU, "vmexit", ("vtimer_irq", "timer_guest_tick"))]
        s = run_stream(FIRST_ARM + fire + STEADY_REARM + DISARM)
        assert s.violations == []
        cntv = next(c for c in s.checkers if c.name == "cntv")
        assert cntv.seen > 0

    def test_disarm_while_idle_is_legal(self):
        s = run_stream([
            (0, VCPU, "cntv_ctl", 0),
            (0, VCPU, "deadline_clear", None),
        ])
        assert s.violations == []

    def test_backstop_fire_needs_no_armed_vtimer(self):
        """A TIMER_HOST_TICK vtimer exit is the paratick rate-adaptation
        backstop — it exists to inject a virtual tick, not to deliver a
        guest deadline, so no armed CVAL is required."""
        s = run_stream(FIRST_ARM + DISARM + [
            (200, VCPU, "vmexit", ("vtimer_irq", "timer_host_tick")),
        ])
        assert s.violations == []

    def test_x86_stream_never_engages_the_checker(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (100, VCPU, "deadline_fire", (100, "ptimer")),
        ])
        assert s.violations == []
        cntv = next(c for c in s.checkers if c.name == "cntv")
        assert cntv.seen == 0


class TestTrapApplicationMutations:
    def test_enabled_cval_write_never_applied(self):
        s = run_stream(FIRST_ARM + [(120, VCPU, "cntv_cval", 300)])
        assert firing(s) == {"cntv"}

    def test_applied_value_mismatch(self):
        s = run_stream(FIRST_ARM + [
            (120, VCPU, "cntv_cval", 300),
            (120, VCPU, "deadline_set", 999),  # KVM programmed the wrong expiry
        ])
        assert firing(s) == {"cntv"}

    def test_applied_at_a_later_instant(self):
        s = run_stream(FIRST_ARM + [
            (120, VCPU, "cntv_cval", 300),
            (125, VCPU, "deadline_set", 300),  # trap handling is synchronous
        ])
        assert firing(s) == {"cntv"}

    def test_disable_applied_as_set(self):
        s = run_stream(FIRST_ARM + [
            (150, VCPU, "cntv_ctl", 0),
            (150, VCPU, "deadline_set", 300),  # expected deadline_clear
        ])
        assert firing(s) == {"cntv"}

    def test_deadline_set_without_any_trap(self):
        s = run_stream(FIRST_ARM + STEADY_REARM + [
            (130, VCPU, "deadline_set", 400),  # nothing else programs the vtimer
        ])
        assert firing(s) == {"cntv"}


class TestEnableMutations:
    def test_double_enable(self):
        """Linux re-arms with a lone CVAL write; a second CTL.ENABLE=1
        while already enabled is a policy bug."""
        s = run_stream(FIRST_ARM + [
            (50, VCPU, "cntv_ctl", 1),
            (50, VCPU, "deadline_set", 100),
        ])
        assert firing(s) == {"cntv"}


class TestFireMutations:
    def test_fire_while_disabled(self):
        s = run_stream(FIRST_ARM + DISARM + [
            (200, VCPU, "vmexit", ("vtimer_irq", "timer_guest_tick")),
        ])
        assert firing(s) == {"cntv"}

    def test_fire_before_cval_expiry(self):
        s = run_stream(FIRST_ARM + [
            (50, VCPU, "vmexit", ("vtimer_irq", "timer_guest_tick")),
        ])
        assert firing(s) == {"cntv"}

    def test_fire_with_enable_but_no_cval(self):
        s = run_stream([
            (0, VCPU, "cntv_ctl", 1),     # ENABLE without ever latching CVAL
            (100, VCPU, "vmexit", ("vtimer_irq", "timer_guest_tick")),
        ])
        assert firing(s) == {"cntv"}


class TestSchemaInteraction:
    def test_malformed_ctl_bit_is_schema_not_cntv(self):
        """A CTL detail outside {0, 1} is a schema violation; the cntv
        checker must skip the malformed record, not model it."""
        s = run_stream([(0, VCPU, "cntv_ctl", 7)])
        assert firing(s) == {"schema"}

    def test_malformed_cval_is_schema_not_cntv(self):
        s = run_stream([(0, VCPU, "cntv_cval", -5)])
        assert firing(s) == {"schema"}


class TestRestoreInteraction:
    def test_stale_cval_after_restore_fires_restore_checker(self):
        """RestoreMonotonicChecker watches ``cntv_cval`` like the other
        arm kinds: a host-translated expiry predating the restore
        instant is a stale deadline surviving the clock jump."""
        s = run_stream([
            (1000, "vm0", "vm_restore", 500_000),
            (1001, VCPU, "cntv_cval", 900),  # expiry before the restore
        ])
        assert firing(s) == {"restore-rearm"}
