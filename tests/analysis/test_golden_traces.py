"""Golden event-sequence tests for the paper's figures.

Fig. 1 (tickless): entering idle stops the guest tick and reprograms the
deadline timer; leaving idle restarts the tick — each transition costing
an extra MSR-write VM exit.  Fig. 3 (paratick): the host virtualizes the
tick during halts, so the idle cycle carries no tick_stop/tick_restart
and exactly one timer reprogram.

The expected sequences below are written out as literal kind lists so a
reader can follow the figure event-by-event.  The scenario is fully
deterministic (fixed seed, noise off, single vCPU), so exact-sequence
comparison is stable.
"""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.experiments.runner import run_workload
from repro.hw.interrupts import Vector
from repro.sim.timebase import USEC
from repro.sim.trace import RingTracer
from repro.workloads.micro import IdlePeriodWorkload


def traced_idle_run(mode: TickMode):
    tracer = RingTracer(capacity=100_000)
    run_workload(
        IdlePeriodWorkload(500 * USEC, iterations=3, work_cycles=100_000),
        tick_mode=mode, seed=1, noise=False, tracer=tracer,
    )
    return list(tracer.records)


def one_idle_cycle(records):
    """Kinds between the first idle_enter and the following idle_enter."""
    starts = [i for i, r in enumerate(records) if r.kind == "idle_enter"]
    assert len(starts) >= 2, "scenario did not produce two idle periods"
    return [r.kind for r in records[starts[0]:starts[1]]]


# Fig. 1: a full tickless idle period.  The guest stops its tick on idle
# entry (tick_stop) and must restart it on exit (tick_restart), paying a
# second timer-reprogram exit before the next work interval even starts.
FIG1_TICKLESS_CYCLE = [
    "idle_enter",
    "tick_stop",            # guest tick switches off for the idle period
    "vcpu_state",           # guest -> exited
    "ptimer_stop",
    "vmexit",               # hlt/idle
    "vcpu_state",           # exited -> halted
    "hostdl_arm",           # host timer carries the guest deadline
    "hostdl_fire",
    "deadline_fire",        # virtual deadline delivered from the host
    "vcpu_state",           # halted -> exited
    "inject",               # LOCAL_TIMER (vector 236)
    "vcpu_state",           # exited -> guest
    "idle_exit",
    "tick_restart",         # tick must be re-armed...
    "timer_program_req",
    "vcpu_state",           # guest -> exited
    "vmexit",               # ...costing an msr_write/timer_program exit
    "deadline_set",
    "vcpu_state",           # exited -> guest
    "ptimer_start",
    "timer_program_req",    # work done: reprogram for the idle deadline
    "vcpu_state",
    "ptimer_stop",
    "vmexit",               # second msr_write/timer_program exit
    "deadline_set",
    "vcpu_state",
    "ptimer_start",
]

# Fig. 3: the same idle period under paratick.  No tick_stop/tick_restart
# pair and a single timer reprogram per cycle — the host keeps the tick
# virtual while the vCPU is halted.
FIG3_PARATICK_CYCLE = [
    "idle_enter",
    "vcpu_state",           # guest -> exited
    "ptimer_stop",
    "vmexit",               # hlt/idle
    "vcpu_state",           # exited -> halted
    "hostdl_arm",
    "hostdl_fire",
    "deadline_fire",
    "vcpu_state",           # halted -> exited
    "inject",               # LOCAL_TIMER (vector 236)
    "vcpu_state",           # exited -> guest
    "idle_exit",            # no tick_restart: the tick never stopped
    "timer_program_req",    # the cycle's only timer reprogram
    "vcpu_state",
    "vmexit",
    "deadline_set",
    "vcpu_state",
    "ptimer_start",
]


class TestFig1TicklessIdle:
    @pytest.fixture(scope="class")
    def records(self):
        return traced_idle_run(TickMode.TICKLESS)

    def test_idle_cycle_matches_figure(self, records):
        assert one_idle_cycle(records) == FIG1_TICKLESS_CYCLE

    def test_boot_arms_the_periodic_tick(self, records):
        assert records[0].kind == "timer_program_req"

    def test_deadline_fires_from_host_while_halted(self, records):
        fire = next(r for r in records if r.kind == "deadline_fire")
        value, origin = fire.detail
        assert origin == "host"

    def test_timer_vector_is_local_timer(self, records):
        vectors = {r.detail[0] for r in records if r.kind == "inject"}
        assert vectors == {int(Vector.LOCAL_TIMER)}


class TestFig3Paratick:
    @pytest.fixture(scope="class")
    def records(self):
        return traced_idle_run(TickMode.PARATICK)

    def test_idle_cycle_matches_figure(self, records):
        assert one_idle_cycle(records) == FIG3_PARATICK_CYCLE

    def test_no_tick_stop_restart_churn(self, records):
        kinds = {r.kind for r in records}
        assert "tick_stop" not in kinds
        assert "tick_restart" not in kinds

    def test_boot_negotiates_paratick_via_hypercall(self, records):
        first_exit = next(r for r in records if r.kind == "vmexit")
        assert first_exit.detail == ("hypercall", "hypercall")


class TestFigureDelta:
    """The quantitative claim behind the figures: paratick removes one
    timer-reprogram exit (and the tick stop/restart churn) per idle period."""

    def count_timer_exits(self, records):
        cycle_records = []
        starts = [i for i, r in enumerate(records) if r.kind == "idle_enter"]
        for r in records[starts[0]:starts[1]]:
            if r.kind == "vmexit" and r.detail == ("msr_write", "timer_program"):
                cycle_records.append(r)
        return len(cycle_records)

    def test_one_fewer_reprogram_exit_per_idle_period(self):
        tickless = self.count_timer_exits(traced_idle_run(TickMode.TICKLESS))
        paratick = self.count_timer_exits(traced_idle_run(TickMode.PARATICK))
        assert tickless == 2
        assert paratick == 1
