"""Reconciliation mutation tests: counters vs trace vs cycle ledger.

Same philosophy as ``test_checkers.py``: start from a consistent run
description, break one accounting relationship, and assert the matching
reconciliation check — and only it — reports the drift.
"""

from __future__ import annotations

from repro.analysis.checkers import TickSanitizer
from repro.analysis.reconcile import (
    check_counters,
    check_ledger,
    check_machine,
    reconcile_exits,
    reconcile_run,
)
from repro.config import MachineSpec
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.cpu import CycleDomain, Machine
from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics
from repro.sim.engine import Simulator
from repro.sim.timebase import CpuClock

FREQ = 2_000_000_000  # even 2 GHz: 1 cycle = 0.5 ns, exact conversions


def make_metrics(*, exits=None, skip_one_count=False) -> RunMetrics:
    """A RunMetrics whose ledger and cycle totals agree by construction."""
    clock = CpuClock(FREQ)
    ledger = {
        CycleDomain.GUEST_USER: 1_000_000,
        CycleDomain.GUEST_KERNEL: 200_000,
        CycleDomain.VMX_TRANSITION: 50_000,
        CycleDomain.HOST_HANDLER: 30_000,
        CycleDomain.HOST_TICK: 10_000,
    }
    overhead_ns = ledger[CycleDomain.VMX_TRANSITION] + ledger[CycleDomain.HOST_HANDLER]
    counters = exits if exits is not None else ExitCounters()
    if exits is None:
        for _ in range(3):
            counters.record(0, ExitReason.HLT, ExitTag.IDLE)
        if not skip_one_count:
            counters.record(0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM)
    return RunMetrics(
        label="test",
        exec_time_ns=2_000_000,
        total_cycles=clock.ns_to_cycles(sum(ledger.values())),
        useful_cycles=clock.ns_to_cycles(ledger[CycleDomain.GUEST_USER]),
        overhead_cycles=clock.ns_to_cycles(overhead_ns),
        exits=counters,
        ledger=ledger,
    )


def matching_sanitizer(metrics: RunMetrics) -> TickSanitizer:
    """A sanitizer whose vmexit tally mirrors the metrics' counters."""
    s = TickSanitizer()
    t = 0
    for key, count in metrics.exits.breakdown().items():
        for _ in range(count):
            s.emit(t, "vm0/vcpu0", "vmexit", (key.reason.value, key.tag.value))
            t += 1
    return s


class TestExitReconciliation:
    def test_consistent_run_reconciles(self):
        m = make_metrics()
        assert reconcile_exits(matching_sanitizer(m), m) == []

    def test_skipped_counter_increment_is_caught(self):
        """Mutation: the hypervisor 'forgot' to count one traced exit."""
        full = make_metrics()
        sanitizer = matching_sanitizer(full)  # trace saw everything
        broken = make_metrics(skip_one_count=True)
        problems = reconcile_exits(sanitizer, broken)
        assert len(problems) == 1
        assert "msr_write/timer_program" in problems[0]

    def test_untraced_exit_is_caught(self):
        """Mutation: an exit was counted but never traced."""
        m = make_metrics()
        sanitizer = matching_sanitizer(make_metrics(skip_one_count=True))
        problems = reconcile_exits(sanitizer, m)
        assert len(problems) == 1
        assert "traced 0 times but counted 1" in problems[0]


class TestLedgerConservation:
    def test_consistent_ledger_passes(self):
        assert check_ledger(make_metrics(), FREQ) == []

    def test_total_cycles_drift(self):
        m = make_metrics()
        m.total_cycles += 1
        problems = check_ledger(m, FREQ)
        assert any("total_cycles" in p for p in problems)

    def test_useful_cycles_drift(self):
        m = make_metrics()
        m.useful_cycles -= 7
        problems = check_ledger(m, FREQ)
        assert any("useful_cycles" in p for p in problems)

    def test_overhead_cycles_drift(self):
        m = make_metrics()
        m.overhead_cycles += 3
        problems = check_ledger(m, FREQ)
        assert any("overhead_cycles" in p for p in problems)

    def test_negative_ledger_entry(self):
        m = make_metrics()
        delta = m.ledger[CycleDomain.HOST_TICK] + 5
        m.ledger[CycleDomain.HOST_TICK] = -5
        # keep the sums consistent so only the sign check fires
        m.ledger[CycleDomain.GUEST_KERNEL] += delta
        problems = check_ledger(m, FREQ)
        assert len(problems) == 1
        assert "negative" in problems[0]

    def test_double_booked_domain(self):
        """useful + overhead exceeding total means a domain was counted
        as both useful and overhead."""
        m = make_metrics()
        m.useful_cycles = m.total_cycles
        m.overhead_cycles = 1
        problems = check_ledger(m, FREQ)
        assert any("exceed total_cycles" in p for p in problems)


class TestCounterConsistency:
    def test_consistent_counters_pass(self):
        assert check_counters(make_metrics()) == []

    def test_per_vcpu_drift_is_caught(self):
        data = make_metrics().exits.to_dict()
        data["by_vcpu"]["0"] += 1
        m = make_metrics(exits=ExitCounters.from_dict(data))
        problems = check_counters(m)
        assert len(problems) == 1
        assert "per-vCPU" in problems[0]


class TestMachineTimeline:
    def make_machine(self) -> Machine:
        return Machine(Simulator(), MachineSpec(sockets=1, cpus_per_socket=2, freq_hz=FREQ))

    def test_serialized_busy_within_elapsed(self):
        machine = self.make_machine()
        machine.cpu(0).account(CycleDomain.GUEST_USER, 900)
        assert check_machine(machine, 1000) == []

    def test_overbooked_cpu_is_caught(self):
        machine = self.make_machine()
        machine.cpu(1).account(CycleDomain.GUEST_USER, 1500)
        problems = check_machine(machine, 1000)
        assert len(problems) == 1
        assert "cpu1" in problems[0]

    def test_host_tick_and_io_are_off_timeline(self):
        machine = self.make_machine()
        machine.cpu(0).account(CycleDomain.GUEST_USER, 1000)
        machine.cpu(0).account(CycleDomain.HOST_TICK, 400)
        machine.cpu(0).account(CycleDomain.HOST_IO, 400)
        assert check_machine(machine, 1000) == []


class TestFullBattery:
    def test_reconcile_run_aggregates_everything(self):
        m = make_metrics()
        m.total_cycles += 1
        m.useful_cycles += 1
        machine = Machine(Simulator(), MachineSpec(sockets=1, cpus_per_socket=1, freq_hz=FREQ))
        machine.cpu(0).account(CycleDomain.GUEST_USER, 100)
        problems = reconcile_run(
            matching_sanitizer(m), m, freq_hz=FREQ, machine=machine, now_ns=50
        )
        assert any("total_cycles" in p for p in problems)
        assert any("useful_cycles" in p for p in problems)
        assert any("cpu0" in p for p in problems)

    def test_real_run_reconciles_end_to_end(self):
        from repro.analysis.fuzz import run_scenario, scenario_for_seed
        from repro.config import TickMode

        metrics, sanitizer, problems = run_scenario(
            scenario_for_seed(1), TickMode.TICKLESS
        )
        assert metrics is not None
        assert problems == []
        assert sanitizer.events > 0
