"""Mutation self-tests for the tick sanitizer.

Each test deliberately breaks ONE timer-path invariant in a synthetic
event stream and asserts that exactly the targeted checker fires — no
more, no fewer. This is the sanitizer's own safety net: a checker that
stops firing (or starts firing on legal streams) fails here before it
silently degrades the fuzz harness.
"""

from __future__ import annotations

import pytest

from repro.analysis.checkers import TickSanitizer, Violation, default_checkers
from repro.config import TickMode
from repro.hw.interrupts import Vector

V235 = int(Vector.PARATICK_VIRTUAL_TICK)
V236 = int(Vector.LOCAL_TIMER)

VCPU = "vm0/vcpu0"


def run_stream(records, mode=None) -> TickSanitizer:
    sanitizer = TickSanitizer(mode=mode)
    for time, source, kind, detail in records:
        sanitizer.emit(time, source, kind, detail)
    sanitizer.finish()
    return sanitizer


def firing(sanitizer) -> set[str]:
    """Names of the checkers that reported at least one violation."""
    return {v.checker for v in sanitizer.violations}


# A legal reference stream touching every checker; mutations below are
# single edits of sequences like these.
LEGAL = [
    (0, VCPU, "vcpu_state", ("init", "exited")),
    (5, VCPU, "lapic_arm", ("oneshot", 100)),
    (7, VCPU, "ptimer_start", 100),
    (8, VCPU, "vcpu_state", ("exited", "guest")),
    (100, VCPU, "ptimer_fire", None),
    (100, VCPU, "vcpu_state", ("guest", "exited")),
    (101, VCPU, "lapic_fire", ("oneshot", V236)),
    (102, VCPU, "inject", (V236,)),
    (103, VCPU, "vcpu_state", ("exited", "guest")),
    (200, VCPU, "vmexit", ("hlt", "idle")),
    (200, VCPU, "vcpu_state", ("guest", "exited")),
    (201, VCPU, "vcpu_state", ("exited", "halted")),
    (300, VCPU, "vcpu_state", ("halted", "exited")),
    (400, VCPU, "vcpu_state", ("exited", "off")),
]


class TestLegalStreams:
    def test_reference_stream_is_clean(self):
        assert run_stream(LEGAL).violations == []

    def test_periodic_fire_keeps_the_timer_armed(self):
        s = run_stream([
            (0, "lapic", "lapic_arm", ("periodic", 10)),
            (10, "lapic", "lapic_fire", ("periodic", V236)),
            (20, "lapic", "lapic_fire", ("periodic", V236)),
            (25, "lapic", "lapic_disarm", None),
        ])
        assert s.violations == []

    def test_deadline_reprogram_without_fire_is_legal(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (1, VCPU, "deadline_set", 200),  # moving the deadline = reprogram
            (200, VCPU, "deadline_fire", (200, "ptimer")),
        ])
        assert s.violations == []

    def test_idle_reenter_without_exit_is_legal(self):
        s = run_stream([
            (0, VCPU, "idle_enter", None),
            (1, VCPU, "idle_enter", None),
            (2, VCPU, "idle_exit", None),
        ])
        assert s.violations == []

    def test_vector_235_legal_under_paratick(self):
        s = run_stream([(0, VCPU, "inject", (V235,))], mode=TickMode.PARATICK)
        assert s.violations == []


class TestLapicMutations:
    def test_double_arm_fires_lapic_checker_only(self):
        s = run_stream([
            (0, "lapic", "lapic_arm", ("oneshot", 100)),
            (1, "lapic", "lapic_arm", ("oneshot", 200)),
        ])
        assert firing(s) == {"lapic"}

    def test_fire_while_unarmed(self):
        s = run_stream([(5, "lapic", "lapic_fire", ("oneshot", V236))])
        assert firing(s) == {"lapic"}

    def test_fire_before_expiry(self):
        s = run_stream([
            (0, "lapic", "lapic_arm", ("oneshot", 100)),
            (50, "lapic", "lapic_fire", ("oneshot", V236)),
        ])
        assert firing(s) == {"lapic"}

    def test_oneshot_fire_consumes_the_arm(self):
        s = run_stream([
            (0, "lapic", "lapic_arm", ("oneshot", 10)),
            (10, "lapic", "lapic_fire", ("oneshot", V236)),
            (20, "lapic", "lapic_fire", ("oneshot", V236)),  # second fire: unarmed
        ])
        assert firing(s) == {"lapic"}

    def test_fire_mode_mismatch(self):
        s = run_stream([
            (0, "lapic", "lapic_arm", ("oneshot", 10)),
            (10, "lapic", "lapic_fire", ("periodic", V236)),
        ])
        assert firing(s) == {"lapic"}

    def test_sources_tracked_independently(self):
        s = run_stream([
            (0, "vm0/vcpu0/vlapic", "lapic_arm", ("periodic", 10)),
            (1, "vm0/vcpu1/vlapic", "lapic_arm", ("periodic", 11)),
            (10, "vm0/vcpu0/vlapic", "lapic_fire", ("periodic", V236)),
            (11, "vm0/vcpu1/vlapic", "lapic_fire", ("periodic", V236)),
        ])
        assert s.violations == []


class TestPreemptionTimerMutations:
    def test_double_start(self):
        s = run_stream([
            (0, VCPU, "ptimer_start", 100),
            (1, VCPU, "ptimer_start", 200),
        ])
        assert firing(s) == {"preemption-timer"}

    def test_stop_without_start(self):
        s = run_stream([(0, VCPU, "ptimer_stop", None)])
        assert firing(s) == {"preemption-timer"}

    def test_fire_without_start(self):
        s = run_stream([(0, VCPU, "ptimer_fire", None)])
        assert firing(s) == {"preemption-timer"}

    def test_fire_before_deadline(self):
        s = run_stream([
            (0, VCPU, "ptimer_start", 100),
            (50, VCPU, "ptimer_fire", None),
        ])
        assert firing(s) == {"preemption-timer"}

    def test_fire_while_vcpu_not_in_guest_mode(self):
        s = run_stream([
            (0, VCPU, "vcpu_state", ("init", "exited")),
            (1, VCPU, "ptimer_start", 10),
            (10, VCPU, "ptimer_fire", None),  # still EXITED: illegal
        ])
        assert firing(s) == {"preemption-timer"}


class TestVcpuStateMutations:
    def test_illegal_transition(self):
        s = run_stream([(0, VCPU, "vcpu_state", ("guest", "halted"))])
        assert firing(s) == {"vcpu-state"}

    def test_transition_from_untracked_state(self):
        s = run_stream([
            (0, VCPU, "vcpu_state", ("init", "exited")),
            (1, VCPU, "vcpu_state", ("guest", "exited")),  # tracked says exited
        ])
        assert firing(s) == {"vcpu-state"}

    def test_transition_after_shutdown(self):
        s = run_stream([
            (0, VCPU, "vcpu_state", ("init", "off")),
            (1, VCPU, "vcpu_state", ("off", "exited")),
        ])
        assert firing(s) == {"vcpu-state"}

    def test_any_state_may_shut_down(self):
        s = run_stream([
            (0, VCPU, "vcpu_state", ("init", "exited")),
            (1, VCPU, "vcpu_state", ("exited", "halted")),
            (2, VCPU, "vcpu_state", ("halted", "off")),
        ])
        assert s.violations == []


class TestDeadlineMutations:
    def test_fire_without_set(self):
        s = run_stream([(0, VCPU, "deadline_fire", (100, "ptimer"))])
        assert firing(s) == {"guest-deadline"}

    def test_fire_before_deadline(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (50, VCPU, "deadline_fire", (100, "ptimer")),
        ])
        assert firing(s) == {"guest-deadline"}

    def test_fire_wrong_deadline_value(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (150, VCPU, "deadline_fire", (150, "host")),
        ])
        assert firing(s) == {"guest-deadline"}

    def test_cleared_deadline_must_not_fire(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (1, VCPU, "deadline_clear", None),
            (100, VCPU, "deadline_fire", (100, "ptimer")),
        ])
        assert firing(s) == {"guest-deadline"}

    def test_host_standin_armed_twice(self):
        s = run_stream([
            (0, VCPU, "hostdl_arm", 100),
            (1, VCPU, "hostdl_arm", 200),
        ])
        assert firing(s) == {"guest-deadline"}

    def test_host_standin_cancel_without_arm(self):
        s = run_stream([(0, VCPU, "hostdl_cancel", None)])
        assert firing(s) == {"guest-deadline"}

    def test_host_standin_fire_without_arm(self):
        s = run_stream([(0, VCPU, "hostdl_fire", None)])
        assert firing(s) == {"guest-deadline"}


class TestTickSchedMutations:
    def test_tick_stopped_twice(self):
        s = run_stream([
            (0, VCPU, "tick_stop", None),
            (1, VCPU, "tick_stop", None),
        ], mode=TickMode.TICKLESS)
        assert firing(s) == {"tick-sched"}

    def test_restart_without_stop(self):
        s = run_stream([(0, VCPU, "tick_restart", None)], mode=TickMode.TICKLESS)
        assert firing(s) == {"tick-sched"}

    def test_tick_kept_while_stopped(self):
        s = run_stream([
            (0, VCPU, "tick_stop", None),
            (1, VCPU, "tick_kept", None),
        ], mode=TickMode.TICKLESS)
        assert firing(s) == {"tick-sched"}

    def test_idle_exit_without_enter(self):
        s = run_stream([(0, VCPU, "idle_exit", None)])
        assert firing(s) == {"tick-sched"}

    @pytest.mark.parametrize("mode", [TickMode.PERIODIC, TickMode.PARATICK])
    def test_non_tickless_guests_never_touch_the_tick(self, mode):
        s = run_stream([
            (0, VCPU, "tick_stop", None),
            (1, VCPU, "tick_restart", None),
        ], mode=mode)
        assert firing(s) == {"tick-sched"}


class TestInjectMutations:
    def test_vector_235_into_tickless_guest(self):
        s = run_stream([(0, VCPU, "inject", (V235,))], mode=TickMode.TICKLESS)
        assert firing(s) == {"inject"}

    def test_unknown_vector(self):
        s = run_stream([(0, VCPU, "inject", (1,))])
        assert firing(s) == {"inject"}

    def test_mode_unknown_tolerates_235(self):
        s = run_stream([(0, VCPU, "inject", (V235,))], mode=None)
        assert s.violations == []


class TestSchemaMutations:
    def test_unregistered_kind(self):
        s = run_stream([(0, VCPU, "warp_drive", None)])
        assert firing(s) == {"schema"}

    def test_malformed_detail_fires_schema_only(self):
        # A garbled vcpu_state record must not confuse the state checker:
        # only the schema checker reports it.
        s = run_stream([(0, VCPU, "vcpu_state", "guest->exited")])
        assert firing(s) == {"schema"}

    def test_empty_inject_tuple(self):
        s = run_stream([(0, VCPU, "inject", ())])
        assert firing(s) == {"schema"}

    def test_negative_deadline(self):
        s = run_stream([(0, VCPU, "deadline_set", -5)])
        assert firing(s) == {"schema"}


class TestSanitizerPlumbing:
    def test_violations_sorted_by_time(self):
        s = run_stream([
            (50, VCPU, "ptimer_stop", None),
            (10, "lapic", "lapic_fire", ("oneshot", V236)),
        ])
        times = [v.time for v in s.violations]
        assert times == sorted(times)

    def test_violation_str_mentions_checker_and_source(self):
        v = Violation(12, "lapic", "vm0/vcpu0", "fired while not armed")
        text = str(v)
        assert "lapic" in text and "vm0/vcpu0" in text and "12" in text

    def test_summary_counts_per_checker(self):
        s = run_stream(LEGAL)
        assert f"{len(LEGAL)} events" in s.summary()
        assert "schema" in s.summary()

    def test_feed_replays_records(self):
        from repro.sim.trace import TraceRecord

        s = TickSanitizer()
        s.feed([TraceRecord(0, "lapic", "lapic_fire", ("oneshot", V236))])
        assert firing(s) == {"lapic"}

    def test_finish_is_idempotent(self):
        s = run_stream([(0, VCPU, "ptimer_stop", None)])
        assert s.finish() == s.finish()
        assert len(s.violations) == 1

    def test_ok_property(self):
        assert run_stream(LEGAL).ok
        assert not run_stream([(0, VCPU, "ptimer_stop", None)]).ok

    def test_default_checkers_cover_all_names(self):
        names = {c.name for c in default_checkers()}
        assert names == {
            "schema", "vcpu-state", "preemption-timer", "lapic",
            "guest-deadline", "cntv", "tick-sched", "inject",
            "suspend-span", "restore-rearm", "hotplug",
        }

    def test_exit_tally_counts_vmexits(self):
        s = run_stream([
            (0, VCPU, "vmexit", ("hlt", "idle")),
            (1, VCPU, "vmexit", ("hlt", "idle")),
            (2, VCPU, "vmexit", ("msr_write", "timer_program")),
        ])
        assert s.exit_tally == {("hlt", "idle"): 2, ("msr_write", "timer_program"): 1}


VM = "vm0"
VLAPIC = "vm0/vcpu0/vlapic"


class TestSuspendSpanMutations:
    def test_tick_inside_suspend_window(self):
        # LAPIC legally armed before the freeze, but the expiry lands
        # inside the suspended span: only suspend-span may fire.
        s = run_stream([
            (0, VLAPIC, "lapic_arm", ("oneshot", 100)),
            (50, VM, "vm_suspend", None),
            (100, VLAPIC, "lapic_fire", ("oneshot", V236)),
        ])
        assert firing(s) == {"suspend-span"}

    def test_vmexit_inside_suspend_window(self):
        s = run_stream([
            (0, VM, "vm_suspend", None),
            (10, VCPU, "vmexit", ("hlt", "idle")),
        ])
        assert firing(s) == {"suspend-span"}

    def test_double_suspend(self):
        s = run_stream([
            (0, VM, "vm_suspend", None),
            (1, VM, "vm_suspend", None),
        ])
        assert firing(s) == {"suspend-span"}

    def test_resume_without_suspend(self):
        s = run_stream([(0, VM, "vm_resume", 5)])
        assert firing(s) == {"suspend-span"}

    def test_fire_after_resume_is_legal(self):
        s = run_stream([
            (0, VLAPIC, "lapic_arm", ("oneshot", 100)),
            (50, VM, "vm_suspend", None),
            (80, VM, "vm_resume", 30),
            (100, VLAPIC, "lapic_fire", ("oneshot", V236)),
        ])
        assert s.violations == []

    def test_suspend_edge_may_retire_inflight_work(self):
        # Same-instant activity at the suspend edge is the in-flight
        # exit the freeze itself processes — strictly later is illegal.
        s = run_stream([
            (50, VM, "vm_suspend", None),
            (50, VCPU, "vmexit", ("hlt", "idle")),
        ])
        assert s.violations == []

    def test_other_vms_keep_running(self):
        s = run_stream([
            (0, "vm0", "vm_suspend", None),
            (10, "vm1/vcpu0", "vmexit", ("hlt", "idle")),
        ])
        assert s.violations == []

    def test_open_span_at_end_of_run_is_legal(self):
        s = run_stream([(0, VM, "vm_suspend", None)])
        assert s.violations == []


class TestRestoreMonotonicMutations:
    def test_stale_pre_restore_deadline(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (500, VM, "vm_restore", 450),
            (510, VCPU, "deadline_set", 400),  # expiry in the pre-jump past
        ])
        assert firing(s) == {"restore-rearm"}

    def test_stale_host_standin_arm(self):
        s = run_stream([
            (500, VM, "vm_restore", 450),
            (510, VCPU, "hostdl_arm", 400),
        ])
        assert firing(s) == {"restore-rearm"}

    def test_stale_preemption_timer_start(self):
        s = run_stream([
            (500, VM, "vm_restore", 450),
            (510, VCPU, "ptimer_start", 400),
        ])
        assert firing(s) == {"restore-rearm"}

    def test_stale_lapic_arm(self):
        s = run_stream([
            (500, VM, "vm_restore", 450),
            (510, VLAPIC, "lapic_arm", ("oneshot", 400)),
        ])
        assert firing(s) == {"restore-rearm"}

    def test_monotone_rearm_after_restore_is_legal(self):
        s = run_stream([
            (0, VCPU, "deadline_set", 100),
            (500, VM, "vm_restore", 450),
            (510, VCPU, "deadline_set", 700),
            (700, VCPU, "deadline_fire", (700, "ptimer")),
        ])
        assert s.violations == []

    def test_rearm_at_restore_instant_is_legal(self):
        s = run_stream([
            (500, VM, "vm_restore", 450),
            (500, VCPU, "hostdl_arm", 500),
        ])
        assert s.violations == []

    def test_deadlines_before_restore_unchecked(self):
        s = run_stream([(0, VCPU, "deadline_set", 100)])
        assert s.violations == []


class TestHotplugMutations:
    def test_double_hotplug(self):
        s = run_stream([
            (0, VM, "vcpu_hotplug", 1),
            (1, VM, "vcpu_hotplug", 1),
        ])
        assert firing(s) == {"hotplug"}

    def test_hotplug_of_booted_vcpu(self):
        s = run_stream([
            (0, "vm0/vcpu1", "vcpu_state", ("init", "exited")),
            (5, VM, "vcpu_hotplug", 1),
        ])
        assert firing(s) == {"hotplug"}

    def test_hotplugged_vcpu_must_boot_via_init(self):
        # exited -> guest is a legal state-machine step, but not a boot:
        # only the hotplug checker may object.
        s = run_stream([
            (0, VM, "vcpu_hotplug", 1),
            (5, "vm0/vcpu1", "vcpu_state", ("exited", "guest")),
        ])
        assert firing(s) == {"hotplug"}

    def test_unplug_of_absent_vcpu(self):
        s = run_stream([(0, VM, "vcpu_unplug", 3)])
        assert firing(s) == {"hotplug"}

    def test_state_change_after_unplug(self):
        s = run_stream([
            (0, VM, "vcpu_hotplug", 1),
            (1, "vm0/vcpu1", "vcpu_state", ("init", "exited")),
            (2, VM, "vcpu_unplug", 1),
            (3, "vm0/vcpu1", "vcpu_state", ("exited", "guest")),
        ])
        assert firing(s) == {"hotplug"}

    def test_full_hotplug_lifecycle_is_legal(self):
        s = run_stream([
            (0, VM, "vcpu_hotplug", 1),
            (1, "vm0/vcpu1", "vcpu_state", ("init", "exited")),
            (2, "vm0/vcpu1", "vcpu_state", ("exited", "guest")),
            (3, "vm0/vcpu1", "vcpu_state", ("guest", "exited")),
            (4, VM, "vcpu_unplug", 1),
            (5, "vm0/vcpu1", "vcpu_state", ("exited", "off")),
        ])
        assert s.violations == []
