"""Resource-sharing behaviour: host-scheduler fairness and shared devices."""

from __future__ import annotations

import pytest

from repro.config import IoDeviceKind, MachineSpec, TickMode, VmSpec
from repro.guest.kernel import GuestKernel
from repro.guest.task import BlockRead, Run, Task
from repro.host.kvm import Hypervisor
from repro.hw.block import make_block_device
from repro.hw.cpu import CycleDomain, Machine
from repro.sim.engine import Simulator
from repro.sim.timebase import MSEC, SEC


class TestHostFairness:
    def test_two_vcpus_share_one_cpu_roughly_evenly(self):
        """Round-robin at host-tick boundaries gives both compute-bound
        vCPUs close to half the CPU."""
        sim = Simulator(seed=0)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(
            VmSpec(vcpus=2, tick_mode=TickMode.TICKLESS, pinned_cpus=(0, 0), noise=False)
        )
        kernel = GuestKernel(vm)
        finish = {}

        def body(i):
            yield Run(330_000_000)  # 150ms at 2.2GHz

        for i in range(2):
            kernel.add_task(Task(f"t{i}", body(i), affinity=i))
        kernel.task_done_callbacks.append(lambda t: finish.setdefault(t.name, sim.now))
        hv.start()
        sim.run(until=2 * SEC)
        assert len(finish) == 2
        times = sorted(finish.values())
        # Interleaved fairly: both finish near the end (~300ms), not one
        # at 150ms and the other at 300ms (which FIFO-to-completion
        # would give).
        assert times[0] > 250 * MSEC
        assert times[1] < 450 * MSEC
        assert (times[1] - times[0]) < 60 * MSEC

    def test_three_vms_progress_concurrently(self):
        sim = Simulator(seed=1)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine)
        kernels = []
        finish = []
        for v in range(3):
            vm = hv.create_vm(
                VmSpec(name=f"vm{v}", vcpus=1, tick_mode=TickMode.TICKLESS,
                       pinned_cpus=(0,), noise=False)
            )
            k = GuestKernel(vm)

            def body():
                yield Run(110_000_000)

            k.add_task(Task(f"vm{v}.t", body(), affinity=0))
            k.task_done_callbacks.append(lambda t: finish.append(sim.now))
            kernels.append(k)
        hv.start()
        sim.run(until=2 * SEC)
        assert len(finish) == 3
        # Three 50ms jobs on one CPU: total >= 150ms, all within ~200ms.
        assert finish[-1] >= 150 * MSEC
        assert finish[-1] < 300 * MSEC


class TestMixedModeColocation:
    def test_paratick_and_tickless_vms_coexist(self):
        """One paratick VM and one tickless VM share a host: each keeps
        its own tick semantics; paratick injection state never leaks."""
        sim = Simulator(seed=4)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=2))
        hv = Hypervisor(sim, machine)
        vms, kernels, finish = [], [], []
        for v, mode in enumerate((TickMode.PARATICK, TickMode.TICKLESS)):
            vm = hv.create_vm(
                VmSpec(name=f"vm{v}", vcpus=1, tick_mode=mode,
                       pinned_cpus=(v,), noise=False)
            )
            k = GuestKernel(vm)

            def body():
                yield Run(110_000_000)

            k.add_task(Task(f"vm{v}.t", body(), affinity=0))
            k.task_done_callbacks.append(lambda t: finish.append(sim.now))
            vms.append(vm)
            kernels.append(k)
        hv.start()
        sim.run(until=SEC)
        assert len(finish) == 2
        para, nohz = vms
        assert para.paratick_enabled and not nohz.paratick_enabled
        assert para.virtual_ticks_injected > 5
        assert nohz.virtual_ticks_injected == 0
        # The tickless VM still pays its per-tick exits; paratick's VM
        # pays none.
        from repro.host.exitreasons import ExitTag

        assert nohz.counters.by_tag(ExitTag.TIMER_PROGRAM) > 5
        assert para.counters.by_tag(ExitTag.TIMER_PROGRAM) == 0


class TestSharedDevice:
    def test_two_vcpus_share_one_block_device(self):
        """Queue-depth-1 device serializes requests from two vCPUs; both
        tasks complete and total time reflects the serialization."""
        sim = Simulator(seed=2)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=2))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(
            VmSpec(vcpus=2, tick_mode=TickMode.TICKLESS, pinned_cpus=(0, 1), noise=False)
        )
        kernel = GuestKernel(vm)
        device = make_block_device(
            sim, IoDeviceKind.SATA_SSD,
            lambda req: hv.complete_io_request(vm, req.cookie[0], req),
        )
        kernel.attach_block_device(device)
        finish = []

        def body(i):
            for _ in range(20):
                yield BlockRead(4096)
                yield Run(50_000)

        for i in range(2):
            kernel.add_task(Task(f"t{i}", body(i), affinity=i))
        kernel.task_done_callbacks.append(lambda t: finish.append(sim.now))
        hv.start()
        sim.run(until=SEC)
        assert len(finish) == 2
        assert device.completed == 40
        # 40 serialized ~75us reads: at least 3ms of device time.
        assert finish[-1] >= 3 * MSEC

    def test_device_stats_track_queueing(self):
        """With two submitters, queueing pushes max service above min."""
        sim = Simulator(seed=3)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=2))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(VmSpec(vcpus=2, pinned_cpus=(0, 1), noise=False))
        kernel = GuestKernel(vm)
        device = make_block_device(
            sim, IoDeviceKind.SATA_SSD,
            lambda req: hv.complete_io_request(vm, req.cookie[0], req),
        )
        kernel.attach_block_device(device)

        def body(i):
            for _ in range(10):
                yield BlockRead(4096)

        for i in range(2):
            kernel.add_task(Task(f"t{i}", body(i), affinity=i))
        hv.start()
        sim.run(until=SEC)
        assert device.service_stats.n == 20
        assert device.service_stats.max > device.service_stats.min
