"""ARM golden battery: the second timer architecture, pinned to the bit.

Mirrors ``test_determinism_golden.py`` for ``arch="arm"``: the committed
fixture (tests/fixtures/golden_arm.json) was captured when the ARM
generic-timer backend landed, and every run replays the full battery —
12 traced workload cells plus 120 fuzz metric hashes — against it. Any
drift in the CNTV trap decode, the vtimer deadline translation, or the
per-arch cost model diverges a hash here.

The x86 fixture's continued byte-identity (proved next door) is the
refactor gate: introducing the :mod:`repro.hw.timerhw` seam moved the
x86 decode behind an interface without changing a single emitted byte.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import golden
from repro.config import TickMode
from repro.experiments import parallel
from repro.workloads.micro import SyncStormWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "golden_arm.json"

MODES = list(TickMode)


class TestArmGoldenFixture:
    def test_fixture_is_committed(self):
        assert FIXTURE.exists(), (
            "ARM golden fixture missing; capture it with "
            "`PYTHONPATH=src python -m repro.analysis.golden --arm --write`"
        )

    def test_fixture_declares_arm(self):
        assert golden.load(FIXTURE).get("arch") == "arm"

    def test_full_battery_matches_fixture(self):
        problems = golden.compare_arm(FIXTURE)
        assert not problems, "ARM backend diverged:\n" + "\n".join(problems)

    def test_arch_mismatch_is_reported_not_silent(self):
        """Replaying an ARM fixture with the x86 battery must fail fast
        instead of diffing apples against oranges."""
        problems = golden.compare(FIXTURE, arch="x86")
        assert problems and "pins arch 'arm'" in problems[0]


class TestArmEngineIdentity:
    def test_jobs1_vs_jobsN_identical_all_modes(self):
        """The parallel engine is arch-oblivious: ARM cells produce the
        same bytes serially and across a worker pool."""
        specs = [
            parallel.spec_for(
                SyncStormWorkload(threads=2, events_per_second=600.0,
                                  duration_cycles=15_000_000),
                tick_mode=mode,
                seed=31,
                label=f"determinism-arm/{mode.value}",
            ).with_(arch="arm")
            for mode in MODES
        ]
        serial = parallel.run_grid(specs, jobs=1, use_cache=False).raise_if_failed()
        pooled = parallel.run_grid(specs, jobs=2, use_cache=False).raise_if_failed()
        for spec, mode in zip(specs, MODES):
            assert serial[spec].to_json_dict() == pooled[spec].to_json_dict(), (
                f"{mode.value}: serial and pooled ARM execution diverged"
            )


class TestArchCacheKey:
    def test_default_arch_not_serialized(self):
        """An x86 spec encodes byte-identically to a pre-``arch`` spec,
        so every pre-existing cache key and golden content address
        survives the refactor."""
        spec = parallel.spec_for(
            SyncStormWorkload(threads=2, events_per_second=600.0,
                              duration_cycles=15_000_000),
            tick_mode=TickMode.TICKLESS, seed=1,
        )
        assert "arch" not in parallel.spec_to_dict(spec)

    def test_arm_arch_serialized_and_round_trips(self):
        spec = parallel.spec_for(
            SyncStormWorkload(threads=2, events_per_second=600.0,
                              duration_cycles=15_000_000),
            tick_mode=TickMode.TICKLESS, seed=1,
        ).with_(arch="arm")
        data = parallel.spec_to_dict(spec)
        assert data["arch"] == "arm"
        assert parallel.spec_from_dict(data).arch == "arm"

    def test_arch_changes_the_cache_key(self):
        spec = parallel.spec_for(
            SyncStormWorkload(threads=2, events_per_second=600.0,
                              duration_cycles=15_000_000),
            tick_mode=TickMode.TICKLESS, seed=1,
        )
        assert parallel.spec_key(spec) != parallel.spec_key(spec.with_(arch="arm"))
