"""Trace-sequence assertions: the Fig. 1 / Fig. 3 event orderings.

These tests read the structured trace to check *sequences* — e.g. that
a tickless idle entry emits a TIMER_PROGRAM exit between the idle-enter
mark and the HLT exit, while paratick goes straight to HLT — the
fine-grained claims behind the exit-count deltas.
"""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.experiments.runner import run_workload
from repro.hw.interrupts import Vector
from repro.sim.trace import RingTracer
from repro.sim.timebase import MSEC
from repro.workloads.micro import IdlePeriodWorkload, PingPongWorkload


def traced_run(mode, workload, **kw):
    tracer = RingTracer(capacity=200_000)
    m = run_workload(workload, tick_mode=mode, tracer=tracer, noise=False, **kw)
    return m, tracer


def events_between(records, start_kind, end_kind):
    """Kinds observed between each start mark and the next end mark."""
    spans, current = [], None
    for r in records:
        if r.kind == start_kind:
            current = []
        elif current is not None:
            if r.kind == end_kind or r.kind == start_kind:
                spans.append(current)
                current = [] if r.kind == start_kind else None
            else:
                current.append(r)
    return spans


class TestIdleTransitionSequences:
    def workload(self):
        return PingPongWorkload(rounds=60, work_cycles=400_000)

    def test_tickless_idle_entries_program_hardware(self):
        m, tracer = traced_run(TickMode.TICKLESS, self.workload(), seed=1)
        records = list(tracer.records)
        idle_enters = [r for r in records if r.kind == "idle_enter"]
        assert idle_enters, "workload must idle"
        spans = events_between(records, "idle_enter", "idle_exit")
        programs = sum(
            1
            for span in spans
            for r in span
            if r.kind == "vmexit" and r.detail[1] == "timer_program"
        )
        # Fig. 1b: a healthy fraction of idle entries touch the MSR.
        assert programs >= len(spans) * 0.4

    def test_paratick_idle_entries_mostly_silent(self):
        m, tracer = traced_run(TickMode.PARATICK, self.workload(), seed=1)
        records = list(tracer.records)
        spans = events_between(records, "idle_enter", "idle_exit")
        assert spans
        programs = sum(
            1
            for span in spans
            for r in span
            if r.kind == "vmexit" and r.detail[1] == "timer_program"
        )
        # Fig. 3c/3d: no tick to stop, nothing to restart; PingPong has
        # no soft timers pending, so idle entries are hardware-silent.
        assert programs <= len(spans) * 0.05

    def test_idle_enters_and_exits_alternate(self):
        m, tracer = traced_run(TickMode.TICKLESS, self.workload(), seed=2)
        # Per vCPU: an exit can only follow at least one enter; never two
        # exits in a row (re-entering idle re-marks).
        depth: dict[str, int] = {}
        for r in tracer.records:
            if r.kind == "idle_enter":
                depth[r.source] = depth.get(r.source, 0) + 1
            elif r.kind == "idle_exit":
                assert depth.get(r.source, 0) >= 1, f"{r.source}: idle_exit without idle_enter"
                depth[r.source] = 0


class TestInjectionTraces:
    def test_paratick_virtual_tick_injected_while_active(self):
        m, tracer = traced_run(
            TickMode.PARATICK,
            IdlePeriodWorkload(2 * MSEC, iterations=40, work_cycles=22_000_000),
            seed=3,
        )
        injected = [
            r for r in tracer.records
            if r.kind == "inject" and int(Vector.PARATICK_VIRTUAL_TICK) in r.detail
        ]
        assert injected, "active phases must receive vector 235"

    def test_tickless_never_sees_vector_235(self):
        m, tracer = traced_run(
            TickMode.TICKLESS,
            IdlePeriodWorkload(2 * MSEC, iterations=40, work_cycles=22_000_000),
            seed=3,
        )
        for r in tracer.records:
            if r.kind == "inject":
                assert int(Vector.PARATICK_VIRTUAL_TICK) not in r.detail

    def test_exit_reasons_traced_match_counters(self):
        m, tracer = traced_run(TickMode.TICKLESS, PingPongWorkload(rounds=50), seed=4)
        traced_exits = sum(1 for r in tracer.records if r.kind == "vmexit")
        assert traced_exits == m.total_exits
