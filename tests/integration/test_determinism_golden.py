"""Determinism and bit-identity guarantees of the simulation core.

Three layers of protection, all riding on :mod:`repro.analysis.golden`:

1. **Run-to-run**: the same seed + workload produces an identical
   structured event stream (SHA-256) and identical ``RunMetrics`` JSON
   across two in-process runs, for every tick mode.
2. **Across the parallel engine**: ``jobs=1`` (serial in-process) and
   ``jobs=N`` (worker pool) produce identical metrics for the same
   specs — results must not depend on where a cell executes.
3. **Across engine rewrites**: the committed golden fixture
   (tests/fixtures/golden_simcore.json), captured on the seed-era
   engine *before* the fast-path rewrite, is replayed in full — any
   behavioural drift in the event engine, however subtle, diverges a
   metrics hash or a stream hash here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import golden
from repro.config import TickMode
from repro.experiments import parallel
from repro.experiments.runner import run_workload
from repro.workloads.micro import PingPongWorkload, SyncStormWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "golden_simcore.json"

MODES = list(TickMode)


def _traced_run(mode: TickMode, seed: int) -> tuple[dict, str]:
    tracer = golden.HashTracer()
    metrics = run_workload(
        PingPongWorkload(rounds=60, work_cycles=40_000),
        tick_mode=mode,
        seed=seed,
        tracer=tracer,
    )
    return metrics.to_json_dict(), tracer.hexdigest()


class TestRunToRun:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_same_seed_same_stream_and_metrics(self, mode):
        first_metrics, first_hash = _traced_run(mode, seed=13)
        second_metrics, second_hash = _traced_run(mode, seed=13)
        assert first_hash == second_hash
        assert first_metrics == second_metrics

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_different_seed_diverges(self, mode):
        # Sanity check that the hash actually has discriminating power;
        # uses a workload whose arrivals consult the seeded RNG.
        def run(seed):
            tracer = golden.HashTracer()
            run_workload(
                SyncStormWorkload(threads=2, events_per_second=600.0,
                                  duration_cycles=15_000_000),
                tick_mode=mode, seed=seed, tracer=tracer,
            )
            return tracer.hexdigest()

        assert run(13) != run(14)


class TestAcrossParallelEngine:
    def test_jobs1_vs_jobsN_identical_all_modes(self):
        specs = [
            parallel.spec_for(
                SyncStormWorkload(threads=2, events_per_second=600.0,
                                  duration_cycles=15_000_000),
                tick_mode=mode,
                seed=31,
                label=f"determinism/{mode.value}",
            )
            for mode in MODES
        ]
        serial = parallel.run_grid(specs, jobs=1, use_cache=False).raise_if_failed()
        pooled = parallel.run_grid(specs, jobs=2, use_cache=False).raise_if_failed()
        for spec, mode in zip(specs, MODES):
            assert serial[spec].to_json_dict() == pooled[spec].to_json_dict(), (
                f"{mode.value}: serial and pooled execution diverged"
            )


class TestGoldenFixture:
    def test_fixture_is_committed(self):
        assert FIXTURE.exists(), (
            "golden fixture missing; capture it with "
            "`PYTHONPATH=src python -m repro.analysis.golden --write`"
        )

    def test_full_battery_matches_pre_rewrite_fixture(self):
        """Replays every golden case: 4 workloads x 3 tick modes with
        stream hashes, plus 20 fuzz seeds x 3 modes x 2 placements of
        metrics hashes — all captured on the pre-rewrite engine."""
        problems = golden.compare(FIXTURE)
        assert not problems, "engine behaviour diverged:\n" + "\n".join(problems)
