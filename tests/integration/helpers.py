"""Shared builders for full-stack integration tests."""

from __future__ import annotations

from repro.config import HostFeatures, MachineSpec, TickMode, VmSpec
from repro.guest.kernel import GuestKernel
from repro.host.costs import DEFAULT_COSTS
from repro.host.kvm import Hypervisor
from repro.hw.cpu import Machine
from repro.sim.engine import Simulator


def build_stack(
    *,
    tick_mode: TickMode = TickMode.TICKLESS,
    vcpus: int = 1,
    seed: int = 0,
    machine_spec: MachineSpec | None = None,
    features: HostFeatures = HostFeatures(),
    costs=DEFAULT_COSTS,
    tick_hz: int = 250,
):
    """Simulator + machine + hypervisor + one VM + its kernel."""
    sim = Simulator(seed=seed)
    mspec = machine_spec or MachineSpec(sockets=1, cpus_per_socket=max(vcpus, 1))
    machine = Machine(sim, mspec)
    hv = Hypervisor(sim, machine, costs=costs, features=features)
    vm = hv.create_vm(
        VmSpec(name="vm0", vcpus=vcpus, tick_mode=tick_mode, tick_hz=tick_hz,
               pinned_cpus=tuple(range(vcpus)))
    )
    kernel = GuestKernel(vm)
    return sim, machine, hv, vm, kernel
