"""Cross-validation: the §3 closed forms against the full simulator.

The analytical model and the simulator were built independently (one
from the paper's formulas, one from the mechanism); agreeing within
modest factors on matched scenarios is evidence both are right.
"""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.core.model import TABLE1_CONVENTION, VmLoadModel, periodic_exits, tickless_exits
from repro.experiments.runner import run_workload
from repro.sim.timebase import SEC
from repro.workloads.micro import IdleWorkload, SyncStormWorkload


class TestIdleVmAgreement:
    def test_periodic_idle_matches_closed_form(self):
        """W1: 16 idle vCPUs at 250 Hz -> 4 000 exits/s (per-event
        convention); the simulator must land within a few percent."""
        m = run_workload(
            IdleWorkload(vcpus=16),
            tick_mode=TickMode.PERIODIC,
            noise=False,
            horizon_ns=SEC,
        )
        model = periodic_exits(
            [VmLoadModel(vcpus=16, tick_hz=250, load=0.0)], 1.0, TABLE1_CONVENTION
        )
        assert m.total_exits == pytest.approx(model, rel=0.05)

    def test_tickless_idle_matches_closed_form(self):
        """W1 tickless: ~0 exits."""
        m = run_workload(
            IdleWorkload(vcpus=16),
            tick_mode=TickMode.TICKLESS,
            noise=False,
            horizon_ns=SEC,
        )
        assert m.total_exits < 100  # boot writes + first idle entries only


class TestSyncStormAgreement:
    def test_tickless_sync_storm_within_2x_of_closed_form(self):
        """W3-style: the simulator's *timer-related* exits against the
        §3.2 form with matching parameters (L~1, transitions = event
        rate). Linux's keep-tick smarts make the simulator land at or
        below the formula; within 2x both ways is the sanity band."""
        events = 4000.0
        threads = 8
        wl = SyncStormWorkload(threads=threads, events_per_second=events, duration_cycles=250_000_000)
        m = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=1, noise=False)
        secs = m.exec_time_ns / 1e9
        measured_rate = m.timer_exits / secs
        model_rate = tickless_exits(
            [VmLoadModel(vcpus=threads, tick_hz=250, load=1.0, idle_transitions_hz=events)],
            1.0,
            TABLE1_CONVENTION,
        )
        assert model_rate / 2 <= measured_rate <= model_rate * 2, (
            f"measured {measured_rate:,.0f}/s vs model {model_rate:,.0f}/s"
        )

    def test_measured_t_idle_matches_configured(self):
        """§3.2's T_idle, measured from halt episodes: an idle-period
        workload sleeping N ms must show mean halt length ~N ms."""
        from repro.sim.timebase import MSEC
        from repro.workloads.micro import IdlePeriodWorkload

        m = run_workload(
            IdlePeriodWorkload(5 * MSEC, iterations=60, work_cycles=500_000),
            tick_mode=TickMode.TICKLESS,
            seed=3,
            noise=False,
        )
        mean_idle = m.extra["halted_ns"] / m.extra["halt_episodes"]
        assert 4 * MSEC <= mean_idle <= 6 * MSEC

    def test_crossover_direction_agrees(self):
        """At high event rates the simulator, like the model, has
        tickless exceed periodic in total exits (§3.3)."""
        wl = SyncStormWorkload(threads=8, events_per_second=8000.0, duration_cycles=150_000_000)
        nohz = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=2, noise=False)
        per = run_workload(wl, tick_mode=TickMode.PERIODIC, seed=2, noise=False)
        nohz_rate = nohz.total_exits / nohz.exec_time_ns
        per_rate = per.total_exits / per.exec_time_ns
        assert nohz_rate > per_rate
