"""Long-run stability: no event/timer/op-queue leaks.

A leaked timer or op per idle transition would be invisible in short
runs but fatal for long experiments; these tests run multi-second
simulations and assert the bookkeeping stays bounded.
"""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.guest.noise import install_noise
from repro.sim.timebase import SEC
from tests.integration.helpers import build_stack


@pytest.mark.parametrize("mode", list(TickMode))
def test_noise_only_vm_runs_5s_without_leaks(mode):
    sim, machine, hv, vm, kernel = build_stack(tick_mode=mode, vcpus=2, seed=8)
    install_noise(kernel)
    hv.start()
    sim.run(until=5 * SEC)
    # Pending events stay bounded: per vCPU a handful of timers/chains,
    # not per-transition accumulation (5s of noise = ~200 transitions).
    assert sim.pending_events() < 60, f"{mode}: event leak ({sim.pending_events()} pending)"
    for vidx in range(2):
        ctx = kernel.ctx(vidx)
        assert len(ctx.ops) < 10, f"{mode}: op-queue leak on vCPU{vidx}"
        assert len(ctx.hrtimers) < 10, f"{mode}: hrtimer leak"
        assert len(ctx.wheel) < 10, f"{mode}: wheel-timer leak"
        assert len(ctx.io_done) == 0


@pytest.mark.parametrize("mode", [TickMode.TICKLESS, TickMode.PARATICK])
def test_exit_rate_is_stationary(mode):
    """The exit rate in the second half of a long idle-ish run matches
    the first half — no slow accumulation of timer churn."""
    sim, machine, hv, vm, kernel = build_stack(tick_mode=mode, vcpus=1, seed=9)
    install_noise(kernel)
    hv.start()
    sim.run(until=2 * SEC)
    first = vm.counters.total
    sim.run(until=4 * SEC)
    second = vm.counters.total - first
    assert second == pytest.approx(first, rel=0.5)


def test_wheel_jiffies_track_time_under_paratick():
    """Virtual ticks must keep jiffies advancing ~1:1 with real time on
    an active vCPU over a long run (timekeeping would drift otherwise)."""
    from repro.guest.task import Run, Task

    sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.PARATICK, seed=10)

    def body():
        yield Run(4_400_000_000)  # 2s of compute

    kernel.add_task(Task("t", body(), affinity=0))
    hv.start()
    sim.run(until=3 * SEC)
    jiffies = kernel.ctx(0).wheel.current_jiffies
    expected = 2 * SEC // (4 * 1_000_000)  # 2s of active ticks at 250Hz
    assert jiffies == pytest.approx(expected, rel=0.08)
