"""Randomized overcommit scenarios: host-scheduler invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import MachineSpec, TickMode, VmSpec
from repro.guest.kernel import GuestKernel
from repro.guest.task import Run, Task
from repro.host.kvm import Hypervisor
from repro.hw.cpu import CycleDomain, Machine
from repro.sim.engine import Simulator
from repro.sim.timebase import SEC


@given(
    nvcpus=st.integers(min_value=1, max_value=6),
    pcpus=st.integers(min_value=1, max_value=3),
    mode=st.sampled_from([TickMode.TICKLESS, TickMode.PARATICK]),
)
@settings(max_examples=20, deadline=None)
def test_overcommitted_compute_all_finishes_and_cpu_never_overbooked(nvcpus, pcpus, mode):
    """Any vCPU:pCPU ratio: every task finishes, no pCPU is overbooked,
    and total useful work equals the sum of task budgets."""
    sim = Simulator(seed=nvcpus * 10 + pcpus)
    machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=pcpus))
    hv = Hypervisor(sim, machine)
    pins = tuple(i % pcpus for i in range(nvcpus))
    vm = hv.create_vm(VmSpec(vcpus=nvcpus, tick_mode=mode, pinned_cpus=pins, noise=False))
    kernel = GuestKernel(vm)
    work = 22_000_000  # 10ms each at 2.2GHz
    done = []

    def body():
        yield Run(work)

    for i in range(nvcpus):
        kernel.add_task(Task(f"t{i}", body(), affinity=i))
    kernel.task_done_callbacks.append(lambda t: done.append(sim.now))
    hv.start()
    end = sim.run(until=10 * SEC)
    assert len(done) == nvcpus
    for cpu in machine.cpus:
        serialized = (
            cpu.busy_ns()
            - cpu.busy_ns(CycleDomain.HOST_TICK)
            - cpu.busy_ns(CycleDomain.HOST_IO)
        )
        assert serialized <= end + 1
    total_user = machine.total_busy_cycles(CycleDomain.GUEST_USER)
    assert total_user >= nvcpus * work
    # The busiest CPU carried at least its fair share of the work time.
    per_cpu_jobs = max(pins.count(c) for c in range(pcpus))
    min_span = machine.clock.cycles_to_ns(per_cpu_jobs * work)
    assert max(done) >= min_span
