"""Golden-trace conformance for the perturbation subsystem.

The committed fixture (tests/fixtures/golden_perturb.json) pins a
traced run for every perturbation kind — suspend, restore, hotplug,
drift — under all three tick modes: 12 cases, each with full RunMetrics
JSON and the SHA-256 of the structured event stream. Any behavioural
drift in the suspend/resume freeze, the restore clock jump, the hotplug
state machinery or the drift offset application diverges a hash here.

On top of the bit-identity replay, every case must also pass the full
perturbation-aware :class:`~repro.analysis.checkers.TickSanitizer` and
the reconcile battery — golden traces that violate the invariants they
exist to pin would be worthless.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import golden
from repro.analysis.checkers import TickSanitizer
from repro.analysis.reconcile import reconcile_run
from repro.config import MachineSpec, TickMode
from repro.experiments.runner import run_workload
from repro.obs.steal import StealTracker
from repro.sim.trace import TeeTracer

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "golden_perturb.json"

MODES = list(TickMode)
CASES = dict(golden.perturb_cases())


class TestPerturbFixture:
    def test_fixture_is_committed(self):
        assert FIXTURE.exists(), (
            "perturbation fixture missing; capture it with "
            "`PYTHONPATH=src python -m repro.analysis.golden --perturb --write`"
        )

    def test_battery_covers_every_kind_and_mode(self):
        data = golden.load(FIXTURE)
        want = {f"{kind}/{mode.value}" for kind in CASES for mode in MODES}
        assert set(data["cases"]) == want
        assert len(want) == 12

    def test_battery_matches_fixture(self):
        problems = golden.compare_perturb(FIXTURE)
        assert not problems, (
            "perturbation behaviour diverged:\n" + "\n".join(problems)
        )


class TestPerturbCasesAreSanitizerClean:
    @pytest.mark.parametrize("kind", sorted(CASES))
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_case_passes_sanitizer_and_reconcile(self, kind, mode):
        sanitizer = TickSanitizer(mode=mode)
        steal = StealTracker()
        internals = {}

        def inspect(sim, machine, hv, vm):
            internals.update(machine=machine, now=sim.now, hv=hv)

        metrics = run_workload(
            golden._perturb_workload(), tick_mode=mode, seed=5, cpuidle=True,
            perturbations=CASES[kind], tracer=TeeTracer(sanitizer, steal),
            inspect=inspect, label=f"golden-perturb-check/{kind}/{mode.value}",
        )
        problems = [str(v) for v in sanitizer.finish()]
        problems += reconcile_run(
            sanitizer, metrics,
            freq_hz=MachineSpec().freq_hz,
            machine=internals["machine"], now_ns=internals["now"],
            steal_tracker=steal, hv=internals["hv"],
        )
        assert not problems, "\n".join(problems)
