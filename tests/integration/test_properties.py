"""Randomized full-stack property tests.

Hypothesis generates small random workload mixes (compute, sleeps, sync,
faults) and the tests assert the invariants the whole reproduction rests
on, for every tick mode:

* the workload always completes (no lost wakeups, no deadlocks);
* per-CPU busy time never exceeds elapsed time;
* runs are bit-deterministic given the seed;
* paratick never takes more timer-related exits than tickless (§4.2);
* tick management never changes *what* is computed, only its cost.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TickMode
from repro.guest.sync import Barrier
from repro.guest.task import BarrierWait, PageFault, Run, Sleep, Task
from repro.sim.timebase import MSEC, SEC, USEC
from tests.integration.helpers import build_stack


@st.composite
def workload_script(draw):
    """A small random per-thread op script plus a thread count."""
    threads = draw(st.integers(min_value=1, max_value=4))
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["run", "sleep", "psleep", "barrier", "fault"]),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return threads, steps


def build_tasks(kernel, threads, steps, sim):
    barrier = Barrier(threads) if threads > 1 else None

    def body(i):
        for kind, scale in steps:
            if kind == "run":
                yield Run(scale * 300_000)
            elif kind == "sleep":
                yield Sleep(scale * MSEC)
            elif kind == "psleep":
                yield Sleep(scale * 100 * USEC, precise=True)
            elif kind == "fault":
                yield PageFault(scale)
            elif kind == "barrier" and barrier is not None:
                yield BarrierWait(barrier)
            else:
                yield Run(100_000)

    done = []

    def on_done(t):
        done.append(t.name)
        if len(done) == threads:
            sim.stop()

    for i in range(threads):
        kernel.add_task(Task(f"t{i}", body(i), affinity=i))
    kernel.task_done_callbacks.append(on_done)
    return done


def run_script(mode, threads, steps, seed=0):
    sim, machine, hv, vm, kernel = build_stack(tick_mode=mode, vcpus=threads, seed=seed)
    done = build_tasks(kernel, threads, steps, sim)
    hv.start()
    end = sim.run(until=30 * SEC)
    return sim, machine, vm, done, end


class TestRandomWorkloads:
    @given(script=workload_script(), mode=st.sampled_from(list(TickMode)))
    @settings(max_examples=30, deadline=None)
    def test_always_completes_and_accounts_sanely(self, script, mode):
        threads, steps = script
        sim, machine, vm, done, end = run_script(mode, threads, steps)
        assert len(done) == threads, f"lost wakeup/deadlock under {mode}"
        assert end < 30 * SEC, "hit the horizon"
        from repro.hw.cpu import CycleDomain

        for cpu in machine.cpus:
            # HOST_TICK and HOST_IO are accounted as *concurrent* host
            # service work (documented approximation); the serialized
            # timeline is everything else.
            serialized = (
                cpu.busy_ns()
                - cpu.busy_ns(CycleDomain.HOST_TICK)
                - cpu.busy_ns(CycleDomain.HOST_IO)
            )
            assert serialized <= end + 1, f"overbooked pCPU{cpu.index}"

    @given(script=workload_script())
    @settings(max_examples=15, deadline=None)
    def test_deterministic_given_seed(self, script):
        threads, steps = script

        def fingerprint():
            sim, machine, vm, done, end = run_script(TickMode.TICKLESS, threads, steps, seed=42)
            return (end, vm.counters.total, machine.total_busy_ns(), tuple(sorted(done)))

        assert fingerprint() == fingerprint()

    @given(script=workload_script())
    @settings(max_examples=15, deadline=None)
    def test_paratick_timer_exits_never_exceed_tickless(self, script):
        """§4.2: 'guaranteed to never induce more timer-related VM exits
        than tickless kernels' — on arbitrary workloads."""
        threads, steps = script
        _, _, vm_nohz, done_nohz, _ = run_script(TickMode.TICKLESS, threads, steps)
        _, _, vm_para, done_para, _ = run_script(TickMode.PARATICK, threads, steps)
        assert len(done_nohz) == len(done_para) == threads
        # Allow a tiny slack for boundary double-arming around ties.
        assert vm_para.counters.timer_related <= vm_nohz.counters.timer_related + 2

    @given(script=workload_script())
    @settings(max_examples=10, deadline=None)
    def test_useful_work_is_mode_independent(self, script):
        """Tick management must not change the application work done."""
        threads, steps = script
        from repro.hw.cpu import CycleDomain

        users = {}
        for mode in TickMode:
            _, machine, vm, done, _ = run_script(mode, threads, steps)
            assert len(done) == threads
            users[mode] = machine.total_busy_cycles(CycleDomain.GUEST_USER)
        lo, hi = min(users.values()), max(users.values())
        # Identical task scripts; only noise daemons' progress differs
        # slightly with run length.
        assert hi <= lo * 1.10 + 1_000_000
