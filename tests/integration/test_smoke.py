"""Full-stack smoke tests: boot each tick mode, run tasks, check the
fundamental exit-accounting properties the paper's analysis relies on."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.guest.task import Run, Sleep, Task
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.cpu import CycleDomain
from repro.sim.timebase import MSEC, SEC
from tests.integration.helpers import build_stack


def run_for(sim, hv, duration_ns):
    hv.start()
    sim.run(until=duration_ns)


class TestBootIdle:
    """An idle VM (no tasks) in each mode."""

    @pytest.mark.parametrize("mode", list(TickMode))
    def test_boots_and_idles(self, mode):
        sim, machine, hv, vm, kernel = build_stack(tick_mode=mode)
        run_for(sim, hv, SEC)
        assert sim.now == SEC
        # The vCPU spent almost all its time halted: busy a tiny fraction.
        assert machine.total_busy_ns() < SEC // 10

    def test_idle_tickless_vm_takes_no_periodic_ticks(self):
        """Fig. 1: a fully idle tickless guest stops its tick."""
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS)
        run_for(sim, hv, SEC)
        # Boot arms the tick once; the first idle entry cancels it. No
        # guest-tick deliveries should occur over a full second.
        assert vm.counters.by_tag(ExitTag.TIMER_GUEST_TICK) <= 2

    def test_idle_periodic_vm_takes_every_tick(self):
        """§3.1: periodic ticks arrive regardless of load (250/s).

        A tick to a *halted* vCPU is delivered by wake+inject (no exit at
        delivery — the vCPU was not in guest mode), but every tick then
        ends in a fresh HLT exit, so the idle VM still pays ~f_tick exits
        per second, exactly the §3.1 overcommit problem.
        """
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.PERIODIC)
        run_for(sim, hv, SEC)
        hlts = vm.counters.by_reason(ExitReason.HLT)
        assert 240 <= hlts <= 262
        assert vm.counters.total >= hlts

    def test_idle_paratick_vm_is_quiet(self):
        """§4.1: idle vCPUs receive no virtual ticks and arm no timers
        (no RCU/softirq work pending)."""
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.PARATICK)
        run_for(sim, hv, SEC)
        assert vm.counters.by_tag(ExitTag.TIMER_GUEST_TICK) == 0
        # Only the boot hypercall and at most an initial program.
        assert vm.counters.total <= 4


class TestComputeBound:
    """One CPU-bound task, no blocking."""

    def make(self, mode, work_cycles=2_200_000_000):  # ~1s at 2.2GHz
        sim, machine, hv, vm, kernel = build_stack(tick_mode=mode)
        done = []

        def body():
            yield Run(work_cycles)

        t = Task("spin", body(), affinity=0)
        kernel.add_task(t)
        kernel.task_done_callbacks.append(lambda task: done.append(sim.now))
        run_for(sim, hv, 2 * SEC)
        return sim, machine, hv, vm, kernel, t, done

    def test_task_completes_and_takes_at_least_its_work(self):
        sim, machine, hv, vm, kernel, t, done = self.make(TickMode.TICKLESS)
        assert len(done) == 1
        assert done[0] >= SEC  # 1s of work cannot finish early
        assert machine.cpu(0).busy_ns(CycleDomain.GUEST_USER) >= SEC - MSEC

    def test_tickless_active_ticks_cost_two_exits_each(self):
        """Active tickless: each tick = preemption-timer delivery + re-arm
        MSR write (the '2 x f_tick' of §3.2's active term)."""
        sim, machine, hv, vm, kernel, t, done = self.make(TickMode.TICKLESS)
        runtime_s = done[0] / SEC
        deliveries = vm.counters.by_reason(ExitReason.PREEMPTION_TIMER)
        programs = vm.counters.by_tag(ExitTag.TIMER_PROGRAM)
        expected_ticks = 250 * runtime_s
        assert deliveries == pytest.approx(expected_ticks, rel=0.1)
        assert programs == pytest.approx(expected_ticks, rel=0.15)

    def test_paratick_active_has_no_guest_timer_exits(self):
        """Paratick: an active vCPU causes no TIMER_PROGRAM or guest-tick
        delivery exits at all — ticks ride on host-tick exits."""
        sim, machine, hv, vm, kernel, t, done = self.make(TickMode.PARATICK)
        assert vm.counters.by_tag(ExitTag.TIMER_PROGRAM) == 0
        assert vm.counters.by_reason(ExitReason.PREEMPTION_TIMER) == 0
        # Host ticks still interrupt the running vCPU ~250/s.
        host_ticks = vm.counters.by_tag(ExitTag.TIMER_HOST_TICK)
        assert host_ticks == pytest.approx(250 * done[0] / SEC, rel=0.1)

    def test_paratick_receives_virtual_ticks_at_the_right_rate(self):
        """The guest must still see ~f_tick ticks (vector 235) while
        active, or timekeeping would break."""
        sim, machine, hv, vm, kernel, t, done = self.make(TickMode.PARATICK)
        ctx = kernel.ctx(0)
        # Wheel jiffies advanced to ~ the full runtime in ticks.
        expected_jiffies = done[0] // (4 * MSEC)
        assert ctx.wheel.current_jiffies == pytest.approx(expected_jiffies, rel=0.1)

    def test_paratick_fewer_exits_than_tickless(self):
        """The headline mechanism: same work, fewer exits."""
        *_, vm_nohz, k1, t1, d1 = self.make(TickMode.TICKLESS)[2:]
        out = self.make(TickMode.PARATICK)
        vm_para = out[3]
        assert vm_para.counters.total < vm_nohz.counters.total * 0.6

    def test_modes_agree_on_execution_semantics(self):
        """Execution completes in every mode; tick management must never
        change what the workload computes, only how long it takes."""
        times = {}
        for mode in TickMode:
            *_, done = self.make(mode)
            assert len(done) == 1
            times[mode] = done[0]
        # All within a few percent of each other.
        lo, hi = min(times.values()), max(times.values())
        assert hi / lo < 1.05


class TestSleepWake:
    """Timer-wheel sleeps drive idle entry/exit through each policy."""

    def make(self, mode, naps=20, nap_ns=10 * MSEC):
        sim, machine, hv, vm, kernel = build_stack(tick_mode=mode)
        done = []

        def body():
            for _ in range(naps):
                yield Run(100_000)
                yield Sleep(nap_ns)

        t = Task("napper", body(), affinity=0)
        kernel.add_task(t)
        kernel.task_done_callbacks.append(lambda task: done.append(sim.now))
        run_for(sim, hv, 2 * SEC)
        return sim, machine, hv, vm, kernel, done

    @pytest.mark.parametrize("mode", list(TickMode))
    def test_sleeps_complete_and_take_full_duration(self, mode):
        sim, machine, hv, vm, kernel, done = self.make(mode)
        assert len(done) == 1
        # 20 naps x 10ms >= 200ms; wheel granularity may round up.
        assert done[0] >= 200 * MSEC

    def test_tickless_pays_two_timer_programs_per_nap(self):
        """Fig. 1b/1c: stop tick on idle entry, restart on idle exit."""
        sim, machine, hv, vm, kernel, done = self.make(TickMode.TICKLESS)
        programs = vm.counters.by_tag(ExitTag.TIMER_PROGRAM)
        # ~2 per nap (one stop-and-defer write, one restart write).
        assert 20 * 1.5 <= programs <= 20 * 2.5 + 4

    def test_paratick_pays_at_most_one_program_per_nap(self):
        """Fig. 3c/3d: arm at idle entry only when needed and sooner,
        never touch hardware at idle exit."""
        sim, machine, hv, vm, kernel, done = self.make(TickMode.PARATICK)
        programs = vm.counters.by_tag(ExitTag.TIMER_PROGRAM)
        assert programs <= 20 + 3

    def test_paratick_never_worse_than_tickless(self):
        """§4.2: 'guaranteed to never induce more timer-related VM exits
        than tickless kernels'."""
        *_, vm_nohz, _, _ = self.make(TickMode.TICKLESS)[2:5], None, None
        sim, machine, hv, vm_nohz, kernel, done = self.make(TickMode.TICKLESS)
        sim2, machine2, hv2, vm_para, kernel2, done2 = self.make(TickMode.PARATICK)
        assert vm_para.counters.timer_related <= vm_nohz.counters.timer_related
