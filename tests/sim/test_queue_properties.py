"""Property tests for the event queue and the free-list reuse engine.

Seeded stdlib-``random`` interleavings of schedule/cancel/rearm/pop,
asserting the invariants the fast-path rewrite must preserve:

* pops come out in monotonically non-decreasing time order;
* events at the same timestamp fire in scheduling (FIFO) order;
* ``len`` stays consistent through mass cancellation;
* a cancelled event is never dispatched;
* re-used Event objects (the free list) never resurrect a cancelled or
  stale handle — including the same-instant dispatch-batch edge.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import _FREE_CAP, Event, EventQueue


def _drain(q: EventQueue) -> list[Event]:
    out = []
    while True:
        ev = q.pop()
        if ev is None:
            return out
        out.append(ev)


class TestRandomInterleavings:
    @pytest.mark.parametrize("seed", range(8))
    def test_pop_order_monotonic_under_churn(self, seed):
        rng = random.Random(seed)
        q = EventQueue()
        live = []
        for _ in range(500):
            op = rng.random()
            if op < 0.55 or not live:
                t = rng.randrange(0, 10_000)
                live.append(q.push(t, lambda: None))
            elif op < 0.80:
                ev = live.pop(rng.randrange(len(live)))
                ev.cancel()
                q.notify_cancelled()
            else:
                ev = live.pop(rng.randrange(len(live)))
                q.rearm(ev, rng.randrange(0, 10_000))
                live.append(ev)
        popped = _drain(q)
        times = [ev.time for ev in popped]
        assert times == sorted(times)
        assert len(q) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_fifo_among_same_timestamp(self, seed):
        rng = random.Random(seed)
        q = EventQueue()
        expected: list[Event] = []
        for _ in range(300):
            t = rng.randrange(0, 5)  # few distinct times → many ties
            expected.append(q.push(t, lambda: None))
        expected.sort(key=lambda ev: (ev.time, ev.seq))
        assert _drain(q) == expected  # object identity, not just times

    @pytest.mark.parametrize("seed", range(8))
    def test_len_consistent_after_mass_cancellation(self, seed):
        rng = random.Random(seed)
        q = EventQueue()
        handles = [q.push(rng.randrange(0, 1000), lambda: None) for _ in range(400)]
        doomed = rng.sample(handles, 250)
        for ev in doomed:
            ev.cancel()
            q.notify_cancelled()
        assert len(q) == 150
        survivors = _drain(q)
        assert len(survivors) == 150
        assert set(map(id, survivors)) == set(map(id, handles)) - set(map(id, doomed))
        assert len(q) == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_cancelled_event_never_dispatched(self, seed):
        rng = random.Random(seed)
        sim = Simulator()
        fired: list[int] = []
        cancelled: set[int] = set()
        handles: dict[int, object] = {}

        def make_cb(i):
            return lambda: fired.append(i)

        for i in range(300):
            handles[i] = sim.schedule(rng.randrange(0, 2000), make_cb(i))
        for i in rng.sample(sorted(handles), 120):
            sim.cancel(handles[i])
            cancelled.add(i)
        # Interleave fresh pushes so free-list reuse happens mid-run.
        def late_pushes():
            for j in range(300, 350):
                handles[j] = sim.schedule(rng.randrange(0, 1500), make_cb(j))
        sim.schedule(0, late_pushes)
        sim.run()
        assert not (set(fired) & cancelled)
        assert set(fired) == (set(handles) - cancelled)

    @pytest.mark.parametrize("seed", range(6))
    def test_rearm_fires_exactly_once_at_new_time(self, seed):
        rng = random.Random(seed)
        sim = Simulator()
        fired = []
        ev = sim.schedule(rng.randrange(1, 50), lambda: fired.append(sim.now))
        new_t = rng.randrange(100, 200)
        sim.rearm(ev, new_t)
        sim.run()
        assert fired == [new_t]


class TestQueueAccounting:
    def test_dead_counter_drains_to_zero(self):
        q = EventQueue()
        handles = [q.push(i, lambda: None) for i in range(100)]
        for ev in handles[::2]:
            ev.cancel()
            q.notify_cancelled()
        for ev in handles[1::4]:
            q.rearm(ev, ev.time + 1000)
        _drain(q)
        assert q._dead == 0
        assert len(q._heap) == 0

    def test_compaction_triggers_under_cancel_storm(self):
        q = EventQueue()
        handles = [q.push(i, lambda: None) for i in range(400)]
        for ev in handles[:-1]:
            ev.cancel()
            q.notify_cancelled()
        # Amortized compaction must have fired: the heap cannot still
        # hold all 399 dead entries.
        assert len(q._heap) < 400
        assert len(q) == 1

    def test_cancel_more_than_live_raises(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.notify_cancelled()
        with pytest.raises(SimulationError):
            q.notify_cancelled()


class TestFreeListSafety:
    """Satellite regression: free-list reuse must never resurrect a
    handle — most subtly when a cancel lands inside the same-instant
    dispatch batch."""

    def test_cancel_during_same_instant_batch_never_refires(self):
        sim = Simulator()
        fired = []
        handles = {}

        def a():
            fired.append("a")
            # Cancel b (same timestamp, later in this dispatch batch),
            # then push new same-instant events: with naive eager
            # recycling, one of these pushes could reuse b's object
            # while b's heap entry is still queued → ghost refire.
            sim.cancel(handles["b"])
            for i in range(5):
                handles[f"c{i}"] = sim.schedule(0, lambda i=i: fired.append(f"c{i}"))

        handles["a"] = sim.schedule(10, a)
        handles["b"] = sim.schedule(10, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "c0", "c1", "c2", "c3", "c4"]

    def test_cancelled_unreferenced_event_is_not_resurrected(self):
        sim = Simulator()
        fired = []

        def starter():
            # Cancel a handle and drop every reference to it, then
            # saturate the same instant with new events so the free
            # list is certainly exercised.
            ev = sim.schedule(0, lambda: fired.append("ghost"))
            sim.cancel(ev)
            del ev
            for i in range(10):
                sim.schedule(0, lambda i=i: fired.append(i))

        sim.schedule(5, starter)
        sim.run()
        assert fired == list(range(10))

    def test_held_handle_is_never_recycled(self):
        sim = Simulator()
        held = sim.schedule(1, lambda: None)
        churn = []
        def spin(n):
            if n:
                churn.append(sim.schedule(2, lambda: None))
                sim.schedule(3, spin, n - 1)
        sim.schedule(2, spin, 2 * _FREE_CAP)
        sim.run()
        # The held handle survived heavy free-list churn untouched:
        # still the same fired event, and cancel stays a safe no-op.
        assert held.fired and not held.pending
        sim.cancel(held)
        assert held.fired and not held.cancelled  # untouched: full no-op
        assert sim.pending_events() == 0

    def test_cancel_after_fire_is_noop_even_with_reuse(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1, lambda: fired.append("first"))
        sim.run()
        # first has fired; cancelling its stale handle now must not
        # affect whatever event the engine schedules next, even though
        # the engine may be reusing object memory internally.
        sim.cancel(first)
        second = sim.schedule(1, lambda: fired.append("second"))
        assert second.pending
        sim.run()
        assert fired == ["first", "second"]

    def test_rearm_of_pending_event_orphans_old_entry(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(10, lambda: fired.append(sim.now))
        sim.rearm(ev, 50)
        sim.rearm(ev, 30)  # re-arm again before anything fires
        sim.run()
        assert fired == [30]

    def test_rearm_interleaves_fifo_with_fresh_events(self):
        # A re-arm consumes exactly one sequence number, like the
        # cancel+schedule pair it replaces — same-instant ordering with
        # fresh events must reflect that.
        sim = Simulator()
        order = []
        ev = sim.schedule(5, lambda: order.append("rearmed"))
        sim.rearm(ev, 20)                       # seq bumped here...
        sim.schedule(20, lambda: order.append("fresh"))  # ...so this is later
        sim.run()
        assert order == ["rearmed", "fresh"]

    def test_rearm_dead_handle_revives_it(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1, lambda: fired.append("x"))
        sim.cancel(ev)
        sim.rearm(ev, 7)
        sim.run()
        assert fired == ["x"]
        assert ev.fired and not ev.pending

    def test_rearm_past_raises(self):
        sim = Simulator()
        ev = sim.schedule(100, lambda: None)
        sim.schedule(50, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.rearm(ev, sim.now - 1)

    def test_rearm_none_raises(self):
        with pytest.raises(SimulationError):
            Simulator().rearm(None, 10)
