"""Unit and property tests for repro.sim.timebase."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sim.timebase import MSEC, NSEC, SEC, USEC, CpuClock, fmt_time, hz_to_period_ns


class TestUnits:
    def test_unit_ratios(self):
        assert USEC == 1000 * NSEC
        assert MSEC == 1000 * USEC
        assert SEC == 1000 * MSEC

    def test_hz_to_period_250(self):
        assert hz_to_period_ns(250) == 4 * MSEC

    def test_hz_to_period_1000(self):
        assert hz_to_period_ns(1000) == MSEC

    def test_hz_to_period_rounds(self):
        # 3 Hz -> 333333333.33 ns, rounds to nearest.
        assert hz_to_period_ns(3) == 333333333

    def test_hz_to_period_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            hz_to_period_ns(0)
        with pytest.raises(ConfigError):
            hz_to_period_ns(-5)

    def test_huge_frequency_clamps_to_one_ns(self):
        assert hz_to_period_ns(10 * SEC) == 1


class TestFmtTime:
    @pytest.mark.parametrize(
        "ns,expect",
        [
            (0, "0ns"),
            (999, "999ns"),
            (1000, "1.000us"),
            (2_500_000, "2.500ms"),
            (3 * SEC, "3.000s"),
            (-1500, "-1.500us"),
        ],
    )
    def test_examples(self, ns, expect):
        assert fmt_time(ns) == expect


class TestCpuClock:
    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ConfigError):
            CpuClock(0)

    def test_cycles_to_ns_at_1ghz(self):
        clk = CpuClock(10**9)
        assert clk.cycles_to_ns(1) == 1
        assert clk.cycles_to_ns(1000) == 1000

    def test_cycles_to_ns_rounds_up(self):
        clk = CpuClock(2_200_000_000)
        # 1 cycle at 2.2 GHz is 0.4545ns -> must round up to 1ns.
        assert clk.cycles_to_ns(1) == 1
        # 11 cycles = 5ns exactly.
        assert clk.cycles_to_ns(11) == 5

    def test_zero_cycles_is_zero_ns(self):
        assert CpuClock(2_200_000_000).cycles_to_ns(0) == 0

    def test_negative_rejected(self):
        clk = CpuClock(10**9)
        with pytest.raises(ValueError):
            clk.cycles_to_ns(-1)
        with pytest.raises(ValueError):
            clk.ns_to_cycles(-1)

    def test_roundtrip_at_integer_ghz(self):
        clk = CpuClock(2 * 10**9)
        for cycles in (2, 1000, 123456):
            assert clk.ns_to_cycles(clk.cycles_to_ns(cycles)) == cycles

    def test_ghz_property(self):
        assert CpuClock(2_200_000_000).ghz == pytest.approx(2.2)

    @given(cycles=st.integers(min_value=1, max_value=10**12), freq=st.integers(min_value=10**6, max_value=10**10))
    def test_property_positive_work_takes_time(self, cycles, freq):
        assert CpuClock(freq).cycles_to_ns(cycles) >= 1

    @given(cycles=st.integers(min_value=0, max_value=10**12))
    def test_property_ceiling_bound(self, cycles):
        clk = CpuClock(2_200_000_000)
        ns = clk.cycles_to_ns(cycles)
        # ns is the smallest integer duration covering the cycles.
        assert ns * clk.freq_hz >= cycles * SEC or cycles == 0
        if ns > 1:
            assert (ns - 1) * clk.freq_hz < cycles * SEC

    @given(a=st.integers(min_value=0, max_value=10**9), b=st.integers(min_value=0, max_value=10**9))
    def test_property_monotonic(self, a, b):
        clk = CpuClock(2_200_000_000)
        if a <= b:
            assert clk.cycles_to_ns(a) <= clk.cycles_to_ns(b)
