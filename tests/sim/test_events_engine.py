"""Tests for the event queue and the simulator core."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(30, fired.append, (30,))
        q.push(10, fired.append, (10,))
        q.push(20, fired.append, (20,))
        times = []
        while (ev := q.pop()) is not None:
            times.append(ev.time)
        assert times == [10, 20, 30]

    def test_fifo_within_same_instant(self):
        q = EventQueue()
        evs = [q.push(5, lambda: None) for _ in range(10)]
        popped = [q.pop() for _ in range(10)]
        assert popped == evs

    def test_len_counts_live_only(self):
        q = EventQueue()
        ev = q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        ev.cancel()
        q.notify_cancelled()
        assert len(q) == 1

    def test_pop_skips_cancelled(self):
        q = EventQueue()
        a = q.push(1, lambda: None)
        b = q.push(2, lambda: None)
        a.cancel()
        q.notify_cancelled()
        assert q.pop() is b
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        a = q.push(1, lambda: None)
        q.push(7, lambda: None)
        a.cancel()
        q.notify_cancelled()
        assert q.peek_time() == 7

    def test_compact_drops_dead_entries(self):
        q = EventQueue()
        evs = [q.push(i, lambda: None) for i in range(100)]
        for ev in evs[::2]:
            ev.cancel()
            q.notify_cancelled()
        q.compact()
        assert len(q._heap) == 50
        assert q.peek_time() == 1

    @given(times=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_property_pop_is_sorted_and_stable(self, times):
        q = EventQueue()
        handles = [q.push(t, lambda: None) for t in times]
        order = {ev.seq: i for i, ev in enumerate(handles)}
        out = []
        while (ev := q.pop()) is not None:
            out.append(ev)
        # Sorted by time; ties in insertion order.
        keys = [(ev.time, order[ev.seq]) for ev in out]
        assert keys == sorted(keys)
        assert len(out) == len(times)


class TestSimulatorScheduling:
    def test_now_starts_at_zero(self):
        assert Simulator().now == 0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(50, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 100

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        end = sim.run(until=500)
        assert end == 500
        assert sim.now == 500

    def test_events_at_horizon_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(500, fired.append, 1)
        sim.schedule(501, fired.append, 2)
        sim.run(until=500)
        assert fired == [1]
        assert sim.pending_events() == 1

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_zero_delay_fires_after_current_callback(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0, order.append, "inner")

        sim.schedule(5, outer)
        sim.schedule(5, order.append, "peer")
        sim.run()
        assert order == ["outer", "peer", "inner"]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(10, fired.append, 1)
        sim.cancel(ev)
        sim.run()
        assert fired == []
        assert sim.pending_events() == 0

    def test_cancel_none_and_dead_is_noop(self):
        sim = Simulator()
        sim.cancel(None)
        ev = sim.schedule(1, lambda: None)
        sim.run()
        sim.cancel(ev)  # already fired
        sim.cancel(ev)

    def test_stop_ends_run_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: (fired.append(1), sim.stop()))
        sim.schedule(20, fired.append, 2)
        sim.run()
        assert fired == [1]
        assert sim.now == 10
        # A later run picks up the remaining event.
        sim.run()
        assert fired == [1, 2]

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        caught = []

        def reenter():
            try:
                sim.run()
            except SimulationError as e:
                caught.append(e)

        sim.schedule(1, reenter)
        sim.run()
        assert len(caught) == 1

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_dispatched_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.dispatched == 7

    def test_callbacks_can_chain(self):
        """A self-rescheduling callback models a periodic timer."""
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                sim.schedule(100, tick)

        sim.schedule(100, tick)
        sim.run()
        assert ticks == [100, 200, 300, 400, 500]

    @given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_property_clock_is_monotonic(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(delays)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a, b = Simulator(seed=42), Simulator(seed=42)
        xa = [a.rng.exponential_ns("dev", 1000.0) for _ in range(100)]
        xb = [b.rng.exponential_ns("dev", 1000.0) for _ in range(100)]
        assert xa == xb

    def test_different_seed_differs(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        xa = [a.rng.exponential_ns("dev", 1000.0) for _ in range(20)]
        xb = [b.rng.exponential_ns("dev", 1000.0) for _ in range(20)]
        assert xa != xb

    def test_streams_are_independent_of_creation_order(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        # Touch streams in different orders; each named stream must be equal.
        a1 = a.rng.stream("one").integers(0, 1000, size=10).tolist()
        a2 = a.rng.stream("two").integers(0, 1000, size=10).tolist()
        b2 = b.rng.stream("two").integers(0, 1000, size=10).tolist()
        b1 = b.rng.stream("one").integers(0, 1000, size=10).tolist()
        assert a1 == b1
        assert a2 == b2
