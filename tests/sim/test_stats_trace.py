"""Tests for online statistics, histograms and tracing."""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.stats import Histogram, OnlineStats, geomean
from repro.sim.trace import CallbackTracer, NullTracer, RingTracer


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_single_sample(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert math.isnan(s.variance)
        assert s.min == s.max == 5.0

    def test_matches_statistics_module(self):
        xs = [3.0, 1.5, 7.25, -2.0, 4.0, 4.0]
        s = OnlineStats()
        s.add_many(xs)
        assert s.mean == pytest.approx(statistics.fmean(xs))
        assert s.variance == pytest.approx(statistics.variance(xs))
        assert s.stdev == pytest.approx(statistics.stdev(xs))
        assert s.min == min(xs) and s.max == max(xs)
        assert s.total == pytest.approx(sum(xs))

    @given(xs=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=300))
    @settings(max_examples=50)
    def test_property_welford_matches_two_pass(self, xs):
        s = OnlineStats()
        s.add_many(xs)
        assert s.mean == pytest.approx(statistics.fmean(xs), abs=1e-6)
        assert s.variance == pytest.approx(statistics.variance(xs), rel=1e-6, abs=1e-6)

    @given(
        xs=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100),
        ys=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100),
    )
    @settings(max_examples=50)
    def test_property_merge_equals_concat(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        a.add_many(xs)
        b.add_many(ys)
        c.add_many(xs + ys)
        m = a.merge(b)
        assert m.n == c.n
        assert m.mean == pytest.approx(c.mean, abs=1e-6)
        assert m.variance == pytest.approx(c.variance, rel=1e-5, abs=1e-5)
        assert m.min == c.min and m.max == c.max

    def test_merge_with_empty(self):
        a, b = OnlineStats(), OnlineStats()
        a.add(1.0)
        m1, m2 = a.merge(b), b.merge(a)
        assert m1.n == m2.n == 1
        assert m1.mean == m2.mean == 1.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram()
        for x in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            h.add(x)
        nz = dict(h.nonzero())
        assert nz[0] == 2  # 0 and 1
        assert nz[2] == 2  # 2, 3
        assert nz[4] == 2  # 4, 7
        assert nz[8] == 1
        assert nz[512] == 1  # 1023
        assert nz[1024] == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_quantile_bounds(self):
        h = Histogram()
        for _ in range(90):
            h.add(10)
        for _ in range(10):
            h.add(10_000)
        assert h.quantile(0.5) == 15  # bucket [8,16)
        assert h.quantile(0.99) == 16383  # bucket [8192,16384)

    def test_quantile_empty_and_range(self):
        h = Histogram()
        assert h.quantile(0.5) == 0
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestTracers:
    def test_null_tracer_disabled(self):
        t = NullTracer()
        assert not t.enabled
        t.emit(0, "x", "y")  # must not raise

    def test_ring_tracer_retains_and_filters(self):
        t = RingTracer(capacity=3, kinds={"keep"})
        for i in range(5):
            t.emit(i, "src", "keep", i)
        t.emit(99, "src", "drop")
        assert t.offered == 6
        assert [r.detail for r in t.records] == [2, 3, 4]
        assert [r.time for r in t.of_kind("keep")] == [2, 3, 4]
        assert t.kinds() == {"keep": 3}

    def test_ring_tracer_capacity_positive(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_ring_tracer_counts_drops(self):
        """Overflow evictions are counted, not silent: a consumer can
        tell a complete trace from a suffix."""
        t = RingTracer(capacity=3)
        for i in range(3):
            t.emit(i, "src", "k")
        assert t.dropped == 0 and not t.truncated
        t.emit(3, "src", "k")
        t.emit(4, "src", "k")
        assert t.dropped == 2 and t.truncated
        assert [r.time for r in t.records] == [2, 3, 4]
        assert t.offered == 5

    def test_ring_tracer_filtered_records_are_not_drops(self):
        """Kind-filtered records never entered the ring, so they do not
        count as evictions."""
        t = RingTracer(capacity=2, kinds={"keep"})
        for i in range(5):
            t.emit(i, "src", "drop")
        assert t.dropped == 0 and not t.truncated

    def test_callback_tracer(self):
        got = []
        t = CallbackTracer(got.append)
        t.emit(5, "src", "kind", "d")
        assert len(got) == 1
        assert got[0].time == 5 and got[0].kind == "kind"
        assert "kind" in str(got[0])
