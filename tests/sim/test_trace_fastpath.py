"""NullTracer fast-path audit: with tracing disabled, no component may
call ``emit`` or build a detail object on the hot path.

The proof is an exploding tracer: ``enabled`` is False like NullTracer,
but ``emit`` raises. Full workload runs — including the overcommitted
and cpuidle paths, which trace the most — must complete untouched,
demonstrating every call site checks ``tracer.enabled`` first.

Also covers TeeTracer, the fan-out used to attach the sanitizer
alongside a user tracer without losing that fast path.
"""

from __future__ import annotations

import pytest

from repro.config import MachineSpec, TickMode
from repro.experiments.runner import run_workload
from repro.sim.trace import NullTracer, RingTracer, TeeTracer, Tracer
from repro.sim.timebase import USEC
from repro.workloads.micro import IdlePeriodWorkload, PingPongWorkload


class ExplodingTracer(Tracer):
    """Disabled like NullTracer, but any emit call is a test failure."""

    enabled = False

    def emit(self, time, source, kind, detail=None):
        raise AssertionError(
            f"emit called with tracing disabled: {kind} from {source} "
            f"(detail={detail!r}) — an emit call site is missing its "
            f"'tracer.enabled' guard"
        )


class TestDisabledTracerDoesZeroWork:
    def test_idle_run_never_emits(self):
        run_workload(
            IdlePeriodWorkload(300 * USEC, iterations=5, work_cycles=100_000),
            tick_mode=TickMode.TICKLESS, seed=3, cpuidle=True,
            tracer=ExplodingTracer(),
        )

    @pytest.mark.parametrize("mode", list(TickMode))
    def test_all_tick_modes_never_emit(self, mode):
        run_workload(
            PingPongWorkload(rounds=40), tick_mode=mode, seed=3,
            tracer=ExplodingTracer(),
        )

    def test_overcommitted_run_never_emits(self):
        run_workload(
            PingPongWorkload(rounds=40), tick_mode=TickMode.PARATICK, seed=3,
            machine_spec=MachineSpec(sockets=1, cpus_per_socket=1),
            pinned_cpus=(0, 0), tracer=ExplodingTracer(),
        )

    def test_null_tracer_default_matches(self):
        """The default (no tracer argument) takes the same fast path."""
        a = run_workload(PingPongWorkload(rounds=40), seed=3)
        b = run_workload(PingPongWorkload(rounds=40), seed=3,
                         tracer=ExplodingTracer())
        assert a.total_cycles == b.total_cycles
        assert a.exec_time_ns == b.exec_time_ns


class TestTeeTracer:
    def test_fans_out_to_all_sinks(self):
        a, b = RingTracer(), RingTracer()
        tee = TeeTracer(a, b)
        tee.emit(1, "s", "k", (2,))
        assert len(a.records) == len(b.records) == 1
        assert a.records[0] == b.records[0]

    def test_skips_disabled_sinks(self):
        ring = RingTracer()
        tee = TeeTracer(ExplodingTracer(), ring)  # must not explode
        tee.emit(1, "s", "k")
        assert len(ring.records) == 1

    def test_enabled_iff_any_sink_enabled(self):
        assert TeeTracer(NullTracer(), RingTracer()).enabled is True
        assert TeeTracer(NullTracer()).enabled is False
        assert TeeTracer(NullTracer(), NullTracer()).enabled is False

    def test_all_disabled_tee_preserves_fast_path(self):
        """A tee of disabled sinks is itself disabled, so call sites
        skip it entirely — verified through a full run."""
        run_workload(PingPongWorkload(rounds=40), seed=3,
                     tracer=TeeTracer(ExplodingTracer(), NullTracer()))

    def test_empty_tee_rejected(self):
        with pytest.raises(ValueError):
            TeeTracer()


class TestTeeWithObsSinks:
    """The observability layer composes through TeeTracer: its sinks are
    always-on tracers, so the tee must report enabled, and the builder
    must never wrap a disabled user tracer in an enabled tee for free."""

    def test_obs_sinks_enable_the_tee(self):
        from repro.obs.steal import StealTracker

        assert TeeTracer(NullTracer(), StealTracker()).enabled is True

    def test_obs_builder_propagates_enabled(self):
        from repro.obs import ObsConfig, Observability

        on = Observability(ObsConfig(trace_export=True))
        assert on.tracer(None).enabled is True
        assert on.tracer(ExplodingTracer()).enabled is True
        off = Observability(ObsConfig(
            profile=False, latency=False, steal=False, trace_export=False))
        # No sinks: the user's disabled tracer passes through untouched,
        # keeping the zero-work fast path.
        exploding = ExplodingTracer()
        assert off.tracer(exploding) is exploding
        run_workload(PingPongWorkload(rounds=40), seed=3,
                     tracer=off.tracer(ExplodingTracer()))


class TestCallbackTracerUnderExporter:
    def test_callback_stream_exports_to_valid_chrome_trace(self):
        """A CallbackTracer collecting the live stream feeds the Chrome
        exporter just like a RingTracer dump — streaming consumers are
        not second-class."""
        from repro.sim.trace import CallbackTracer
        from repro.obs.export import to_chrome_trace, validate_chrome_trace

        got = []
        run_workload(PingPongWorkload(rounds=40), seed=3,
                     tracer=CallbackTracer(got.append))
        assert got, "callback tracer saw no records"
        doc = to_chrome_trace(got)
        assert validate_chrome_trace(doc) == []
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
