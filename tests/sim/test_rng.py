"""Focused tests for the deterministic RNG streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngStreams


class TestStreams:
    def test_same_name_same_stream_object(self):
        r = RngStreams(1)
        assert r.stream("a") is r.stream("a")

    def test_different_names_independent(self):
        r1, r2 = RngStreams(5), RngStreams(5)
        # Drawing heavily from "x" must not perturb "y".
        r1.stream("x").random(10_000)
        a = r1.stream("y").integers(0, 10**9, 100).tolist()
        b = r2.stream("y").integers(0, 10**9, 100).tolist()
        assert a == b

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RngStreams("not an int")  # type: ignore[arg-type]

    def test_names_listing(self):
        r = RngStreams(0)
        r.stream("b")
        r.stream("a")
        assert r.names() == ["a", "b"]

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            RngStreams(0).exponential_ns("s", 0)

    def test_uniform_range(self):
        r = RngStreams(3)
        xs = [r.uniform_ns("u", 5, 7) for _ in range(200)]
        assert set(xs) <= {5, 6, 7}
        assert len(set(xs)) == 3
        with pytest.raises(ValueError):
            r.uniform_ns("u", 7, 5)

    @given(mean=st.floats(min_value=1, max_value=1e9))
    @settings(max_examples=30)
    def test_property_draws_positive(self, mean):
        r = RngStreams(0)
        assert r.exponential_ns("e", mean) >= 1
        assert r.normal_ns("n", mean, mean) >= 1

    def test_exponential_mean_statistical(self):
        r = RngStreams(11)
        n = 20_000
        xs = [r.exponential_ns("m", 1000.0) for _ in range(n)]
        assert sum(xs) / n == pytest.approx(1000.0, rel=0.05)
