"""Tests for the generator-process layer."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import TIMED_OUT, Delay, Signal, WaitSignal, every, spawn


class TestDelay:
    def test_sequential_delays(self):
        sim = Simulator()
        marks = []

        def body():
            marks.append(sim.now)
            yield Delay(100)
            marks.append(sim.now)
            yield Delay(250)
            marks.append(sim.now)

        spawn(sim, body())
        sim.run()
        assert marks == [0, 100, 350]

    def test_body_does_not_run_before_spawn_returns(self):
        sim = Simulator()
        marks = []

        def body():
            marks.append("ran")
            yield Delay(1)

        spawn(sim, body())
        assert marks == []  # nothing until the engine runs
        sim.run()
        assert marks == ["ran"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Delay(-5)

    def test_return_value_captured(self):
        sim = Simulator()

        def body():
            yield Delay(10)
            return 42

        p = spawn(sim, body())
        sim.run()
        assert p.finished and p.result == 42


class TestSignals:
    def test_wait_and_fire(self):
        sim = Simulator()
        sig = Signal("s")
        got = []

        def waiter():
            value = yield WaitSignal(sig)
            got.append((sim.now, value))

        spawn(sim, waiter())
        sim.schedule(500, sig.fire, "hello")
        sim.run()
        assert got == [(500, "hello")]

    def test_bare_signal_yield_is_wait(self):
        sim = Simulator()
        sig = Signal()
        got = []

        def waiter():
            value = yield sig
            got.append(value)

        spawn(sim, waiter())
        sim.schedule(5, sig.fire, 7)
        sim.run()
        assert got == [7]

    def test_fire_wakes_all_waiters_in_order(self):
        sim = Simulator()
        sig = Signal()
        woke = []

        def waiter(i):
            yield WaitSignal(sig)
            woke.append(i)

        for i in range(5):
            spawn(sim, waiter(i))
        sim.schedule(10, sig.fire)
        sim.run()
        assert woke == [0, 1, 2, 3, 4]

    def test_signal_reusable_across_fires(self):
        sim = Simulator()
        sig = Signal()
        woke = []

        def waiter():
            yield WaitSignal(sig)
            woke.append(sim.now)
            yield WaitSignal(sig)
            woke.append(sim.now)

        spawn(sim, waiter())
        sim.schedule(10, sig.fire)
        sim.schedule(20, sig.fire)
        sim.run()
        assert woke == [10, 20]

    def test_fire_returns_waiter_count(self):
        sim = Simulator()
        sig = Signal()

        def waiter():
            yield WaitSignal(sig)

        spawn(sim, waiter())
        spawn(sim, waiter())
        counts = []
        sim.schedule(10, lambda: counts.append(sig.fire()))
        sim.run()
        assert counts == [2]

    def test_timeout_returns_sentinel(self):
        sim = Simulator()
        sig = Signal()
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout_ns=100)
            got.append((sim.now, value))

        spawn(sim, waiter())
        sim.run()
        assert got == [(100, TIMED_OUT)]
        assert sig.waiter_count == 0  # waiter removed on timeout

    def test_fire_before_timeout_cancels_timeout(self):
        sim = Simulator()
        sig = Signal()
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout_ns=100)
            got.append((sim.now, value))
            yield Delay(1000)

        spawn(sim, waiter())
        sim.schedule(50, sig.fire, "v")
        sim.run()
        assert got == [(50, "v")]

    def test_done_signal_fires_with_result(self):
        sim = Simulator()
        results = []

        def child():
            yield Delay(30)
            return "done!"

        def parent():
            p = spawn(sim, child())
            value = yield WaitSignal(p.done_signal)
            results.append((sim.now, value))

        spawn(sim, parent())
        sim.run()
        assert results == [(30, "done!")]


class TestKillAndErrors:
    def test_kill_stops_body(self):
        sim = Simulator()
        marks = []

        def body():
            yield Delay(100)
            marks.append("should not run")

        p = spawn(sim, body())
        sim.schedule(50, p.kill)
        sim.run()
        assert marks == []
        assert p.finished

    def test_kill_removes_signal_waiter(self):
        sim = Simulator()
        sig = Signal()

        def body():
            yield WaitSignal(sig)

        p = spawn(sim, body())
        sim.schedule(10, p.kill)
        sim.run()
        assert sig.waiter_count == 0

    def test_unknown_yield_raises(self):
        sim = Simulator()

        def body():
            yield "nonsense"

        spawn(sim, body())
        with pytest.raises(SimulationError):
            sim.run()


class TestEvery:
    def test_periodic_calls(self):
        sim = Simulator()
        marks = []
        every(sim, 100, lambda: marks.append(sim.now))
        sim.run(until=550)
        assert marks == [100, 200, 300, 400, 500]

    def test_start_offset(self):
        sim = Simulator()
        marks = []
        every(sim, 100, lambda: marks.append(sim.now), start_after_ns=30)
        sim.run(until=350)
        assert marks == [30, 130, 230, 330]

    def test_nonpositive_period_rejected(self):
        with pytest.raises(SimulationError):
            every(Simulator(), 0, lambda: None)
