"""Tests for the fio and microbenchmark workload models."""

from __future__ import annotations

import pytest

from repro.config import IoDeviceKind, TickMode
from repro.errors import WorkloadError
from repro.experiments.runner import run_workload
from repro.host.exitreasons import ExitReason
from repro.sim.timebase import MSEC, SEC, USEC
from repro.workloads import fio
from repro.workloads.micro import (
    IdlePeriodWorkload,
    IdleWorkload,
    PingPongWorkload,
    SyncStormWorkload,
)


class TestFioJobSpec:
    def test_category_classification(self):
        assert fio.FioJob("seqr", 4096).is_read and not fio.FioJob("seqr", 4096).is_random
        assert fio.FioJob("rndr", 4096).is_read and fio.FioJob("rndr", 4096).is_random
        assert not fio.FioJob("seqwr", 4096).is_read
        assert fio.FioJob("rndwr", 4096).is_random

    def test_invalid_category(self):
        with pytest.raises(WorkloadError):
            fio.FioJob("bogus", 4096)

    def test_all_jobs_cover_sweep(self):
        jobs = fio.all_jobs()
        assert len(jobs) == len(fio.CATEGORIES) * len(fio.BLOCK_SIZES)

    def test_op_count(self):
        wl = fio.job("seqr", 4096, total_bytes=1 << 20)
        assert wl.ops == 256

    def test_too_small_total_rejected(self):
        with pytest.raises(WorkloadError):
            fio.job("seqr", 65536, total_bytes=1024)


class TestFioExecution:
    def test_read_job_blocks_per_op(self):
        """Sync reads: one HLT (idle) and one kick exit per operation."""
        wl = fio.job("seqr", 4096, total_bytes=64 * 4096)
        m = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=1, noise=False)
        kicks = m.exits.by_reason(ExitReason.IO_INSTRUCTION)
        assert kicks == 64
        assert m.exits.by_reason(ExitReason.HLT) >= 60

    def test_write_batching_reduces_device_ops(self):
        """Writeback: WRITE_BATCH writes per flush."""
        wl = fio.job("seqwr", 4096, total_bytes=64 * 4096)
        m = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=1, noise=False)
        kicks = m.exits.by_reason(ExitReason.IO_INSTRUCTION)
        assert kicks == 64 // fio.WRITE_BATCH

    def test_larger_blocks_higher_bandwidth(self):
        def mbps(bs):
            wl = fio.job("seqr", bs, total_bytes=2 << 20)
            m = run_workload(wl, seed=2, noise=False)
            return wl.total_bytes / (m.exec_time_ns / 1e9)

        assert mbps(65536) > mbps(4096)

    def test_random_reads_slower_than_sequential(self):
        def t(cat):
            m = run_workload(fio.job(cat, 4096, total_bytes=2 << 20), seed=3, noise=False)
            return m.exec_time_ns

        assert t("rndr") > t("seqr")

    def test_hdd_much_slower_than_ssd(self):
        def t(kind):
            m = run_workload(
                fio.job("rndr", 4096, total_bytes=256 * 4096),
                device_kind=kind,
                seed=4,
                noise=False,
            )
            return m.exec_time_ns

        assert t(IoDeviceKind.HDD) > 5 * t(IoDeviceKind.SATA_SSD)


class TestMicroWorkloads:
    def test_idle_workload_runs_to_horizon(self):
        m = run_workload(IdleWorkload(vcpus=2), horizon_ns=SEC // 4, noise=False)
        assert m.exec_time_ns == SEC // 4

    def test_sync_storm_rate(self):
        """The configured VM-wide blocking rate is roughly achieved."""
        wl = SyncStormWorkload(threads=4, events_per_second=2000.0, duration_cycles=200_000_000)
        m = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=5)
        secs = m.exec_time_ns / 1e9
        hlts = m.exits.by_reason(ExitReason.HLT) / secs
        # Each barrier episode blocks 3 of 4 threads.
        assert 800 <= hlts <= 3_000

    def test_sync_storm_validation(self):
        with pytest.raises(WorkloadError):
            SyncStormWorkload(threads=1)
        with pytest.raises(WorkloadError):
            SyncStormWorkload(events_per_second=0)

    def test_pingpong_completes_both_sides(self):
        m = run_workload(PingPongWorkload(rounds=100), seed=6)
        assert m.exec_time_ns > 0

    def test_pingpong_same_vcpu_no_deadlock(self):
        """The permit-banking CondVar prevents the lost-signal hang."""
        m = run_workload(PingPongWorkload(rounds=50, same_vcpu=True), seed=6, horizon_ns=5 * SEC)
        assert m.exec_time_ns < 5 * SEC

    def test_pingpong_cross_vcpu_sends_ipis(self):
        m = run_workload(PingPongWorkload(rounds=200), seed=7)
        from repro.host.exitreasons import ExitTag

        assert m.exits.by_tag(ExitTag.IPI) >= 200

    def test_idle_period_workload_duration_scales(self):
        short = run_workload(IdlePeriodWorkload(1 * MSEC, iterations=50), seed=8, noise=False)
        long_ = run_workload(IdlePeriodWorkload(10 * MSEC, iterations=50), seed=8, noise=False)
        assert long_.exec_time_ns > short.exec_time_ns * 5

    def test_idle_period_validation(self):
        with pytest.raises(WorkloadError):
            IdlePeriodWorkload(0)
