"""Tests for the PARSEC workload models."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.errors import WorkloadError
from repro.experiments.runner import run_workload
from repro.workloads import parsec


class TestProfiles:
    def test_thirteen_benchmarks(self):
        """§6.1: 'This benchmark suite contains 13 varied, realistic
        computation-intensive workloads.'"""
        assert len(parsec.BENCHMARK_NAMES) == 13

    def test_known_names(self):
        for name in ("blackscholes", "dedup", "fluidanimate", "streamcluster", "x264"):
            assert name in parsec.BENCHMARK_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            parsec.profile("quake3")
        with pytest.raises(WorkloadError):
            parsec.benchmark("quake3")

    def test_sync_kinds_are_valid(self):
        for p in parsec.PROFILES.values():
            assert p.sync_kind in ("barrier", "lock", "pipeline", "none")

    def test_step_cycles_inverse_of_sync_rate(self):
        p = parsec.profile("streamcluster")
        assert p.step_cycles() == int(parsec.NOMINAL_HZ / p.sync_hz)

    def test_swaptions_is_unsynchronized(self):
        assert parsec.profile("swaptions").sync_kind == "none"

    def test_invalid_construction(self):
        with pytest.raises(WorkloadError):
            parsec.ParsecWorkload("dedup", threads=0)
        with pytest.raises(WorkloadError):
            parsec.ParsecWorkload("dedup", target_cycles=0)

    def test_io_device_only_when_profile_reads(self):
        assert parsec.benchmark("dedup").io_device is not None
        assert parsec.benchmark("swaptions").io_device is None


class TestExecution:
    @pytest.mark.parametrize("bench", ["blackscholes", "fluidanimate", "dedup", "swaptions"])
    def test_each_sync_kind_completes_parallel(self, bench):
        """One representative of each sync kind runs to completion."""
        wl = parsec.benchmark(bench, threads=4, target_cycles=30_000_000)
        m = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=1)
        assert m.exec_time_ns > 0
        assert m.useful_cycles > 4 * 20_000_000  # most of the work budget

    def test_sequential_completes(self):
        m = run_workload(parsec.benchmark("canneal", target_cycles=50_000_000), seed=2)
        assert m.exec_time_ns > 20_000_000  # at least the raw compute time

    def test_same_seed_reproduces_exactly(self):
        def once():
            m = run_workload(
                parsec.benchmark("streamcluster", threads=4, target_cycles=40_000_000), seed=11
            )
            return (m.exec_time_ns, m.total_exits, m.total_cycles)

        assert once() == once()

    def test_different_seeds_differ(self):
        def once(seed):
            m = run_workload(
                parsec.benchmark("streamcluster", threads=4, target_cycles=40_000_000), seed=seed
            )
            return (m.exec_time_ns, m.total_exits)

        assert once(1) != once(2)

    def test_higher_sync_rate_means_more_exits(self):
        """The §3.2 mechanism: blocking rate drives tickless exits."""
        lo = run_workload(parsec.benchmark("freqmine", threads=4, target_cycles=60_000_000), seed=3)
        hi = run_workload(parsec.benchmark("streamcluster", threads=4, target_cycles=60_000_000), seed=3)
        assert hi.exits_per_second() > lo.exits_per_second()

    def test_pipeline_all_items_flow(self):
        """Pipeline stages process every item (no deadlock, no loss)."""
        wl = parsec.benchmark("dedup", threads=4, target_cycles=40_000_000)
        m = run_workload(wl, seed=4)
        assert m.exec_time_ns > 0  # run_workload raises if incomplete
