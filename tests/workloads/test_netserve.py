"""Tests for the network-service (RPC) workload, run end-to-end through
``run_workload`` under all three tick modes."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.errors import WorkloadError
from repro.experiments.runner import run_workload
from repro.host.exitreasons import ExitReason
from repro.hw.nic import DATACENTER_10G, DATACENTER_100G
from repro.workloads.netserve import NetServiceWorkload

MODES = list(TickMode)


class TestConstruction:
    def test_defaults(self):
        wl = NetServiceWorkload()
        assert wl.default_vcpus() == 1
        assert wl.name == "netserve.w1"
        assert wl.nic_profile is DATACENTER_10G

    def test_invalid_params_rejected(self):
        with pytest.raises(WorkloadError):
            NetServiceWorkload(workers=0)
        with pytest.raises(WorkloadError):
            NetServiceWorkload(requests=0)
        with pytest.raises(WorkloadError):
            NetServiceWorkload(think_cycles=-1)

    def test_worker_count_sets_vcpus(self):
        assert NetServiceWorkload(workers=3).default_vcpus() == 3


class TestExecution:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_completes_under_every_tick_mode(self, mode):
        wl = NetServiceWorkload(workers=2, requests=40, think_cycles=20_000)
        m = run_workload(wl, tick_mode=mode, seed=7, noise=False)
        # Every RPC blocks on the NIC: one kick exit per request.
        assert m.exits.by_reason(ExitReason.IO_INSTRUCTION) == 80
        assert m.exec_time_ns > 0
        assert m.useful_cycles > 0

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_deterministic_per_mode(self, mode):
        def run():
            return run_workload(
                NetServiceWorkload(workers=2, requests=30, think_cycles=15_000),
                tick_mode=mode, seed=11,
            ).to_json_dict()

        assert run() == run()

    def test_faster_link_finishes_sooner(self):
        def exec_time(profile):
            return run_workload(
                NetServiceWorkload(workers=1, requests=60, think_cycles=10_000,
                                   profile=profile),
                tick_mode=TickMode.TICKLESS, seed=3, noise=False,
            ).exec_time_ns

        assert exec_time(DATACENTER_100G) < exec_time(DATACENTER_10G)

    def test_paratick_reduces_timer_exits_vs_tickless(self):
        """The paper's headline effect on the microsecond-idle RPC
        pattern: round-trip waits are brief idle periods, so paratick
        strips the timer-management exits tickless pays for them."""
        def timer_exits(mode):
            return run_workload(
                NetServiceWorkload(workers=2, requests=80, think_cycles=20_000),
                tick_mode=mode, seed=5,
            ).timer_exits

        assert timer_exits(TickMode.PARATICK) < timer_exits(TickMode.TICKLESS)
