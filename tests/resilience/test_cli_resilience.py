"""CLI + report surface of the resilience layer.

``matrix run --journal/--resume``, ``cache verify|gc``, the chaos
fleet smoke, and the ``telemetry report`` recovery section — the same
machinery the CI chaos job drives, exercised through ``main()``.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.experiments.parallel import run_grid
from repro.resilience.chaos import corrupt_cache_entry
from repro.resilience.integrity import QUARANTINE_DIR
from repro.telemetry import HarnessTelemetry
from repro.telemetry.report import report_lines, resilience_summary_rows

from .conftest import make_spec

MATRIX_TOML = """\
[matrix]
name = "resilience-smoke"
seeds = [0, 1]
horizon_ms = 50

[axes]
workload = ["ping"]
mode = ["paratick"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 5, work_cycles = 20000, same_vcpu = false }
"""

FLEET_TOML = """\
[matrix]
name = "chaos-smoke"
seeds = [0]
horizon_ms = 300

[axes]
workload = ["ping"]
mode = ["paratick"]
fleet = ["rack"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 10, work_cycles = 20000, same_vcpu = false }

[fleets.rack]
hosts = 3
guests = 2
consolidation = 2
burst = "poisson"
burst_window_ms = 2
"""


class TestMatrixJournalResume:
    def test_journal_then_resume_round_trip(self, capsys, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(MATRIX_TOML)
        journal = tmp_path / "run.journal"
        cache = tmp_path / "cache"

        rc = main(["--quiet-progress", "--cache-dir", str(cache),
                   "matrix", "run", str(matrix), "--journal", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert journal.exists()
        assert "outcome=completed" in out

        rc = main(["--quiet-progress", "--cache-dir", str(cache),
                   "matrix", "run", str(matrix), "--resume", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed=2" in out and "reverified=2" in out

    def test_resume_with_changed_matrix_fails_cleanly(self, capsys, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(MATRIX_TOML)
        journal = tmp_path / "run.journal"
        cache = tmp_path / "cache"
        assert main(["--quiet-progress", "--cache-dir", str(cache),
                     "matrix", "run", str(matrix),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()

        matrix.write_text(MATRIX_TOML.replace("seeds = [0, 1]", "seeds = [0, 2]"))
        rc = main(["--quiet-progress", "--cache-dir", str(cache),
                   "matrix", "run", str(matrix), "--resume", str(journal)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "resume failed" in captured.err
        assert "matrix changed" in captured.err


class TestCacheCommands:
    def _warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        specs = [make_spec(seed=s) for s in range(3)]
        run_grid(specs, jobs=None, cache_dir=cache_dir).raise_if_failed()
        return cache_dir

    def test_verify_clean_cache_exits_zero(self, capsys, tmp_path):
        cache_dir = self._warm_cache(tmp_path)
        assert main(["--cache-dir", str(cache_dir), "cache", "verify"]) == 0
        out = capsys.readouterr().out
        assert "3 ok" in out and "0 corrupt" in out

    def test_verify_corrupt_cache_quarantines_and_exits_one(self, capsys, tmp_path):
        cache_dir = self._warm_cache(tmp_path)
        corrupt_cache_entry(cache_dir, seed=1, mode="garble")
        assert main(["--cache-dir", str(cache_dir), "cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out and "quarantine" in out
        assert any((cache_dir / QUARANTINE_DIR).iterdir())
        # A second verify walks a clean tree again.
        assert main(["--cache-dir", str(cache_dir), "cache", "verify"]) == 0

    def test_gc_purges_quarantine_on_request(self, capsys, tmp_path):
        cache_dir = self._warm_cache(tmp_path)
        corrupt_cache_entry(cache_dir, seed=1, mode="truncate")
        assert main(["--cache-dir", str(cache_dir), "cache", "verify"]) == 1
        capsys.readouterr()
        assert main(["--cache-dir", str(cache_dir), "cache", "gc",
                     "--purge-quarantine"]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined file(s) removed" in out
        assert not (cache_dir / QUARANTINE_DIR).exists()


class TestChaosFleetSmoke:
    def test_fleet_smoke_survives_kill_crash_and_corruption(self, capsys, tmp_path):
        matrix = tmp_path / "fleet.toml"
        matrix.write_text(FLEET_TOML)
        rc = main(["--quiet-progress", "--jobs", "2", "chaos", "fleet-smoke",
                   str(matrix), "--kills", "1", "--abort-after", "2",
                   "--chaos-seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos smoke ok" in out
        assert "byte-identical" in out


class TestTelemetryRecoverySection:
    def test_report_surfaces_resume_and_quarantine(self, tmp_path, specs):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "run.journal"
        run_grid(specs, jobs=None, cache_dir=cache_dir,
                 journal=journal).raise_if_failed()
        corrupt_cache_entry(cache_dir, seed=0, mode="garble")

        tel = HarnessTelemetry()
        run_grid(specs, jobs=None, cache_dir=cache_dir, journal=journal,
                 resume=journal, telemetry=tel).raise_if_failed()
        out_dir = tmp_path / "tele"
        tel.write_outputs(str(out_dir))

        report = "\n".join(report_lines(str(out_dir)))
        assert "recovery / resilience" in report
        assert "cells_resumed" in report
        assert "cache_quarantined" in report

    def test_clean_run_has_no_recovery_section(self, tmp_path, specs):
        tel = HarnessTelemetry()
        run_grid(specs, jobs=None, use_cache=False,
                 telemetry=tel).raise_if_failed()
        out_dir = tmp_path / "tele"
        tel.write_outputs(str(out_dir))
        report = "\n".join(report_lines(str(out_dir)))
        assert "recovery / resilience" not in report

    def test_summary_rows_merge_counters_and_instants(self):
        metrics = {
            "cells_resumed": {"type": "counter",
                              "series": [{"labels": {}, "value": 4}]},
            "unrelated": {"type": "counter",
                          "series": [{"labels": {}, "value": 9}]},
        }
        records = [
            {"type": "instant", "name": "chaos.abort"},
            {"type": "instant", "name": "resume.hit"},
            {"type": "instant", "name": "cache.probe"},  # not resilience
        ]
        rows = resilience_summary_rows(metrics, records)
        as_dict = {name: count for name, count, _ in rows}
        assert as_dict["cells_resumed"] == "4"
        assert as_dict["chaos.abort"] == "1"
        assert as_dict["resume.hit"] == "1"
        assert "unrelated" not in as_dict and "cache.probe" not in as_dict
