"""Chaos-harness unit tests: deterministic victims, injectable faults.

Chaos must be as replayable as the simulation it attacks: the same
seed over the same grid picks the same casualties, the filesystem shim
fails exactly the operations it was told to, and a lost telemetry sink
is contained with a warning instead of sinking the grid.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.resilience.chaos import (
    ChaosAbort,
    ChaosPolicy,
    FailingSink,
    FaultyFS,
    corrupt_cache_entry,
)
from repro.resilience.integrity import attach_footer, split_verified
from repro.telemetry import HarnessTelemetry

KEYS = [f"key-{i:02d}" for i in range(10)]


class TestChaosPolicyPlanning:
    def test_same_seed_same_victims(self):
        a = ChaosPolicy.plan(KEYS, seed=7, kills=2, slow=3, slow_s=0.5)
        b = ChaosPolicy.plan(list(reversed(KEYS)), seed=7, kills=2, slow=3,
                             slow_s=0.5)
        assert a.kill_keys == b.kill_keys
        assert a.slow_keys == b.slow_keys

    def test_different_seed_different_victims(self):
        picks = {ChaosPolicy.plan(KEYS, seed=s, kills=2).kill_keys
                 for s in range(8)}
        assert len(picks) > 1

    def test_kill_and_slow_sets_are_disjoint(self):
        policy = ChaosPolicy.plan(KEYS, seed=1, kills=4, slow=6, slow_s=0.1)
        assert len(policy.kill_keys) == 4 and len(policy.slow_keys) == 6
        assert not (policy.kill_keys & policy.slow_keys)

    def test_victim_counts_cap_at_pool_size(self):
        policy = ChaosPolicy.plan(KEYS[:3], seed=0, kills=99, slow=99)
        assert len(policy.kill_keys) == 3
        assert len(policy.slow_keys) == 0  # kills consumed the pool

    def test_policy_pickles_into_workers(self):
        import pickle

        policy = ChaosPolicy.plan(KEYS, seed=2, kills=1, fuse_dir="/tmp/f")
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy


class TestChaosPolicyInjury:
    def test_harness_pid_guard_never_shoots_the_driver(self):
        # kill_keys includes our key and harness_pid is *us*: the kill
        # must not fire (a serial in-process grid never commits suicide).
        policy = ChaosPolicy(kill_keys=frozenset({"k"}))
        assert policy.harness_pid == os.getpid()
        policy.maybe_injure("k")  # alive == pass

    def test_burnt_fuse_spares_the_retry(self, tmp_path):
        policy = ChaosPolicy(kill_keys=frozenset({"k"}), fuse_dir=str(tmp_path),
                             harness_pid=-1)  # pretend another process planned
        fuse = policy._fuse_path("k")
        fuse.touch()  # the victim already died once
        assert policy.fuse_burnt("k")
        policy.maybe_injure("k")  # alive == the retry survives

    def test_unlisted_key_is_untouched(self, tmp_path):
        policy = ChaosPolicy(kill_keys=frozenset({"other"}),
                             fuse_dir=str(tmp_path), harness_pid=-1)
        policy.maybe_injure("k")
        assert not policy.fuse_burnt("k")


class TestFaultyFS:
    def test_fails_exactly_the_named_write(self, tmp_path):
        fs = FaultyFS(fail_writes=(1,))
        fs.write_text(tmp_path / "a", "first")  # write #0 succeeds
        with pytest.raises(OSError, match="injected filesystem failure"):
            fs.write_text(tmp_path / "b", "second")  # write #1 injected
        fs.write_text(tmp_path / "c", "third")
        assert fs.writes == 3
        assert (tmp_path / "a").exists() and not (tmp_path / "b").exists()

    def test_fails_exactly_the_named_replace(self, tmp_path):
        fs = FaultyFS(fail_replaces=(0,))
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_text("x")
        with pytest.raises(OSError):
            fs.replace(src, dst)
        assert src.exists() and not dst.exists()
        fs.replace(src, dst)  # replace #1 passes through
        assert dst.exists()


class TestCorruptCacheEntry:
    def _populate(self, root, n=4):
        for i in range(n):
            name = f"e{i}aa"
            path = root / name[:2] / f"{name}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(attach_footer(json.dumps({"i": i})))

    def test_deterministic_victim(self, tmp_path):
        self._populate(tmp_path)
        a = corrupt_cache_entry(tmp_path, seed=5)
        # Re-running with the same seed picks the same file.
        assert corrupt_cache_entry(tmp_path, seed=5) == a

    def test_truncate_and_garble_defeat_the_footer(self, tmp_path):
        self._populate(tmp_path)
        for seed, mode in ((0, "truncate"), (1, "garble")):
            victim = corrupt_cache_entry(tmp_path, seed=seed, mode=mode)
            body, status = split_verified(victim.read_text(errors="replace"))
            assert status != "ok" or body is None

    def test_key_selects_the_entry(self, tmp_path):
        self._populate(tmp_path)
        victim = corrupt_cache_entry(tmp_path, key="e2aa")
        assert victim.name == "e2aa.json"

    def test_unknown_mode_and_empty_root_raise(self, tmp_path):
        self._populate(tmp_path)
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_cache_entry(tmp_path, mode="eat")
        with pytest.raises(ChaosAbort, match="no cache entries"):
            corrupt_cache_entry(tmp_path / "empty")


class TestFailingSinkContainment:
    def test_sink_loss_warns_once_and_recording_continues(self):
        sink = FailingSink(succeed=4)  # two records (json + newline each)
        tel = HarnessTelemetry(sink=sink)
        tel.instant("ok.one")
        tel.instant("ok.two")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tel.instant("lost.three")
            tel.instant("lost.four")
        assert sum("telemetry JSONL sink disabled" in str(w.message)
                   for w in caught) == 1
        # The ring kept everything even though the stream died.
        assert len(tel.tracer) == 4
        assert len(sink.buffer_lines) == 4  # 2 records * (json + newline)
