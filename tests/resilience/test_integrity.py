"""Cache-integrity unit tests: footers, quarantine, verify and gc.

A cache file is one line of JSON plus a ``#sha256=`` footer; these
tests pin the footer round trip, the legacy (footer-less) upgrade
path, and the two maintenance walks behind ``python -m repro cache
verify|gc``.
"""

from __future__ import annotations

import json

import pytest

from repro.resilience.integrity import (
    QUARANTINE_DIR,
    CacheAudit,
    CacheFS,
    attach_footer,
    body_digest,
    gc_cache,
    quarantine_file,
    quarantine_path,
    split_verified,
    verify_cache,
)

BODY = json.dumps({"version": 3, "result": {"value": 1}}, sort_keys=True)


class TestFooter:
    def test_round_trip(self):
        text = attach_footer(BODY)
        assert text.startswith(BODY)
        assert text.endswith(body_digest(BODY) + "\n")
        assert split_verified(text) == (BODY, "ok")

    def test_footerless_is_legacy(self):
        assert split_verified(BODY) == (BODY, "legacy")

    def test_tampered_body_is_corrupt(self):
        text = attach_footer(BODY).replace('"value": 1', '"value": 2')
        body, status = split_verified(text)
        assert status == "corrupt"
        assert body is None

    def test_truncated_file_is_corrupt_or_legacy_unparseable(self):
        text = attach_footer(BODY)
        body, status = split_verified(text[: len(text) // 2])
        # Truncation may cut the footer off entirely (legacy garbage
        # that fails the JSON parse downstream) or leave a mismatching
        # footer; either way the body is never served verified.
        assert status in ("corrupt", "legacy")
        if status == "legacy":
            with pytest.raises(ValueError):
                json.loads(body)


def _entry(root, name: str, text: str) -> "object":
    path = root / name[:2] / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestVerify:
    def test_empty_root_is_clean(self, tmp_path):
        audit = verify_cache(tmp_path / "nope")
        assert isinstance(audit, CacheAudit)
        assert audit.clean and audit.scanned == 0

    def test_ok_legacy_and_corrupt_are_distinguished(self, tmp_path):
        _entry(tmp_path, "aa11", attach_footer(BODY))
        _entry(tmp_path, "bb22", BODY)  # pre-integrity file, parses
        corrupt = _entry(tmp_path, "cc33", attach_footer(BODY)[:-9] + "deadbeef\n")
        audit = verify_cache(tmp_path)
        assert (audit.scanned, audit.ok, audit.legacy) == (3, 1, 1)
        assert audit.corrupt == [str(corrupt)]
        assert not audit.clean
        assert "1 corrupt" in audit.summary()

    def test_corrupt_file_moves_to_quarantine(self, tmp_path):
        victim = _entry(tmp_path, "cc33", attach_footer(BODY) + "trailing junk")
        audit = verify_cache(tmp_path)
        target = quarantine_path(tmp_path, victim)
        assert audit.quarantined == [str(target)]
        assert not victim.exists() and target.exists()
        # The quarantined corpse is excluded from subsequent walks.
        assert verify_cache(tmp_path).clean

    def test_quarantine_false_reports_in_place(self, tmp_path):
        victim = _entry(tmp_path, "cc33", attach_footer(BODY)[:-5] + "0000\n")
        audit = verify_cache(tmp_path, quarantine=False)
        assert audit.corrupt == [str(victim)]
        assert audit.quarantined == []
        assert victim.exists()

    def test_legacy_that_fails_to_parse_is_corrupt(self, tmp_path):
        _entry(tmp_path, "dd44", "{not json at all")
        audit = verify_cache(tmp_path)
        assert audit.legacy == 0 and len(audit.corrupt) == 1

    def test_tmp_orphans_are_reported_not_verified(self, tmp_path):
        _entry(tmp_path, "aa11", attach_footer(BODY))
        tmp = tmp_path / "aa" / "aa11.json.tmp12345"
        tmp.write_text("half a wri")
        stage = tmp_path / "aa" / ".stage-1-aa11"
        stage.mkdir()
        (stage / "aa11.json").write_text("staged")
        audit = verify_cache(tmp_path)
        assert audit.clean and audit.ok == 1
        assert len(audit.tmp_orphans) == 2


class TestQuarantineFile:
    def test_move_failure_falls_back_to_unlink(self, tmp_path):
        class NoMoveFS(CacheFS):
            def move(self, src, dst):
                raise OSError("chaos: rename failed")

        victim = _entry(tmp_path, "aa11", "garbage")
        assert quarantine_file(tmp_path, victim, NoMoveFS()) is None
        # Last resort: the corrupt file must not stay readable in place.
        assert not victim.exists()


class TestGc:
    def test_gc_removes_tmp_stale_and_orphans(self, tmp_path):
        keep = _entry(tmp_path, "aa11", attach_footer(BODY))
        stale = _entry(tmp_path, "bb22", attach_footer(
            json.dumps({"version": 2, "result": {}})))
        stale_obs = tmp_path / "bb" / "bb22.obs.json"
        stale_obs.write_text(attach_footer("{}"))
        orphan = tmp_path / "ee" / "ee55.series.json"
        orphan.parent.mkdir(parents=True)
        orphan.write_text(attach_footer("{}"))
        tmp = tmp_path / "aa" / "aa11.json.tmp99"
        tmp.write_text("torn")

        stats = gc_cache(tmp_path, current_version=3)
        assert keep.exists()
        for victim in (stale, stale_obs, orphan, tmp):
            assert not victim.exists()
        assert stats.removed_tmp == 1
        assert stats.removed_stale == 2
        assert stats.removed_orphan_artifacts == 1
        assert stats.bytes_freed > 0
        assert "1 tmp" in stats.summary()

    def test_gc_leaves_quarantine_unless_purged(self, tmp_path):
        qdir = tmp_path / QUARANTINE_DIR
        qdir.mkdir(parents=True)
        corpse = qdir / "aa11.json"
        corpse.write_text("corrupt corpse")
        assert gc_cache(tmp_path, current_version=3).removed_quarantined == 0
        assert corpse.exists()
        stats = gc_cache(tmp_path, current_version=3, purge_quarantine=True)
        assert stats.removed_quarantined == 1
        assert not corpse.exists() and not qdir.exists()

    def test_gc_skips_corrupt_entries(self, tmp_path):
        bad = _entry(tmp_path, "cc33", attach_footer(BODY)[:-5] + "0000\n")
        stats = gc_cache(tmp_path, current_version=3)
        assert stats.removed_stale == 0
        assert bad.exists()  # verify's job, not gc's
