"""Run-journal unit tests: durability, replay edge cases, resume gating.

The replay edge cases here are the satellite battery from the issue:
a truncated final line (crash mid-append), duplicate ``done`` records
(idempotent when the hashes agree, excluded when they conflict), and a
changed matrix (hard :class:`ResumeError`, never a silent partial run).
"""

from __future__ import annotations

import json

import pytest

from repro.resilience.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalState,
    ResumeError,
    RunJournal,
    grid_digest,
    replay_journal,
    result_hash,
)

KEYS = ["aaa111", "bbb222", "ccc333"]


class TestDigests:
    def test_grid_digest_is_order_and_duplicate_invariant(self):
        assert grid_digest(KEYS) == grid_digest(reversed(KEYS))
        assert grid_digest(KEYS) == grid_digest(KEYS + KEYS)

    def test_grid_digest_distinguishes_grids(self):
        assert grid_digest(KEYS) != grid_digest(KEYS[:2])
        assert grid_digest(KEYS) != grid_digest(KEYS[:2] + ["ddd444"])

    def test_result_hash_canonicalizes_key_order(self):
        assert (result_hash({"a": 1, "b": [1, 2]})
                == result_hash({"b": [1, 2], "a": 1}))
        assert result_hash({"a": 1}) != result_hash({"a": 2})


class TestWriteReplayRoundTrip:
    def test_lifecycle_round_trip(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal.create(path, KEYS, label="t") as journal:
            journal.record("scheduled", "aaa111")
            journal.record("started", "aaa111", attempt=1)
            journal.record("done", "aaa111", result_hash="h1")
            journal.record("started", "bbb222", attempt=1)
        state = replay_journal(path)
        assert state.header["version"] == JOURNAL_VERSION
        assert state.header["label"] == "t"
        assert state.grid_digest == grid_digest(KEYS)
        assert state.cells == 3
        assert state.done == {"aaa111": "h1"}
        assert state.started == {"bbb222"}  # in flight at "crash"
        assert state.skipped_lines == 0

    def test_every_record_is_one_json_line(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal.create(path, KEYS) as journal:
            journal.record("done", "aaa111", result_hash="h1")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_resume_appends_marker_and_keeps_history(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal.create(path, KEYS) as journal:
            journal.record("done", "aaa111", result_hash="h1")
        with RunJournal.resume(path) as journal:
            journal.record("done", "bbb222", result_hash="h2")
        state = replay_journal(path)
        assert state.done == {"aaa111": "h1", "bbb222": "h2"}
        assert any('"resume-marker"' in ln for ln in path.read_text().splitlines())

    def test_failed_then_done_means_done(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal.create(path, KEYS) as journal:
            journal.record("failed", "aaa111", error="boom", kind="error",
                           attempts=2)
            journal.record("done", "aaa111", result_hash="h1")
            journal.record("failed", "bbb222", error="late", kind="timeout",
                           attempts=3)
        state = replay_journal(path)
        assert state.done == {"aaa111": "h1"}
        assert "aaa111" not in state.failed
        assert state.failed["bbb222"] == {"error": "late", "kind": "timeout",
                                          "attempts": 3}


class TestReplayEdgeCases:
    def _journal(self, tmp_path) -> "str":
        path = tmp_path / "run.journal"
        with RunJournal.create(path, KEYS) as journal:
            journal.record("done", "aaa111", result_hash="h1")
            journal.record("done", "bbb222", result_hash="h2")
        return path

    def test_truncated_final_line_is_skipped_not_fatal(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "event": "done", "key": "ccc3')  # torn
        state = replay_journal(path)
        assert state.skipped_lines == 1
        assert state.done == {"aaa111": "h1", "bbb222": "h2"}

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(2, "\x00garbage not json\x00")
        path.write_text("\n".join(lines) + "\n")
        state = replay_journal(path)
        assert state.skipped_lines == 1
        assert state.done == {"aaa111": "h1", "bbb222": "h2"}

    def test_duplicate_done_same_hash_is_idempotent(self, tmp_path):
        path = self._journal(tmp_path)
        with RunJournal.resume(path) as journal:
            journal.record("resumed", "aaa111", result_hash="h1")
            journal.record("done", "bbb222", result_hash="h2")
        state = replay_journal(path)
        assert state.duplicate_done == 2
        assert state.done == {"aaa111": "h1", "bbb222": "h2"}
        assert not state.conflicting

    def test_conflicting_done_hashes_exclude_the_key(self, tmp_path):
        path = self._journal(tmp_path)
        with RunJournal.resume(path) as journal:
            journal.record("done", "aaa111", result_hash="DIFFERENT")
            # Even a later record agreeing with the original cannot
            # rehabilitate the key: the cell re-runs, full stop.
            journal.record("done", "aaa111", result_hash="h1")
        state = replay_journal(path)
        assert state.conflicting == {"aaa111"}
        assert "aaa111" not in state.done
        assert state.done == {"bbb222": "h2"}

    def test_done_without_hash_is_skipped(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "cell", "event": "done",
                                 "key": "ccc333"}) + "\n")
        state = replay_journal(path)
        assert "ccc333" not in state.done
        assert state.skipped_lines == 1

    def test_missing_journal_is_resume_error(self, tmp_path):
        with pytest.raises(ResumeError, match="does not exist"):
            replay_journal(tmp_path / "never-written.journal")


class TestDigestGate:
    def test_matching_grid_passes(self, tmp_path):
        path = tmp_path / "run.journal"
        RunJournal.create(path, KEYS).close()
        replay_journal(path).check_digest(list(reversed(KEYS)))

    def test_changed_matrix_is_hard_error(self, tmp_path):
        path = tmp_path / "run.journal"
        RunJournal.create(path, KEYS).close()
        with pytest.raises(ResumeError, match="matrix changed"):
            replay_journal(path).check_digest(KEYS[:2] + ["zzz999"])

    def test_headerless_journal_refuses_resume(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text("")
        with pytest.raises(ResumeError, match="no header"):
            replay_journal(path).check_digest(KEYS)


class TestWriterFaultContainment:
    def test_unopenable_path_raises_journal_error(self, tmp_path):
        with pytest.raises(JournalError, match="cannot open journal"):
            RunJournal.create(tmp_path, KEYS)  # a directory, not a file

    def test_write_failure_disables_writer_not_run(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal.create(path, KEYS)
        journal._fh.close()  # the disk goes away mid-run
        journal.record("done", "aaa111", result_hash="h1")  # must not raise
        assert journal._fh is None
        journal.record("done", "bbb222", result_hash="h2")  # still inert
        journal.close()
        state = replay_journal(path)
        assert state.done == {}  # non-resumable, but the run survived


class TestJournalState:
    def test_defaults(self):
        state = JournalState(path="x")
        assert state.grid_digest is None
        assert state.cells == 0
        assert state.done == {} and state.failed == {}
