"""Degradation-policy unit tests: backoff, breaker, report, kinds."""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments.parallel import RunTimeout
from repro.resilience.policy import (
    FAILURE_KINDS,
    CircuitBreaker,
    RetryPolicy,
    RunReport,
    classify_failure,
)


class TestRetryPolicy:
    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(retries=3)
        assert policy.delay_s("k", 1) == 0.0
        assert policy.delay_s("k", 7) == 0.0

    def test_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(base_delay_s=0.5, seed=3)
        assert policy.delay_s("k", 2) == policy.delay_s("k", 2)
        assert (RetryPolicy(base_delay_s=0.5, seed=3).delay_s("k", 2)
                == policy.delay_s("k", 2))

    def test_jitter_desynchronizes_keys(self):
        policy = RetryPolicy(base_delay_s=1.0)
        assert policy.delay_s("cell-a", 1) != policy.delay_s("cell-b", 1)

    def test_exponential_growth_within_jitter_band(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, jitter=0.5,
                             max_delay_s=1000.0)
        for attempt, nominal in ((1, 1.0), (2, 2.0), (3, 4.0), (4, 8.0)):
            delay = policy.delay_s("k", attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, jitter=0.0)
        assert [policy.delay_s("k", a) for a in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_max_delay_caps_the_nominal(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=10.0, max_delay_s=5.0,
                             jitter=0.0)
        assert policy.delay_s("k", 9) == 5.0


class TestCircuitBreaker:
    def test_quiet_below_min_events(self):
        brk = CircuitBreaker(threshold=0.5, min_events=4)
        for _ in range(3):
            brk.record(False)
        assert brk.failure_rate == 1.0
        assert not brk.tripped

    def test_trips_at_threshold(self):
        brk = CircuitBreaker(threshold=0.5, min_events=4)
        for ok in (True, True, True, False):
            brk.record(ok)
        assert not brk.tripped  # 25% failure, below threshold
        brk.record(False)
        brk.record(False)
        assert brk.failure_rate == 0.5  # reaching the threshold trips
        assert brk.tripped

    def test_window_slides_old_failures_out(self):
        brk = CircuitBreaker(threshold=0.5, min_events=4, window=4)
        for _ in range(4):
            brk.record(False)
        assert brk.tripped
        for _ in range(4):
            brk.record(True)
        assert brk.events == 4
        assert not brk.tripped

    def test_trip_and_reset_counts_and_clears(self):
        brk = CircuitBreaker(min_events=2)
        for _ in range(4):
            brk.record(False)
        assert brk.trip_and_reset() == 1
        assert brk.events == 0 and not brk.tripped
        for _ in range(4):
            brk.record(False)
        assert brk.trip_and_reset() == 2


class TestRunReport:
    def test_clean_run_is_completed(self):
        report = RunReport(cells=4, cache_hits=1, executed=3)
        assert report.outcome == "completed"
        assert report.failed == 0
        assert "outcome=completed" in report.render()

    def test_recovery_machinery_means_degraded(self):
        for field, value in (("pool_rebuilds", 1), ("quarantined", 1),
                             ("resume_mismatches", 1),
                             ("degradation", ["pool shrunk to 2"])):
            report = RunReport(cells=1, executed=1)
            setattr(report, field, value)
            assert report.outcome == "degraded", field
        report = RunReport(cells=1, executed=1)
        report.retries["crash"] += 1
        assert report.outcome == "degraded"

    def test_any_lost_cell_means_failed(self):
        report = RunReport(cells=2, executed=1)
        report.retries["timeout"] += 2
        report.failures["timeout"] += 1
        assert report.failed == 1
        assert report.outcome == "failed"
        rendered = report.render()
        assert "failed=timeout:1" in rendered and "retries=timeout:2" in rendered

    def test_resume_fields_round_trip_to_json(self):
        report = RunReport(cells=3, cache_hits=3, resumed=2, reverified=2)
        as_json = report.to_json_dict()
        assert as_json["outcome"] == "completed"  # clean resume is clean
        assert as_json["resumed"] == 2 and as_json["reverified"] == 2
        assert "resumed=2" in report.render()


class TestClassifyFailure:
    def test_kinds_cover_the_taxonomy(self):
        assert classify_failure(RunTimeout("slow")) == "timeout"
        assert classify_failure(BrokenProcessPool("died")) == "crash"
        assert classify_failure(ValueError("boom")) == "error"
        assert set(FAILURE_KINDS) == {"timeout", "crash", "error"}
