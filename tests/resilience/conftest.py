"""Shared helpers for the resilience battery.

Every test here runs tiny ping-pong cells — small enough that a full
chaos round-trip (run, crash, corrupt, resume, compare) stays in the
tens of milliseconds, large enough that the results are real simulation
output whose byte-identity is worth asserting.
"""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.experiments.parallel import RunSpec, WorkloadSpec


def make_spec(seed: int = 0, **changes) -> RunSpec:
    """One small deterministic grid cell (distinct per ``seed``)."""
    spec = RunSpec(
        WorkloadSpec.make("micro.pingpong", rounds=40, work_cycles=10_000),
        tick_mode=TickMode.PARATICK,
        seed=seed,
        noise=False,
    )
    return spec.with_(**changes) if changes else spec


@pytest.fixture
def specs() -> list[RunSpec]:
    """A four-cell grid, one cell per seed."""
    return [make_spec(seed=s) for s in range(4)]
