"""Engine-level resilience battery: the recovery paths, end to end.

The contract under test is the issue's acceptance clause: **every
recovery path preserves byte-identity** — a grid that was SIGKILLed,
crashed, corrupted and resumed must hand back exactly the bytes an
uninterrupted run produces, and corruption is demoted to a miss (plus
quarantine forensics), never an exception.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.parallel import (
    GridError,
    ResultCache,
    RunSpec,
    WorkloadSpec,
    encode_result,
    register_workload,
    run_grid,
    spec_key,
)
from repro.resilience.chaos import (
    ChaosAbort,
    ChaosPolicy,
    FaultyFS,
    corrupt_cache_entry,
)
from repro.resilience.integrity import QUARANTINE_DIR, attach_footer, split_verified
from repro.resilience.journal import ResumeError, replay_journal
from repro.resilience.policy import CircuitBreaker
from repro.scenarios.runcheck import canonical_result_bytes

from .conftest import make_spec

# Fault workloads, registered at import time; the fork-based pool
# inherits the registry (same trick as tests/experiments/test_parallel).


def _boom_factory(**kw):
    raise RuntimeError("resilience-boom")


def _slow_boom_factory(**kw):
    time.sleep(0.05)  # stagger settles so breaker trips mid-grid
    raise RuntimeError("resilience-slow-boom")


def _sleep_factory(seconds=5.0, **kw):
    time.sleep(seconds)
    raise AssertionError("unreachable: the per-run alarm should fire first")


def _crash_factory(**kw):
    os._exit(3)


register_workload("resilience.boom", _boom_factory)
register_workload("resilience.slowboom", _slow_boom_factory)
register_workload("resilience.sleep", _sleep_factory)
register_workload("resilience.crash", _crash_factory)


def _fault_spec(kind: str, seed: int = 0) -> RunSpec:
    return make_spec(seed=seed).with_(workload=WorkloadSpec.make(kind))


def _golden(specs) -> dict:
    clean = run_grid(specs, jobs=None, use_cache=False).raise_if_failed()
    return {s: canonical_result_bytes(clean[s]) for s in specs}


def _assert_bytes_identical(grid, golden) -> None:
    for spec, reference in golden.items():
        assert canonical_result_bytes(grid[spec]) == reference, (
            f"{spec.display_label()}: recovered bytes diverged")


class TestFailureKinds:
    def test_in_worker_exception_is_kind_error(self):
        events = []
        grid = run_grid([_fault_spec("resilience.boom")], jobs=None,
                        use_cache=False, retries=1, progress=events.append)
        assert grid.failed_by_kind() == {"error": 1}
        assert grid.failed_specs[0].kind == "error"
        assert grid.report.failures == {"error": 1}
        assert grid.report.retries == {"error": 1}
        kinds = [(e.status, e.failure_kind) for e in events]
        assert ("retry", "error") in kinds and ("failed", "error") in kinds

    def test_timeout_is_kind_timeout(self):
        grid = run_grid([_fault_spec("resilience.sleep")], jobs=None,
                        use_cache=False, retries=0, timeout_s=0.3)
        assert grid.failed_by_kind() == {"timeout": 1}
        assert "RunTimeout" in grid.failed_specs[0].error

    def test_worker_crash_is_kind_crash_with_pool_rebuild(self):
        grid = run_grid([_fault_spec("resilience.crash")], jobs=2,
                        use_cache=False, retries=1)
        assert grid.failed_by_kind() == {"crash": 1}
        assert grid.report.pool_rebuilds >= 1
        assert grid.report.outcome == "failed"

    def test_raise_if_failed_names_the_kinds(self):
        grid = run_grid([_fault_spec("resilience.boom")], jobs=None,
                        use_cache=False, retries=0)
        with pytest.raises(GridError, match=r"error: 1"):
            grid.raise_if_failed()


class TestPoolRebuildCap:
    def test_persistent_crasher_hits_the_cap_with_a_clear_error(self):
        grid = run_grid([_fault_spec("resilience.crash")], jobs=2,
                        use_cache=False, retries=10, max_pool_rebuilds=2)
        assert len(grid.failed_specs) == 1
        failure = grid.failed_specs[0]
        assert failure.kind == "crash"
        assert "pool rebuild cap reached (2)" in failure.error
        # The cap bounds the damage: 3 crashes, not 11.
        assert grid.report.pool_rebuilds == 3


class TestDegradationLadder:
    def test_breaker_shrinks_pool_then_falls_back_to_serial(self):
        specs = [_fault_spec("resilience.slowboom", seed=s) for s in range(8)]
        brk = CircuitBreaker(threshold=0.5, min_events=2, window=4)
        grid = run_grid(specs, jobs=2, use_cache=False, retries=0, breaker=brk)
        assert len(grid.failed_specs) == 8
        assert "pool shrunk to 1" in grid.report.degradation
        assert "fell back to serial" in grid.report.degradation
        assert grid.report.outcome == "failed"


class TestChaosKill:
    def test_seeded_worker_kill_recovers_byte_identically(self, tmp_path):
        specs = [make_spec(seed=s) for s in range(4)]
        golden = _golden(specs)
        chaos = ChaosPolicy.plan([spec_key(s) for s in specs], seed=0,
                                 kills=1, fuse_dir=str(tmp_path / "fuse"))
        grid = run_grid(specs, jobs=2, use_cache=False, retries=1,
                        chaos=chaos).raise_if_failed()
        assert grid.report.pool_rebuilds >= 1
        assert grid.report.outcome == "degraded"
        # The fuse burnt: the victim died exactly once.
        (victim,) = chaos.kill_keys
        assert chaos.fuse_burnt(victim)
        _assert_bytes_identical(grid, golden)


class TestJournalResume:
    def _run(self, specs, tmp_path, **kw):
        return run_grid(specs, jobs=None, cache_dir=tmp_path / "cache",
                        journal=tmp_path / "run.journal", **kw)

    def test_acceptance_abort_corrupt_resume_bytes_identical(self, tmp_path, specs):
        """The issue's acceptance test: crash mid-grid, corrupt an
        entry, ``--resume``, and the recovered grid is byte-identical."""
        golden = _golden(specs)
        journal = tmp_path / "run.journal"

        with pytest.raises(ChaosAbort, match="simulated harness crash"):
            self._run(specs, tmp_path, chaos=ChaosPolicy(abort_after=2))

        state = replay_journal(journal)
        assert len(state.done) == 2  # two cells survived the "crash"

        # Silent corruption of one completed entry (bad sector, torn
        # write): only the checksum footer can catch this.
        victim_key = sorted(state.done)[0]
        corrupt_cache_entry(tmp_path / "cache", key=victim_key, mode="garble")

        grid = self._run(specs, tmp_path, resume=journal).raise_if_failed()
        report = grid.report
        assert report.resumed == 1      # the intact journaled cell
        assert report.reverified == 1
        assert report.quarantined == 1  # the corrupt one, caught on read
        assert report.executed == 3     # corrupt + the two never-run cells
        assert report.outcome == "degraded"
        _assert_bytes_identical(grid, golden)
        assert any((tmp_path / "cache" / QUARANTINE_DIR).iterdir())

        # The journal now witnesses all four cells; the resumed cell's
        # record duplicates its original hash (idempotent by design).
        final = replay_journal(journal)
        assert len(final.done) == len(specs)
        assert final.duplicate_done >= 1
        assert not final.conflicting

    def test_resume_mismatch_quarantines_and_reruns(self, tmp_path, specs):
        golden = _golden(specs)
        journal = tmp_path / "run.journal"
        self._run(specs, tmp_path).raise_if_failed()

        # Swap two entries' result payloads: both files carry *valid*
        # footers, so only the journal's result hash can catch it.
        cache = ResultCache(tmp_path / "cache")
        path_a = cache.path_for(spec_key(specs[0]))
        path_b = cache.path_for(spec_key(specs[1]))
        payload_a, _ = split_verified(path_a.read_text())
        payload_b, _ = split_verified(path_b.read_text())
        doc_a, doc_b = json.loads(payload_a), json.loads(payload_b)
        doc_a["result"] = doc_b["result"]
        path_a.write_text(attach_footer(json.dumps(doc_a, sort_keys=True)))

        grid = self._run(specs, tmp_path, resume=journal).raise_if_failed()
        report = grid.report
        assert report.resume_mismatches == 1
        assert report.quarantined >= 1
        assert report.resumed == 3 and report.executed == 1
        assert report.outcome == "degraded"
        _assert_bytes_identical(grid, golden)

    def test_resume_with_evicted_entry_reruns_that_cell(self, tmp_path, specs):
        golden = _golden(specs)
        journal = tmp_path / "run.journal"
        self._run(specs, tmp_path).raise_if_failed()

        evicted = ResultCache(tmp_path / "cache").path_for(spec_key(specs[2]))
        evicted.unlink()

        grid = self._run(specs, tmp_path, resume=journal).raise_if_failed()
        report = grid.report
        assert report.resumed == 3 and report.executed == 1
        assert report.resume_mismatches == 0 and report.quarantined == 0
        # An eviction is not degradation: the cache is allowed to forget.
        assert report.outcome == "completed"
        _assert_bytes_identical(grid, golden)

    def test_clean_resume_reverifies_everything(self, tmp_path, specs):
        journal = tmp_path / "run.journal"
        self._run(specs, tmp_path).raise_if_failed()
        grid = self._run(specs, tmp_path, resume=journal).raise_if_failed()
        report = grid.report
        assert report.resumed == len(specs)
        assert report.reverified == len(specs)
        assert report.executed == 0
        assert report.outcome == "completed"

    def test_resume_against_changed_matrix_is_hard_error(self, tmp_path, specs):
        journal = tmp_path / "run.journal"
        self._run(specs, tmp_path).raise_if_failed()
        changed = specs[:3] + [make_spec(seed=99)]
        with pytest.raises(ResumeError, match="matrix changed"):
            self._run(changed, tmp_path, resume=journal)


class TestAtomicMultiFileEntries:
    def test_failed_result_publish_leaves_a_cold_miss(self, tmp_path):
        spec = make_spec(profile=True)
        cache_dir = tmp_path / "cache"
        # Replace order for a profiled entry is [obs, result]; failing
        # replace #1 interrupts the publish after the artifact landed.
        with pytest.warns(RuntimeWarning, match="result cache disabled"):
            run_grid([spec], jobs=None, cache_dir=cache_dir,
                     cache_fs=FaultyFS(fail_replaces=(1,))).raise_if_failed()
        cache = ResultCache(cache_dir)
        key = spec_key(spec)
        assert not cache.path_for(key).exists()  # result published last
        assert cache.artifact_path_for(key).exists()  # obs landed first
        assert cache.load(spec) is None
        # No staging debris survives the interrupted publish.
        assert not list(cache_dir.rglob(".stage-*"))
        # The next run sees a cold miss and repairs the entry whole.
        repaired = run_grid([spec], jobs=None, cache_dir=cache_dir).raise_if_failed()
        assert repaired.executed == 1 and repaired.cache_hits == 0
        warm = run_grid([spec], jobs=None, cache_dir=cache_dir).raise_if_failed()
        assert warm.cache_hits == 1 and spec in warm.artifacts

    def test_failed_artifact_publish_keeps_the_unit_cold(self, tmp_path):
        spec = make_spec(profile=True)
        cache = ResultCache(tmp_path / "cache", fs=FaultyFS(fail_replaces=(0,)))
        grid = run_grid([spec], jobs=None, use_cache=False).raise_if_failed()
        with pytest.raises(OSError):
            cache.store_entry(spec, encode_result(grid.results[spec]),
                              obs=grid.artifacts[spec])
        key = spec_key(spec)
        assert not cache.path_for(key).exists()
        assert not cache.artifact_path_for(key).exists()

    def test_result_without_artifacts_reads_as_miss(self, tmp_path):
        spec = make_spec(profile=True)
        cache_dir = tmp_path / "cache"
        run_grid([spec], jobs=None, cache_dir=cache_dir).raise_if_failed()
        ResultCache(cache_dir).artifact_path_for(spec_key(spec)).unlink()
        grid = run_grid([spec], jobs=None, cache_dir=cache_dir).raise_if_failed()
        assert grid.cache_hits == 0 and grid.executed == 1
        assert spec in grid.artifacts  # the re-run restored the profile


class TestCorruptionDemotion:
    def test_corrupt_entry_is_quarantined_and_rerun(self, tmp_path, specs):
        golden = _golden(specs)
        cache_dir = tmp_path / "cache"
        run_grid(specs, jobs=None, cache_dir=cache_dir).raise_if_failed()
        corrupt_cache_entry(cache_dir, seed=3, mode="truncate")

        grid = run_grid(specs, jobs=None, cache_dir=cache_dir).raise_if_failed()
        report = grid.report
        assert report.quarantined == 1
        assert report.cache_hits == len(specs) - 1 and report.executed == 1
        assert report.outcome == "degraded"
        _assert_bytes_identical(grid, golden)
        quarantined = list((cache_dir / QUARANTINE_DIR).iterdir())
        assert len(quarantined) == 1
