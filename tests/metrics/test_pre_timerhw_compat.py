"""Serialized-metrics compatibility across the TimerHardware refactor.

``tests/fixtures/premetrics_pre_timerhw.json`` is a ``RunMetrics``
JSON captured on the engine *before* the timer hardware was abstracted
behind :mod:`repro.hw.timerhw` — its exit keys carry the x86 taxonomy
(``msr_write``, ``preemption_timer``) as plain strings. The result
cache and every saved experiment artifact store exactly this shape, so
the refactor must keep loading it: enum values are the wire format, and
adding the ARM reasons must never invalidate an old file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import TickMode
from repro.experiments.runner import run_workload
from repro.host.exitreasons import ExitReason, ExitTag
from repro.metrics.perf import RunMetrics
from repro.workloads.micro import SyncStormWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "premetrics_pre_timerhw.json"


def _load() -> RunMetrics:
    return RunMetrics.from_json_dict(json.loads(FIXTURE.read_text()))


class TestPreRefactorJson:
    def test_loads_and_rebuilds_enum_keys(self):
        m = _load()
        assert m.exits.by_reason(ExitReason.MSR_WRITE) == 14
        assert m.exits.by_reason(ExitReason.PREEMPTION_TIMER) == 4
        assert m.exits.by_tag(ExitTag.TIMER_PROGRAM) == 11
        assert m.exits.total == 26
        assert m.useful_cycles == 33_643_618

    def test_round_trips_byte_identically(self):
        data = json.loads(FIXTURE.read_text())
        assert RunMetrics.from_json_dict(data).to_json_dict() == data

    def test_post_refactor_run_reproduces_the_fixture(self):
        """The exact run that produced the fixture, re-executed on the
        refactored engine, still serializes to the same bytes — the
        x86 decode path moved behind TimerHardware without drift."""
        m = run_workload(
            SyncStormWorkload(threads=2, events_per_second=800.0,
                              duration_cycles=20_000_000),
            tick_mode=TickMode.TICKLESS, seed=3, label="premetrics/tickless",
        )
        assert m.to_json_dict() == json.loads(FIXTURE.read_text())
