"""Tests for counters, run metrics, comparisons and aggregation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.host.exitreasons import ExitReason, ExitTag
from repro.metrics.aggregate import aggregate_improvements
from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison, compare_runs, format_table


def counters_with(entries):
    c = ExitCounters()
    for vcpu, reason, tag in entries:
        c.record(vcpu, reason, tag)
    return c


class TestExitCounters:
    def test_totals_and_splits(self):
        c = counters_with(
            [
                (0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM),
                (0, ExitReason.MSR_WRITE, ExitTag.IPI),
                (1, ExitReason.HLT, ExitTag.IDLE),
                (1, ExitReason.PREEMPTION_TIMER, ExitTag.TIMER_GUEST_TICK),
            ]
        )
        assert c.total == 4
        assert c.by_reason(ExitReason.MSR_WRITE) == 2
        assert c.by_tag(ExitTag.IPI) == 1
        assert c.timer_related == 2
        assert c.for_vcpu(0) == 2 and c.for_vcpu(1) == 2

    def test_merge(self):
        a = counters_with([(0, ExitReason.HLT, ExitTag.IDLE)])
        b = counters_with([(0, ExitReason.HLT, ExitTag.IDLE), (1, ExitReason.PAUSE, ExitTag.OTHER)])
        m = a.merge(b)
        assert m.total == 3
        assert m.by_reason(ExitReason.HLT) == 2
        assert a.total == 1  # originals untouched

    def test_breakdowns(self):
        c = counters_with(
            [
                (0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM),
                (0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM),
            ]
        )
        assert list(c.tag_breakdown().items()) == [(ExitTag.TIMER_PROGRAM, 2)]
        ((key, n),) = c.breakdown().items()
        assert key.reason is ExitReason.MSR_WRITE and n == 2


def metrics(label="x", exits=100, cycles=1_000_000, t=1_000_000, timer=50):
    c = ExitCounters()
    for _ in range(timer):
        c.record(0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM)
    for _ in range(exits - timer):
        c.record(0, ExitReason.HLT, ExitTag.IDLE)
    return RunMetrics(
        label=label,
        exec_time_ns=t,
        total_cycles=cycles,
        useful_cycles=cycles // 2,
        overhead_cycles=cycles // 10,
        exits=c,
    )


class TestRunMetrics:
    def test_properties(self):
        m = metrics()
        assert m.total_exits == 100
        assert m.timer_exits == 50
        assert m.overhead_ratio == pytest.approx(0.1)
        assert m.exits_per_second() == pytest.approx(100 / 0.001)


class TestComparison:
    def test_signs_follow_paper_convention(self):
        base = metrics("base", exits=200, cycles=2_000_000, t=2_000_000)
        cand = metrics("cand", exits=100, cycles=1_600_000, t=1_900_000)
        comp = compare_runs(base, cand, "w")
        assert comp.vm_exits == pytest.approx(-0.5)
        assert comp.throughput == pytest.approx(0.25)
        assert comp.exec_time == pytest.approx(-0.05)

    def test_degenerate_baseline_rejected(self):
        base = metrics(exits=0, timer=0)
        with pytest.raises(ReproError):
            compare_runs(base, metrics())

    def test_row_formatting(self):
        comp = Comparison("w", -0.5, 0.25, -0.05)
        assert comp.row() == ("w", "-50.0%", "+25.0%", "-5.0%")


class TestAggregation:
    def test_geomean_of_ratios(self):
        comps = [Comparison("a", -0.5, 0.0, 0.0), Comparison("b", -0.5, 0.0, 0.0)]
        agg = aggregate_improvements(comps)
        assert agg.vm_exits == pytest.approx(-0.5)

    def test_mixed(self):
        comps = [Comparison("a", -0.75, 1.0, 0.0), Comparison("b", 0.0, 0.0, 0.0)]
        agg = aggregate_improvements(comps)
        # geomean(0.25, 1) - 1 = -0.5; geomean(2,1)-1 = sqrt2-1
        assert agg.vm_exits == pytest.approx(-0.5)
        assert agg.throughput == pytest.approx(math.sqrt(2) - 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_improvements([])

    @given(
        deltas=st.lists(
            st.floats(min_value=-0.9, max_value=2.0, allow_nan=False), min_size=1, max_size=20
        )
    )
    @settings(max_examples=50)
    def test_property_aggregate_within_range(self, deltas):
        comps = [Comparison(str(i), d, d, d) for i, d in enumerate(deltas)]
        agg = aggregate_improvements(comps)
        assert min(deltas) - 1e-9 <= agg.vm_exits <= max(deltas) + 1e-9


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [("1", "2"), ("333", "4")], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert all(len(l) >= 6 for l in lines[1:])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a"], [("1", "2")])
