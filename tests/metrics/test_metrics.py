"""Tests for counters, run metrics, comparisons and aggregation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.host.exitreasons import ExitReason, ExitTag
from repro.metrics.aggregate import aggregate_improvements
from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison, compare_runs, format_table


def counters_with(entries):
    c = ExitCounters()
    for vcpu, reason, tag in entries:
        c.record(vcpu, reason, tag)
    return c


class TestExitCounters:
    def test_totals_and_splits(self):
        c = counters_with(
            [
                (0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM),
                (0, ExitReason.MSR_WRITE, ExitTag.IPI),
                (1, ExitReason.HLT, ExitTag.IDLE),
                (1, ExitReason.PREEMPTION_TIMER, ExitTag.TIMER_GUEST_TICK),
            ]
        )
        assert c.total == 4
        assert c.by_reason(ExitReason.MSR_WRITE) == 2
        assert c.by_tag(ExitTag.IPI) == 1
        assert c.timer_related == 2
        assert c.for_vcpu(0) == 2 and c.for_vcpu(1) == 2

    def test_merge(self):
        a = counters_with([(0, ExitReason.HLT, ExitTag.IDLE)])
        b = counters_with([(0, ExitReason.HLT, ExitTag.IDLE), (1, ExitReason.PAUSE, ExitTag.OTHER)])
        m = a.merge(b)
        assert m.total == 3
        assert m.by_reason(ExitReason.HLT) == 2
        assert a.total == 1  # originals untouched

    def test_breakdowns(self):
        c = counters_with(
            [
                (0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM),
                (0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM),
            ]
        )
        assert list(c.tag_breakdown().items()) == [(ExitTag.TIMER_PROGRAM, 2)]
        ((key, n),) = c.breakdown().items()
        assert key.reason is ExitReason.MSR_WRITE and n == 2


def metrics(label="x", exits=100, cycles=1_000_000, t=1_000_000, timer=50):
    c = ExitCounters()
    for _ in range(timer):
        c.record(0, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM)
    for _ in range(exits - timer):
        c.record(0, ExitReason.HLT, ExitTag.IDLE)
    return RunMetrics(
        label=label,
        exec_time_ns=t,
        total_cycles=cycles,
        useful_cycles=cycles // 2,
        overhead_cycles=cycles // 10,
        exits=c,
    )


class TestRunMetrics:
    def test_properties(self):
        m = metrics()
        assert m.total_exits == 100
        assert m.timer_exits == 50
        assert m.overhead_ratio == pytest.approx(0.1)
        assert m.exits_per_second() == pytest.approx(100 / 0.001)


class TestComparison:
    def test_signs_follow_paper_convention(self):
        base = metrics("base", exits=200, cycles=2_000_000, t=2_000_000)
        cand = metrics("cand", exits=100, cycles=1_600_000, t=1_900_000)
        comp = compare_runs(base, cand, "w")
        assert comp.vm_exits == pytest.approx(-0.5)
        assert comp.throughput == pytest.approx(0.25)
        assert comp.exec_time == pytest.approx(-0.05)

    def test_degenerate_baseline_rejected(self):
        base = metrics(exits=0, timer=0)
        with pytest.raises(ReproError):
            compare_runs(base, metrics())

    def test_row_formatting(self):
        comp = Comparison("w", -0.5, 0.25, -0.05)
        assert comp.row() == ("w", "-50.0%", "+25.0%", "-5.0%")


class TestAggregation:
    def test_geomean_of_ratios(self):
        comps = [Comparison("a", -0.5, 0.0, 0.0), Comparison("b", -0.5, 0.0, 0.0)]
        agg = aggregate_improvements(comps)
        assert agg.vm_exits == pytest.approx(-0.5)

    def test_mixed(self):
        comps = [Comparison("a", -0.75, 1.0, 0.0), Comparison("b", 0.0, 0.0, 0.0)]
        agg = aggregate_improvements(comps)
        # geomean(0.25, 1) - 1 = -0.5; geomean(2,1)-1 = sqrt2-1
        assert agg.vm_exits == pytest.approx(-0.5)
        assert agg.throughput == pytest.approx(math.sqrt(2) - 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_improvements([])

    @given(
        deltas=st.lists(
            st.floats(min_value=-0.9, max_value=2.0, allow_nan=False), min_size=1, max_size=20
        )
    )
    @settings(max_examples=50)
    def test_property_aggregate_within_range(self, deltas):
        comps = [Comparison(str(i), d, d, d) for i, d in enumerate(deltas)]
        agg = aggregate_improvements(comps)
        assert min(deltas) - 1e-9 <= agg.vm_exits <= max(deltas) + 1e-9


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [("1", "2"), ("333", "4")], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert all(len(l) >= 6 for l in lines[1:])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a"], [("1", "2")])


class TestMergeRunMetrics:
    """Integer-exact merging (the fleet layer's conservation substrate)."""

    @staticmethod
    def metrics(label, *, exec_ns, cycles, steal_ns, ledger_ns=0, extra=None):
        from repro.hw.cpu import CycleDomain

        base = {"steal_ns": steal_ns}
        base.update(extra or {})
        return RunMetrics(
            label=label,
            exec_time_ns=exec_ns,
            total_cycles=cycles,
            useful_cycles=cycles // 2,
            overhead_cycles=cycles // 4,
            exits=counters_with([(0, ExitReason.HLT, ExitTag.IDLE)]),
            ledger={CycleDomain.GUEST_USER: ledger_ns},
            extra=base,
        )

    def test_sums_makespan_and_exits(self):
        from repro.metrics.aggregate import merge_run_metrics

        m = merge_run_metrics([
            self.metrics("a", exec_ns=10, cycles=100, steal_ns=7, ledger_ns=50),
            self.metrics("b", exec_ns=25, cycles=40, steal_ns=3, ledger_ns=8),
        ], label="both")
        assert m.label == "both"
        assert m.exec_time_ns == 25  # makespan, not a sum
        assert m.total_cycles == 140
        assert m.exits.total == 2
        from repro.hw.cpu import CycleDomain

        assert m.ledger[CycleDomain.GUEST_USER] == 58
        assert m.extra["steal_ns"] == 10

    def test_integer_precision_beyond_2_53(self):
        """Nanosecond totals above 2**53 must merge without float loss.

        ``float(2**60 + 1)`` rounds to ``2**60`` — a float intermediate
        anywhere in the merge silently drops the low bits. The merged
        value must be the exact integer sum.
        """
        from repro.metrics.aggregate import merge_run_metrics

        big, small = 2**60 + 1, 3
        assert float(big) + small != big + small  # the failure this guards
        m = merge_run_metrics([
            self.metrics("a", exec_ns=big, cycles=big, steal_ns=big,
                         ledger_ns=big),
            self.metrics("b", exec_ns=small, cycles=small, steal_ns=small,
                         ledger_ns=small),
        ])
        assert m.total_cycles == big + small
        assert m.extra["steal_ns"] == big + small
        assert isinstance(m.extra["steal_ns"], int)
        from repro.hw.cpu import CycleDomain

        assert m.ledger[CycleDomain.GUEST_USER] == big + small
        assert m.exec_time_ns == big  # max keeps the exact value

    def test_disjoint_and_string_extras(self):
        from repro.metrics.aggregate import merge_run_metrics

        a = self.metrics("a", exec_ns=1, cycles=1, steal_ns=0,
                         extra={"mode": "paratick", "only_a": 5})
        b = self.metrics("b", exec_ns=1, cycles=1, steal_ns=0,
                         extra={"mode": "paratick", "only_b": 7})
        m = merge_run_metrics([a, b])
        assert m.extra["mode"] == "paratick"
        assert m.extra["only_a"] == 5 and m.extra["only_b"] == 7

    def test_conflicting_string_extras_rejected(self):
        from repro.metrics.aggregate import merge_run_metrics

        a = self.metrics("a", exec_ns=1, cycles=1, steal_ns=0,
                         extra={"mode": "paratick"})
        b = self.metrics("b", exec_ns=1, cycles=1, steal_ns=0,
                         extra={"mode": "periodic"})
        with pytest.raises(ValueError, match="disagrees"):
            merge_run_metrics([a, b])

    def test_empty_rejected(self):
        from repro.metrics.aggregate import merge_run_metrics

        with pytest.raises(ValueError):
            merge_run_metrics([])

    def test_inputs_not_mutated(self):
        from repro.metrics.aggregate import merge_run_metrics

        a = self.metrics("a", exec_ns=1, cycles=10, steal_ns=4)
        b = self.metrics("b", exec_ns=2, cycles=20, steal_ns=6)
        merge_run_metrics([a, b])
        assert a.total_cycles == 10 and a.extra["steal_ns"] == 4
        assert b.exits.total == 1

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=2**64), min_size=1, max_size=12
        )
    )
    @settings(max_examples=60)
    def test_property_conservation_at_any_scale(self, values):
        from repro.metrics.aggregate import merge_run_metrics

        runs = [
            self.metrics(str(i), exec_ns=v, cycles=v, steal_ns=v, ledger_ns=v)
            for i, v in enumerate(values)
        ]
        m = merge_run_metrics(runs)
        assert m.total_cycles == sum(values)
        assert m.extra["steal_ns"] == sum(values)
        assert m.exec_time_ns == max(values)
        assert isinstance(m.extra["steal_ns"], int)
