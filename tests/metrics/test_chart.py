"""Tests for the ASCII figure renderer."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.metrics.chart import bar_chart, comparison_panels
from repro.metrics.report import Comparison


class TestBarChart:
    def test_scaling_to_peak(self):
        out = bar_chart(["a", "b"], [-0.5, -0.25], width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20  # peak fills the width
        assert lines[1].count("#") == 10

    def test_alignment(self):
        out = bar_chart(["short", "a-much-longer-label"], [0.1, 0.2])
        a, b = out.splitlines()
        assert a.index("|") == b.index("|")

    def test_title_and_format(self):
        out = bar_chart(["x"], [0.123], title="T", fmt="{:.2f}")
        assert out.splitlines()[0] == "T"
        assert "0.12" in out

    def test_zero_values_no_crash(self):
        out = bar_chart(["x", "y"], [0.0, 0.0])
        assert "|" in out

    def test_validation(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ReproError):
            bar_chart([], [])
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0], width=2)


class TestComparisonPanels:
    def test_three_panels(self):
        comps = [Comparison("w1", -0.5, 0.1, -0.02), Comparison("w2", -0.3, 0.2, -0.01)]
        out = comparison_panels(comps)
        assert "(a) VM exits" in out
        assert "(b) system throughput" in out
        assert "(c) execution time" in out
        assert out.count("w1") == 3

    def test_custom_titles(self):
        comps = [Comparison("w", -0.5, 0.1, -0.02)]
        out = comparison_panels(comps, metric_titles=("A", "B", "C"))
        assert "A" in out and "C" in out

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            comparison_panels([])
