"""Unit coverage for the energy model, comparison reports, and the
metrics serialization + ledger-conservation edge cases."""

from __future__ import annotations

import pytest

from repro.analysis.reconcile import check_ledger
from repro.errors import ConfigError, ReproError
from repro.guest.cpuidle import C1, C6
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.cpu import CycleDomain
from repro.metrics.counters import ExitCounters
from repro.metrics.energy import EnergyEstimate, EnergyModel, estimate_energy
from repro.metrics.perf import RunMetrics
from repro.metrics.report import compare_runs, format_table

CLOCK = 1_000_000_000  # 1 GHz: 1 cycle == 1 ns, exact arithmetic below


def metrics(*, exec_ns=1_000_000, cycles=500_000, extra=None) -> RunMetrics:
    return RunMetrics(
        label="m", exec_time_ns=exec_ns, total_cycles=cycles,
        useful_cycles=cycles, overhead_cycles=0,
        exits=ExitCounters(), extra=dict(extra or {}),
    )


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EnergyModel(active_power_w=0)
        with pytest.raises(ConfigError):
            EnergyModel(active_power_w=-1.0)
        with pytest.raises(ConfigError):
            EnergyModel(default_idle_fraction=1.5)
        with pytest.raises(ConfigError):
            EnergyModel(default_idle_fraction=-0.1)

    def test_default_idle_fraction_is_shallow_c1(self):
        assert EnergyModel().default_idle_fraction == C1.power_fraction

    def test_total_is_sum_of_parts(self):
        e = EnergyEstimate(active_j=1.0, cstate_j=0.25, idle_j=0.5)
        assert e.total_j == 1.75


class TestEstimateEnergy:
    def test_fully_busy_run_is_all_active(self):
        m = metrics(exec_ns=1_000_000, cycles=1_000_000)
        e = estimate_energy(m, model=EnergyModel(active_power_w=10.0), clock_hz=CLOCK)
        assert e.active_j == pytest.approx(1_000_000 * 1e-9 * 10.0)
        assert e.cstate_j == 0.0
        assert e.idle_j == 0.0

    def test_active_time_clamped_to_span(self):
        """More cycles than wall-clock (multi-CPU aliasing) must not
        produce negative idle time."""
        m = metrics(exec_ns=1_000, cycles=5_000_000)
        e = estimate_energy(m, clock_hz=CLOCK)
        span_j = 1_000 * 1e-9 * EnergyModel().active_power_w
        assert e.active_j == pytest.approx(span_j)
        assert e.idle_j == 0.0

    def test_unattributed_idle_uses_default_fraction(self):
        m = metrics(exec_ns=1_000_000, cycles=0)
        model = EnergyModel(active_power_w=10.0, default_idle_fraction=0.5)
        e = estimate_energy(m, model=model, clock_hz=CLOCK)
        assert e.active_j == 0.0
        assert e.idle_j == pytest.approx(1_000_000 * 1e-9 * 10.0 * 0.5)

    def test_cstate_residency_attributed_at_state_fraction(self):
        m = metrics(exec_ns=1_000_000, cycles=0,
                    extra={"cstate_C6_ns": 1_000_000})
        e = estimate_energy(m, model=EnergyModel(active_power_w=10.0), clock_hz=CLOCK)
        assert e.cstate_j == pytest.approx(1_000_000 * 1e-9 * 10.0 * C6.power_fraction)
        assert e.idle_j == 0.0  # everything attributed to the C-state

    def test_unknown_cstate_falls_back_to_default_fraction(self):
        m = metrics(exec_ns=1_000_000, cycles=0,
                    extra={"cstate_C9_ns": 1_000_000})
        model = EnergyModel(active_power_w=10.0, default_idle_fraction=0.4)
        e = estimate_energy(m, model=model, clock_hz=CLOCK)
        assert e.cstate_j == pytest.approx(1_000_000 * 1e-9 * 10.0 * 0.4)

    def test_multiple_vcpus_scale_the_span(self):
        m = metrics(exec_ns=1_000_000, cycles=1_000_000, extra={"vcpus": 4})
        e = estimate_energy(m, model=EnergyModel(active_power_w=10.0), clock_hz=CLOCK)
        # one core's worth active, three cores' worth shallow idle
        assert e.active_j == pytest.approx(1_000_000 * 1e-9 * 10.0)
        assert e.idle_j == pytest.approx(3_000_000 * 1e-9 * 10.0 * C1.power_fraction)

    def test_deeper_sleep_costs_less(self):
        shallow = metrics(exec_ns=1_000_000, cycles=0,
                          extra={"cstate_C1_ns": 900_000})
        deep = metrics(exec_ns=1_000_000, cycles=0,
                       extra={"cstate_C6_ns": 900_000})
        assert estimate_energy(deep, clock_hz=CLOCK).total_j < \
            estimate_energy(shallow, clock_hz=CLOCK).total_j


class TestCompareRuns:
    def run(self, *, exits=100, cycles=1_000_000, t=2_000_000, label="r"):
        c = ExitCounters()
        for _ in range(exits):
            c.record(0, ExitReason.HLT, ExitTag.IDLE)
        return RunMetrics(label=label, exec_time_ns=t, total_cycles=cycles,
                          useful_cycles=cycles, overhead_cycles=0, exits=c)

    def test_degenerate_candidate_rejected(self):
        base = self.run()
        broken = self.run(cycles=0)
        with pytest.raises(ReproError, match="degenerate candidate"):
            compare_runs(base, broken)

    def test_label_defaults_to_candidate_label(self):
        comp = compare_runs(self.run(), self.run(label="cand"))
        assert comp.label == "cand"

    def test_explicit_label_wins(self):
        comp = compare_runs(self.run(), self.run(label="cand"), label="override")
        assert comp.label == "override"


class TestFormatTable:
    def test_title_line(self):
        out = format_table(["a"], [["1"]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_no_title_starts_with_headers(self):
        out = format_table(["col"], [["x"]])
        assert out.splitlines()[0].strip() == "col"


class TestSerializationRoundTrip:
    def make(self) -> RunMetrics:
        c = ExitCounters()
        c.record(0, ExitReason.HLT, ExitTag.IDLE)
        c.record(1, ExitReason.MSR_WRITE, ExitTag.TIMER_PROGRAM)
        return RunMetrics(
            label="round-trip", exec_time_ns=123, total_cycles=456,
            useful_cycles=400, overhead_cycles=56, exits=c,
            ledger={CycleDomain.GUEST_USER: 400, CycleDomain.HOST_TICK: 7},
            extra={"vcpus": 2, "cstate_C1_ns": 99.0},
        )

    def test_round_trip_preserves_everything(self):
        m = self.make()
        back = RunMetrics.from_json_dict(m.to_json_dict())
        assert back == m

    def test_json_dict_keys_are_json_safe(self):
        import json

        json.dumps(self.make().to_json_dict())  # must not raise


class TestLedgerEdgeCases:
    """check_ledger boundary behaviour beyond the mutation tests."""

    def test_empty_run_is_conserved(self):
        m = RunMetrics(label="empty", exec_time_ns=0, total_cycles=0,
                       useful_cycles=0, overhead_cycles=0, exits=ExitCounters())
        assert check_ledger(m, CLOCK) == []

    def test_rounding_boundary_still_conserves(self):
        """Odd ns totals at a non-integer cycle ratio: conversions must
        agree with ns_to_cycles' floor semantics, not drift by one."""
        from repro.sim.timebase import CpuClock

        freq = 2_200_000_000
        clock = CpuClock(freq)
        ledger = {CycleDomain.GUEST_USER: 333, CycleDomain.VMX_TRANSITION: 77}
        m = RunMetrics(
            label="odd", exec_time_ns=410,
            total_cycles=clock.ns_to_cycles(410),
            useful_cycles=clock.ns_to_cycles(333),
            overhead_cycles=clock.ns_to_cycles(77),
            exits=ExitCounters(), ledger=ledger,
        )
        assert check_ledger(m, freq) == []
