"""Tests for physical CPUs, the machine and cycle accounting."""

from __future__ import annotations

import pytest

from repro.config import MachineSpec
from repro.errors import ConfigError, HardwareError
from repro.hw.cpu import OVERHEAD_DOMAINS, CycleDomain, Machine
from repro.sim.engine import Simulator


def make_machine(**kw) -> Machine:
    return Machine(Simulator(), MachineSpec(**kw))


class TestMachineSpec:
    def test_default_matches_paper_testbed(self):
        spec = MachineSpec()
        assert spec.sockets == 4
        assert spec.cpus_per_socket == 20
        assert spec.total_cpus == 80

    def test_socket_of(self):
        spec = MachineSpec(sockets=2, cpus_per_socket=4)
        assert [spec.socket_of(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_socket_of_out_of_range(self):
        with pytest.raises(ConfigError):
            MachineSpec(sockets=1, cpus_per_socket=2).socket_of(2)

    def test_host_tick_period(self):
        assert MachineSpec(host_tick_hz=250).host_tick_period_ns == 4_000_000

    @pytest.mark.parametrize(
        "kw",
        [
            {"sockets": 0},
            {"cpus_per_socket": 0},
            {"freq_hz": 0},
            {"host_tick_hz": 0},
            {"cross_socket_penalty": 0.5},
        ],
    )
    def test_invalid_specs(self, kw):
        with pytest.raises(ConfigError):
            MachineSpec(**kw)


class TestAccounting:
    def test_account_and_read_back(self):
        m = make_machine(sockets=1, cpus_per_socket=2)
        cpu = m.cpu(0)
        cpu.account(CycleDomain.GUEST_USER, 1000)
        cpu.account(CycleDomain.GUEST_USER, 500)
        cpu.account(CycleDomain.HOST_HANDLER, 200)
        assert cpu.busy_ns(CycleDomain.GUEST_USER) == 1500
        assert cpu.busy_ns(CycleDomain.HOST_HANDLER) == 200
        assert cpu.busy_ns() == 1700

    def test_negative_rejected(self):
        m = make_machine(sockets=1, cpus_per_socket=1)
        with pytest.raises(HardwareError):
            m.cpu(0).account(CycleDomain.GUEST_USER, -1)

    def test_account_cycles_converts(self):
        m = make_machine(sockets=1, cpus_per_socket=1, freq_hz=2_000_000_000)
        ns = m.cpu(0).account_cycles(CycleDomain.GUEST_KERNEL, 2000)
        assert ns == 1000
        assert m.cpu(0).busy_ns(CycleDomain.GUEST_KERNEL) == 1000

    def test_busy_cycles_roundtrip(self):
        m = make_machine(sockets=1, cpus_per_socket=1, freq_hz=2_000_000_000)
        m.cpu(0).account(CycleDomain.GUEST_USER, 1000)
        assert m.cpu(0).busy_cycles(CycleDomain.GUEST_USER) == 2000

    def test_machine_totals_and_ledger(self):
        m = make_machine(sockets=1, cpus_per_socket=2)
        m.cpu(0).account(CycleDomain.GUEST_USER, 100)
        m.cpu(1).account(CycleDomain.GUEST_USER, 200)
        m.cpu(1).account(CycleDomain.HOST_TICK, 50)
        assert m.total_busy_ns() == 350
        assert m.total_busy_ns(CycleDomain.GUEST_USER) == 300
        assert m.ledger()[CycleDomain.HOST_TICK] == 50

    def test_ledger_is_a_copy(self):
        m = make_machine(sockets=1, cpus_per_socket=1)
        led = m.cpu(0).ledger()
        led[CycleDomain.GUEST_USER] = 999
        assert m.cpu(0).busy_ns(CycleDomain.GUEST_USER) == 0


class TestMachine:
    def test_cpu_lookup_bounds(self):
        m = make_machine(sockets=1, cpus_per_socket=2)
        with pytest.raises(HardwareError):
            m.cpu(2)

    def test_same_socket(self):
        m = make_machine(sockets=2, cpus_per_socket=2)
        assert m.same_socket(0, 1)
        assert not m.same_socket(1, 2)

    def test_overhead_domains_exclude_guest_work(self):
        assert CycleDomain.GUEST_USER not in OVERHEAD_DOMAINS
        assert CycleDomain.VMX_TRANSITION in OVERHEAD_DOMAINS
        assert CycleDomain.HOST_HANDLER in OVERHEAD_DOMAINS
