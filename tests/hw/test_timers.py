"""Tests for TSC, MSR file, LAPIC timer and the VMX preemption timer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HardwareError
from repro.hw.interrupts import GUEST_VECTORS, Vector
from repro.hw.lapic import LapicTimer, TimerMode
from repro.hw.msr import Msr, MsrFile
from repro.hw.preemption import PreemptionTimer
from repro.hw.tsc import Tsc
from repro.sim.engine import Simulator
from repro.sim.timebase import CpuClock, MSEC, USEC


GHZ2 = CpuClock(2_000_000_000)


class TestVectors:
    def test_paratick_vector_is_235(self):
        """§5.1: 'We reserve vector 235 for this purpose.'"""
        assert Vector.PARATICK_VIRTUAL_TICK == 235

    def test_local_timer_matches_linux(self):
        assert Vector.LOCAL_TIMER == 236

    def test_timer_classification(self):
        assert Vector.LOCAL_TIMER.is_timer
        assert Vector.PARATICK_VIRTUAL_TICK.is_timer
        assert not Vector.RESCHEDULE.is_timer
        assert not Vector.BLOCK_IO.is_timer

    def test_guest_vectors_exclude_host_timer(self):
        assert Vector.HOST_TIMER not in GUEST_VECTORS
        assert Vector.PARATICK_VIRTUAL_TICK in GUEST_VECTORS


class TestTsc:
    def test_reads_scale_with_time(self):
        sim = Simulator()
        tsc = Tsc(sim, GHZ2)
        assert tsc.read() == 0
        sim.schedule(1000, lambda: None)
        sim.run()
        assert tsc.read() == 2000  # 1000ns at 2GHz

    def test_deadline_in_future(self):
        sim = Simulator()
        tsc = Tsc(sim, GHZ2)
        assert tsc.deadline_to_ns(2000) == 1000

    def test_deadline_in_past_fires_now(self):
        sim = Simulator()
        tsc = Tsc(sim, GHZ2)
        sim.schedule(1000, lambda: None)
        sim.run()
        assert tsc.deadline_to_ns(500) == sim.now

    def test_negative_deadline_rejected(self):
        with pytest.raises(HardwareError):
            Tsc(Simulator(), GHZ2).deadline_to_ns(-1)

    def test_after_ns(self):
        sim = Simulator()
        tsc = Tsc(sim, GHZ2)
        assert tsc.after_ns(4 * MSEC) == 2 * 4 * MSEC  # cycles

    @given(delta=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=50)
    def test_property_after_roundtrip(self, delta):
        sim = Simulator()
        tsc = Tsc(sim, GHZ2)
        deadline = tsc.after_ns(delta)
        assert tsc.deadline_to_ns(deadline) == delta


class TestMsrFile:
    def test_read_default_zero(self):
        assert MsrFile().read(Msr.TSC_DEADLINE) == 0

    def test_write_read(self):
        f = MsrFile()
        f.write(Msr.TSC_DEADLINE, 12345)
        assert f.read(Msr.TSC_DEADLINE) == 12345

    def test_write_hook_fires(self):
        f = MsrFile()
        calls = []
        f.install_write_hook(Msr.TSC_DEADLINE, lambda i, v: calls.append((i, v)))
        f.write(Msr.TSC_DEADLINE, 7)
        f.write(Msr.X2APIC_ICR, 9)  # no hook -> no call
        assert calls == [(Msr.TSC_DEADLINE, 7)]

    def test_double_hook_rejected(self):
        f = MsrFile()
        f.install_write_hook(Msr.TSC_DEADLINE, lambda i, v: None)
        with pytest.raises(HardwareError):
            f.install_write_hook(Msr.TSC_DEADLINE, lambda i, v: None)

    def test_negative_value_rejected(self):
        with pytest.raises(HardwareError):
            MsrFile().write(Msr.TSC_DEADLINE, -1)


def make_lapic(sim):
    fired = []
    tsc = Tsc(sim, GHZ2)
    t = LapicTimer(sim, tsc, lambda v: fired.append((sim.now, v)), name="t0")
    return t, tsc, fired


class TestLapicOneshot:
    def test_fires_once(self):
        sim = Simulator()
        t, _, fired = make_lapic(sim)
        t.arm_oneshot_ns(100)
        assert t.armed and t.expiry_ns == 100
        sim.run()
        assert fired == [(100, Vector.LOCAL_TIMER)]
        assert not t.armed and t.mode is None

    def test_rearm_replaces(self):
        sim = Simulator()
        t, _, fired = make_lapic(sim)
        t.arm_oneshot_ns(100)
        t.arm_oneshot_ns(300)
        sim.run()
        assert [f[0] for f in fired] == [300]
        assert t.arm_count == 2

    def test_negative_delay_rejected(self):
        sim = Simulator()
        t, _, _ = make_lapic(sim)
        with pytest.raises(HardwareError):
            t.arm_oneshot_ns(-1)


class TestLapicPeriodic:
    def test_fires_repeatedly_without_rearming(self):
        sim = Simulator()
        t, _, fired = make_lapic(sim)
        t.arm_periodic_ns(4 * MSEC)
        sim.run(until=20 * MSEC)
        assert [f[0] for f in fired] == [4 * MSEC, 8 * MSEC, 12 * MSEC, 16 * MSEC, 20 * MSEC]
        # Only the initial programming counts as an arm (key property of
        # periodic mode vs deadline mode).
        assert t.arm_count == 1
        assert t.mode is TimerMode.PERIODIC

    def test_first_after_override(self):
        sim = Simulator()
        t, _, fired = make_lapic(sim)
        t.arm_periodic_ns(100, first_after_ns=10)
        sim.run(until=250)
        assert [f[0] for f in fired] == [10, 110, 210]

    def test_disarm_stops(self):
        sim = Simulator()
        t, _, fired = make_lapic(sim)
        t.arm_periodic_ns(100)
        sim.schedule(250, t.disarm)
        sim.run(until=1000)
        assert [f[0] for f in fired] == [100, 200]


class TestLapicDeadline:
    def test_fires_at_tsc_deadline(self):
        sim = Simulator()
        t, tsc, fired = make_lapic(sim)
        t.arm_tsc_deadline(tsc.after_ns(500))
        sim.run()
        assert fired == [(500, Vector.LOCAL_TIMER)]

    def test_write_zero_disarms(self):
        sim = Simulator()
        t, tsc, fired = make_lapic(sim)
        t.arm_tsc_deadline(tsc.after_ns(500))
        t.arm_tsc_deadline(0)
        sim.run()
        assert fired == []
        assert t.arm_count == 2  # the disarming write still counts

    def test_past_deadline_fires_immediately(self):
        sim = Simulator()
        t, tsc, fired = make_lapic(sim)
        sim.schedule(100, lambda: t.arm_tsc_deadline(1))  # tsc 1 << now
        sim.run()
        assert fired == [(100, Vector.LOCAL_TIMER)]


class TestPreemptionTimer:
    def test_counts_only_in_guest_mode(self):
        sim = Simulator()
        fired = []
        pt = PreemptionTimer(sim, lambda: fired.append(sim.now))
        pt.set_deadline(100)
        # Not started: nothing fires.
        sim.run(until=200)
        assert fired == []
        pt.start()
        sim.run(until=300)
        # Deadline 100 already past at start -> fires immediately at 200.
        assert fired == [200]

    def test_stop_pauses_and_start_resumes(self):
        sim = Simulator()
        fired = []
        pt = PreemptionTimer(sim, lambda: fired.append(sim.now))
        pt.set_deadline(500)
        pt.start()
        sim.schedule(100, pt.stop)
        sim.run(until=600)
        assert fired == []
        assert pt.deadline_ns == 500  # retained across exit
        pt.start()
        sim.run(until=700)
        assert fired == [600]  # fires at max(deadline, start-time)

    def test_double_start_rejected(self):
        sim = Simulator()
        pt = PreemptionTimer(sim, lambda: None)
        pt.set_deadline(100)
        pt.start()
        with pytest.raises(HardwareError):
            pt.start()

    def test_clear_drops_deadline(self):
        sim = Simulator()
        fired = []
        pt = PreemptionTimer(sim, lambda: fired.append(sim.now))
        pt.set_deadline(100)
        pt.clear()
        pt.start()
        sim.run(until=500)
        assert fired == []
        assert pt.deadline_ns is None

    def test_start_without_deadline_is_noop(self):
        sim = Simulator()
        pt = PreemptionTimer(sim, lambda: None)
        pt.start()
        assert not pt.running
