"""Tests for the I/O device models."""

from __future__ import annotations

import pytest

from repro.config import IoDeviceKind
from repro.errors import HardwareError
from repro.hw.block import BLOCK_PROFILES, BlockDevice, make_block_device
from repro.hw.iodev import IoDevice, IoRequest
from repro.hw.nic import DATACENTER_10G, DATACENTER_100G, Nic
from repro.sim.engine import Simulator
from repro.sim.timebase import MSEC, USEC


class FixedDevice(IoDevice):
    """Test double: constant 100ns service time."""

    def service_time_ns(self, req: IoRequest) -> int:
        return 100


class TestIoDeviceQueueing:
    def test_single_request_completes(self):
        sim = Simulator()
        done = []
        dev = FixedDevice(sim, "d", done.append)
        dev.submit(IoRequest("read", 0, 4096))
        sim.run()
        assert len(done) == 1
        assert done[0].complete_ns == 100
        assert dev.completed == 1

    def test_fifo_service_order(self):
        sim = Simulator()
        done = []
        dev = FixedDevice(sim, "d", lambda r: done.append(r.offset))
        for off in (0, 1, 2):
            dev.submit(IoRequest("read", off, 512))
        assert dev.queue_depth == 3
        sim.run()
        assert done == [0, 1, 2]
        assert sim.now == 300  # queue depth 1: serialized

    def test_invalid_requests_rejected(self):
        dev = FixedDevice(Simulator(), "d", lambda r: None)
        with pytest.raises(HardwareError):
            dev.submit(IoRequest("read", 0, 0))
        with pytest.raises(HardwareError):
            dev.submit(IoRequest("erase", 0, 512))

    def test_service_stats_collected(self):
        sim = Simulator()
        dev = FixedDevice(sim, "d", lambda r: None)
        for i in range(5):
            dev.submit(IoRequest("read", i, 512))
        sim.run()
        assert dev.service_stats.n == 5
        # Later submissions wait in queue, so latency grows.
        assert dev.service_stats.max > dev.service_stats.min


class TestBlockDevice:
    def make(self, kind=IoDeviceKind.SATA_SSD):
        sim = Simulator(seed=3)
        done = []
        dev = make_block_device(sim, kind, done.append)
        return sim, dev, done

    def test_sequential_cheaper_than_random(self):
        """Random access pays the seek/penalty term."""
        sim, dev, done = self.make(IoDeviceKind.HDD)
        dev.submit(IoRequest("read", 0, 4096))
        dev.submit(IoRequest("read", 4096, 4096))  # sequential
        dev.submit(IoRequest("read", 10_000_000, 4096))  # random
        sim.run()
        seq = done[1].complete_ns - done[1].submit_ns
        rnd = done[2].complete_ns - done[2].submit_ns
        assert rnd > seq + BLOCK_PROFILES[IoDeviceKind.HDD].random_penalty_ns / 2

    def test_device_class_latency_ordering(self):
        """HDD >> SATA SSD > NVMe for the same random read."""
        lat = {}
        for kind in IoDeviceKind:
            sim, dev, done = self.make(kind)
            dev.submit(IoRequest("read", 999_999_999, 4096))
            sim.run()
            lat[kind] = done[0].complete_ns
        assert lat[IoDeviceKind.HDD] > 10 * lat[IoDeviceKind.SATA_SSD]
        assert lat[IoDeviceKind.SATA_SSD] > lat[IoDeviceKind.NVME_SSD]

    def test_larger_transfers_take_longer(self):
        sim, dev, done = self.make()
        dev.submit(IoRequest("read", 0, 4096))
        dev.submit(IoRequest("read", 4096, 262144))
        sim.run()
        small = done[0].complete_ns - done[0].submit_ns
        large = done[1].complete_ns - done[1].submit_ns
        assert large > small + 200 * USEC  # ~258KB extra at ~520MB/s

    def test_writes_slower_than_reads_on_ssd(self):
        sim, dev, done = self.make()
        dev.submit(IoRequest("read", 0, 4096))
        dev.submit(IoRequest("write", 0, 4096))
        sim.run()
        r = done[0].complete_ns - done[0].submit_ns
        w = done[1].complete_ns - done[1].submit_ns
        assert w > r

    def test_deterministic_given_seed(self):
        def run_once():
            sim = Simulator(seed=11)
            out = []
            dev = make_block_device(sim, IoDeviceKind.SATA_SSD, lambda r: out.append(r.complete_ns))
            for i in range(10):
                dev.submit(IoRequest("read", i * 1_000_000, 4096))
            sim.run()
            return out

        assert run_once() == run_once()


class TestNic:
    def test_roundtrip_latency(self):
        sim = Simulator(seed=1)
        done = []
        nic = Nic(sim, DATACENTER_10G, done.append)
        nic.submit(IoRequest("read", 0, 1024))
        sim.run()
        rtt = done[0].complete_ns
        # 2x25us wire + 30us service +- jitter.
        assert 40 * USEC < rtt < 160 * USEC

    def test_faster_link_is_faster(self):
        def rtt(profile):
            sim = Simulator(seed=2)
            done = []
            nic = Nic(sim, profile, done.append)
            nic.submit(IoRequest("read", 0, 4096))
            sim.run()
            return done[0].complete_ns

        assert rtt(DATACENTER_100G) < rtt(DATACENTER_10G)
