"""Cross-architecture differential battery (x86 vs ARM generic timer).

The :mod:`repro.hw.timerhw` seam lets the same guest/hypervisor stack
run on two completely different timer architectures. These tests pin
the contract that makes that seam sound:

* **work equivalence** — over a fixed seed corpus, useful (GUEST_USER)
  cycles agree between backends in every tick mode: the timer hardware
  changes the overhead, never the work;
* **taxonomy invariants** — each backend stays inside its own exit
  vocabulary: zero MSR-write / preemption-timer exits on ARM, zero
  sysreg-trap / vtimer-IRQ exits on x86, and the mode-defining exits
  (tickless deadline programming, paratick's single hypercall) appear
  on both;
* **backend unit behaviour** — CVAL↔ns translation edges, the
  arch/hypervisor handshake, and spec validation.
"""

from __future__ import annotations

import pytest

from repro.analysis.checkers import TickSanitizer
from repro.analysis.fuzz import ARCH_SWEEP, fuzz_seed_arch
from repro.config import TickMode, VmSpec
from repro.errors import ConfigError, HardwareError, HostError
from repro.experiments.runner import run_workload
from repro.host.exitreasons import ExitReason
from repro.workloads.micro import IdlePeriodWorkload, SyncStormWorkload

MODES = list(TickMode)

#: Fixed seed corpus for the differential property (small but varied:
#: the fuzz scenario expansion maps these to all four workload kinds).
SEED_CORPUS = (0, 1, 2, 5, 8, 13)

#: Reasons that must never appear on the other backend.
FOREIGN = {
    "x86": (ExitReason.SYSREG_TRAP, ExitReason.VTIMER_IRQ),
    "arm": (ExitReason.MSR_WRITE, ExitReason.PREEMPTION_TIMER),
}


def _run(arch: str, mode: TickMode, *, seed: int = 7, sanitize: bool = False):
    tracer = TickSanitizer(mode=mode) if sanitize else None
    metrics = run_workload(
        SyncStormWorkload(threads=2, events_per_second=800.0,
                          duration_cycles=20_000_000),
        tick_mode=mode, seed=seed, arch=arch, tracer=tracer,
        label=f"archdiff/{arch}/{mode.value}",
    )
    return metrics, tracer


class TestWorkEquivalence:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_useful_cycles_identical_across_backends(self, mode):
        """For a pinned solo workload the equivalence is exact, not just
        within tolerance: the backends program different hardware but
        the guest performs bit-identical work."""
        per_arch = {arch: _run(arch, mode)[0] for arch in ARCH_SWEEP}
        useful = {arch: m.useful_cycles for arch, m in per_arch.items()}
        assert len(set(useful.values())) == 1, f"useful cycles diverged: {useful}"

    @pytest.mark.parametrize("seed", SEED_CORPUS)
    def test_seed_corpus_clean(self, seed):
        """The full fuzz-grade sweep — sanitizer + reconcile + arch
        diff — holds over the fixed corpus."""
        report = fuzz_seed_arch(seed)
        assert report.ok, "\n".join(report.problems)


class TestTaxonomyInvariants:
    @pytest.mark.parametrize("arch", ARCH_SWEEP)
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_no_foreign_exit_reasons(self, arch, mode):
        metrics, _ = _run(arch, mode)
        for reason in FOREIGN[arch]:
            assert metrics.exits.by_reason(reason) == 0, (
                f"{arch}/{mode.value}: {reason.value} is foreign to this backend"
            )

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_arm_programs_timers_via_sysreg_traps(self, mode):
        metrics, _ = _run("arm", mode)
        assert metrics.exits.by_reason(ExitReason.SYSREG_TRAP) > 0

    def test_arm_tick_delivery_is_vtimer_irq(self):
        metrics, _ = _run("arm", TickMode.TICKLESS)
        assert metrics.exits.by_reason(ExitReason.VTIMER_IRQ) > 0

    @pytest.mark.parametrize("arch", ARCH_SWEEP)
    def test_paratick_hypercall_on_both_backends(self, arch):
        """HC_PARATICK_SET_PERIOD is architecture-independent — the
        paravirtual protocol rides whatever hypercall ABI the arch has."""
        metrics, _ = _run(arch, TickMode.PARATICK)
        assert metrics.exits.by_reason(ExitReason.HYPERCALL) == 1

    @pytest.mark.parametrize("arch", ARCH_SWEEP)
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_sanitizer_clean_on_both_backends(self, arch, mode):
        _, tracer = _run(arch, mode, sanitize=True)
        violations = tracer.finish()
        assert not violations, violations[:5]
        cntv = next(c for c in tracer.checkers if c.name == "cntv")
        if arch == "arm":
            assert cntv.seen > 0, "CNTV checker never engaged on an ARM trace"
        else:
            assert cntv.seen == 0, "CNTV checker engaged on an x86 trace"


class TestBackendUnits:
    def test_unknown_arch_rejected_by_vmspec(self):
        with pytest.raises(ConfigError, match="unknown arch"):
            VmSpec(name="vm0", vcpus=1, tick_mode=TickMode.TICKLESS, arch="riscv")

    def test_unknown_arch_rejected_by_factory(self):
        from repro.hw.timerhw import make_timer_hardware

        with pytest.raises(ConfigError, match="unknown timer architecture"):
            make_timer_hardware("riscv", hv=None)

    def test_vm_arch_must_match_hypervisor(self):
        from repro.host.costs import DEFAULT_COSTS
        from repro.host.kvm import Hypervisor
        from repro.hw.cpu import Machine
        from repro.config import MachineSpec
        from repro.sim.engine import Simulator

        sim = Simulator(seed=0)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine, costs=DEFAULT_COSTS, arch="x86")
        with pytest.raises(HostError, match="does not match hypervisor arch"):
            hv.create_vm(VmSpec(name="vm0", vcpus=1,
                                tick_mode=TickMode.TICKLESS, arch="arm"))

    def test_cval_translation_edges(self):
        from repro.config import MachineSpec
        from repro.hw.arm import ArmGenericTimer
        from repro.hw.cpu import Machine
        from repro.sim.engine import Simulator

        sim = Simulator(seed=0)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        timer = ArmGenericTimer(sim, machine.clock)
        # A CVAL in the past clamps to "fire now", like a real vtimer
        # asserting its IRQ line immediately.
        sim.schedule(1000, lambda: None)
        sim.run(until=1000)
        past = timer.clock.ns_to_cycles(1)
        assert timer.cval_to_ns(past) == sim.now
        # Round-trip of a future deadline is exact at ns resolution.
        future_ns = 123_456
        cval = timer.clock.ns_to_cycles(future_ns)
        assert timer.cval_to_ns(cval) >= future_ns
        with pytest.raises(HardwareError):
            timer.cval_to_ns(-1)

    def test_arm_has_no_hardware_periodic_mode(self):
        from repro.hw.timerhw import make_timer_hardware

        class _Hv:
            pass

        from repro.config import MachineSpec
        from repro.hw.cpu import Machine
        from repro.sim.engine import Simulator

        sim = Simulator(seed=0)
        hv = _Hv()
        hv.sim = sim
        hv.machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hw = make_timer_hardware("arm", hv)
        assert hw.arch == "arm"
        assert not hw.has_periodic_mode
