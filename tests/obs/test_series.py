"""In-sim time series: exact window splitting and RunMetrics reconciliation.

The series artifact promises *exactness*, not approximation: interval
quantities split across window boundaries with integer arithmetic sum
back to the un-windowed totals, and a real run's windows reconcile
to-the-nanosecond against its final RunMetrics — solo, overcommitted,
and at the fleet-host level.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import TickMode
from repro.experiments.parallel import (
    ResultCache,
    RunSpec,
    WorkloadSpec,
    encode_result,
    execute_spec,
    execute_spec_full,
    run_grid,
    spec_key,
    spec_to_dict,
)
from repro.hw.interrupts import Vector
from repro.obs import ObsConfig, Observability, reconcile_series
from repro.obs.series import SeriesRecorder, series_totals


def series_spec(**changes) -> RunSpec:
    """Overcommitted noisy ping-pong: nonzero steal, halt, and ticks."""
    spec = RunSpec(
        WorkloadSpec.make("micro.pingpong", rounds=40, work_cycles=10_000),
        tick_mode=TickMode.PERIODIC,
        seed=0,
        noise=True,
        pinned_cpus=(0, 0),
        series=True,
    )
    return spec.with_(**changes) if changes else spec


class TestWindowSplitting:
    def test_interval_split_exactly_at_boundaries(self):
        r = SeriesRecorder(window_ns=100)
        r.emit(50, "v0", "vcpu_state", ("running", "ready"))
        r.emit(250, "v0", "vcpu_state", ("ready", "running"))
        per_window = {i: w.steal_ns for i, w in r._windows.items()}
        assert per_window == {0: 50, 1: 100, 2: 50}
        assert r.totals()["steal_ns"] == 200

    def test_random_intervals_sum_exactly(self):
        rng = random.Random(7)
        r = SeriesRecorder(window_ns=137)  # awkward width on purpose
        expected = 0
        t = 0
        for _ in range(200):
            t += rng.randrange(1, 50)
            start = t
            t += rng.randrange(1, 400)
            expected += t - start
            r.emit(start, "v0", "vcpu_state", ("running", "ready"))
            r.emit(t, "v0", "vcpu_state", ("ready", "running"))
        assert r.totals()["steal_ns"] == expected

    def test_open_interval_at_horizon_excluded(self):
        r = SeriesRecorder(window_ns=100)
        r.emit(50, "v0", "vcpu_state", ("running", "ready"))
        r.finalize(400)
        assert r.totals()["steal_ns"] == 0
        assert r.end_ns == 400

    def test_halt_residency_counted_on_close(self):
        r = SeriesRecorder(window_ns=100)
        r.emit(30, "v0", "vcpu_state", ("running", "halted"))
        r.emit(130, "v0", "vcpu_state", ("halted", "running"))
        per_window = {i: w.halted_ns for i, w in r._windows.items()}
        assert per_window == {0: 70, 1: 30}

    def test_vmexits_land_in_their_window(self):
        r = SeriesRecorder(window_ns=100)
        for t in (5, 99, 100, 250):
            r.emit(t, "v0", "vmexit", None)
        assert {i: w.exits for i, w in r._windows.items()} == {0: 2, 1: 1, 2: 1}

    def test_tick_latency_lands_in_inject_window(self):
        r = SeriesRecorder(window_ns=100)
        r.emit(10, "v0", "deadline_fire", (1000, "periodic"))
        r.emit(120, "v0", "inject", (int(Vector.LOCAL_TIMER),))
        w = r._windows[1]
        assert w.tick is not None
        assert w.tick.count == 1 and w.tick.total == 110

    def test_non_tick_inject_ignored(self):
        r = SeriesRecorder(window_ns=100)
        r.emit(10, "v0", "deadline_fire", (1000, "periodic"))
        r.emit(50, "v0", "inject", (99,))
        assert not any(w.tick for w in r._windows.values())

    def test_json_totals_match_windows(self):
        r = SeriesRecorder(window_ns=100)
        r.emit(5, "v0", "vmexit", None)
        r.emit(30, "v0", "vcpu_state", ("running", "ready"))
        r.emit(250, "v0", "vcpu_state", ("ready", "running"))
        r.finalize(300)
        doc = r.to_json_dict()
        assert doc["version"] == 1
        assert doc["totals"] == series_totals(doc)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window_ns"):
            SeriesRecorder(window_ns=0)


class TestRunReconciliation:
    def test_overcommitted_run_reconciles_exactly(self):
        metrics, obs_json, series = execute_spec_full(series_spec())
        assert obs_json is None  # series alone does not imply profile
        assert series is not None and series["windows"]
        assert reconcile_series(series, metrics) == []
        # The run genuinely exercised the interval paths.
        assert series_totals(series)["steal_ns"] > 0
        assert series_totals(series)["halted_ns"] > 0

    def test_solo_run_reconciles_exactly(self):
        spec = series_spec(pinned_cpus=None, noise=False,
                           tick_mode=TickMode.PARATICK)
        metrics, _, series = execute_spec_full(spec)
        assert reconcile_series(series, metrics) == []

    def test_fleet_host_shard_reconciles_exactly(self):
        from repro.fleet import FleetSpec, execute_fleet_spec
        from repro.sim.timebase import MSEC

        fleet = FleetSpec(
            name="serfleet",
            workload=WorkloadSpec.make("micro.pingpong", rounds=8,
                                       work_cycles=15_000, same_vcpu=False),
            tick_mode=TickMode.PARATICK,
            hosts=1, guests_per_host=3, consolidation=3,
            burst="poisson", burst_window_ns=2 * MSEC,
            seed=4, horizon_ns=400 * MSEC,
        )
        [spec] = [s.with_(series=True) for s in fleet.host_specs()]
        metrics, _, series = execute_fleet_spec(spec)
        assert reconcile_series(series, metrics) == []

    def test_metrics_bit_identical_with_and_without_series(self):
        with_series = execute_spec_full(series_spec())[0]
        without = execute_spec(series_spec(series=False))
        assert encode_result(with_series) == encode_result(without)

    def test_reconcile_reports_mismatch(self):
        metrics, _, series = execute_spec_full(series_spec())
        series = json.loads(json.dumps(series))
        series["windows"][0]["exits"] += 1
        errors = reconcile_series(series, metrics)
        assert errors and any("exits" in e for e in errors)


class TestSpecAndCache:
    def test_default_spec_dict_has_no_series_field(self):
        # Cache-key stability: pre-series specs must keep their keys.
        assert "series" not in spec_to_dict(series_spec(series=False))
        assert spec_to_dict(series_spec())["series"] is True

    def test_series_changes_the_cache_key(self):
        assert spec_key(series_spec()) != spec_key(series_spec(series=False))

    def test_grid_caches_and_replays_series(self, tmp_path):
        spec = series_spec()
        cold = run_grid([spec], jobs=1, cache_dir=tmp_path)
        assert (cold.executed, cold.cache_hits) == (1, 0)
        path = ResultCache(tmp_path).series_path_for(spec_key(spec))
        assert path.exists()
        warm = run_grid([spec], jobs=1, cache_dir=tmp_path)
        assert (warm.executed, warm.cache_hits) == (0, 1)
        assert warm.series[spec] == cold.series[spec]
        assert reconcile_series(warm.series[spec], warm[spec]) == []

    def test_missing_series_artifact_demotes_hit_to_miss(self, tmp_path):
        spec = series_spec()
        run_grid([spec], jobs=1, cache_dir=tmp_path)
        ResultCache(tmp_path).series_path_for(spec_key(spec)).unlink()
        again = run_grid([spec], jobs=1, cache_dir=tmp_path)
        assert (again.executed, again.cache_hits) == (1, 0)
        assert spec in again.series

    def test_series_artifact_is_byte_stable(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        spec = series_spec()
        run_grid([spec], jobs=1, cache_dir=a)
        run_grid([spec], jobs=1, cache_dir=b)
        pa = ResultCache(a).series_path_for(spec_key(spec))
        pb = ResultCache(b).series_path_for(spec_key(spec))
        assert pa.read_bytes() == pb.read_bytes()


class TestObsWiring:
    def test_series_json_requires_enablement(self):
        obs = Observability(ObsConfig())
        with pytest.raises(ValueError, match="series"):
            obs.series_json()

    def test_obs_json_schema_unchanged_by_series(self):
        on = Observability(ObsConfig(series=True))
        off = Observability(ObsConfig())
        assert set(on.to_json_dict()) == set(off.to_json_dict())
