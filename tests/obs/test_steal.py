"""Steal-time accounting: trace vs runtime counters vs busy timeline."""

from __future__ import annotations

import pytest

from repro.config import MachineSpec, TickMode
from repro.experiments.runner import run_workload
from repro.obs import ObsConfig, Observability
from repro.obs.steal import StealTracker
from repro.workloads.micro import PingPongWorkload, SyncStormWorkload


def run_overcommitted(workload, *, mode=TickMode.TICKLESS, seed=4):
    obs = Observability(ObsConfig(profile=False, latency=False))
    internals = {}

    def inspect(sim, machine, hv, vm):
        internals.update(machine=machine, hv=hv, now=sim.now)

    m = run_workload(
        workload, tick_mode=mode, seed=seed,
        machine_spec=MachineSpec(sockets=1, cpus_per_socket=1),
        pinned_cpus=(0, 0), obs=obs, inspect=inspect,
    )
    return m, obs.steal, internals


class TestStealReconciliation:
    @pytest.mark.parametrize("mode", list(TickMode))
    def test_trace_equals_runtime_counters(self, mode):
        """Two independent derivations of steal agree exactly: closed
        READY intervals from the trace vs the executors' counters."""
        m, steal, ctx = run_overcommitted(PingPongWorkload(rounds=80), mode=mode)
        assert steal.reconcile_runtime(ctx["hv"]) == []

    def test_timeline_bound_holds(self):
        """No vCPU's steal on a pCPU exceeds that CPU's busy timeline."""
        _, steal, ctx = run_overcommitted(PingPongWorkload(rounds=80))
        assert steal.reconcile_timeline(ctx["machine"], ctx["now"]) == []

    def test_overcommit_actually_steals(self):
        """Two vCPUs on one pCPU with CPU-bound work must contend."""
        m, steal, _ = run_overcommitted(SyncStormWorkload(
            threads=2, events_per_second=1000.0, duration_cycles=40_000_000))
        assert steal.total_steal_ns > 0
        # Both sides count dispatch-closed waits, so they agree exactly
        # even when a waiter is still READY at the horizon.
        assert m.steal_ns == steal.total_steal_ns

    def test_solo_run_steals_nothing(self):
        """Pinned 1:1 (the paper's setup) has no READY waits at all."""
        obs = Observability(ObsConfig(profile=False, latency=False))
        m = run_workload(PingPongWorkload(rounds=80), seed=4, obs=obs)
        assert obs.steal.total_steal_ns == 0
        assert obs.steal.episodes == {}
        assert m.steal_ns == 0

    def test_metrics_carry_steal(self):
        m, steal, _ = run_overcommitted(PingPongWorkload(rounds=80))
        assert m.steal_ns == steal.total_steal_ns
        assert m.extra["steal_episodes"] == sum(steal.episodes.values())
        assert 0.0 <= m.steal_ratio

    def test_detects_counter_drift(self):
        """Corrupting a runtime counter must fail reconciliation."""
        _, steal, ctx = run_overcommitted(PingPongWorkload(rounds=80))
        vcpu = ctx["hv"].vms[0].vcpus[0]
        vcpu.total_steal_ns += 1
        problems = steal.reconcile_runtime(ctx["hv"])
        assert problems and "steal" in problems[0]


class TestStealTrackerUnit:
    def test_interval_accounting(self):
        t = StealTracker()
        t.emit(100, "vm0/vcpu0", "vcpu_state", ("exited", "ready"))
        t.emit(350, "vm0/vcpu0", "vcpu_state", ("ready", "exited"))
        t.emit(350, "vm0/vcpu0", "sched_dispatch", (0, 250))
        assert t.steal_ns == {"vm0/vcpu0": 250}
        assert t.episodes == {"vm0/vcpu0": 1}
        assert t.pcpu_steal_ns == {0: 250}

    def test_open_interval_not_counted(self):
        t = StealTracker()
        t.emit(100, "vm0/vcpu0", "vcpu_state", ("exited", "ready"))
        assert t.total_steal_ns == 0
        assert t.open_waiters() == {"vm0/vcpu0": 100}

    def test_json_shape(self):
        t = StealTracker()
        t.emit(0, "vm0/vcpu1", "vcpu_state", ("exited", "ready"))
        t.emit(9, "vm0/vcpu1", "vcpu_state", ("ready", "exited"))
        d = t.to_json_dict()
        assert d["total_steal_ns"] == 9
        assert d["per_vcpu"]["vm0/vcpu1"] == {"steal_ns": 9, "episodes": 1}
