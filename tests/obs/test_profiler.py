"""Sampling profiler: exact ledger reconciliation and attribution."""

from __future__ import annotations

import pytest

from repro.config import MachineSpec, TickMode
from repro.experiments.runner import run_workload
from repro.obs import ObsConfig, Observability
from repro.obs.profiler import SamplingProfiler
from repro.workloads.micro import PingPongWorkload, SyncStormWorkload


def run_profiled(workload, *, period_ns=10_000, overcommit=False, **kw):
    obs = Observability(ObsConfig(
        sample_period_ns=period_ns, latency=False, steal=False,
    ))
    internals = {}

    def inspect(sim, machine, hv, vm):
        internals["machine"] = machine

    if overcommit:
        kw.update(machine_spec=MachineSpec(sockets=1, cpus_per_socket=1),
                  pinned_cpus=(0, 0))
    m = run_workload(workload, obs=obs, inspect=inspect, seed=4, **kw)
    return m, obs, internals["machine"]


class TestLedgerReconciliation:
    @pytest.mark.parametrize("period_ns", [1_000, 10_000, 77_777])
    def test_samples_equal_busy_over_period(self, period_ns):
        """The headline invariant: samples(p) == busy_ns(p) // period,
        exactly, for every pCPU — the profiler resamples the ledger
        without losing or inventing time."""
        _, obs, machine = run_profiled(
            PingPongWorkload(rounds=80), period_ns=period_ns)
        for cpu in machine.cpus:
            assert obs.profiler.samples_on(cpu.index) == cpu.busy_ns() // period_ns

    def test_reconciles_under_overcommit(self):
        _, obs, machine = run_profiled(
            PingPongWorkload(rounds=80), overcommit=True)
        assert obs.profiler.total_samples > 0
        for cpu in machine.cpus:
            assert obs.profiler.samples_on(cpu.index) == cpu.busy_ns() // 10_000

    def test_total_is_sum_of_stacks(self):
        _, obs, _ = run_profiled(SyncStormWorkload(
            threads=2, events_per_second=2000.0, duration_cycles=30_000_000))
        assert obs.profiler.total_samples == sum(obs.profiler.samples.values())


class TestAttribution:
    def test_guest_user_attributed_to_task(self):
        _, obs, _ = run_profiled(PingPongWorkload(rounds=80))
        contexts = obs.profiler.by_context()
        assert any(c.startswith("micro.pingpong") for c in contexts), contexts

    def test_domains_match_ledger_shape(self):
        """Sampled domains are a subset of ledger domains with nonzero
        time, and guest_user dominates a compute-bound run."""
        _, obs, machine = run_profiled(
            PingPongWorkload(rounds=40, work_cycles=2_000_000))
        by_domain = obs.profiler.by_domain()
        ledger = {d.value: ns for d, ns in machine.ledger().items() if ns > 0}
        assert set(by_domain) <= set(ledger)
        assert max(by_domain, key=by_domain.get) == "guest_user"

    def test_collapsed_format(self):
        _, obs, _ = run_profiled(PingPongWorkload(rounds=40))
        lines = obs.profiler.collapsed()
        assert lines, "no samples collapsed"
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            frames = stack.split(";")
            assert len(frames) == 4 and frames[0].startswith("pcpu")
        # Sorted most-samples-first.
        counts = [int(l.rpartition(" ")[2]) for l in lines]
        assert counts == sorted(counts, reverse=True)

    def test_json_dict_shape(self):
        _, obs, _ = run_profiled(PingPongWorkload(rounds=40))
        d = obs.profiler.to_json_dict()
        assert d["total_samples"] == sum(d["by_domain"].values())
        assert d["period_ns"] == 10_000


class TestProfilerGuards:
    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0)
        with pytest.raises(ValueError):
            SamplingProfiler(-5)

    def test_double_install_rejected(self):
        """Two observers cannot share a pCPU (single observer slot)."""
        from repro.hw.cpu import Machine
        from repro.host.kvm import Hypervisor
        from repro.sim.engine import Simulator

        sim = Simulator(seed=0)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=2))
        hv = Hypervisor(sim, machine)
        a, b = SamplingProfiler(), SamplingProfiler()
        a.install(machine, hv)
        with pytest.raises(ValueError):
            b.install(machine, hv)
        a.uninstall()
        b.install(machine, hv)  # slot freed

    def test_uninstalled_after_run(self):
        """run_workload detaches the observer at finalize."""
        _, _, machine = run_profiled(PingPongWorkload(rounds=40))
        assert all(cpu.observer is None for cpu in machine.cpus)
