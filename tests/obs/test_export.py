"""Chrome trace_event export: schema validity and the Fig. 1 golden trace.

The acceptance-grade test here: exporting the Fig. 1 (tickless) idle
cycle produces a Perfetto-loadable document whose instant-event kinds
match the golden kind list the analysis tests pin — i.e. the exporter
drops nothing and invents nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.config import TickMode
from repro.obs.export import (
    slice_names,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import TraceRecord

from tests.analysis.test_golden_traces import (
    FIG1_TICKLESS_CYCLE,
    one_idle_cycle,
    traced_idle_run,
)


@pytest.fixture(scope="module")
def fig1_records():
    return traced_idle_run(TickMode.TICKLESS)


@pytest.fixture(scope="module")
def fig1_doc(fig1_records):
    return to_chrome_trace(fig1_records, pcpu_of={"vm0/vcpu0": 0})


class TestFig1GoldenExport:
    def test_document_validates(self, fig1_doc):
        assert validate_chrome_trace(fig1_doc) == []

    def test_instant_kinds_match_golden_cycle(self, fig1_records, fig1_doc):
        """Every non-state kind of the golden Fig. 1 idle cycle appears
        as an instant event, in the same order, over the cycle window."""
        cycle = one_idle_cycle(fig1_records)
        assert cycle == FIG1_TICKLESS_CYCLE  # the premise the export rides on
        starts = [i for i, r in enumerate(fig1_records) if r.kind == "idle_enter"]
        window = fig1_records[starts[0]:starts[1]]
        t0, t1 = window[0].time, window[-1].time
        expected = [k for k in FIG1_TICKLESS_CYCLE if k != "vcpu_state"]
        instants = sorted(
            (ev for ev in fig1_doc["traceEvents"]
             if ev["ph"] == "i" and t0 <= ev["ts"] * 1000.0 <= t1),
            key=lambda ev: ev["ts"],
        )
        assert [ev["name"] for ev in instants] == expected

    def test_state_slices_alternate(self, fig1_doc):
        """The vCPU track renders the run-state machine: a guest slice
        is never followed directly by another guest slice."""
        names = slice_names(fig1_doc, "vm0/vcpu0")
        assert "guest" in names and "halted" in names
        for a, b in zip(names, names[1:]):
            assert not (a == "guest" and b == "guest")

    def test_durations_cover_trace(self, fig1_records, fig1_doc):
        """Complete events tile the vCPU's lifetime: total slice time
        equals first state transition -> trace horizon (the final open
        slice is closed at the horizon)."""
        states = [r for r in fig1_records
                  if r.source == "vm0/vcpu0" and r.kind == "vcpu_state"]
        horizon = max(r.time for r in fig1_records)
        end = horizon if states[-1].detail[1] != "off" else states[-1].time
        span_us = (end - states[0].time) / 1000.0
        total_us = sum(ev["dur"] for ev in fig1_doc["traceEvents"]
                       if ev["ph"] == "X")
        assert total_us == pytest.approx(span_us, rel=1e-9)

    def test_json_serializable(self, fig1_doc, tmp_path):
        path = tmp_path / "fig1.trace.json"
        write_chrome_trace(fig1_doc, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == fig1_doc["traceEvents"]
        assert loaded["displayTimeUnit"] == "ns"


class TestExporterMechanics:
    def test_tracks_named_per_source(self):
        recs = [
            TraceRecord(10, "vm0/vcpu0", "idle_enter"),
            TraceRecord(20, "vm0/vcpu1", "idle_enter"),
        ]
        doc = to_chrome_trace(recs, pcpu_of={"vm0/vcpu0": 0, "vm0/vcpu1": 1})
        meta = [(ev["name"], ev["args"]["name"]) for ev in doc["traceEvents"]
                if ev["ph"] == "M"]
        assert ("process_name", "pCPU0") in meta
        assert ("process_name", "pCPU1") in meta
        assert ("thread_name", "vm0/vcpu0") in meta
        assert ("thread_name", "vm0/vcpu1") in meta

    def test_vlapic_rides_its_vcpu_pid(self):
        recs = [TraceRecord(5, "vm0/vcpu1/vlapic", "lapic_disarm")]
        doc = to_chrome_trace(recs, pcpu_of={"vm0/vcpu1": 3})
        inst = next(ev for ev in doc["traceEvents"] if ev["ph"] == "i")
        assert inst["pid"] == 3

    def test_open_slice_closed_at_end_ns(self):
        recs = [TraceRecord(100, "vm0/vcpu0", "vcpu_state", ("init", "guest"))]
        doc = to_chrome_trace(recs, end_ns=600)
        sl = next(ev for ev in doc["traceEvents"] if ev["ph"] == "X")
        assert sl["name"] == "guest"
        assert sl["ts"] == pytest.approx(0.1)
        assert sl["dur"] == pytest.approx(0.5)

    def test_ns_to_us_fractional(self):
        recs = [TraceRecord(1234, "x", "idle_enter")]
        doc = to_chrome_trace(recs)
        inst = next(ev for ev in doc["traceEvents"] if ev["ph"] == "i")
        assert inst["ts"] == pytest.approx(1.234)


class TestValidator:
    def test_rejects_non_list(self):
        assert validate_chrome_trace({"traceEvents": {}}) != []

    def test_rejects_unknown_phase(self):
        bad = {"traceEvents": [{"ph": "Z", "pid": 0, "tid": 0, "ts": 0, "name": "x"}]}
        assert any("phase" in e for e in validate_chrome_trace(bad))

    def test_rejects_negative_ts(self):
        bad = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0, "args": {"name": "p"}},
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1, "args": {"name": "t"}},
            {"ph": "i", "s": "t", "pid": 0, "tid": 1, "ts": -1, "name": "x", "args": {}},
        ]}
        assert any("ts" in e for e in validate_chrome_trace(bad))

    def test_rejects_unnamed_track(self):
        bad = {"traceEvents": [
            {"ph": "i", "s": "t", "pid": 0, "tid": 1, "ts": 0, "name": "x", "args": {}},
        ]}
        errors = validate_chrome_trace(bad)
        assert any("process_name" in e for e in errors)
        assert any("thread_name" in e for e in errors)

    def test_rejects_complete_without_dur(self):
        bad = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0, "args": {"name": "p"}},
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1, "args": {"name": "t"}},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 0, "name": "x"},
        ]}
        assert any("dur" in e for e in validate_chrome_trace(bad))
