"""Log2 histogram unit behaviour: bucketing, merge, percentiles."""

from __future__ import annotations

import pytest

from repro.obs.histograms import N_BUCKETS, HistogramRegistry, Log2Histogram


class TestLog2Histogram:
    def test_empty(self):
        h = Log2Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0
        assert h.min is None and h.max == 0

    def test_bucket_boundaries(self):
        """Value v lands in bucket v.bit_length(): [2^(b-1), 2^b)."""
        h = Log2Histogram()
        for v in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            h.record(v)
        assert h.counts[0] == 1          # 0
        assert h.counts[1] == 1          # 1
        assert h.counts[2] == 2          # 2, 3
        assert h.counts[3] == 2          # 4, 7
        assert h.counts[4] == 1          # 8
        assert h.counts[10] == 1         # 1023
        assert h.counts[11] == 1         # 1024

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Log2Histogram().record(-1)

    def test_huge_value_clamps_to_last_bucket(self):
        h = Log2Histogram()
        h.record(1 << 80)
        assert h.counts[N_BUCKETS - 1] == 1
        assert h.max == 1 << 80

    def test_stats_track_exactly(self):
        h = Log2Histogram()
        values = [5, 17, 100, 100, 3]
        for v in values:
            h.record(v)
        assert h.count == len(values)
        assert h.total == sum(values)
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert h.min == 3 and h.max == 100

    def test_percentile_within_envelope(self):
        """Percentiles are bucket-resolution but never leave [min, max]."""
        h = Log2Histogram()
        for v in (10, 20, 1000, 2000, 4000):
            h.record(v)
        for p in (0, 25, 50, 75, 95, 99, 100):
            assert h.min <= h.percentile(p) <= h.max

    def test_percentile_orders(self):
        h = Log2Histogram()
        for v in [2] * 90 + [1 << 20] * 10:
            h.record(v)
        assert h.percentile(50) < h.percentile(99)
        assert h.percentile(99) >= 1 << 19

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Log2Histogram().percentile(101)

    def test_merge_is_bucketwise_sum(self):
        a, b = Log2Histogram(), Log2Histogram()
        for v in (1, 5, 100):
            a.record(v)
        for v in (7, 10_000):
            b.record(v)
        m = a.merge(b)
        assert m.count == 5
        assert m.total == a.total + b.total
        assert m.min == 1 and m.max == 10_000
        assert m.counts == [x + y for x, y in zip(a.counts, b.counts)]

    def test_merge_with_empty(self):
        a = Log2Histogram()
        a.record(42)
        m = a.merge(Log2Histogram())
        assert m.count == 1 and m.min == 42 and m.max == 42

    def test_nonzero_buckets_ranges(self):
        h = Log2Histogram()
        h.record(0)
        h.record(6)
        buckets = list(h.nonzero_buckets())
        assert (0, 0, 1) in buckets
        assert (4, 7, 1) in buckets

    def test_json_round_shape(self):
        h = Log2Histogram()
        h.record(9)
        d = h.to_json_dict()
        assert d["count"] == 1 and d["buckets"] == {"4": 1}
        s = h.summary()
        assert set(s) == {"count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"}


class TestHistogramRegistry:
    def test_get_creates_once(self):
        r = HistogramRegistry()
        assert r.get("a") is r.get("a")
        assert len(r) == 1

    def test_record_and_rows(self):
        r = HistogramRegistry()
        r.record("wake", 1500)
        r.record("wake", 3000)
        r.record("exit", 200)
        assert r.names() == ["exit", "wake"]
        rows = r.summary_rows()
        assert len(rows) == 2
        assert rows[1][0] == "wake" and rows[1][1] == "2"

    def test_json_dict(self):
        r = HistogramRegistry()
        r.record("x", 5)
        assert r.to_json_dict()["x"]["count"] == 1
