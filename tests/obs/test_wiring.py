"""Observability wiring: zero overhead when off, zero perturbation when on.

The two contracts the whole subsystem stands on:

* **off == free** — a NullTracer run with no Observability attached does
  no profiling work at all: no ``emit`` call, no ``on_account`` call
  (proved with exploding stand-ins, mirroring the tracer fast-path
  audit in ``tests/sim/test_trace_fastpath.py``);
* **on == invisible** — attaching the full stack changes *nothing* in
  the simulated results: RunMetrics are bit-identical with obs on/off.
"""

from __future__ import annotations

import pytest

from repro.config import MachineSpec, TickMode
from repro.experiments.parallel import (
    ResultCache,
    RunSpec,
    WorkloadSpec,
    run_grid,
    spec_from_dict,
    spec_key,
    spec_to_dict,
)
from repro.experiments.runner import run_workload
from repro.obs import ObsConfig, Observability
from repro.sim.trace import NullTracer
from repro.workloads.micro import PingPongWorkload


class ExplodingObserver:
    """Any ledger callback with obs disabled is a missing-guard bug."""

    def on_account(self, pcpu, domain, ns):
        raise AssertionError(
            f"on_account called with no observer installed: "
            f"pCPU{pcpu.index} {domain} {ns}ns"
        )


class TestDisabledObsDoesZeroWork:
    def test_default_run_has_no_observer(self):
        """No Observability => PhysicalCPU.observer stays None and the
        account() fast path is one attribute check."""
        internals = {}

        def inspect(sim, machine, hv, vm):
            internals["machine"] = machine

        run_workload(PingPongWorkload(rounds=40), seed=3, inspect=inspect)
        assert all(cpu.observer is None for cpu in internals["machine"].cpus)

    def test_empty_obs_config_defeats_nothing(self):
        """An all-off ObsConfig returns the user's tracer untouched, so
        the NullTracer fast path survives."""
        obs = Observability(ObsConfig(
            profile=False, latency=False, steal=False, trace_export=False))
        assert obs.tracer(None) is None
        null = NullTracer()
        assert obs.tracer(null) is null

    def test_obs_disabled_run_matches_plain_run(self):
        """Off-config obs run == no-obs run, bit for bit."""
        obs = Observability(ObsConfig(profile=False, latency=False, steal=False))
        a = run_workload(PingPongWorkload(rounds=40), seed=3)
        b = run_workload(PingPongWorkload(rounds=40), seed=3, obs=obs)
        assert a.to_json_dict() == b.to_json_dict()


class TestObsNeverPerturbs:
    @pytest.mark.parametrize("mode", list(TickMode))
    def test_metrics_identical_with_full_stack(self, mode):
        plain = run_workload(PingPongWorkload(rounds=60), tick_mode=mode, seed=9)
        obs = Observability(ObsConfig(trace_export=True))
        probed = run_workload(
            PingPongWorkload(rounds=60), tick_mode=mode, seed=9, obs=obs)
        assert plain.to_json_dict() == probed.to_json_dict()
        assert obs.profiler.total_samples > 0  # it really was watching

    def test_metrics_identical_under_overcommit(self):
        kw = dict(
            seed=9, machine_spec=MachineSpec(sockets=1, cpus_per_socket=1),
            pinned_cpus=(0, 0),
        )
        plain = run_workload(PingPongWorkload(rounds=60), **kw)
        probed = run_workload(PingPongWorkload(rounds=60),
                              obs=Observability(), **kw)
        assert plain.to_json_dict() == probed.to_json_dict()


class TestParallelProfileArtifacts:
    def spec(self, **kw):
        ws = WorkloadSpec.make("micro.pingpong", rounds=40,
                               work_cycles=50_000, same_vcpu=False)
        return RunSpec(workload=ws, seed=2, label="obs-test", **kw)

    def test_profile_field_round_trips(self):
        spec = self.spec(profile=True)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_profile_changes_cache_key(self):
        assert spec_key(self.spec(profile=True)) != spec_key(self.spec())

    def test_artifact_produced_and_cached(self, tmp_path):
        spec = self.spec(profile=True)
        grid = run_grid([spec], cache_dir=tmp_path)
        art = grid.artifacts[spec]
        assert art["profile"]["total_samples"] > 0
        assert "latency" in art and "steal" in art
        cache = ResultCache(tmp_path)
        assert cache.artifact_path_for(spec_key(spec)).exists()
        # Second pass: both result and artifact served from cache.
        again = run_grid([spec], cache_dir=tmp_path)
        assert again.cache_hits == 1 and again.executed == 0
        assert again.artifacts[spec] == art

    def test_missing_artifact_forces_rerun(self, tmp_path):
        """A cached result without its profile sibling is a miss — the
        grid must not return a profiled spec without its artifact."""
        spec = self.spec(profile=True)
        run_grid([spec], cache_dir=tmp_path)
        ResultCache(tmp_path).artifact_path_for(spec_key(spec)).unlink()
        again = run_grid([spec], cache_dir=tmp_path)
        assert again.executed == 1
        assert spec in again.artifacts

    def test_unprofiled_spec_has_no_artifact(self, tmp_path):
        spec = self.spec()
        grid = run_grid([spec], cache_dir=tmp_path)
        assert grid.artifacts == {}
        assert not ResultCache(tmp_path).artifact_path_for(spec_key(spec)).exists()

    def test_profiled_worker_matches_unprofiled(self, tmp_path):
        """Profiling inside pool workers does not perturb results."""
        a = run_grid([self.spec(profile=True)], cache_dir=tmp_path / "a", jobs=2)
        b = run_grid([self.spec()], cache_dir=tmp_path / "b", jobs=2)
        ma = a[self.spec(profile=True)]
        mb = b[self.spec()]
        assert ma.to_json_dict() == mb.to_json_dict()
