"""Unit tests for the cost model, exit taxonomy and host scheduler."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError, HostError
from repro.host.costs import DEFAULT_COSTS, CostModel
from repro.host.exitreasons import TIMER_TAGS, ExitReason, ExitTag
from repro.host.sched import HostScheduler
from repro.host.vcpu import VCpu, VcpuState
from repro.hw.cpu import Machine
from repro.config import MachineSpec
from repro.sim.engine import Simulator


class TestCostModel:
    def test_every_cost_is_nonnegative_int(self):
        for f in dataclasses.fields(CostModel):
            v = getattr(DEFAULT_COSTS, f.name)
            assert isinstance(v, int) and v >= 0, f.name

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(vmexit_hw=-1)

    def test_handler_cost_covers_every_reason(self):
        for reason in ExitReason:
            assert DEFAULT_COSTS.handler_cost(reason) > 0

    def test_icr_write_costlier_than_deadline_write(self):
        assert DEFAULT_COSTS.handler_cost(
            ExitReason.MSR_WRITE, msr_is_icr=True
        ) > DEFAULT_COSTS.handler_cost(ExitReason.MSR_WRITE)

    def test_preemption_timer_cheaper_than_external_interrupt(self):
        """§3: KVM's preemption-timer path is the 'less costly' exit."""
        assert DEFAULT_COSTS.handler_preemption_timer < DEFAULT_COSTS.handler_external_interrupt

    def test_with_overrides(self):
        c = DEFAULT_COSTS.with_overrides(pollution=0)
        assert c.pollution == 0
        assert c.vmexit_hw == DEFAULT_COSTS.vmexit_hw
        assert DEFAULT_COSTS.pollution > 0  # original untouched


class TestExitTaxonomy:
    def test_timer_tags(self):
        assert ExitTag.TIMER_PROGRAM in TIMER_TAGS
        assert ExitTag.TIMER_GUEST_TICK in TIMER_TAGS
        assert ExitTag.TIMER_HOST_TICK in TIMER_TAGS
        assert ExitTag.IPI not in TIMER_TAGS
        assert ExitTag.IO not in TIMER_TAGS


def make_vcpus(n_vcpus, n_cpus=1):
    machine = Machine(Simulator(), MachineSpec(sockets=1, cpus_per_socket=n_cpus))
    return [VCpu(i, "vm0", machine.cpu(i % n_cpus)) for i in range(n_vcpus)]


class TestHostScheduler:
    def test_acquire_free_cpu(self):
        (v,) = make_vcpus(1)
        s = HostScheduler(1)
        assert s.acquire(v) is True
        assert s.running_on(0) is v

    def test_acquire_busy_cpu_queues(self):
        a, b = make_vcpus(2)
        s = HostScheduler(1)
        assert s.acquire(a)
        assert s.acquire(b) is False
        assert b.state is VcpuState.READY
        assert s.waiters_on(0) == 1
        assert s.wants_preemption(0)

    def test_release_dispatches_next(self):
        a, b = make_vcpus(2)
        s = HostScheduler(1)
        s.acquire(a)
        s.acquire(b)
        nxt = s.release(a)
        assert nxt is b
        assert s.running_on(0) is b

    def test_release_empty_queue(self):
        (a,) = make_vcpus(1)
        s = HostScheduler(1)
        s.acquire(a)
        assert s.release(a) is None
        assert s.running_on(0) is None

    def test_release_not_holder_raises(self):
        a, b = make_vcpus(2)
        s = HostScheduler(1)
        s.acquire(a)
        with pytest.raises(HostError):
            s.release(b)

    def test_round_robin_requeue(self):
        a, b, c = make_vcpus(3)
        s = HostScheduler(1)
        for v in (a, b, c):
            s.acquire(v)
        nxt = s.release(a)
        s.requeue(a)
        assert nxt is b
        assert s.release(b) is c
        s.requeue(b)
        assert s.release(c) is a

    def test_double_queue_rejected(self):
        a, b = make_vcpus(2)
        s = HostScheduler(1)
        s.acquire(a)
        s.acquire(b)
        with pytest.raises(HostError):
            s.acquire(b)

    def test_acquire_is_idempotent_for_holder(self):
        (a,) = make_vcpus(1)
        s = HostScheduler(1)
        s.acquire(a)
        assert s.acquire(a) is True

    def test_forget(self):
        a, b = make_vcpus(2)
        s = HostScheduler(1)
        s.acquire(a)
        s.acquire(b)
        s.forget(b)
        assert s.waiters_on(0) == 0
        s.forget(a)
        assert s.running_on(0) is None

    def test_switch_counter(self):
        a, b = make_vcpus(2)
        s = HostScheduler(1)
        s.acquire(a)
        s.acquire(b)
        s.release(a)
        assert s.switches == 2  # a dispatched, then b


class TestVCpu:
    def test_irq_coalescing(self):
        from repro.hw.interrupts import Vector

        (v,) = make_vcpus(1)
        assert v.post_irq(Vector.LOCAL_TIMER) is True
        assert v.post_irq(Vector.LOCAL_TIMER) is False  # coalesced
        assert v.post_irq(Vector.RESCHEDULE) is True
        assert v.drain_irqs() == (Vector.LOCAL_TIMER, Vector.RESCHEDULE)
        assert v.pending_irqs == []

    def test_has_pending_timer_irq(self):
        from repro.hw.interrupts import Vector

        (v,) = make_vcpus(1)
        assert not v.has_pending_timer_irq
        v.post_irq(Vector.LOCAL_TIMER)
        assert v.has_pending_timer_irq
