"""Tests for EOI-write interception (APICv toggle)."""

from __future__ import annotations

from repro.config import HostFeatures, TickMode
from repro.experiments.runner import run_workload
from repro.host.exitreasons import ExitTag
from repro.workloads.micro import PingPongWorkload


def run(virtual_eoi: bool, mode=TickMode.TICKLESS):
    return run_workload(
        PingPongWorkload(rounds=150, work_cycles=200_000),
        tick_mode=mode,
        features=HostFeatures(virtual_eoi=virtual_eoi),
        seed=7,
        noise=False,
    )


class TestEoi:
    def test_virtual_eoi_takes_no_eoi_exits(self):
        m = run(True)
        assert m.exits.by_tag(ExitTag.EOI) == 0

    def test_trapped_eoi_one_per_injected_interrupt(self):
        m = run(False)
        eois = m.exits.by_tag(ExitTag.EOI)
        # Every ping-pong wake is one injected RESCHEDULE -> one EOI;
        # plus boot-time and timer interrupts.
        assert eois >= 250

    def test_eoi_exits_are_not_timer_related(self):
        m = run(False)
        assert m.exits.by_tag(ExitTag.EOI) > 0
        assert ExitTag.EOI not in __import__("repro.host.exitreasons", fromlist=["TIMER_TAGS"]).TIMER_TAGS

    def test_trapped_eoi_costs_cycles(self):
        fast = run(True)
        slow = run(False)
        assert slow.total_cycles > fast.total_cycles
        assert slow.exec_time_ns > fast.exec_time_ns

    def test_paratick_also_pays_eoi_for_virtual_ticks(self):
        """Vector 235 is an interrupt like any other: its handler EOIs."""
        m = run(False, mode=TickMode.PARATICK)
        assert m.exits.by_tag(ExitTag.EOI) > 0
