"""Behavioural tests of the KVM executor: exit costs, injection,
preemption timer, halt polling, periodic emulation, overcommit."""

from __future__ import annotations

import pytest

from repro.config import HostFeatures, MachineSpec, TickMode, VmSpec
from repro.guest.kernel import GuestKernel
from repro.guest.task import Run, Sleep, Task
from repro.host.exitreasons import ExitReason, ExitTag
from repro.host.kvm import HC_PARATICK_SET_PERIOD, Hypervisor
from repro.host.vcpu import VcpuState
from repro.hw.cpu import CycleDomain, Machine
from repro.sim.engine import Simulator
from repro.sim.timebase import MSEC, SEC
from tests.integration.helpers import build_stack


class TestHypervisorSetup:
    def test_create_vm_pins_vcpus(self):
        sim = Simulator()
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=4))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(VmSpec(vcpus=2, pinned_cpus=(1, 3)))
        assert [v.pcpu.index for v in vm.vcpus] == [1, 3]

    def test_auto_placement_round_robin(self):
        sim = Simulator()
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=4))
        hv = Hypervisor(sim, machine)
        vm1 = hv.create_vm(VmSpec(name="a", vcpus=2))
        vm2 = hv.create_vm(VmSpec(name="b", vcpus=2))
        assert [v.pcpu.index for v in vm1.vcpus] == [0, 1]
        assert [v.pcpu.index for v in vm2.vcpus] == [2, 3]

    def test_start_without_kernel_raises(self):
        sim = Simulator()
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine)
        hv.create_vm(VmSpec(vcpus=1))
        from repro.errors import HostError

        with pytest.raises(HostError):
            hv.start()

    def test_find_vm(self):
        sim = Simulator()
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(VmSpec(name="x", vcpus=1))
        assert hv.find_vm("x") is vm
        from repro.errors import HostError

        with pytest.raises(HostError):
            hv.find_vm("nope")

    def test_hypercall_sets_paratick_state(self):
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.PARATICK)
        hv.start()
        sim.run(until=MSEC)
        assert vm.paratick_enabled
        assert vm.paratick_period_ns == 4 * MSEC


class TestExitAccounting:
    def test_exit_costs_accounted_to_domains(self):
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS)

        def body():
            yield Run(50_000_000)

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        sim.run(until=100 * MSEC)
        led = machine.cpu(0).ledger()
        assert led[CycleDomain.VMX_TRANSITION] > 0
        assert led[CycleDomain.HOST_HANDLER] > 0
        assert led[CycleDomain.POLLUTION] > 0
        assert led[CycleDomain.GUEST_USER] > 0

    def test_busy_time_never_exceeds_elapsed(self):
        """The fundamental accounting invariant per CPU."""
        for mode in TickMode:
            sim, machine, hv, vm, kernel = build_stack(tick_mode=mode)

            def body():
                for _ in range(20):
                    yield Run(1_000_000)
                    yield Sleep(2 * MSEC)

            kernel.add_task(Task("t", body(), affinity=0))
            hv.start()
            end = sim.run(until=SEC)
            cpu = machine.cpu(0)
            serialized = (
                cpu.busy_ns()
                - cpu.busy_ns(CycleDomain.HOST_TICK)
                - cpu.busy_ns(CycleDomain.HOST_IO)
            )
            assert serialized <= end, mode

    def test_counters_by_reason_and_vcpu(self):
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS)

        def body():
            yield Run(50_000_000)

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        sim.run(until=100 * MSEC)
        c = vm.counters
        assert c.for_vcpu(0) == c.total
        assert c.by_reason(ExitReason.MSR_WRITE) > 0
        assert c.by_reason(ExitReason.PREEMPTION_TIMER) > 0


class TestPreemptionTimerPath:
    def test_deadline_while_running_uses_preemption_timer(self):
        """§3: the KVM optimization — deadline expiry while in guest
        mode is a PREEMPTION_TIMER exit, not an external interrupt."""
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS)

        def body():
            yield Run(2_200_000 * 20)  # ~20ms: several ticks while running

        kernel.add_task(Task("t", body(), affinity=0))
        hv.start()
        sim.run(until=100 * MSEC)
        assert vm.counters.by_reason(ExitReason.PREEMPTION_TIMER) >= 3

    def test_deadline_while_halted_wakes_without_exit(self):
        """A guest timer expiring while blocked is a host-timer wakeup:
        injection on entry, no PREEMPTION_TIMER exit."""
        sim, machine, hv, vm, kernel = build_stack(tick_mode=TickMode.TICKLESS, seed=1)

        def body():
            yield Sleep(20 * MSEC)  # wheel timer; vCPU halts meanwhile

        done = []
        kernel.add_task(Task("t", body(), affinity=0))
        kernel.task_done_callbacks.append(lambda t: done.append(sim.now))
        hv.start()
        sim.run(until=SEC)
        assert done and done[0] >= 20 * MSEC


class TestHaltPolling:
    def run_pingpong(self, poll_ns):
        from repro.workloads.micro import PingPongWorkload
        from repro.experiments.runner import run_workload

        return run_workload(
            PingPongWorkload(rounds=300, work_cycles=30_000),
            tick_mode=TickMode.TICKLESS,
            features=HostFeatures(halt_poll_ns=poll_ns),
            seed=3,
        )

    def test_polling_accumulates_poll_cycles(self):
        m = self.run_pingpong(100_000)
        assert m.ledger[CycleDomain.HALT_POLL] > 0

    def test_no_polling_no_poll_cycles(self):
        m = self.run_pingpong(0)
        assert m.ledger[CycleDomain.HALT_POLL] == 0

    def test_polling_reduces_block_wake_cycles(self):
        """A poll hit skips the block/wake path (HOST_SCHED shrinks)."""
        off = self.run_pingpong(0)
        on = self.run_pingpong(200_000)
        assert on.ledger[CycleDomain.HOST_SCHED] < off.ledger[CycleDomain.HOST_SCHED]


class TestOvercommit:
    def test_two_vcpus_share_one_cpu(self):
        """Two compute-bound vCPUs pinned to one CPU time-share it and
        both finish, taking ~2x the solo runtime."""
        sim = Simulator(seed=0)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(
            VmSpec(vcpus=2, tick_mode=TickMode.TICKLESS, pinned_cpus=(0, 0), noise=False)
        )
        kernel = GuestKernel(vm)
        done = []

        def body():
            yield Run(110_000_000)  # ~50ms at 2.2GHz

        for i in range(2):
            kernel.add_task(Task(f"t{i}", body(), affinity=i))
        kernel.task_done_callbacks.append(lambda t: done.append(sim.now))
        hv.start()
        sim.run(until=SEC)
        assert len(done) == 2
        # Two 50ms jobs on one CPU: at least ~100ms wall.
        assert done[-1] >= 95 * MSEC
        assert hv.sched.switches > 2  # actual time sharing happened

    def test_preempted_vcpu_state_cycle(self):
        sim = Simulator(seed=0)
        machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=1))
        hv = Hypervisor(sim, machine)
        vm = hv.create_vm(
            VmSpec(vcpus=2, tick_mode=TickMode.TICKLESS, pinned_cpus=(0, 0), noise=False)
        )
        kernel = GuestKernel(vm)
        for i in range(2):
            def body():
                yield Run(220_000_000)

            kernel.add_task(Task(f"t{i}", body(), affinity=i))
        hv.start()
        sim.run(until=20 * MSEC)
        states = {v.state for v in vm.vcpus}
        # One runs, the other waits its turn.
        assert VcpuState.READY in states or VcpuState.EXITED in states or VcpuState.GUEST in states


class TestIpiRouting:
    def test_cross_socket_wake_costs_more(self):
        """NUMA: waking a vCPU on another socket pays the penalty."""
        from repro.workloads.micro import PingPongWorkload
        from repro.experiments.runner import run_workload

        near = run_workload(
            PingPongWorkload(rounds=400, work_cycles=30_000),
            tick_mode=TickMode.PARATICK,
            machine_spec=MachineSpec(sockets=2, cpus_per_socket=2),
            pinned_cpus=(0, 1),  # same socket
            seed=5,
        )
        far = run_workload(
            PingPongWorkload(rounds=400, work_cycles=30_000),
            tick_mode=TickMode.PARATICK,
            machine_spec=MachineSpec(sockets=2, cpus_per_socket=2),
            pinned_cpus=(0, 2),  # across sockets
            seed=5,
        )
        assert far.ledger[CycleDomain.HOST_SCHED] > near.ledger[CycleDomain.HOST_SCHED]

    def test_bad_ipi_destination_raises(self):
        sim, machine, hv, vm, kernel = build_stack()
        from repro.errors import HostError

        with pytest.raises(HostError):
            hv.send_ipi(vm, vm.vcpus[0], 99, __import__("repro.hw.interrupts", fromlist=["Vector"]).Vector.RESCHEDULE)


class TestRateAdaptation:
    """§4.1's preemption-timer backstop (paratick_rate_adapt)."""

    def run_cpu_bound(self, *, host_hz, adapt, seed=0):
        from repro.config import MachineSpec
        from repro.experiments.runner import run_workload
        from repro.workloads.parsec import benchmark

        return run_workload(
            benchmark("swaptions", target_cycles=220_000_000),
            tick_mode=TickMode.PARATICK,
            seed=seed,
            noise=False,
            machine_spec=MachineSpec(host_tick_hz=host_hz),
            features=HostFeatures(paratick_rate_adapt=adapt),
        )

    def test_slow_host_starves_ticks_without_backstop(self):
        m = self.run_cpu_bound(host_hz=50, adapt=False)
        delivered = m.extra["virtual_ticks"] / (m.exec_time_ns / 1e9)
        assert delivered < 80  # degraded toward the 50 Hz host rate

    def test_backstop_restores_declared_rate(self):
        m = self.run_cpu_bound(host_hz=50, adapt=True)
        delivered = m.extra["virtual_ticks"] / (m.exec_time_ns / 1e9)
        assert 220 <= delivered <= 265

    def test_backstop_exits_are_preemption_timer(self):
        from repro.host.exitreasons import ExitReason

        m = self.run_cpu_bound(host_hz=50, adapt=True)
        # The backstop fires as (cheap) preemption-timer exits at ~the
        # guest tick rate minus the host's own ticks (~200/s over a
        # ~100 ms run); no guest timer interrupt is fabricated for them.
        expected = 200 * m.exec_time_ns / 1e9
        assert m.exits.by_reason(ExitReason.PREEMPTION_TIMER) == pytest.approx(expected, rel=0.4)

    def test_backstop_harmless_at_matching_rates(self):
        off = self.run_cpu_bound(host_hz=250, adapt=False)
        on = self.run_cpu_bound(host_hz=250, adapt=True)
        d_off = off.extra["virtual_ticks"] / (off.exec_time_ns / 1e9)
        d_on = on.extra["virtual_ticks"] / (on.exec_time_ns / 1e9)
        assert abs(d_on - d_off) < 25


class TestHypercalls:
    def test_unknown_hypercall_raises(self):
        sim, machine, hv, vm, kernel = build_stack()
        from repro.errors import HostError

        with pytest.raises(HostError):
            vm.handle_hypercall(vm.vcpus[0], 999, 0)

    def test_invalid_period_raises(self):
        sim, machine, hv, vm, kernel = build_stack()
        from repro.errors import HostError

        with pytest.raises(HostError):
            vm.handle_hypercall(vm.vcpus[0], HC_PARATICK_SET_PERIOD, 0)
