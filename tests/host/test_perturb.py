"""Semantic tests for the perturbation-event subsystem.

Each perturbation kind runs against a real workload under the full
runner and must (a) actually fire, (b) book the right accounting on the
VM, and (c) stay invisible — bit-identical metrics — when absent.
"""

from __future__ import annotations

import pytest

from repro.analysis.golden import metrics_digest
from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.runner import run_workload
from repro.host.perturb import (
    Perturbation,
    perturbation_from_dict,
    perturbation_to_dict,
)
from repro.sim.timebase import MSEC, USEC
from repro.workloads.micro import IdlePeriodWorkload

MODES = list(TickMode)


def run_idleperiod(mode=TickMode.TICKLESS, perturbations=(), **kw):
    wl = IdlePeriodWorkload(500 * USEC, iterations=30, work_cycles=100_000)
    return run_workload(wl, tick_mode=mode, seed=5, cpuidle=True,
                        perturbations=perturbations, **kw)


class TestSuspendResume:
    @pytest.mark.parametrize("mode", MODES)
    def test_suspend_books_elapsed_host_time(self, mode):
        schedule = (Perturbation("suspend", at_ns=4 * MSEC, duration_ns=3 * MSEC),)
        m = run_idleperiod(mode, schedule)
        assert m.extra["suspend_count"] == 1
        assert m.extra["suspended_ns"] == 3 * MSEC
        assert m.extra["clock_jump_ns"] == 0  # plain resume: no jump

    def test_repeated_suspends(self):
        schedule = (Perturbation("suspend", at_ns=2 * MSEC, duration_ns=1 * MSEC,
                                 count=3, period_ns=4 * MSEC),)
        m = run_idleperiod(TickMode.TICKLESS, schedule)
        assert m.extra["suspend_count"] == 3
        assert m.extra["suspended_ns"] == 3 * MSEC

    def test_unperturbed_metrics_carry_no_perturbation_keys(self):
        m = run_idleperiod(TickMode.TICKLESS)
        assert "suspend_count" not in m.extra
        assert "clock_offset_ns" not in m.extra

    def test_unperturbed_run_unchanged_by_subsystem(self):
        # The perturbation plumbing must be invisible when the schedule
        # is empty: bit-identical metrics with and without the argument.
        assert metrics_digest(run_idleperiod()) == metrics_digest(
            run_idleperiod(perturbations=()))


class TestRestore:
    @pytest.mark.parametrize("mode", MODES)
    def test_restore_jumps_the_guest_clock(self, mode):
        schedule = (Perturbation("restore", at_ns=4 * MSEC, duration_ns=3 * MSEC),)
        m = run_idleperiod(mode, schedule)
        assert m.extra["suspend_count"] == 1
        assert m.extra["clock_jump_ns"] == 3 * MSEC

    def test_restore_differs_from_plain_suspend(self):
        suspend = (Perturbation("suspend", at_ns=4 * MSEC, duration_ns=3 * MSEC),)
        restore = (Perturbation("restore", at_ns=4 * MSEC, duration_ns=3 * MSEC),)
        a = run_idleperiod(TickMode.PARATICK, suspend)
        b = run_idleperiod(TickMode.PARATICK, restore)
        assert a.extra["clock_jump_ns"] == 0
        assert b.extra["clock_jump_ns"] == 3 * MSEC


class TestHotplug:
    @pytest.mark.parametrize("mode", MODES)
    def test_hotplug_and_lifo_unplug(self, mode):
        schedule = (Perturbation("hotplug", at_ns=2 * MSEC, duration_ns=6 * MSEC),)
        m = run_idleperiod(mode, schedule)
        assert m.extra["hotplug_count"] == 1
        assert m.extra["unplug_count"] == 1

    def test_hotplug_without_unplug_stays_online(self):
        schedule = (Perturbation("hotplug", at_ns=2 * MSEC),)
        m = run_idleperiod(TickMode.TICKLESS, schedule)
        assert m.extra["hotplug_count"] == 1
        assert m.extra["unplug_count"] == 0


class TestDrift:
    @pytest.mark.parametrize("mode", MODES)
    def test_drift_accumulates_offset(self, mode):
        schedule = (Perturbation("drift", at_ns=2 * MSEC, count=3,
                                 period_ns=4 * MSEC, step_ns=250 * USEC),)
        m = run_idleperiod(mode, schedule)
        assert m.extra["clock_offset_ns"] == 750 * USEC

    def test_negative_drift(self):
        schedule = (Perturbation("drift", at_ns=2 * MSEC, step_ns=-100 * USEC),)
        m = run_idleperiod(TickMode.TICKLESS, schedule)
        assert m.extra["clock_offset_ns"] == -100 * USEC


class TestPerturbationData:
    def test_round_trips_through_dict(self):
        p = Perturbation("drift", at_ns=1000, count=2, period_ns=5000, step_ns=-7)
        assert perturbation_from_dict(perturbation_to_dict(p)) == p

    def test_validation(self):
        with pytest.raises(ConfigError, match="unknown perturbation kind"):
            Perturbation("meteor", at_ns=1)
        with pytest.raises(ConfigError, match="at_ns"):
            Perturbation("suspend", at_ns=0, duration_ns=1)
        with pytest.raises(ConfigError, match="zero-length span"):
            Perturbation("suspend", at_ns=1)
        with pytest.raises(ConfigError, match="step_ns"):
            Perturbation("drift", at_ns=1)
        with pytest.raises(ConfigError, match="period_ns"):
            Perturbation("suspend", at_ns=1, duration_ns=10, count=2, period_ns=10)

    def test_describe_mentions_kind_and_time(self):
        text = Perturbation("suspend", at_ns=500, duration_ns=20).describe()
        assert "suspend" in text and "500" in text


class TestPerturbationEdges:
    """The corner schedules the fuzz harness can generate near limits."""

    def test_zero_duration_suspend_rejected(self):
        with pytest.raises(ConfigError, match="zero-length span"):
            Perturbation("suspend", at_ns=5 * MSEC, duration_ns=0)

    def test_zero_duration_restore_rejected(self):
        with pytest.raises(ConfigError, match="zero-length span"):
            Perturbation("restore", at_ns=5 * MSEC, duration_ns=0)

    def test_hotplug_at_t0_rejected(self):
        # at_ns >= 1: the VM must have booted before a vCPU can appear.
        with pytest.raises(ConfigError, match="at_ns must be >= 1"):
            Perturbation("hotplug", at_ns=0)

    def test_hotplug_at_first_instant_allowed(self):
        m = run_idleperiod(
            TickMode.TICKLESS, (Perturbation("hotplug", at_ns=1),))
        assert m.extra["hotplug_count"] == 1

    def test_zero_duration_hotplug_means_stays_online(self):
        # duration 0 is legal for hotplug (no LIFO unplug), unlike spans.
        m = run_idleperiod(
            TickMode.TICKLESS,
            (Perturbation("hotplug", at_ns=2 * MSEC, duration_ns=0),))
        assert m.extra["hotplug_count"] == 1
        assert m.extra["unplug_count"] == 0

    @pytest.mark.parametrize("mode", MODES)
    def test_drift_crossing_a_tick_boundary_exactly(self, mode):
        """A drift step of exactly one guest tick period, fired exactly
        on a tick boundary (4 ms at the default 250 Hz), must stay
        sanitizer-clean — the off-by-one-tick regime where an
        inequality in the tick machinery would show."""
        from repro.analysis.checkers import TickSanitizer

        period = 4 * MSEC  # 1 / 250 Hz
        schedule = (Perturbation("drift", at_ns=period, step_ns=period),)
        sanitizer = TickSanitizer(mode=mode)
        m = run_idleperiod(mode, schedule, tracer=sanitizer)
        assert [str(v) for v in sanitizer.finish()] == []
        assert m.extra["clock_offset_ns"] == period

    def test_exact_boundary_drift_deterministic(self):
        period = 4 * MSEC
        schedule = (Perturbation("drift", at_ns=period, step_ns=period),)
        a = run_idleperiod(TickMode.PARATICK, schedule)
        b = run_idleperiod(TickMode.PARATICK, schedule)
        assert metrics_digest(a) == metrics_digest(b)
