"""Execution-path tests for matrix cells and the fuzz bridge.

A small matrix must check sanitizer-clean, run byte-identically across
serial / pooled / cached engine paths, and the fuzz bridge must compile
seeds into cells whose behaviour matches the fuzz harness exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis import fuzz
from repro.analysis.golden import metrics_digest
from repro.scenarios import (
    check_cells,
    fuzz_cells,
    fuzz_matrix_cells,
    identity_problems,
    parse_matrix,
)

SMALL = """
[matrix]
name = "small"
seeds = [0]
horizon_ms = 20

[axes]
workload = ["ping"]
mode = ["periodic", "tickless", "paratick"]
perturb = ["none", "shake"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 20, work_cycles = 20000, same_vcpu = false }

[perturbs.shake]
kind = "drift"
at_ms = 1
count = 2
period_ms = 2
step_us = 50
"""


@pytest.fixture(scope="module")
def small_cells():
    return parse_matrix(SMALL, "toml").expand()


class TestCheckCells:
    def test_small_matrix_is_sanitizer_clean(self, small_cells):
        checks = check_cells(small_cells)
        assert len(checks) == 6
        for check in checks:
            assert check.ok, f"{check.cell.id}: {check.problems}"
            assert check.metrics is not None
            assert check.events > 0

    def test_check_reports_progress(self, small_cells):
        seen = []
        check_cells(small_cells[:2], progress=lambda c: seen.append(c.cell.id))
        assert seen == [c.id for c in small_cells[:2]]


class TestIdentity:
    def test_serial_pooled_cached_byte_identical(self, small_cells, tmp_path):
        problems = identity_problems(
            small_cells, jobs=2, cache_dir=str(tmp_path / "cache"))
        assert problems == []


class TestFuzzBridge:
    def test_cells_share_the_matrix_schema(self):
        cells = fuzz_cells(3, perturb=True)
        assert len(cells) == 6  # 3 modes x 2 placements
        assert len({c.id for c in cells}) == 6
        for cell in cells:
            assert cell.spec.label == cell.id
            assert dict(cell.coords)["seed"] == "3"
            assert cell.spec.perturbations  # seed 3 expands to >= 1 event

    def test_bridge_matches_fuzz_harness_exactly(self):
        # The compiled spec must reproduce the fuzz harness run bit for
        # bit — same scenario, same placement, same label, same metrics.
        from repro.config import TickMode

        scenario = fuzz.scenario_for_seed(3)
        direct, _, probs = fuzz.run_scenario(scenario, TickMode.TICKLESS)
        assert not probs
        cell = next(c for c in fuzz_cells(3)
                    if c.coord("mode") == "tickless" and c.coord("placement") == "solo")
        bridged = check_cells([cell])[0]
        assert bridged.ok
        assert metrics_digest(bridged.metrics) == metrics_digest(direct)

    def test_perturbed_and_plain_cells_hash_apart(self):
        from repro.experiments.parallel import spec_key

        plain = {c.coord("mode"): c for c in fuzz_cells(3)}
        shaken = {c.coord("mode"): c for c in fuzz_cells(3, perturb=True)}
        for mode in plain:
            assert spec_key(plain[mode].spec) != spec_key(shaken[mode].spec)

    def test_seed_range_expands_flat(self):
        cells = fuzz_matrix_cells(range(3), placements=(fuzz.SOLO,))
        assert len(cells) == 9
        assert len({c.id for c in cells}) == 9

    def test_perturbed_fuzz_cells_sanitize_clean(self):
        cells = [c for c in fuzz_cells(7, perturb=True, placements=(fuzz.SOLO,))]
        for check in check_cells(cells):
            assert check.ok, f"{check.cell.id}: {check.problems}"
