"""Property tests for the scenario-matrix expander.

The expander's contract: the cell count is the product of the axis
sizes (times seeds, minus exclusions), cell IDs are unique and stable,
exclusions are honored, expansion order is deterministic, and every
cell ID round-trips through the content-addressed cache key.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.parallel import spec_from_dict, spec_key, spec_to_dict
from repro.scenarios.matrix import AXES, Matrix, load_matrix, parse_matrix


def doc(**overrides) -> dict:
    """A small but fully-featured matrix document."""
    base = {
        "matrix": {"name": "t", "seeds": [0], "horizon_ms": 20},
        "axes": {
            "workload": ["ping"],
            "mode": ["tickless", "paratick"],
        },
        "workloads": {
            "ping": {"kind": "micro.pingpong",
                     "params": {"rounds": 10, "work_cycles": 10_000,
                                "same_vcpu": False}},
            "idle": {"kind": "micro.idle", "params": {"vcpus": 2}},
        },
        "perturbs": {
            "suspend@5ms": {"kind": "suspend", "at_ms": 5, "duration_ms": 2},
            "drifty": {"kind": "drift", "at_ms": 3, "step_us": 100},
        },
    }
    base.update(overrides)
    return base


def axes(**kw) -> dict:
    full = {"workload": ["ping"], "mode": ["tickless", "paratick"]}
    full.update(kw)
    return full


class TestExpansionProperties:
    def test_count_is_product_of_axis_sizes(self):
        mx = Matrix(doc(axes=axes(
            workload=["ping", "idle"],
            mode=["periodic", "tickless", "paratick"],
            placement=["solo", "oc2"],
            perturb=["none", "suspend@5ms"],
        )))
        mx.seeds = (0, 1)
        cells = mx.expand()
        sizes = [len(mx.axes[a]) for a in AXES] + [len(mx.seeds)]
        expected = 1
        for s in sizes:
            expected *= s
        assert len(cells) == expected == 2 * 3 * 2 * 1 * 1 * 2 * 2

    def test_no_duplicate_cell_ids_or_cache_keys(self):
        mx = Matrix(doc(axes=axes(
            workload=["ping", "idle"],
            mode=["periodic", "tickless", "paratick"],
            placement=["solo", "oc2", "oc3"],
            perturb=["none", "suspend@5ms", "drifty"],
        ), matrix={"name": "t", "seeds": [0, 1, 2]}))
        cells = mx.expand()
        assert len({c.id for c in cells}) == len(cells)
        assert len({spec_key(c.spec) for c in cells}) == len(cells)

    def test_deterministic_order(self):
        d = doc(axes=axes(placement=["solo", "oc2"], perturb=["none", "drifty"]))
        first = Matrix(d).expand()
        second = Matrix(d).expand()
        assert [c.id for c in first] == [c.id for c in second]
        assert [spec_key(c.spec) for c in first] == [spec_key(c.spec) for c in second]

    def test_order_follows_axis_nesting(self):
        mx = Matrix(doc(axes=axes(mode=["tickless", "paratick"],
                                  placement=["solo", "oc2"])))
        ids = [c.id for c in mx.expand()]
        # placement (inner) varies fastest, mode (outer) slowest.
        assert ids == [
            "ping/tickless/solo", "ping/tickless/oc2",
            "ping/paratick/solo", "ping/paratick/oc2",
        ]

    def test_exclusions_honored(self):
        d = doc(axes=axes(placement=["solo", "oc2"]))
        d["exclude"] = [{"mode": "paratick", "placement": "oc2"}]
        cells = Matrix(d).expand()
        assert len(cells) == 2 * 2 - 1
        assert all(
            not (c.coord("mode") == "paratick" and c.coord("placement") == "oc2")
            for c in cells
        )

    def test_exclusion_may_match_on_seed(self):
        d = doc(matrix={"name": "t", "seeds": [0, 1]})
        d["exclude"] = [{"seed": 1, "mode": "paratick"}]
        cells = Matrix(d).expand()
        assert len(cells) == 2 * 2 - 1
        assert "ping/paratick/s1" not in {c.id for c in cells}

    def test_expansion_covers_full_cartesian_product(self):
        mx = Matrix(doc(axes=axes(placement=["solo", "oc2"],
                                  perturb=["none", "suspend@5ms"])))
        got = {(c.coord("mode"), c.coord("placement"), c.coord("perturb"))
               for c in mx.expand()}
        want = set(itertools.product(
            ("tickless", "paratick"), ("solo", "oc2"), ("none", "suspend@5ms")))
        assert got == want


class TestCellIds:
    def test_single_option_axes_omitted(self):
        cells = Matrix(doc()).expand()
        assert [c.id for c in cells] == ["ping/tickless", "ping/paratick"]

    def test_workload_and_mode_always_present(self):
        mx = Matrix(doc(axes=axes(mode=["paratick"])))
        assert [c.id for c in mx.expand()] == ["ping/paratick"]

    def test_seed_suffix_only_for_multi_seed(self):
        multi = Matrix(doc(matrix={"name": "t", "seeds": [3, 4]})).expand()
        assert {c.id for c in multi} == {
            "ping/tickless/s3", "ping/tickless/s4",
            "ping/paratick/s3", "ping/paratick/s4",
        }

    def test_issue_style_id_shape(self):
        mx = Matrix(doc(axes=axes(
            workload=["ping", "idle"], mode=["paratick"],
            placement=["solo", "oc4"], perturb=["none", "suspend@5ms"],
        )))
        assert "ping/paratick/oc4/suspend@5ms" in {c.id for c in mx.expand()}

    def test_id_is_the_spec_label(self):
        for cell in Matrix(doc()).expand():
            assert cell.spec.label == cell.id


class TestCacheKeyRoundTrip:
    def test_id_rides_the_cache_key(self):
        # Two cells identical except for the label/ID must hash apart,
        # and the label survives the cache round-trip.
        cell = Matrix(doc()).expand()[0]
        relabeled = cell.spec.with_(label="elsewhere")
        assert spec_key(cell.spec) != spec_key(relabeled)
        back = spec_from_dict(spec_to_dict(cell.spec))
        assert back.label == cell.id
        assert spec_key(back) == spec_key(cell.spec)

    def test_perturbations_ride_the_cache_key(self):
        mx = Matrix(doc(axes=axes(perturb=["none", "suspend@5ms"])))
        by_perturb = {c.coord("perturb"): c for c in mx.expand()
                      if c.coord("mode") == "tickless"}
        plain = by_perturb["none"].spec
        shaken = by_perturb["suspend@5ms"].spec
        assert spec_key(plain.with_(label=None)) != spec_key(shaken.with_(label=None))
        back = spec_from_dict(spec_to_dict(shaken))
        assert back.perturbations == shaken.perturbations
        assert spec_key(back) == spec_key(shaken)


class TestCompilation:
    def test_modes_compile_to_tick_modes(self):
        modes = {c.spec.tick_mode for c in Matrix(doc()).expand()}
        assert modes == {TickMode.TICKLESS, TickMode.PARATICK}

    def test_overcommit_placement_squeezes_pcpus(self):
        mx = Matrix(doc(axes=axes(workload=["idle"], placement=["solo", "oc2"])))
        by_placement = {c.coord("placement"): c.spec for c in mx.expand()
                        if c.coord("mode") == "tickless"}
        assert by_placement["solo"].machine.cpus_per_socket == 2
        assert by_placement["solo"].pinned_cpus == (0, 1)
        assert by_placement["oc2"].machine.cpus_per_socket == 1
        assert by_placement["oc2"].pinned_cpus == (0, 0)

    def test_custom_placement_table(self):
        d = doc(axes=axes(workload=["idle"], placement=["pair"]))
        d["placements"] = {"pair": {"pcpus": 2}}
        spec = Matrix(d).expand()[0].spec
        assert spec.machine.cpus_per_socket == 2

    def test_stress_and_host_timer_builtins(self):
        mx = Matrix(doc(axes=axes(
            stress=["none", "noise+cpuidle"], host_timer=["hz100", "hz1000"])))
        specs = {(c.coord("stress"), c.coord("host_timer")): c.spec
                 for c in mx.expand() if c.coord("mode") == "tickless"}
        assert specs[("none", "hz100")].noise is False
        assert specs[("none", "hz100")].tick_hz == 100
        loud = specs[("noise+cpuidle", "hz1000")]
        assert loud.noise is True and loud.cpuidle is True and loud.tick_hz == 1000

    def test_perturb_schedule_compiles(self):
        mx = Matrix(doc(axes=axes(perturb=["suspend@5ms"])))
        p = mx.expand()[0].spec.perturbations
        assert len(p) == 1
        assert p[0].kind == "suspend"
        assert p[0].at_ns == 5_000_000 and p[0].duration_ns == 2_000_000

    def test_horizon_applies(self):
        assert Matrix(doc()).expand()[0].spec.horizon_ns == 20_000_000


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown axes"):
            Matrix(doc(axes=axes(flavor=["vanilla"])))

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement"):
            Matrix(doc(axes=axes(placement=["magic"])))

    def test_unknown_perturb_rejected(self):
        with pytest.raises(ConfigError, match="unknown perturb"):
            Matrix(doc(axes=axes(perturb=["asteroid"])))

    def test_missing_workload_table_rejected(self):
        with pytest.raises(ConfigError, match="workloads"):
            Matrix(doc(axes=axes(workload=["ghost"])))

    def test_duplicate_axis_option_rejected(self):
        with pytest.raises(ConfigError, match="repeats"):
            Matrix(doc(axes=axes(mode=["tickless", "tickless"])))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigError, match="duplicate seeds"):
            Matrix(doc(matrix={"name": "t", "seeds": [1, 1]}))

    def test_ambiguous_time_unit_rejected(self):
        d = doc(axes=axes(perturb=["suspend@5ms"]))
        d["perturbs"]["suspend@5ms"]["at_us"] = 5000
        with pytest.raises(ConfigError, match="one unit"):
            Matrix(d)

    def test_unknown_perturb_field_rejected(self):
        d = doc(axes=axes(perturb=["suspend@5ms"]))
        d["perturbs"]["suspend@5ms"]["warp"] = 9
        with pytest.raises(ConfigError, match="unknown perturbation fields"):
            Matrix(d)

    def test_exclude_on_unknown_axis_rejected(self):
        d = doc()
        d["exclude"] = [{"flavor": "vanilla"}]
        with pytest.raises(ConfigError, match="unknown axes"):
            Matrix(d)

    def test_oc1_rejected(self):
        with pytest.raises(ConfigError, match="overcommit"):
            Matrix(doc(axes=axes(placement=["oc1"])))


TOML_TEXT = """
[matrix]
name = "fmt"
seeds = [0]

[axes]
workload = ["ping"]
mode = ["tickless", "paratick"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 5, work_cycles = 1000, same_vcpu = false }
"""

YAML_TEXT = """
matrix:
  name: fmt
  seeds: [0]
axes:
  workload: [ping]
  mode: [tickless, paratick]
workloads:
  ping:
    kind: micro.pingpong
    params: {rounds: 5, work_cycles: 1000, same_vcpu: false}
"""


class TestFormats:
    def test_toml_and_yaml_expand_identically(self):
        toml_cells = parse_matrix(TOML_TEXT, "toml").expand()
        try:
            yaml_cells = parse_matrix(YAML_TEXT, "yaml").expand()
        except ConfigError as exc:
            pytest.skip(str(exc))  # PyYAML genuinely absent
        assert [c.id for c in toml_cells] == [c.id for c in yaml_cells]
        assert ([spec_key(c.spec) for c in toml_cells]
                == [spec_key(c.spec) for c in yaml_cells])

    def test_load_matrix_dispatches_on_extension(self, tmp_path):
        f = tmp_path / "m.toml"
        f.write_text(TOML_TEXT)
        assert len(load_matrix(f).expand()) == 2
        bad = tmp_path / "m.ini"
        bad.write_text(TOML_TEXT)
        with pytest.raises(ConfigError, match="extension"):
            load_matrix(bad)

    def test_invalid_toml_reports_origin(self, tmp_path):
        f = tmp_path / "broken.toml"
        f.write_text("[matrix\nname=")
        with pytest.raises(ConfigError, match="broken.toml"):
            load_matrix(f)


class TestRandomizedMatrices:
    @pytest.mark.parametrize("trial", range(5))
    def test_random_axis_subsets_hold_the_properties(self, trial):
        rng = random.Random(trial)
        d = doc()
        d["matrix"] = {"name": "r", "seeds": sorted(rng.sample(range(10), rng.randint(1, 3)))}
        d["axes"] = {
            "workload": rng.sample(["ping", "idle"], rng.randint(1, 2)),
            "mode": rng.sample([m.value for m in TickMode], rng.randint(1, 3)),
            "placement": rng.sample(["solo", "oc2", "oc3"], rng.randint(1, 3)),
            "perturb": rng.sample(["none", "suspend@5ms", "drifty"], rng.randint(1, 3)),
        }
        mx = Matrix(d)
        cells = mx.expand()
        expected = 1
        for a in AXES:
            expected *= len(mx.axes[a])
        expected *= len(mx.seeds)
        assert len(cells) == expected
        assert len({c.id for c in cells}) == expected
        assert len({spec_key(c.spec) for c in cells}) == expected


class TestFleetAxis:
    """The [fleet] axis: sharded expansion into fleet.host cells."""

    @staticmethod
    def fleet_doc(**fleet_fields):
        table = {"hosts": 2, "guests": 3, "consolidation": 3}
        table.update(fleet_fields)
        return doc(
            axes=axes(fleet=["none", "rack"]),
            fleets={"rack": table},
        )

    def test_fleet_cells_shard_per_host(self):
        cells = Matrix(self.fleet_doc()).expand()
        # 1 workload x 2 modes x (1 plain + 2 host shards) = 6 cells
        assert len(cells) == 2 * (1 + 2)
        fleet_ids = [c.id for c in cells if c.coord("fleet") == "rack"]
        assert fleet_ids == [
            "ping/tickless/rack/h00", "ping/tickless/rack/h01",
            "ping/paratick/rack/h00", "ping/paratick/rack/h01",
        ]

    def test_fleet_shards_carry_host_coordinate_and_kind(self):
        from repro.fleet.spec import FLEET_HOST, fleet_params

        cells = Matrix(self.fleet_doc(burst="waves")).expand()
        shards = [c for c in cells if c.coord("fleet") == "rack"]
        assert [c.coord("host") for c in shards] == ["0", "1", "0", "1"]
        for c in shards:
            assert c.spec.workload.kind == FLEET_HOST
            p = fleet_params(c.spec)
            assert p["guests"] == 3 and p["consolidation"] == 3
            assert p["burst"] == "waves"
            assert p["guest_kind"] == "micro.pingpong"
        plain = [c for c in cells if c.coord("fleet") == "none"]
        assert all(c.spec.workload.kind == "micro.pingpong" for c in plain)

    def test_fleet_shards_have_unique_cache_keys(self):
        cells = Matrix(self.fleet_doc()).expand()
        assert len({spec_key(c.spec) for c in cells}) == len(cells)

    def test_burst_window_unit_fields(self):
        from repro.fleet.spec import fleet_params

        cells = Matrix(self.fleet_doc(burst="ramp", burst_window_ms=3)).expand()
        shard = next(c for c in cells if c.coord("fleet") == "rack")
        assert fleet_params(shard.spec)["burst_window_ns"] == 3_000_000

    def test_fleet_requires_solo_placement(self):
        d = self.fleet_doc()
        d["axes"]["placement"] = ["solo", "oc2"]
        with pytest.raises(ConfigError, match="solo"):
            Matrix(d).expand()

    def test_fleet_placement_conflict_excludable(self):
        d = self.fleet_doc()
        d["axes"]["placement"] = ["solo", "oc2"]
        d["exclude"] = [{"placement": "oc2", "fleet": "rack"}]
        cells = Matrix(d).expand()
        assert all(
            not (c.coord("placement") == "oc2" and c.coord("fleet") == "rack")
            for c in cells
        )

    def test_unknown_fleet_rejected(self):
        with pytest.raises(ConfigError, match="unknown fleet"):
            Matrix(doc(axes=axes(fleet=["ghost"]))).expand()

    def test_unknown_fleet_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fleet fields"):
            Matrix(self.fleet_doc(racks=2)).expand()

    def test_bad_topology_rejected(self):
        with pytest.raises(ConfigError, match=">= 1"):
            Matrix(self.fleet_doc(hosts=0)).expand()

    def test_bad_burst_rejected(self):
        with pytest.raises(ConfigError, match="burst"):
            Matrix(self.fleet_doc(burst="stampede")).expand()
