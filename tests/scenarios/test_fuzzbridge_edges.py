"""Edge-case sweep for the fuzz-seed -> matrix-cell bridge.

``test_runcheck`` proves a couple of fuzz cells survive the sanitizer
battery; this file sweeps the bridge itself — kind mapping, cell-ID and
cache-key uniqueness (including perturbed variants), determinism of the
seed expansion, and the degenerate corners (single-vCPU overcommit,
horizon-clamped perturbation schedules, a perturbation schedule riding
a fleet cell).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import fuzz
from repro.analysis.fuzz import (
    FuzzScenario,
    perturbations_for_seed,
    placement_for,
    scenario_for_seed,
)
from repro.experiments.parallel import WORKLOAD_FACTORIES, spec_key
from repro.scenarios.fuzzbridge import (
    _KIND_MAP,
    fuzz_cells,
    fuzz_matrix_cells,
    workload_spec_for,
)


class TestKindMapping:
    @pytest.mark.parametrize("kind", sorted(_KIND_MAP))
    def test_every_fuzz_kind_maps_to_a_registered_factory(self, kind):
        # Find (by exhaustion) a seed expanding to this kind: the seed
        # space is uniform over 4 kinds, so a handful suffices.
        scenario = next(
            s for s in map(scenario_for_seed, range(64)) if s.kind == kind
        )
        ws = workload_spec_for(scenario)
        assert ws.kind == _KIND_MAP[kind]
        # The registry accepts the spelled params and builds the same
        # workload class the fuzz harness instantiates directly.
        via_registry = WORKLOAD_FACTORIES[ws.kind](**ws.kwargs())
        assert type(via_registry) is type(scenario.make_workload())
        assert via_registry.default_vcpus() == \
            scenario.make_workload().default_vcpus()

    def test_unknown_kind_rejected(self):
        bogus = FuzzScenario(
            seed=0, kind="forkbomb", params=(), tick_hz=250,
            noise=False, cpuidle=False, horizon_ns=1,
        )
        with pytest.raises(ValueError, match="forkbomb"):
            workload_spec_for(bogus)
        with pytest.raises(ValueError, match="forkbomb"):
            bogus.make_workload()


class TestCellIdentity:
    def test_ids_and_cache_keys_unique_across_axes(self):
        cells = []
        for seed in (0, 1, 2):
            cells += fuzz_cells(seed)
            cells += fuzz_cells(seed, perturb=True)
        ids = [c.id for c in cells]
        assert len(set(ids)) == len(ids)
        keys = {spec_key(c.spec) for c in cells}
        assert len(keys) == len(cells)

    def test_perturbed_variant_distinct_even_without_a_schedule(self):
        """Were a schedule ever clamped to empty, the perturbed cell
        must still cache apart from its plain twin — the cell ID (hence
        label, hence key) carries the ``/perturbed`` suffix on its own."""
        plain = fuzz_cells(3)[0]
        shaken = fuzz_cells(3, perturb=True)[0]
        assert shaken.id == plain.id + "/perturbed"
        stripped = dataclasses.replace(shaken.spec, perturbations=())
        assert spec_key(stripped) != spec_key(plain.spec)

    def test_id_matches_label_and_coords(self):
        for cell in fuzz_cells(11, perturb=True):
            assert cell.spec.label == cell.id
            coords = dict(cell.coords)
            assert coords["seed"] == "11"
            assert coords["perturb"] == "fuzzed"
            assert cell.id.split("/")[1:3] == \
                [coords["workload"], coords["mode"]]


class TestDeterminism:
    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_expansion_is_a_pure_function_of_the_seed(self, seed):
        assert scenario_for_seed(seed) == scenario_for_seed(seed)
        a, b = fuzz_cells(seed, perturb=True), fuzz_cells(seed, perturb=True)
        assert [c.id for c in a] == [c.id for c in b]
        assert [spec_key(c.spec) for c in a] == [spec_key(c.spec) for c in b]

    def test_perturb_flag_never_changes_the_scenario(self):
        """The schedule rides a dedicated RNG stream: the workload and
        knobs under it must be byte-for-byte those of the plain cell."""
        for seed in range(8):
            plain = {c.coord("mode"): c for c in fuzz_cells(seed)}
            shaken = {c.coord("mode"): c for c in fuzz_cells(seed, perturb=True)}
            for mode, cell in shaken.items():
                stripped = dataclasses.replace(
                    cell.spec, perturbations=(), label=plain[mode].spec.label)
                assert stripped == plain[mode].spec

    def test_matrix_flattening_preserves_seed_order(self):
        flat = fuzz_matrix_cells([5, 3])
        assert [c.coord("seed") for c in flat] == \
            ["5"] * (len(flat) // 2) + ["3"] * (len(flat) // 2)


class TestScheduleClamping:
    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_every_occurrence_lands_inside_the_horizon(self, seed):
        horizon = scenario_for_seed(seed).horizon_ns
        for p in perturbations_for_seed(seed, horizon):
            last = p.at_ns + p.duration_ns + (p.count - 1) * p.period_ns
            assert last < horizon

    def test_tiny_horizon_clamps_to_empty(self):
        # Schedules are front-loaded at >= 200us; a 100us horizon
        # leaves no legal occurrence for any seed.
        assert perturbations_for_seed(3, 100_000) == ()


class TestPlacementEdges:
    def test_single_vcpu_overcommit_floors_at_one_pcpu(self):
        spec, pinned = placement_for(1, fuzz.OVERCOMMIT)
        assert spec.cpus_per_socket == 1
        assert pinned == (0,)

    def test_overcommit_squeezes_by_exactly_one(self):
        spec, pinned = placement_for(4, fuzz.OVERCOMMIT)
        assert spec.cpus_per_socket == 3
        assert pinned == (0, 1, 2, 0)


class TestPerturbedFleetCell:
    """A perturbation axis composed with a fleet axis: the schedule must
    reach every host shard's spec and the cells must stay sanitizer-clean."""

    MATRIX = """
[matrix]
name = "pfleet"
seeds = [0]
horizon_ms = 400

[axes]
workload = ["ping"]
mode = ["paratick"]
perturb = ["none", "wobble"]
fleet = ["rack"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 6, work_cycles = 10000, same_vcpu = false }

[perturbs.wobble]
kind = "suspend"
at_ms = 2
duration_ms = 1

[fleets.rack]
hosts = 2
guests = 2
consolidation = 2
"""

    def cells(self):
        from repro.scenarios.matrix import parse_matrix

        return parse_matrix(self.MATRIX).expand()

    def test_schedule_reaches_every_host_shard(self):
        from repro.fleet.spec import FLEET_HOST

        cells = self.cells()
        shaken = [c for c in cells if c.coord("perturb") == "wobble"
                  and c.spec.workload.kind == FLEET_HOST]
        assert len(shaken) == 2
        for cell in shaken:
            (p,) = cell.spec.perturbations
            assert (p.kind, p.at_ns, p.duration_ns) == \
                ("suspend", 2_000_000, 1_000_000)
        plain_keys = {spec_key(c.spec) for c in cells
                      if c.coord("perturb") == "none"}
        assert all(spec_key(c.spec) not in plain_keys for c in shaken)

    def test_perturbed_fleet_cells_sanitize_clean(self):
        from repro.scenarios.runcheck import check_cells

        checks = check_cells(self.cells())
        assert all(c.ok for c in checks), \
            [p for c in checks for p in c.problems]
        wobbled = [c for c in checks if "wobble" in c.cell.id]
        assert wobbled and all(c.events > 0 for c in wobbled)
