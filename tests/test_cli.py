"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_exist(self):
        p = build_parser()
        for cmd in (["table1"], ["table2"], ["table3"], ["table4"], ["ablations"], ["run", "dedup"]):
            args = p.parse_args(cmd)
            assert callable(args.fn)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "40,000" in out and "240,000" in out
        assert "NO" not in out  # every row matches the paper

    def test_run_single_benchmark(self, capsys):
        assert main(["run", "swaptions", "--mode", "paratick", "--target-mcycles", "30"]) == 0
        out = capsys.readouterr().out
        assert "exits=" in out and "exec=" in out

    def test_run_tickless_mode(self, capsys):
        assert main(["run", "swaptions", "--mode", "tickless", "--target-mcycles", "30"]) == 0
        assert "timer" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "9", "run", "swaptions", "--target-mcycles", "30"]) == 0

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fluidanimate" in out and "netserve" in out

    def test_export_fig6(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["export", "fig6", "--out", "figs"]) == 0
        out = capsys.readouterr().out
        assert "fig6_fio.csv" in out
        assert (tmp_path / "figs" / "fig6_fio.csv").exists()


MATRIX_TOML = """\
[matrix]
name = "cli-smoke"
seeds = [0]
horizon_ms = 50

[axes]
workload = ["ping"]
mode = ["paratick"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 5, work_cycles = 20000, same_vcpu = false }
"""


class TestTelemetryCommands:
    def test_telemetry_report_on_empty_dir(self, capsys, tmp_path):
        assert main(["telemetry", "report", str(tmp_path)]) == 0
        assert "no telemetry artifacts" in capsys.readouterr().out

    def test_matrix_run_series_with_telemetry(self, capsys, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(MATRIX_TOML)
        tele = tmp_path / "tele"
        rc = main([
            "--quiet-progress", "--cache-dir", str(tmp_path / "cache"),
            "--telemetry-out", str(tele),
            "matrix", "run", str(matrix), "--series",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "1 cell(s), 0 cached, 1 executed" in captured.out
        assert "reconcile exactly" in captured.out
        for artifact in ("spans.jsonl", "metrics.prom", "metrics.json",
                         "harness_trace.json"):
            assert (tele / artifact).exists()
        series_files = list(tele.glob("*.series.json"))
        assert len(series_files) == 1

        # The written artifact directory renders through the report.
        assert main(["telemetry", "report", str(tele)]) == 0
        report = capsys.readouterr().out
        assert "grid.run" in report and "cells" in report

    def test_matrix_run_prints_failure_detail(self, capsys, tmp_path):
        from repro.experiments.parallel import register_workload
        from repro.workloads.micro import PingPongWorkload

        class _CliBoomWorkload(PingPongWorkload):
            # Survives matrix expansion (default_vcpus etc.), then fails
            # inside the engine where the CLI must report it per cell.
            def build(self, kernel):
                raise RuntimeError("cli-boom")

        register_workload("test.cliboom",
                          lambda **kw: _CliBoomWorkload(rounds=2,
                                                        work_cycles=1000))
        matrix = tmp_path / "m.toml"
        matrix.write_text(MATRIX_TOML.replace(
            'kind = "micro.pingpong"\nparams = '
            '{ rounds = 5, work_cycles = 20000, same_vcpu = false }',
            'kind = "test.cliboom"\nparams = {}',
        ))
        rc = main(["--quiet-progress", "--no-cache",
                   "matrix", "run", str(matrix)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[FAIL]" in out and "cli-boom" in out and "attempt" in out
        assert "1 FAILED" in out


class TestSanitizerCommands:
    def test_check_clean_run(self, capsys):
        assert main(["check", "dedup", "--target-mcycles", "30"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer: clean" in out
        assert "events" in out

    def test_check_mode_flag(self, capsys):
        assert main(["check", "dedup", "--mode", "paratick",
                     "--target-mcycles", "30"]) == 0
        assert "sanitizer: clean" in capsys.readouterr().out

    def test_fuzz_single_seed(self, capsys):
        assert main(["fuzz", "--runs", "1", "--solo-only"]) == 0
        out = capsys.readouterr().out
        assert "[ok ]" in out
        assert "seeds clean" in out

    def test_fuzz_seed_list(self, capsys):
        assert main(["fuzz", "--seed-list", "2", "--solo-only"]) == 0
        assert "seed 2" in capsys.readouterr().out

    def test_fuzz_reports_failures(self, capsys, monkeypatch):
        from repro.analysis import fuzz as fuzz_mod
        from repro.analysis.fuzz import FuzzReport, scenario_for_seed

        def fake_fuzz_many(seeds, *, placements, perturb=False, progress=None):
            reports = []
            for seed in seeds:
                r = FuzzReport(seed=seed, scenario=scenario_for_seed(seed),
                               problems=["[periodic/solo] boom"], runs=3, events=1)
                reports.append(r)
                if progress:
                    progress(r)
            return reports

        monkeypatch.setattr(fuzz_mod, "fuzz_many", fake_fuzz_many)
        assert main(["fuzz", "--runs", "2", "--solo-only"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out
        assert "replay one with: python -m repro fuzz --seed-list 0 1" in out
