"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_exist(self):
        p = build_parser()
        for cmd in (["table1"], ["table2"], ["table3"], ["table4"], ["ablations"], ["run", "dedup"]):
            args = p.parse_args(cmd)
            assert callable(args.fn)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "40,000" in out and "240,000" in out
        assert "NO" not in out  # every row matches the paper

    def test_run_single_benchmark(self, capsys):
        assert main(["run", "swaptions", "--mode", "paratick", "--target-mcycles", "30"]) == 0
        out = capsys.readouterr().out
        assert "exits=" in out and "exec=" in out

    def test_run_tickless_mode(self, capsys):
        assert main(["run", "swaptions", "--mode", "tickless", "--target-mcycles", "30"]) == 0
        assert "timer" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "9", "run", "swaptions", "--target-mcycles", "30"]) == 0

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fluidanimate" in out and "netserve" in out

    def test_export_fig6(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["export", "fig6", "--out", "figs"]) == 0
        out = capsys.readouterr().out
        assert "fig6_fio.csv" in out
        assert (tmp_path / "figs" / "fig6_fio.csv").exists()
