"""Fleet byte-identity across execution strategies, plus the pinned
golden fleet battery.

These are the acceptance tests of the fleet layer: real simulations,
run serial / pooled / warm-cache / cached-only, must agree to the byte
at both the per-host and the fleet-aggregate level; and the committed
``tests/fixtures/golden_fleet.json`` (3 tick modes x 2 consolidation
ratios) must replay exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis.golden import FLEET_FIXTURE, compare_fleet
from repro.config import TickMode
from repro.experiments.parallel import WorkloadSpec
from repro.fleet import (
    FleetSpec,
    aggregate_hosts,
    fleet_bytes,
    fleet_identity_problems,
    run_fleet,
)
from repro.sim.timebase import MSEC

PING = WorkloadSpec.make("micro.pingpong", rounds=8, work_cycles=15_000,
                         same_vcpu=False)


def small_fleet(mode=TickMode.PARATICK, **kw) -> FleetSpec:
    base = dict(
        name="idfleet",
        workload=PING,
        tick_mode=mode,
        hosts=2,
        guests_per_host=3,
        consolidation=3,
        burst="poisson",
        burst_window_ns=2 * MSEC,
        seed=4,
        horizon_ns=400 * MSEC,
    )
    base.update(kw)
    return FleetSpec(**base)


class TestIdentityGate:
    def test_serial_pooled_warm_cached_byte_identical(self, tmp_path):
        problems = fleet_identity_problems(
            small_fleet(), jobs=2, cache_dir=str(tmp_path))
        assert problems == []

    def test_jobs_do_not_change_the_aggregate(self, tmp_path):
        fleet = small_fleet(mode=TickMode.TICKLESS)
        agg1, grid1 = run_fleet(fleet, jobs=None, use_cache=False)
        agg2, grid2 = run_fleet(fleet, jobs=2, use_cache=False)
        assert fleet_bytes(agg1) == fleet_bytes(agg2)
        assert grid1.executed == grid2.executed == fleet.hosts

    def test_cached_replay_serves_every_host(self, tmp_path):
        fleet = small_fleet(mode=TickMode.PERIODIC)
        agg1, grid1 = run_fleet(fleet, cache_dir=str(tmp_path))
        assert grid1.executed == fleet.hosts
        agg2, grid2 = run_fleet(fleet, cache_dir=str(tmp_path))
        assert grid2.cache_hits == fleet.hosts and grid2.executed == 0
        assert fleet_bytes(agg1) == fleet_bytes(agg2)

    def test_aggregate_order_invariant_on_real_hosts(self):
        fleet = small_fleet()
        _, grid = run_fleet(fleet, use_cache=False)
        metrics = [grid[s] for s in fleet.host_specs()]
        assert fleet_bytes(aggregate_hosts(metrics)) == \
            fleet_bytes(aggregate_hosts(list(reversed(metrics))))


class TestGoldenFleetBattery:
    def test_fixture_is_committed(self):
        assert FLEET_FIXTURE.exists(), (
            "golden fleet fixture missing; capture it with "
            "PYTHONPATH=src python -m repro.analysis.golden --fleet --write"
        )

    def test_battery_replays_bit_identically(self):
        problems = compare_fleet(FLEET_FIXTURE)
        assert problems == [], "\n".join(problems)


class TestMatrixFleetIntegration:
    MATRIX = """
[matrix]
name = "mfleet"
seeds = [0]
horizon_ms = 400

[axes]
workload = ["ping"]
mode = ["paratick"]
fleet = ["rack"]

[workloads.ping]
kind = "micro.pingpong"
params = { rounds = 6, work_cycles = 10000, same_vcpu = false }

[fleets.rack]
hosts = 2
guests = 2
consolidation = 2
burst = "waves"
burst_window_ms = 2
"""

    def expand(self):
        from repro.scenarios.matrix import parse_matrix

        return parse_matrix(self.MATRIX).expand()

    def test_matrix_cells_pass_the_sanitizer_battery(self):
        from repro.scenarios.runcheck import check_cells

        checks = check_cells(self.expand())
        assert all(c.ok for c in checks), [p for c in checks for p in c.problems]
        assert all(c.events > 0 for c in checks)

    def test_matrix_cells_aggregate_like_a_fleet(self, tmp_path):
        from repro.fleet.run import group_host_cells, identity_problems_for_groups

        cells = self.expand()
        groups = group_host_cells(cells)
        assert list(groups) == ["ping/paratick"]
        assert len(groups["ping/paratick"]) == 2
        problems = identity_problems_for_groups(
            groups, jobs=2, cache_dir=str(tmp_path))
        assert problems == []
