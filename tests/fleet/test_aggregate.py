"""Property tests for the fleet aggregator's monoid invariants.

The aggregator promises three things (see :mod:`repro.fleet.aggregate`):
conservation (summed quantities are exact integer sums), partition/order
invariance (any batching of hosts, in any order, merges to the same
value), and byte stability (equal aggregates are equal bytes). Hosts
here are synthetic :class:`RunMetrics` — the invariants are about the
merge algebra, not the simulator — while ``test_identity`` holds the
same promises against real simulation output.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.aggregate import (
    AggregateError,
    FleetAggregate,
    aggregate_hosts,
    fleet_bytes,
    merge_hist_dict,
    percentile_ns,
)
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.cpu import CycleDomain
from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics

#: Big enough that any float intermediate would corrupt low bits.
BIG = 2**60


def host_metrics(
    label: str,
    *,
    guests: int = 2,
    lats=(10, 20),
    steals=(1, 2),
    exec_ns: int = 100,
    cycles: int = 1_000,
    halted_ns: int = 5,
    ticks: int = 3,
    exits: int = 1,
    cstate=(),
) -> RunMetrics:
    """A synthetic fleet-host result carrying every extra the
    aggregator ingests."""
    extra = {
        "guests": guests,
        "vcpus": guests,
        "steal_ns": sum(steals),
        "halted_ns": halted_ns,
        "virtual_ticks": ticks,
    }
    for g in range(guests):
        extra[f"g{g:02d}_latency_ns"] = lats[g]
        extra[f"g{g:02d}_steal_ns"] = steals[g]
    for state, ns in cstate:
        extra[f"cstate_{state}_ns"] = ns
    counters = ExitCounters()
    for _ in range(exits):
        counters.record(0, ExitReason.HLT, ExitTag.IDLE)
    return RunMetrics(
        label=label,
        exec_time_ns=exec_ns,
        total_cycles=cycles,
        useful_cycles=cycles // 2,
        overhead_cycles=cycles // 4,
        exits=counters,
        ledger={CycleDomain.GUEST_USER: cycles // 2,
                CycleDomain.VMX_TRANSITION: cycles // 8},
        extra=extra,
    )


@st.composite
def hosts(draw, min_hosts=1, max_hosts=8):
    """A list of synthetic host results with values up to >2**53."""
    n = draw(st.integers(min_hosts, max_hosts))
    ns_values = st.integers(min_value=0, max_value=BIG)
    out = []
    for i in range(n):
        guests = draw(st.integers(1, 4))
        lats = tuple(draw(ns_values) for _ in range(guests))
        steals = tuple(draw(ns_values) for _ in range(guests))
        out.append(host_metrics(
            f"h{i:02d}",
            guests=guests,
            lats=lats,
            steals=steals,
            exec_ns=draw(ns_values),
            cycles=draw(ns_values),
            halted_ns=draw(ns_values),
            ticks=draw(st.integers(0, 10_000)),
            exits=draw(st.integers(0, 5)),
        ))
    return out


class TestConservation:
    @given(metrics=hosts())
    @settings(max_examples=60, deadline=None)
    def test_sums_are_exact_integer_sums(self, metrics):
        agg = aggregate_hosts(metrics)
        assert agg.hosts == len(metrics)
        assert agg.guests == sum(m.extra["guests"] for m in metrics)
        assert agg.steal_ns == sum(m.extra["steal_ns"] for m in metrics)
        assert agg.halted_ns == sum(m.extra["halted_ns"] for m in metrics)
        assert agg.total_cycles == sum(m.total_cycles for m in metrics)
        assert agg.exits.total == sum(m.exits.total for m in metrics)
        assert agg.exec_time_ns == max(m.exec_time_ns for m in metrics)
        assert isinstance(agg.steal_ns, int)

    @given(metrics=hosts())
    @settings(max_examples=60, deadline=None)
    def test_distribution_counts_match_population(self, metrics):
        agg = aggregate_hosts(metrics)
        assert len(agg.host_exec_ns) == len(metrics)
        assert len(agg.guest_latency_ns) == agg.guests
        assert len(agg.guest_steal_ns) == agg.guests
        # the distributions carry exactly the per-host/per-guest values
        assert sorted(agg.host_exec_ns) == sorted(m.exec_time_ns for m in metrics)
        want_lats = sorted(
            m.extra[f"g{g:02d}_latency_ns"]
            for m in metrics for g in range(m.extra["guests"])
        )
        assert list(agg.guest_latency_ns) == want_lats

    @given(metrics=hosts())
    @settings(max_examples=40, deadline=None)
    def test_ledger_conserved_per_domain(self, metrics):
        agg = aggregate_hosts(metrics)
        ledger = dict(agg.ledger)
        for domain in (CycleDomain.GUEST_USER, CycleDomain.VMX_TRANSITION):
            assert ledger[domain.value] == sum(m.ledger[domain] for m in metrics)

    def test_steal_conserved_beyond_2_53(self):
        metrics = [
            host_metrics("a", steals=(BIG + 1, 0)),
            host_metrics("b", steals=(3, 0)),
        ]
        agg = aggregate_hosts(metrics)
        assert agg.steal_ns == BIG + 4  # float math would drop the +1


class TestPartitionAndOrderInvariance:
    @given(metrics=hosts(min_hosts=2), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_partition_merges_identically(self, metrics, data):
        """Batching hosts arbitrarily, then merging batch aggregates,
        is byte-identical to one flat fold."""
        flat = fleet_bytes(aggregate_hosts(metrics))
        cuts = sorted(data.draw(st.sets(
            st.integers(1, len(metrics) - 1), max_size=len(metrics) - 1)))
        batches, start = [], 0
        for cut in cuts + [len(metrics)]:
            batches.append(metrics[start:cut])
            start = cut
        agg = FleetAggregate.empty()
        for batch in batches:
            agg = agg.merge(aggregate_hosts(batch))
        assert fleet_bytes(agg) == flat

    @given(metrics=hosts(min_hosts=2), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_order_invariant_bytes(self, metrics, data):
        shuffled = data.draw(st.permutations(metrics))
        assert fleet_bytes(aggregate_hosts(shuffled)) == \
            fleet_bytes(aggregate_hosts(metrics))

    @given(metrics=hosts(min_hosts=3, max_hosts=5))
    @settings(max_examples=30, deadline=None)
    def test_merge_associative(self, metrics):
        a, b, c = (FleetAggregate.from_host(m) for m in metrics[:3])
        assert fleet_bytes(a.merge(b).merge(c)) == fleet_bytes(a.merge(b.merge(c)))

    @given(metrics=hosts())
    @settings(max_examples=30, deadline=None)
    def test_empty_is_identity(self, metrics):
        agg = aggregate_hosts(metrics)
        empty = FleetAggregate.empty()
        assert fleet_bytes(empty.merge(agg)) == fleet_bytes(agg)
        assert fleet_bytes(agg.merge(empty)) == fleet_bytes(agg)


class TestDegenerateFleets:
    def test_empty_fleet(self):
        agg = aggregate_hosts([])
        assert agg == FleetAggregate.empty()
        assert agg.hosts == agg.guests == agg.steal_ns == 0
        assert agg.percentiles("guest_latency") == {
            f"p{p}": 0 for p in (50, 90, 95, 99, 100)}
        assert agg.steal_ratio == 0.0 and agg.overhead_ratio == 0.0
        # byte-stable: the empty aggregate always encodes identically
        assert fleet_bytes(agg) == fleet_bytes(FleetAggregate.empty())

    def test_single_host_equals_from_host(self):
        m = host_metrics("solo", cstate=(("C1", 7), ("C6", 11)))
        assert fleet_bytes(aggregate_hosts([m])) == \
            fleet_bytes(FleetAggregate.from_host(m))
        agg = aggregate_hosts([m])
        assert agg.hosts == 1
        assert dict(agg.cstate_ns) == {"C1": 7, "C6": 11}

    def test_non_fleet_metrics_rejected(self):
        plain = RunMetrics(label="plain", exec_time_ns=1, total_cycles=1,
                           useful_cycles=1, overhead_cycles=0,
                           exits=ExitCounters())
        with pytest.raises(AggregateError, match="guests"):
            FleetAggregate.from_host(plain)

    def test_missing_guest_key_rejected(self):
        m = host_metrics("h")
        del m.extra["g01_latency_ns"]
        with pytest.raises(AggregateError, match="g01_latency_ns"):
            FleetAggregate.from_host(m)


class TestHistogramMerge:
    @staticmethod
    def hist(count, total, mn, mx, buckets):
        return {"count": count, "total_ns": total, "min_ns": mn,
                "max_ns": mx, "buckets": buckets}

    def test_bucket_counts_add(self):
        a = self.hist(3, 30, 5, 20, {"3": 2, "4": 1})
        b = self.hist(2, 50, 10, 40, {"4": 1, "5": 1})
        m = merge_hist_dict(a, b)
        assert m["count"] == 5 and m["total_ns"] == 80
        assert m["min_ns"] == 5 and m["max_ns"] == 40
        assert m["buckets"] == {"3": 2, "4": 2, "5": 1}

    @given(metrics=hosts(min_hosts=1, max_hosts=4), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_fleet_hist_counts_equal_sum_of_hosts(self, metrics, data):
        artifacts = {}
        per_host_counts = []
        for m in metrics:
            count = data.draw(st.integers(0, 1000))
            per_host_counts.append(count)
            artifacts[m.label] = {"latency": {
                "sched.wakeup": self.hist(count, count * 10, 1 if count else None,
                                          10, {"3": count}),
            }}
        agg = aggregate_hosts(metrics, artifacts)
        hists = dict(agg.latency_hists)
        if sum(per_host_counts) or metrics:
            packed = hists["sched.wakeup"]
            assert packed[0] == sum(per_host_counts)
            assert dict(packed[4]).get("3", 0) == sum(per_host_counts)


class TestPercentiles:
    @given(values=st.lists(st.integers(0, BIG), min_size=1, max_size=50),
           p=st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_nearest_rank_is_an_element(self, values, p):
        values = tuple(sorted(values))
        got = percentile_ns(values, p)
        assert got in values
        # nearest-rank reference: smallest v with at least ceil(p*n/100)
        # values <= it (1-based rank, clamped to the first element).
        rank = max(1, -(-p * len(values) // 100))
        assert got == values[rank - 1]

    def test_bounds_and_errors(self):
        assert percentile_ns((), 50) == 0
        assert percentile_ns((7,), 0) == 7
        assert percentile_ns((1, 2, 3, 4), 100) == 4
        with pytest.raises(AggregateError):
            percentile_ns((1,), 101)
        with pytest.raises(AggregateError):
            aggregate_hosts([]).percentiles("nope")


class TestRoundTrip:
    @given(metrics=hosts())
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_is_byte_identical(self, metrics):
        agg = aggregate_hosts(metrics)
        again = FleetAggregate.from_json_dict(
            json.loads(fleet_bytes(agg).decode()))
        assert fleet_bytes(again) == fleet_bytes(agg)
