"""The per-host multi-VM shard: packing, arrivals, extras, perturbations."""

from __future__ import annotations

import pytest

from repro.config import TickMode
from repro.errors import WorkloadError
from repro.fleet.hostsim import run_host
from repro.fleet.spec import arrival_schedule, host_sim_seed
from repro.host.perturb import Perturbation
from repro.sim.timebase import MSEC


def run(guests=3, consolidation=2, mode=TickMode.PARATICK, **kw):
    base = dict(
        guest_kind="micro.pingpong",
        guest_params={"rounds": 5, "work_cycles": 10_000, "same_vcpu": False},
        guests=guests,
        consolidation=consolidation,
        tick_mode=mode,
        horizon_ns=400 * MSEC,
    )
    base.update(kw)
    return run_host(**base)


class TestPacking:
    def test_pcpus_is_ceil_of_vcpus_over_ratio(self):
        # 3 guests x 2 vCPUs at oc2 -> ceil(6/2) = 3 pCPUs
        m = run(guests=3, consolidation=2)
        assert m.extra["vcpus"] == 6
        assert m.extra["pcpus"] == 3

    def test_saturated_ratio_floors_at_one_pcpu(self):
        m = run(guests=2, consolidation=16)
        assert m.extra["pcpus"] == 1
        assert m.extra["steal_ns"] > 0  # everyone time-slices one core

    def test_topology_extras(self):
        m = run(guests=2, consolidation=4, host_index=5, seed=9)
        assert m.extra["guests"] == 2
        assert m.extra["consolidation"] == 4
        assert m.extra["host_index"] == 5
        # the fleet seed as given; the simulator seed is the pure
        # derivation host_sim_seed(seed, host_index)
        assert m.extra["seed"] == 9
        assert host_sim_seed(9, 5) != 9


class TestArrivals:
    def test_ramp_offsets_recorded_per_guest(self):
        window = 2 * MSEC
        m = run(guests=4, burst="ramp", burst_window_ns=window)
        want = arrival_schedule("ramp", 4, window_ns=window)
        got = tuple(m.extra[f"g{g:02d}_arrival_ns"] for g in range(4))
        assert got == want

    def test_latency_is_arrival_to_completion(self):
        m = run(guests=3, burst="ramp", burst_window_ns=2 * MSEC)
        for g in range(3):
            arrival = m.extra[f"g{g:02d}_arrival_ns"]
            done = m.extra[f"g{g:02d}_done_ns"]
            lat = m.extra[f"g{g:02d}_latency_ns"]
            assert done >= arrival
            assert lat == done - arrival
            assert isinstance(lat, int)

    def test_burst_profile_changes_the_simulation(self):
        herd = run(guests=4, burst="burst")
        ramp = run(guests=4, burst="ramp", burst_window_ns=4 * MSEC)
        assert herd.exec_time_ns != ramp.exec_time_ns

    def test_same_inputs_bit_identical(self):
        a, b = run(burst="poisson", seed=3), run(burst="poisson", seed=3)
        assert a.to_json_dict() == b.to_json_dict()

    def test_host_index_decorrelates_poisson_hosts(self):
        a = run(burst="poisson", host_index=0, seed=3)
        b = run(burst="poisson", host_index=1, seed=3)
        got_a = tuple(a.extra[f"g{g:02d}_arrival_ns"] for g in range(3))
        got_b = tuple(b.extra[f"g{g:02d}_arrival_ns"] for g in range(3))
        assert got_a != got_b


class TestLimitsAndErrors:
    def test_horizon_miss_names_the_stuck_guest(self):
        with pytest.raises(WorkloadError, match="vm0"):
            run(guests=2, consolidation=16, horizon_ns=100_000)

    def test_aggregatable_by_fleet_layer(self):
        from repro.fleet.aggregate import FleetAggregate

        agg = FleetAggregate.from_host(run())
        assert agg.hosts == 1 and agg.guests == 3
        assert len(agg.guest_latency_ns) == 3


class TestPerturbedFleetHost:
    def test_schedule_applies_to_every_guest(self):
        """A fleet perturbation is a host-wide disturbance: the summed
        suspend counters must cover all guests."""
        sched = (Perturbation("suspend", at_ns=2 * MSEC, duration_ns=1 * MSEC),)
        m = run(guests=3, perturbations=sched)
        assert m.extra["suspend_count"] == 3  # one per guest VM
        assert m.extra["suspended_ns"] >= 3 * MSEC

    def test_drift_offsets_sum_across_guests(self):
        sched = (Perturbation("drift", at_ns=1 * MSEC, step_ns=100_000),)
        m = run(guests=2, perturbations=sched)
        assert m.extra["clock_offset_ns"] == 2 * 100_000

    def test_perturbed_run_still_deterministic(self):
        sched = (Perturbation("restore", at_ns=3 * MSEC, duration_ns=2 * MSEC),)
        a = run(perturbations=sched)
        b = run(perturbations=sched)
        assert a.to_json_dict() == b.to_json_dict()
