"""Fleet topology: arrival schedules, spec compilation, cache keys."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.parallel import WorkloadSpec, spec_key
from repro.fleet.spec import (
    BURSTS,
    FLEET_HOST,
    DEFAULT_BURST_WINDOW_NS,
    FleetSpec,
    arrival_schedule,
    fleet_params,
    host_run_spec,
    host_sim_seed,
)

PING = WorkloadSpec.make("micro.pingpong", rounds=5, work_cycles=10_000,
                         same_vcpu=False)


def fleet(**kw) -> FleetSpec:
    base = dict(name="f", workload=PING, tick_mode=TickMode.PARATICK,
                hosts=3, guests_per_host=2, consolidation=2)
    base.update(kw)
    return FleetSpec(**base)


class TestArrivalSchedule:
    def test_burst_is_thundering_herd(self):
        assert arrival_schedule("burst", 5) == (0,) * 5

    def test_ramp_spans_window_evenly(self):
        sched = arrival_schedule("ramp", 4, window_ns=4000)
        assert sched == (0, 1000, 2000, 3000)

    def test_waves_group_guests(self):
        sched = arrival_schedule("waves", 6, window_ns=4000, waves=2)
        assert sched == (0, 2000, 0, 2000, 0, 2000)

    def test_poisson_deterministic_and_clamped(self):
        a = arrival_schedule("poisson", 8, window_ns=10_000, seed=42)
        b = arrival_schedule("poisson", 8, window_ns=10_000, seed=42)
        assert a == b
        assert all(0 <= x <= 10_000 for x in a)
        assert sorted(a) == list(a)  # cumulative inter-arrivals
        assert a != arrival_schedule("poisson", 8, window_ns=10_000, seed=43)

    @given(burst=st.sampled_from(BURSTS), guests=st.integers(1, 32),
           window=st.integers(0, 10**7), seed=st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_all_profiles_in_range_and_sized(self, burst, guests, window, seed):
        sched = arrival_schedule(burst, guests, window_ns=window, seed=seed)
        assert len(sched) == guests
        assert all(0 <= x <= max(window, 0) for x in sched)

    def test_validation(self):
        with pytest.raises(ConfigError, match="unknown burst"):
            arrival_schedule("stampede", 4)
        with pytest.raises(ConfigError, match="at least one guest"):
            arrival_schedule("burst", 0)
        with pytest.raises(ConfigError, match="negative"):
            arrival_schedule("ramp", 2, window_ns=-1)
        with pytest.raises(ConfigError, match="waves"):
            arrival_schedule("waves", 2, waves=0)


class TestHostSimSeed:
    @given(seed=st.integers(0, 2**40), host=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_pure_and_bounded(self, seed, host):
        s = host_sim_seed(seed, host)
        assert s == host_sim_seed(seed, host)
        assert 0 <= s < 2**62

    def test_hosts_get_distinct_seeds(self):
        seeds = {host_sim_seed(7, h) for h in range(64)}
        assert len(seeds) == 64


class TestFleetSpecValidation:
    @pytest.mark.parametrize("kw", [
        {"hosts": 0}, {"guests_per_host": 0}, {"consolidation": 0},
        {"burst": "stampede"},
    ])
    def test_rejects_bad_topology(self, kw):
        with pytest.raises(ConfigError):
            fleet(**kw)

    def test_totals_and_labels(self):
        f = fleet(label_parts=("paratick",))
        assert f.total_guests == 6
        assert f.display_label() == "f/paratick"
        assert f.host_label(2) == "f/paratick/h02"

    def test_host_index_bounds(self):
        with pytest.raises(ConfigError, match="out of range"):
            fleet().host_spec(3)
        with pytest.raises(ConfigError, match="out of range"):
            fleet().host_spec(-1)


class TestCompilation:
    def test_host_specs_ride_the_fleet_kind(self):
        specs = fleet().host_specs()
        assert len(specs) == 3
        assert all(s.workload.kind == FLEET_HOST for s in specs)
        assert [s.label for s in specs] == ["f/h00", "f/h01", "f/h02"]

    def test_cache_keys_distinct_per_host_and_topology(self):
        keys = {spec_key(s) for s in fleet().host_specs()}
        assert len(keys) == 3
        other = fleet(consolidation=4).host_spec(0)
        assert spec_key(other) not in keys
        assert spec_key(fleet(burst="ramp").host_spec(0)) != \
            spec_key(fleet().host_spec(0))

    def test_fleet_params_round_trip(self):
        spec = fleet(burst="waves", burst_waves=3,
                     burst_window_ns=7_000_000).host_spec(1)
        p = fleet_params(spec)
        assert p == {
            "guest_kind": "micro.pingpong",
            "guest_params": {"rounds": 5, "work_cycles": 10_000,
                             "same_vcpu": False},
            "guests": 2,
            "consolidation": 2,
            "burst": "waves",
            "burst_window_ns": 7_000_000,
            "burst_waves": 3,
            "host_index": 1,
        }

    def test_guest_params_canonical_json(self):
        spec = host_run_spec(
            guest_workload=PING, guests=2, consolidation=2,
            tick_mode=TickMode.TICKLESS,
        )
        raw = spec.workload.kwargs()["guest_params"]
        assert raw == json.dumps(json.loads(raw), sort_keys=True,
                                 separators=(",", ":"))

    def test_non_fleet_spec_rejected_by_decoder(self):
        from repro.experiments.parallel import RunSpec

        plain = RunSpec(workload=PING, tick_mode=TickMode.PARATICK)
        with pytest.raises(ConfigError, match="not a fleet host spec"):
            fleet_params(plain)

    def test_defaults_flow_through(self):
        p = fleet_params(fleet().host_spec(0))
        assert p["burst"] == "burst"
        assert p["burst_window_ns"] == DEFAULT_BURST_WINDOW_NS
