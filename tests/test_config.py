"""Tests for the configuration layer."""

from __future__ import annotations

import pytest

from repro.config import (
    HostFeatures,
    IoDeviceKind,
    MachineSpec,
    ScenarioConfig,
    TickMode,
    VmSpec,
)
from repro.errors import ConfigError


class TestVmSpec:
    def test_defaults(self):
        vm = VmSpec()
        assert vm.tick_mode is TickMode.TICKLESS
        assert vm.tick_hz == 250
        assert vm.tick_period_ns == 4_000_000

    def test_pinning_length_checked(self):
        with pytest.raises(ConfigError):
            VmSpec(vcpus=2, pinned_cpus=(0,))

    @pytest.mark.parametrize("kw", [{"vcpus": 0}, {"tick_hz": 0}])
    def test_invalid(self, kw):
        with pytest.raises(ConfigError):
            VmSpec(**kw)


class TestHostFeatures:
    def test_defaults_match_paper_eval(self):
        """§6: PLE and halt polling disabled."""
        f = HostFeatures()
        assert f.halt_poll_ns == 0
        assert f.ple is False
        assert f.posted_interrupts is False
        assert f.paratick_last_tick_heuristic is True

    def test_negative_poll_rejected(self):
        with pytest.raises(ConfigError):
            HostFeatures(halt_poll_ns=-1)


class TestScenarioConfig:
    def test_valid_default(self):
        sc = ScenarioConfig()
        assert len(sc.vms) == 1

    def test_duplicate_vm_names_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(vms=(VmSpec(name="a"), VmSpec(name="a")))

    def test_conflicting_pins_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(
                vms=(
                    VmSpec(name="a", pinned_cpus=(0,)),
                    VmSpec(name="b", pinned_cpus=(0,)),
                )
            )

    def test_pin_out_of_machine_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(
                machine=MachineSpec(sockets=1, cpus_per_socket=1),
                vms=(VmSpec(name="a", pinned_cpus=(5,)),),
            )

    def test_empty_vms_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(vms=())


class TestEnums:
    def test_tick_modes(self):
        assert {m.value for m in TickMode} == {"periodic", "tickless", "paratick"}

    def test_device_kinds(self):
        assert {k.value for k in IoDeviceKind} == {"hdd", "sata-ssd", "nvme-ssd"}
