"""Tests for the §3 analytical models and the DID comparison model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.did import crossover_cpus, estimate_did
from repro.core.model import (
    FORMULA_CONVENTION,
    TABLE1_CONVENTION,
    TABLE1_PAPER,
    VmLoadModel,
    crossover_idle_period_ns,
    paratick_exits,
    periodic_exits,
    table1_row,
    table1_workloads,
    tickless_exits,
    tickless_exits_from_idle_period,
)
from repro.errors import ConfigError
from repro.sim.timebase import MSEC


class TestTable1:
    @pytest.mark.parametrize("name", list(TABLE1_PAPER))
    def test_reproduces_printed_values(self, name):
        assert table1_row(name) == TABLE1_PAPER[name]

    def test_formula_convention_doubles_periodic(self):
        vms = table1_workloads()["W1"]
        assert periodic_exits(vms, 10, FORMULA_CONVENTION) == 2 * periodic_exits(
            vms, 10, TABLE1_CONVENTION
        )

    def test_w2_is_four_w1(self):
        w = table1_workloads()
        assert periodic_exits(w["W2"], 10) == 4 * periodic_exits(w["W1"], 10)
        assert tickless_exits(w["W4"], 10) == 4 * tickless_exits(w["W3"], 10)


class TestFormulas:
    def test_periodic_independent_of_load(self):
        lo = VmLoadModel(vcpus=8, tick_hz=250, load=0.0)
        hi = VmLoadModel(vcpus=8, tick_hz=250, load=1.0)
        assert periodic_exits([lo], 1) == periodic_exits([hi], 1)

    def test_tickless_scales_with_load_and_transitions(self):
        quiet = VmLoadModel(vcpus=8, tick_hz=250, load=0.1, idle_transitions_hz=10)
        busy = VmLoadModel(vcpus=8, tick_hz=250, load=0.9, idle_transitions_hz=10)
        churn = VmLoadModel(vcpus=8, tick_hz=250, load=0.1, idle_transitions_hz=10_000)
        assert tickless_exits([busy], 1) > tickless_exits([quiet], 1)
        assert tickless_exits([churn], 1) > tickless_exits([quiet], 1)

    def test_idle_tickless_is_zero(self):
        idle = VmLoadModel(vcpus=16, tick_hz=250, load=0.0, idle_transitions_hz=0.0)
        assert tickless_exits([idle], 10) == 0

    def test_paratick_below_tickless(self):
        """§4.2: 'guaranteed to never induce more timer-related VM exits
        than tickless kernels' — holds in the closed form too."""
        m = VmLoadModel(vcpus=16, tick_hz=250, load=0.8, idle_transitions_hz=5_000)
        assert paratick_exits([m], 10) < tickless_exits([m], 10)

    @given(
        load=st.floats(min_value=0, max_value=1),
        trans=st.floats(min_value=0, max_value=50_000),
        vcpus=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_property_paratick_never_worse(self, load, trans, vcpus):
        m = VmLoadModel(vcpus=vcpus, tick_hz=250, load=load, idle_transitions_hz=trans)
        assert paratick_exits([m], 10) <= tickless_exits([m], 10, TABLE1_CONVENTION)

    def test_t_idle_form_matches_transition_form(self):
        """The T_idle parameterization equals the transition-rate one
        when T_idle = (1-L)·n / rate."""
        m = VmLoadModel(vcpus=4, tick_hz=250, load=0.5, idle_transitions_hz=1000)
        t_idle = (1 - m.load) * m.vcpus / m.idle_transitions_hz
        a = tickless_exits([m], 10)
        b = tickless_exits_from_idle_period([m], 10, t_idle)
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(ConfigError):
            VmLoadModel(vcpus=0, tick_hz=250, load=0.5)
        with pytest.raises(ConfigError):
            VmLoadModel(vcpus=1, tick_hz=250, load=1.5)
        with pytest.raises(ConfigError):
            paratick_exits([VmLoadModel(vcpus=1, tick_hz=250, load=0.5)], 1, arm_fraction=2.0)


class TestCrossover:
    def test_crossover_formula(self):
        """§3.3: T_idle* = tick period / sharing ratio."""
        assert crossover_idle_period_ns(4 * MSEC, 1.0) == 4 * MSEC
        assert crossover_idle_period_ns(4 * MSEC, 4.0) == 1 * MSEC

    def test_crossover_validation(self):
        with pytest.raises(ConfigError):
            crossover_idle_period_ns(0, 1.0)


class TestDid:
    def make_pair(self):
        from repro.host.exitreasons import ExitReason, ExitTag
        from repro.metrics.counters import ExitCounters
        from repro.metrics.perf import RunMetrics

        def mk(total, host_ticks, cycles):
            c = ExitCounters()
            for _ in range(host_ticks):
                c.record(0, ExitReason.EXTERNAL_INTERRUPT, ExitTag.TIMER_HOST_TICK)
            for _ in range(total - host_ticks):
                c.record(0, ExitReason.HLT, ExitTag.IDLE)
            return RunMetrics("x", 10**9, cycles, cycles // 2, cycles // 10, c)

        base = mk(10_000, 250, 10**9)
        para = mk(6_000, 250, 95 * 10**7)
        return base, para

    def test_did_removes_more_exits_than_paratick(self):
        base, para = self.make_pair()
        est = estimate_did(base, para, machine_cpus=16, exit_cost_cycles=60_000, clock_hz=2_200_000_000)
        assert est.vm_exits < para.total_exits / base.total_exits - 1

    def test_core_loss_reduces_net(self):
        base, para = self.make_pair()
        small = estimate_did(base, para, machine_cpus=4, exit_cost_cycles=60_000, clock_hz=2_200_000_000)
        big = estimate_did(base, para, machine_cpus=80, exit_cost_cycles=60_000, clock_hz=2_200_000_000)
        assert big.throughput > small.throughput
        assert small.throughput < small.throughput_without_core_loss

    def test_crossover_cpus(self):
        assert crossover_cpus(0.10) == pytest.approx(11.0)
        assert crossover_cpus(0.0) == float("inf")

    def test_needs_two_cpus(self):
        base, para = self.make_pair()
        with pytest.raises(ConfigError):
            estimate_did(base, para, machine_cpus=1, exit_cost_cycles=1, clock_hz=1)
