"""Fleet execution: the sharded grid, and its determinism gate.

:func:`run_fleet` compiles a :class:`~repro.fleet.spec.FleetSpec` into
per-host cells, hands them to the parallel engine (pool + cache), and
folds the per-host metrics into a :class:`~repro.fleet.aggregate.FleetAggregate`.

:func:`fleet_identity_problems` is the fleet counterpart of
:func:`repro.scenarios.runcheck.identity_problems`: the same fleet run
serially, pooled, into a warm cache, and replayed cached-only must
produce byte-identical per-host results *and* byte-identical fleet
aggregates — additionally under a host-order shuffle, because the
aggregator promises order invariance.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.experiments.parallel import FLEET_HOST, GridResult, RunSpec, run_grid
from repro.fleet.aggregate import FleetAggregate, aggregate_hosts, fleet_bytes
from repro.fleet.spec import FleetSpec
from repro.scenarios.runcheck import canonical_result_bytes


def run_fleet(
    fleet: FleetSpec,
    *,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable] = None,
    series: bool = False,
    telemetry=None,
    journal=None,
    resume=None,
    chaos=None,
) -> tuple[FleetAggregate, GridResult]:
    """Run every host of ``fleet`` and aggregate.

    Returns ``(aggregate, grid)`` — the grid retains per-host metrics
    (and obs artifacts when ``fleet.profile``, per-host time series in
    :attr:`~repro.experiments.parallel.GridResult.series` when
    ``series=True``) for drill-down. Raises
    :class:`~repro.experiments.parallel.GridError` if any host failed:
    a fleet aggregate over a partial rack would silently under-count.

    ``journal`` / ``resume`` / ``chaos`` pass straight through to
    :func:`~repro.experiments.parallel.run_grid` — a resumed fleet
    re-verifies every journaled host shard against its cached bytes,
    so the aggregate is byte-identical to an uninterrupted run's.

    ``telemetry`` (a :class:`repro.telemetry.HarnessTelemetry`) wraps
    the grid and the aggregation in harness spans; like everywhere
    else, a detached fleet pays one boolean check.
    """
    specs = fleet.host_specs()
    if series:
        specs = [s.with_(series=True) for s in specs]
    tel = telemetry if (telemetry is not None and telemetry.enabled) else None
    if resume is not None and journal is None:
        journal = resume
    kwargs: dict = dict(jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                        progress=progress, telemetry=telemetry,
                        journal=journal, resume=resume, chaos=chaos)
    if timeout_s is not None:
        kwargs["timeout_s"] = timeout_s
    grid = run_grid(specs, **kwargs).raise_if_failed()
    metrics = [grid[s] for s in specs]
    artifacts = {grid[s].label: art for s, art in grid.artifacts.items()}
    if tel is not None:
        with tel.span("fleet.aggregate", lane="fleet", fleet=fleet.display_label(),
                      hosts=len(metrics)):
            agg = aggregate_hosts(metrics, artifacts or None)
        tel.counter("fleet_hosts", len(metrics), help="fleet host shards aggregated")
        return agg, grid
    return aggregate_hosts(metrics, artifacts or None), grid


def group_host_cells(cells) -> dict[str, list[RunSpec]]:
    """Group expanded matrix cells into fleets (``fleet.host`` only).

    The group key is the cell ID with its ``/h<NN>`` shard suffix
    stripped; specs keep host order within each group.
    """
    groups: dict[str, list[RunSpec]] = {}
    for cell in cells:
        if cell.spec.workload.kind != FLEET_HOST:
            continue
        base, _, shard = cell.id.rpartition("/")
        key = base if shard.startswith("h") and shard[1:].isdigit() else cell.id
        groups.setdefault(key, []).append(cell.spec)
    return groups


def identity_problems_for_groups(
    groups: Mapping[str, Sequence[RunSpec]],
    *,
    jobs: int = 2,
    cache_dir: str,
    progress: Optional[Callable] = None,
) -> list[str]:
    """Byte-identity gate over serial / pooled / warm / cached execution.

    Each execution strategy must yield identical canonical bytes per
    host cell *and* an identical fleet aggregate per group; every
    aggregate must also survive reversing its host merge order
    unchanged (the aggregator's order-invariance promise, checked on
    real data, not just in the property tests).
    """
    specs = [s for group in groups.values() for s in group]
    serial = run_grid(specs, jobs=None, use_cache=False, progress=progress).raise_if_failed()
    pooled = run_grid(specs, jobs=jobs, use_cache=False, progress=progress).raise_if_failed()
    warm = run_grid(specs, jobs=jobs, cache_dir=cache_dir,
                    use_cache=True, progress=progress).raise_if_failed()
    cached = run_grid(specs, jobs=None, cache_dir=cache_dir,
                      use_cache=True, progress=progress).raise_if_failed()

    problems: list[str] = []
    if cached.cache_hits != len(set(specs)):
        problems.append(
            f"cache replay served {cached.cache_hits}/{len(set(specs))} hosts "
            f"from the store"
        )
    grids = {"serial": serial, "pooled": pooled, "warm": warm, "cached": cached}
    for spec in specs:
        reference = canonical_result_bytes(serial[spec])
        for name in ("pooled", "warm", "cached"):
            if canonical_result_bytes(grids[name][spec]) != reference:
                problems.append(
                    f"{spec.display_label()}: {name} result differs from serial run"
                )

    for key, group in groups.items():
        aggregates = {
            name: fleet_bytes(aggregate_hosts([grid[s] for s in group]))
            for name, grid in grids.items()
        }
        reference = aggregates.pop("serial")
        for name, blob in aggregates.items():
            if blob != reference:
                problems.append(f"{key}: {name} fleet aggregate differs from serial run")
        shuffled = fleet_bytes(aggregate_hosts([serial[s] for s in reversed(group)]))
        if shuffled != reference:
            problems.append(f"{key}: fleet aggregate is sensitive to host merge order")
    return problems


def fleet_identity_problems(
    fleet: FleetSpec,
    *,
    jobs: int = 2,
    cache_dir: str,
    progress: Optional[Callable] = None,
) -> list[str]:
    """The identity gate for one programmatic :class:`FleetSpec`."""
    return identity_problems_for_groups(
        {fleet.display_label(): fleet.host_specs()},
        jobs=jobs, cache_dir=cache_dir, progress=progress,
    )
