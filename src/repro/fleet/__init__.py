"""Fleet-scale overcommit simulation (racks of hosts, sharded per host).

The paper measures paratick on one host and never overcommits; this
package extends the reproduction to the datacenter regime — many hosts,
each packing guests at 2-16x consolidation with bursty arrivals — while
keeping every result deterministic and content-addressed:

* :mod:`repro.fleet.spec` — fleet topology + burst profiles; compiles
  each host to one ``fleet.host`` :class:`~repro.experiments.parallel.RunSpec`;
* :mod:`repro.fleet.hostsim` — the per-host multi-VM simulation (the
  shard the parallel engine executes);
* :mod:`repro.fleet.aggregate` — integer-exact, order-invariant merge of
  per-host results into fleet percentiles;
* :mod:`repro.fleet.run` — grid execution + the byte-identity gate;
* :mod:`repro.fleet.report` — rack-level summary tables.
"""

from repro.fleet.aggregate import (
    FleetAggregate,
    aggregate_hosts,
    fleet_bytes,
    percentile_ns,
)
from repro.fleet.hostsim import execute_fleet_spec, run_host
from repro.fleet.report import failed_lines, format_run_summary
from repro.fleet.run import (
    fleet_identity_problems,
    group_host_cells,
    identity_problems_for_groups,
    run_fleet,
)
from repro.fleet.spec import (
    BURSTS,
    FLEET_HOST,
    FleetSpec,
    arrival_schedule,
    fleet_params,
    host_run_spec,
    host_sim_seed,
)

__all__ = [
    "BURSTS",
    "FLEET_HOST",
    "FleetAggregate",
    "FleetSpec",
    "aggregate_hosts",
    "arrival_schedule",
    "execute_fleet_spec",
    "failed_lines",
    "fleet_bytes",
    "format_run_summary",
    "fleet_identity_problems",
    "fleet_params",
    "group_host_cells",
    "host_run_spec",
    "host_sim_seed",
    "identity_problems_for_groups",
    "percentile_ns",
    "run_fleet",
    "run_host",
]
