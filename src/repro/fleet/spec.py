"""Fleet topology: racks of hosts, guests per host, burst arrivals.

A *fleet* is a datacenter-style scenario: ``hosts`` identical machines,
each packing ``guests_per_host`` guest VMs at a vCPU:pCPU consolidation
ratio of ``consolidation`` (2-16x in the overcommit regime the paper
never measures), with guests arriving according to a *burst profile*
instead of all at once.

The sharding model is the whole point: every host is an independent
deterministic simulation, so a fleet compiles to one
:class:`~repro.experiments.parallel.RunSpec` **per host** — a grid of
cells the parallel engine fans out over worker processes and caches
content-addressed, exactly like any paper table. The fleet-level answer
is then a pure, integer-exact merge of per-host results
(:mod:`repro.fleet.aggregate`), byte-identical regardless of job count
or cache state.

Host specs use the special workload kind :data:`FLEET_HOST`
(``"fleet.host"``); the guest workload and every fleet knob ride inside
the :class:`~repro.experiments.parallel.WorkloadSpec` parameters (all
JSON scalars — nested guest params are canonical-JSON encoded), so the
content-addressed cache key covers the complete host description.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.config import TickMode
from repro.errors import ConfigError
from repro.experiments.parallel import FLEET_HOST, RunSpec, WorkloadSpec
from repro.sim.rng import RngStreams
from repro.sim.timebase import MSEC

__all__ = [
    "BURSTS",
    "DEFAULT_BURST_WINDOW_NS",
    "FLEET_HOST",
    "FleetSpec",
    "arrival_schedule",
    "fleet_params",
    "host_run_spec",
    "host_sim_seed",
]

#: Recognised burst profiles (guest arrival patterns within a host).
BURSTS = ("burst", "ramp", "waves", "poisson")

#: Default arrival window for the spread-out profiles.
DEFAULT_BURST_WINDOW_NS = 4 * MSEC

#: Prime stride separating per-host simulation seeds. Hosts share the
#: fleet's RunSpec seed; the *simulation* seed folds the host index in
#: so each host sees independent randomness while staying a pure
#: function of (seed, host_index).
HOST_SEED_STRIDE = 1_000_003


def host_sim_seed(seed: int, host_index: int) -> int:
    """The per-host simulator seed (pure, collision-spread)."""
    return (seed * HOST_SEED_STRIDE + host_index) % (1 << 62)


def arrival_schedule(
    burst: str,
    guests: int,
    *,
    window_ns: int = DEFAULT_BURST_WINDOW_NS,
    waves: int = 4,
    seed: int = 0,
) -> tuple[int, ...]:
    """Per-guest arrival offsets (ns) for one host, deterministically.

    * ``burst`` — everyone at t=0 (the thundering herd);
    * ``ramp`` — evenly spaced across ``window_ns``;
    * ``waves`` — ``waves`` groups, one group every ``window_ns/waves``;
    * ``poisson`` — exponential inter-arrivals with mean
      ``window_ns/guests``, clamped to ``window_ns`` (drawn from the
      dedicated ``fleet.burst`` RNG stream of ``seed``).
    """
    if burst not in BURSTS:
        raise ConfigError(f"unknown burst profile {burst!r} (know {BURSTS})")
    if guests < 1:
        raise ConfigError(f"need at least one guest, got {guests}")
    if window_ns < 0:
        raise ConfigError(f"negative burst window {window_ns}")
    if waves < 1:
        raise ConfigError(f"waves must be >= 1, got {waves}")
    if burst == "burst":
        return (0,) * guests
    if burst == "ramp":
        return tuple(g * window_ns // guests for g in range(guests))
    if burst == "waves":
        return tuple((g % waves) * window_ns // waves for g in range(guests))
    # poisson
    rng = RngStreams(seed)
    mean = max(1.0, window_ns / guests)
    out: list[int] = []
    now = 0
    for _ in range(guests):
        now += rng.exponential_ns("fleet.burst", mean)
        out.append(min(now, window_ns))
    return tuple(out)


@dataclass(frozen=True)
class FleetSpec:
    """A full fleet scenario: topology + guest workload + knobs.

    ``workload`` names the per-guest workload (any registered factory
    kind); every guest on every host runs a fresh instance of it.
    ``consolidation`` is the vCPU:pCPU packing ratio — a host's pCPU
    count is ``ceil(guests * vcpus_per_guest / consolidation)``.
    """

    name: str
    workload: WorkloadSpec
    tick_mode: TickMode
    hosts: int = 4
    guests_per_host: int = 8
    consolidation: int = 4
    burst: str = "burst"
    burst_window_ns: int = DEFAULT_BURST_WINDOW_NS
    burst_waves: int = 4
    seed: int = 0
    tick_hz: int = 250
    noise: bool = False
    cpuidle: bool = False
    horizon_ns: Optional[int] = None
    perturbations: tuple = ()
    profile: bool = False
    #: Timer architecture every host in the fleet simulates.
    arch: str = "x86"
    #: Extra label segments between the name and the host shard
    #: (the matrix DSL threads its cell-ID parts through here).
    label_parts: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ConfigError(f"fleet needs >= 1 host, got {self.hosts}")
        if self.guests_per_host < 1:
            raise ConfigError(
                f"fleet needs >= 1 guest per host, got {self.guests_per_host}"
            )
        if self.consolidation < 1:
            raise ConfigError(
                f"consolidation ratio must be >= 1, got {self.consolidation}"
            )
        if self.burst not in BURSTS:
            raise ConfigError(f"unknown burst profile {self.burst!r} (know {BURSTS})")

    @property
    def total_guests(self) -> int:
        return self.hosts * self.guests_per_host

    def display_label(self) -> str:
        parts = [self.name, *self.label_parts]
        return "/".join(parts)

    def host_label(self, host_index: int) -> str:
        return f"{self.display_label()}/h{host_index:02d}"

    def host_spec(self, host_index: int) -> RunSpec:
        """The one grid cell simulating host ``host_index``."""
        if not 0 <= host_index < self.hosts:
            raise ConfigError(
                f"host index {host_index} out of range 0..{self.hosts - 1}"
            )
        return host_run_spec(
            guest_workload=self.workload,
            guests=self.guests_per_host,
            consolidation=self.consolidation,
            tick_mode=self.tick_mode,
            burst=self.burst,
            burst_window_ns=self.burst_window_ns,
            burst_waves=self.burst_waves,
            host_index=host_index,
            seed=self.seed,
            tick_hz=self.tick_hz,
            noise=self.noise,
            cpuidle=self.cpuidle,
            horizon_ns=self.horizon_ns,
            perturbations=self.perturbations,
            profile=self.profile,
            arch=self.arch,
            label=self.host_label(host_index),
        )

    def host_specs(self) -> list[RunSpec]:
        """All host cells, in host order (the grid the engine runs)."""
        return [self.host_spec(h) for h in range(self.hosts)]


def host_run_spec(
    *,
    guest_workload: WorkloadSpec,
    guests: int,
    consolidation: int,
    tick_mode: TickMode,
    burst: str = "burst",
    burst_window_ns: int = DEFAULT_BURST_WINDOW_NS,
    burst_waves: int = 4,
    host_index: int = 0,
    seed: int = 0,
    tick_hz: int = 250,
    noise: bool = False,
    cpuidle: bool = False,
    horizon_ns: Optional[int] = None,
    perturbations: tuple = (),
    profile: bool = False,
    arch: str = "x86",
    label: Optional[str] = None,
) -> RunSpec:
    """Compile one host of a fleet into a :class:`RunSpec`.

    The guest workload's nested parameters are canonical-JSON encoded
    (sorted keys, compact separators) so the WorkloadSpec stays
    hashable and the cache key is stable.
    """
    params_json = json.dumps(dict(guest_workload.params), sort_keys=True,
                             separators=(",", ":"))
    ws = WorkloadSpec.make(
        FLEET_HOST,
        guest_kind=guest_workload.kind,
        guest_params=params_json,
        guests=int(guests),
        consolidation=int(consolidation),
        burst=burst,
        burst_window_ns=int(burst_window_ns),
        burst_waves=int(burst_waves),
        host_index=int(host_index),
    )
    return RunSpec(
        workload=ws,
        tick_mode=tick_mode,
        seed=seed,
        tick_hz=tick_hz,
        noise=noise,
        cpuidle=cpuidle,
        horizon_ns=horizon_ns,
        perturbations=tuple(perturbations),
        profile=profile,
        arch=arch,
        label=label,
    )


def fleet_params(spec: RunSpec) -> dict:
    """Decode a ``fleet.host`` RunSpec's workload parameters.

    Returns the keyword dict :func:`repro.fleet.hostsim.run_host`
    consumes (guest kind/params, topology, burst knobs).
    """
    if spec.workload.kind != FLEET_HOST:
        raise ConfigError(
            f"not a fleet host spec: workload kind {spec.workload.kind!r}"
        )
    p = spec.workload.kwargs()
    return {
        "guest_kind": p["guest_kind"],
        "guest_params": json.loads(p["guest_params"]),
        "guests": int(p["guests"]),
        "consolidation": int(p["consolidation"]),
        "burst": p["burst"],
        "burst_window_ns": int(p["burst_window_ns"]),
        "burst_waves": int(p["burst_waves"]),
        "host_index": int(p["host_index"]),
    }
