"""One fleet host: tens of guests packed onto a few physical CPUs.

:func:`run_host` is the fleet counterpart of
:func:`repro.experiments.runner.run_workload` — same stack construction,
same tracer/inspect/obs hooks, same metrics collection — except it
builds *G* guest VMs (each running its own instance of the guest
workload) sharing ``ceil(G * vcpus / consolidation)`` physical CPUs, and
staggers guest start according to the fleet's burst profile.

Bursty arrival is modeled inside the guests: a guest's workload tasks
exist from boot (so every VM boots, idles, and ticks normally), but each
task's body is prefixed with a jiffy-granular ``Sleep`` until the
guest's arrival offset — the workload "arrives" at that instant exactly
like a request hitting an already-booted VM. Per-guest completion
instants, arrival-to-completion latency, and steal time land in
:attr:`RunMetrics.extra` under ``g<NN>_*`` keys (all integers), which is
what :mod:`repro.fleet.aggregate` folds into fleet-wide distributions.

Everything is a pure function of the spec: host ``i`` of fleet seed
``s`` simulates under :func:`repro.fleet.spec.host_sim_seed`'s derived
seed, so re-running any shard anywhere reproduces identical bytes.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostFeatures, MachineSpec, TickMode, VmSpec
from repro.errors import WorkloadError
from repro.experiments.parallel import RunSpec, WorkloadSpec, _keep_timer
from repro.fleet.spec import (
    DEFAULT_BURST_WINDOW_NS,
    arrival_schedule,
    fleet_params,
    host_sim_seed,
)
from repro.guest.kernel import GuestKernel
from repro.guest.noise import install_noise
from repro.guest.task import Sleep
from repro.host.costs import DEFAULT_COSTS, CostModel
from repro.host.kvm import Hypervisor
from repro.hw.block import make_block_device
from repro.hw.cpu import Machine
from repro.metrics.perf import RunMetrics, collect_metrics
from repro.sim.engine import Simulator


def _delayed(body, ns: int):
    """Prefix a task body with an arrival sleep (jiffy-granular, like a
    request hitting the VM later); delegates the original generator."""
    yield Sleep(ns)
    yield from body


def run_host(
    *,
    guest_kind: str,
    guest_params: dict,
    guests: int,
    consolidation: int,
    tick_mode: TickMode,
    burst: str = "burst",
    burst_window_ns: int = DEFAULT_BURST_WINDOW_NS,
    burst_waves: int = 4,
    host_index: int = 0,
    seed: int = 0,
    tick_hz: int = 250,
    noise: bool = False,
    cpuidle: bool = False,
    costs: CostModel = DEFAULT_COSTS,
    features: HostFeatures = HostFeatures(),
    horizon_ns: Optional[int] = None,
    label: Optional[str] = None,
    perturbations=(),
    arch: str = "x86",
    tracer=None,
    inspect=None,
    obs=None,
) -> RunMetrics:
    """Simulate one overcommitted fleet host and return its metrics.

    ``perturbations`` apply to **every** guest VM — a fleet perturbation
    models a host-wide disturbance (live-migration pause, host clock
    step), and the injectors are defensive, so overlapping occurrences
    skip rather than misfire. ``inspect``, when given, is called as
    ``inspect(sim, machine, hv, vms)`` with the full VM tuple.
    """
    from repro.experiments.runner import DEFAULT_HORIZON_NS

    if horizon_ns is None:
        horizon_ns = DEFAULT_HORIZON_NS
    sim_seed = host_sim_seed(seed, host_index)
    arrivals = arrival_schedule(
        burst, guests, window_ns=burst_window_ns, waves=burst_waves, seed=sim_seed
    )

    guest_ws = WorkloadSpec.make(guest_kind, **guest_params)
    workloads = [guest_ws.build() for _ in range(guests)]
    nv = workloads[0].default_vcpus()
    pcpus = max(1, -(-guests * nv // consolidation))

    if obs is not None:
        tracer = obs.tracer(tracer)
    sim = Simulator(seed=sim_seed, tracer=tracer)
    machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=pcpus))
    hv = Hypervisor(sim, machine, costs=costs, features=features, arch=arch)
    if obs is not None:
        obs.install(machine, hv)

    total_main = 0
    finished = 0
    guest_mains: list[int] = []
    guest_done_ns: list[Optional[int]] = [None] * guests
    end_ns: Optional[int] = None

    for g, workload in enumerate(workloads):
        pins = tuple((g * nv + j) % pcpus for j in range(nv))
        vm = hv.create_vm(
            VmSpec(
                name=f"vm{g:02d}",
                vcpus=nv,
                tick_mode=tick_mode,
                tick_hz=tick_hz,
                pinned_cpus=pins,
                noise=noise,
                cpuidle=cpuidle,
                arch=arch,
            )
        )
        kernel = GuestKernel(vm)

        kind = workload.io_device
        if kind is not None:
            device = make_block_device(
                sim,
                kind,
                lambda req, vm=vm: hv.complete_io_request(vm, req.cookie[0], req),
            )
            kernel.attach_block_device(device)
        nic_profile = getattr(workload, "nic_profile", None)
        if nic_profile is not None:
            from repro.hw.interrupts import Vector
            from repro.hw.nic import Nic

            nic = Nic(
                sim,
                nic_profile,
                lambda req, vm=vm: hv.complete_io_request(
                    vm, req.cookie[0], req, vector=Vector.NET_IO
                ),
            )
            kernel.attach_nic(nic)
        if noise:
            install_noise(kernel)

        pre_build = len(kernel.sched.tasks)
        main_tasks = workload.build(kernel)
        arrival = arrivals[g]
        if arrival > 0:
            # Stagger this guest's whole workload — the delay applies to
            # every task the build created (helper threads must not run
            # ahead of their request), but not to the noise daemons,
            # which run from boot on a real consolidated host.
            for task in kernel.sched.tasks[pre_build:]:
                task.body = _delayed(task.body, arrival)
        main_set = set(id(t) for t in main_tasks)
        guest_mains.append(len(main_tasks))
        total_main += len(main_tasks)

        def on_done(task, g=g, main_set=main_set) -> None:
            nonlocal finished, end_ns
            if id(task) not in main_set:
                return
            finished += 1
            main_set.discard(id(task))
            if not main_set:
                guest_done_ns[g] = sim.now
            if finished == total_main:
                end_ns = sim.now
                sim.stop()

        kernel.task_done_callbacks.append(on_done)

        if perturbations:
            from repro.host.perturb import install_perturbations

            install_perturbations(hv, vm, perturbations)

    hv.start()
    sim.run(until=horizon_ns)

    if total_main:
        if finished < total_main:
            missing = [
                f"vm{g:02d}" for g in range(guests) if guest_done_ns[g] is None
            ]
            raise WorkloadError(
                f"fleet host did not finish; guests still running: {missing[:5]}"
            )
        exec_time = end_ns if end_ns is not None else sim.now
    else:
        exec_time = sim.now  # all guests open-ended: ran to the horizon

    if obs is not None:
        obs.finalize(sim, machine, hv)
    if inspect is not None:
        inspect(sim, machine, hv, tuple(hv.vms))

    extra: dict = {
        "vcpus": guests * nv,
        "seed": seed,
        "guests": guests,
        "pcpus": pcpus,
        "consolidation": consolidation,
        "host_index": host_index,
        "virtual_ticks": sum(vm.virtual_ticks_injected for vm in hv.vms),
        "halt_episodes": sum(v.halt_episodes for vm in hv.vms for v in vm.vcpus),
        "halted_ns": sum(v.total_halted_ns for vm in hv.vms for v in vm.vcpus),
        "steal_ns": sum(v.total_steal_ns for vm in hv.vms for v in vm.vcpus),
        "steal_episodes": sum(v.steal_episodes for vm in hv.vms for v in vm.vcpus),
    }
    if perturbations:
        extra["suspend_count"] = sum(vm.suspend_count for vm in hv.vms)
        extra["suspended_ns"] = sum(vm.total_suspended_ns for vm in hv.vms)
        extra["clock_jump_ns"] = sum(vm.clock_jump_ns for vm in hv.vms)
        extra["clock_offset_ns"] = sum(vm.guest_clock_offset_ns for vm in hv.vms)
        extra["hotplug_count"] = sum(vm.hotplug_count for vm in hv.vms)
        extra["unplug_count"] = sum(vm.unplug_count for vm in hv.vms)
    from repro.host.vcpu import VcpuState

    for vm in hv.vms:
        for v in vm.vcpus:
            residency = dict(v.cstate_residency_ns)
            if v.state is VcpuState.HALTED and v.requested_cstate is not None:
                name = v.requested_cstate.name
                residency[name] = residency.get(name, 0) + (sim.now - v.halted_since_ns)
            for state, ns in residency.items():
                extra[f"cstate_{state}_ns"] = extra.get(f"cstate_{state}_ns", 0) + ns

    for g, vm in enumerate(hv.vms):
        done = guest_done_ns[g] if guest_done_ns[g] is not None else exec_time
        extra[f"g{g:02d}_arrival_ns"] = arrivals[g]
        extra[f"g{g:02d}_done_ns"] = done
        extra[f"g{g:02d}_latency_ns"] = max(0, done - arrivals[g])
        extra[f"g{g:02d}_steal_ns"] = sum(v.total_steal_ns for v in vm.vcpus)

    return collect_metrics(
        label or f"fleet/h{host_index:02d}/{tick_mode.value}",
        machine,
        list(hv.vms),
        exec_time_ns=exec_time,
        extra=extra,
    )


def execute_fleet_spec(spec: RunSpec) -> tuple[RunMetrics, Optional[dict], Optional[dict]]:
    """Parallel-engine entry point for ``fleet.host`` specs.

    Mirrors the workload arm of
    :func:`repro.experiments.parallel.execute_spec_full`: applies cost
    overrides and the keep-timer policy, honors ``spec.profile`` /
    ``spec.series`` with an :class:`repro.obs.Observability` bundle,
    and returns ``(metrics, obs_json_or_None, series_json_or_None)``.
    """
    from repro.experiments.parallel import _obs_for

    params = fleet_params(spec)
    costs = DEFAULT_COSTS
    if spec.cost_overrides:
        costs = costs.with_overrides(**dict(spec.cost_overrides))
    obs = _obs_for(spec)
    with _keep_timer(spec.keep_timer_on_idle_exit):
        metrics = run_host(
            tick_mode=spec.tick_mode,
            seed=spec.seed,
            tick_hz=spec.tick_hz,
            noise=spec.noise,
            cpuidle=spec.cpuidle,
            costs=costs,
            features=spec.features,
            horizon_ns=spec.horizon_ns,
            label=spec.label,
            perturbations=spec.perturbations,
            arch=spec.arch,
            obs=obs,
            **params,
        )
    return (
        metrics,
        obs.to_json_dict() if spec.profile and obs is not None else None,
        obs.series_json() if spec.series and obs is not None else None,
    )
