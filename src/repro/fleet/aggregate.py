"""Fleet-level aggregation: integer-exact, order-invariant merging.

Per-host :class:`~repro.metrics.perf.RunMetrics` fold into one
:class:`FleetAggregate`. The merge is designed around three invariants
the property tests pin down:

* **conservation** — every summed quantity (cycles, steal, exits,
  ledger nanoseconds, histogram bucket counts) is added with Python
  integer arithmetic only; no float ever touches a nanosecond, so fleet
  totals equal per-host sums *exactly*, at any scale (>2^53 included);
* **associativity + commutativity** — :meth:`FleetAggregate.merge` uses
  only sums, maxima, key-wise counter addition and sorted multiset
  union, so any partition of hosts into merge batches, in any order,
  produces the same value; :data:`EMPTY`-equivalent
  :meth:`FleetAggregate.empty` is the identity;
* **byte stability** — :func:`fleet_bytes` canonicalizes to sorted-key
  compact JSON, so equal aggregates are equal *bytes* regardless of job
  count, cache state, or host arrival order.

Percentiles over the per-host/per-guest distributions use the exact
nearest-rank definition on sorted integers (no interpolation — an
interpolated percentile is a float and would break bit-identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.errors import ReproError
from repro.hw.cpu import CycleDomain
from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics

#: Percentiles a fleet report shows (exact nearest-rank integers).
REPORT_PERCENTILES = (50, 90, 95, 99, 100)


class AggregateError(ReproError):
    """A fleet aggregate could not be built from these inputs."""


def percentile_ns(sorted_values: tuple[int, ...], p: int) -> int:
    """Exact nearest-rank percentile of a sorted integer multiset.

    ``p`` in [0, 100]; rank ``ceil(p/100 * n)`` (1-based), clamped to
    the ends. All-integer — returns an element of the input, never an
    interpolated value.
    """
    if not 0 <= p <= 100:
        raise AggregateError(f"percentile out of range: {p}")
    n = len(sorted_values)
    if n == 0:
        return 0
    rank = -(-p * n // 100)  # ceil(p*n/100), integer-exact
    return sorted_values[max(0, min(n, rank) - 1)]


def merge_hist_dict(a: Mapping, b: Mapping) -> dict:
    """Bucket-wise integer merge of two Log2Histogram JSON dicts.

    The shape is :meth:`repro.obs.histograms.Log2Histogram.to_json_dict`:
    ``{"count", "total_ns", "min_ns", "max_ns", "buckets": {str: int}}``.
    """
    buckets = {k: int(v) for k, v in a.get("buckets", {}).items()}
    for k, v in b.get("buckets", {}).items():
        buckets[k] = buckets.get(k, 0) + int(v)
    mins = [m for m in (a.get("min_ns"), b.get("min_ns")) if m is not None]
    return {
        "count": int(a.get("count", 0)) + int(b.get("count", 0)),
        "total_ns": int(a.get("total_ns", 0)) + int(b.get("total_ns", 0)),
        "min_ns": min(mins) if mins else None,
        "max_ns": max(int(a.get("max_ns", 0)), int(b.get("max_ns", 0))),
        "buckets": {k: buckets[k] for k in sorted(buckets, key=int)},
    }


def merge_hist_registry(a: Mapping[str, Mapping], b: Mapping[str, Mapping]) -> dict:
    """Name-wise merge of two histogram-registry JSON dicts."""
    out = {name: merge_hist_dict(h, {}) for name, h in a.items()}
    for name, h in b.items():
        out[name] = merge_hist_dict(out.get(name, {}), h)
    return {name: out[name] for name in sorted(out)}


def _merge_sorted(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Sorted multiset union (keeps duplicates)."""
    return tuple(sorted(a + b))


@dataclass(frozen=True)
class FleetAggregate:
    """The fleet's merged measurement — a monoid under :meth:`merge`."""

    hosts: int = 0
    guests: int = 0
    #: Total guest vCPUs across the fleet (normalizes steal / idle).
    vcpus: int = 0
    #: Fleet makespan: the slowest host's execution time.
    exec_time_ns: int = 0
    total_cycles: int = 0
    useful_cycles: int = 0
    overhead_cycles: int = 0
    #: Total vCPU steal across every guest of every host.
    steal_ns: int = 0
    #: Total halted (idle) time — the fleet's energy proxy, together
    #: with the C-state residency breakdown.
    halted_ns: int = 0
    virtual_ticks: int = 0
    exits: ExitCounters = field(default_factory=ExitCounters)
    ledger: tuple[tuple[str, int], ...] = ()
    cstate_ns: tuple[tuple[str, int], ...] = ()
    #: Sorted per-host distributions (exact integers).
    host_exec_ns: tuple[int, ...] = ()
    host_steal_ns: tuple[int, ...] = ()
    #: Sorted per-guest distributions (arrival-to-completion latency
    #: and per-guest steal), pooled across all hosts.
    guest_latency_ns: tuple[int, ...] = ()
    guest_steal_ns: tuple[int, ...] = ()
    #: Merged obs latency-histogram registry (bucket-count dicts), when
    #: hosts ran with ``profile=True``; empty otherwise.
    latency_hists: tuple[tuple[str, tuple], ...] = ()

    # --------------------------------------------------------------- monoid

    @classmethod
    def empty(cls) -> "FleetAggregate":
        """The merge identity (also the empty fleet's aggregate)."""
        return cls()

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        """Associative, commutative, integer-exact combine."""
        ledger: dict[str, int] = dict(self.ledger)
        for k, v in other.ledger:
            ledger[k] = ledger.get(k, 0) + v
        cstate: dict[str, int] = dict(self.cstate_ns)
        for k, v in other.cstate_ns:
            cstate[k] = cstate.get(k, 0) + v
        hists = merge_hist_registry(
            _hists_to_dict(self.latency_hists), _hists_to_dict(other.latency_hists)
        )
        return FleetAggregate(
            hosts=self.hosts + other.hosts,
            guests=self.guests + other.guests,
            vcpus=self.vcpus + other.vcpus,
            exec_time_ns=max(self.exec_time_ns, other.exec_time_ns),
            total_cycles=self.total_cycles + other.total_cycles,
            useful_cycles=self.useful_cycles + other.useful_cycles,
            overhead_cycles=self.overhead_cycles + other.overhead_cycles,
            steal_ns=self.steal_ns + other.steal_ns,
            halted_ns=self.halted_ns + other.halted_ns,
            virtual_ticks=self.virtual_ticks + other.virtual_ticks,
            exits=self.exits.merge(other.exits),
            ledger=tuple(sorted(ledger.items())),
            cstate_ns=tuple(sorted(cstate.items())),
            host_exec_ns=_merge_sorted(self.host_exec_ns, other.host_exec_ns),
            host_steal_ns=_merge_sorted(self.host_steal_ns, other.host_steal_ns),
            guest_latency_ns=_merge_sorted(self.guest_latency_ns, other.guest_latency_ns),
            guest_steal_ns=_merge_sorted(self.guest_steal_ns, other.guest_steal_ns),
            latency_hists=_hists_from_dict(hists),
        )

    # ------------------------------------------------------------ ingestion

    @classmethod
    def from_host(
        cls, metrics: RunMetrics, artifact: Optional[dict] = None
    ) -> "FleetAggregate":
        """Singleton aggregate of one host's :class:`RunMetrics`.

        ``artifact``, when given, is the host's cached obs payload
        (:meth:`repro.obs.Observability.to_json_dict`); its latency
        registry joins the fleet's merged histograms.
        """
        extra = metrics.extra
        guests = int(extra.get("guests", 0))
        if guests < 1:
            raise AggregateError(
                f"{metrics.label}: not a fleet host result (no 'guests' extra); "
                f"was this cell produced by a fleet.host spec?"
            )
        latencies = []
        steals = []
        for g in range(guests):
            lat = extra.get(f"g{g:02d}_latency_ns")
            if lat is None:
                raise AggregateError(
                    f"{metrics.label}: missing per-guest key g{g:02d}_latency_ns"
                )
            latencies.append(int(lat))
            steals.append(int(extra.get(f"g{g:02d}_steal_ns", 0)))
        cstate = tuple(sorted(
            (k.removeprefix("cstate_").removesuffix("_ns"), int(v))
            for k, v in extra.items()
            if k.startswith("cstate_") and k.endswith("_ns")
        ))
        hists: dict = {}
        if artifact is not None and isinstance(artifact.get("latency"), dict):
            hists = merge_hist_registry(artifact["latency"], {})
        return cls(
            hosts=1,
            guests=guests,
            vcpus=int(extra.get("vcpus", guests)),
            exec_time_ns=int(metrics.exec_time_ns),
            total_cycles=int(metrics.total_cycles),
            useful_cycles=int(metrics.useful_cycles),
            overhead_cycles=int(metrics.overhead_cycles),
            steal_ns=int(extra.get("steal_ns", 0)),
            halted_ns=int(extra.get("halted_ns", 0)),
            virtual_ticks=int(extra.get("virtual_ticks", 0)),
            exits=ExitCounters().merge(metrics.exits),
            ledger=tuple(sorted(
                (d.value, int(ns)) for d, ns in metrics.ledger.items()
            )),
            cstate_ns=cstate,
            host_exec_ns=(int(metrics.exec_time_ns),),
            host_steal_ns=(int(extra.get("steal_ns", 0)),),
            guest_latency_ns=tuple(sorted(latencies)),
            guest_steal_ns=tuple(sorted(steals)),
            latency_hists=_hists_from_dict(hists),
        )

    # ------------------------------------------------------------- readouts

    @property
    def overhead_ratio(self) -> float:
        return self.overhead_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def steal_ratio(self) -> float:
        """Fleet steal per vCPU-second of makespan (the rack's %st)."""
        denom = self.exec_time_ns * self.vcpus
        return self.steal_ns / denom if denom else 0.0

    @property
    def idle_ratio(self) -> float:
        """Halted fraction of fleet vCPU-time — the energy proxy."""
        denom = self.exec_time_ns * self.vcpus
        return self.halted_ns / denom if denom else 0.0

    def percentiles(self, which: str) -> dict[str, int]:
        """Nearest-rank percentile row for one distribution.

        ``which`` is one of ``host_exec`` / ``host_steal`` /
        ``guest_latency`` / ``guest_steal``.
        """
        values = {
            "host_exec": self.host_exec_ns,
            "host_steal": self.host_steal_ns,
            "guest_latency": self.guest_latency_ns,
            "guest_steal": self.guest_steal_ns,
        }.get(which)
        if values is None:
            raise AggregateError(f"unknown distribution {which!r}")
        return {f"p{p}": percentile_ns(values, p) for p in REPORT_PERCENTILES}

    def to_json_dict(self) -> dict:
        """Canonical JSON-safe encoding — every field integer-exact."""
        return {
            "hosts": self.hosts,
            "guests": self.guests,
            "vcpus": self.vcpus,
            "exec_time_ns": self.exec_time_ns,
            "total_cycles": self.total_cycles,
            "useful_cycles": self.useful_cycles,
            "overhead_cycles": self.overhead_cycles,
            "steal_ns": self.steal_ns,
            "halted_ns": self.halted_ns,
            "virtual_ticks": self.virtual_ticks,
            "exits": self.exits.to_dict(),
            "ledger": dict(self.ledger),
            "cstate_ns": dict(self.cstate_ns),
            "distributions": {
                "host_exec_ns": list(self.host_exec_ns),
                "host_steal_ns": list(self.host_steal_ns),
                "guest_latency_ns": list(self.guest_latency_ns),
                "guest_steal_ns": list(self.guest_steal_ns),
            },
            "percentiles": {
                which: self.percentiles(which)
                for which in ("host_exec", "host_steal", "guest_latency", "guest_steal")
            },
            "latency_hists": _hists_to_dict(self.latency_hists),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FleetAggregate":
        """Inverse of :meth:`to_json_dict` (golden-fixture replay)."""
        dist = data["distributions"]
        return cls(
            hosts=int(data["hosts"]),
            guests=int(data["guests"]),
            vcpus=int(data.get("vcpus", data["guests"])),
            exec_time_ns=int(data["exec_time_ns"]),
            total_cycles=int(data["total_cycles"]),
            useful_cycles=int(data["useful_cycles"]),
            overhead_cycles=int(data["overhead_cycles"]),
            steal_ns=int(data["steal_ns"]),
            halted_ns=int(data["halted_ns"]),
            virtual_ticks=int(data["virtual_ticks"]),
            exits=ExitCounters.from_dict(data["exits"]),
            ledger=tuple(sorted((k, int(v)) for k, v in data["ledger"].items())),
            cstate_ns=tuple(sorted((k, int(v)) for k, v in data["cstate_ns"].items())),
            host_exec_ns=tuple(int(v) for v in dist["host_exec_ns"]),
            host_steal_ns=tuple(int(v) for v in dist["host_steal_ns"]),
            guest_latency_ns=tuple(int(v) for v in dist["guest_latency_ns"]),
            guest_steal_ns=tuple(int(v) for v in dist["guest_steal_ns"]),
            latency_hists=_hists_from_dict(data.get("latency_hists", {})),
        )

    def ledger_by_domain(self) -> dict[CycleDomain, int]:
        """The merged ledger with enum keys (report rendering)."""
        return {CycleDomain(k): v for k, v in self.ledger}


def aggregate_hosts(
    host_metrics: Iterable[RunMetrics],
    artifacts: Optional[Mapping[str, dict]] = None,
) -> FleetAggregate:
    """Fold per-host metrics into one fleet aggregate.

    ``artifacts`` optionally maps a host's metrics label to its obs
    payload. Input order does not matter: the result is byte-identical
    for any permutation or batching of the hosts (the property tests
    hold the merge to that).
    """
    agg = FleetAggregate.empty()
    for m in host_metrics:
        art = artifacts.get(m.label) if artifacts else None
        agg = agg.merge(FleetAggregate.from_host(m, art))
    return agg


def fleet_bytes(agg: FleetAggregate) -> bytes:
    """Deterministic byte encoding (identity checks, golden fixtures)."""
    import json

    return json.dumps(agg.to_json_dict(), sort_keys=True,
                      separators=(",", ":")).encode()


# ------------------------------------------------------------------ helpers


def _hists_to_dict(hists: tuple[tuple[str, tuple], ...]) -> dict:
    """Tuple-encoded histogram registry back to its JSON dict shape."""
    out = {}
    for name, packed in hists:
        count, total, mn, mx, buckets = packed
        out[name] = {
            "count": count,
            "total_ns": total,
            "min_ns": mn,
            "max_ns": mx,
            "buckets": {k: v for k, v in buckets},
        }
    return out


def _hists_from_dict(hists: Mapping[str, Mapping]) -> tuple[tuple[str, tuple], ...]:
    """Histogram registry dicts as hashable tuples (frozen dataclass)."""
    out = []
    for name in sorted(hists):
        h = hists[name]
        out.append((name, (
            int(h.get("count", 0)),
            int(h.get("total_ns", 0)),
            h.get("min_ns"),
            int(h.get("max_ns", 0)),
            tuple(sorted(
                ((k, int(v)) for k, v in h.get("buckets", {}).items()),
                key=lambda kv: int(kv[0]),
            )),
        )))
    return tuple(out)
