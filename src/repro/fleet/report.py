"""Fleet report rendering: the rack-level view of the three tick modes.

One row per fleet aggregate — makespan, overhead, fleet steal, guest
latency tail, idle (energy proxy) — plus detailed percentile tables for
the distributions the aggregator carries. All formatting happens here;
the aggregates themselves stay integer-exact.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.fleet.aggregate import REPORT_PERCENTILES, FleetAggregate
from repro.metrics.report import format_table
from repro.sim.timebase import fmt_time

#: Columns of :func:`fleet_rows`, in order.
FLEET_HEADERS = (
    "fleet", "hosts", "guests", "makespan", "overhead%", "steal%",
    "lat p50", "lat p99", "idle%",
)


def fleet_rows(aggregates: Mapping[str, FleetAggregate]) -> list[tuple[str, ...]]:
    """One summary row per named aggregate (insertion order)."""
    rows = []
    for name, agg in aggregates.items():
        lat = agg.percentiles("guest_latency")
        rows.append((
            name,
            str(agg.hosts),
            str(agg.guests),
            fmt_time(agg.exec_time_ns),
            f"{agg.overhead_ratio:.1%}",
            f"{agg.steal_ratio:.1%}",
            fmt_time(lat["p50"]),
            fmt_time(lat["p99"]),
            f"{agg.idle_ratio:.1%}",
        ))
    return rows


def format_fleet_table(
    aggregates: Mapping[str, FleetAggregate], *, title: str = "fleet summary"
) -> str:
    """Aligned text table of :func:`fleet_rows`."""
    return format_table(FLEET_HEADERS, fleet_rows(aggregates), title=title)


def format_distributions(agg: FleetAggregate, *, title: str = "") -> str:
    """Percentile table for every distribution of one aggregate."""
    headers = ("distribution", *[f"p{p}" for p in REPORT_PERCENTILES])
    rows = []
    for which in ("host_exec", "host_steal", "guest_latency", "guest_steal"):
        pcts = agg.percentiles(which)
        rows.append((which, *[fmt_time(pcts[f"p{p}"]) for p in REPORT_PERCENTILES]))
    return format_table(headers, rows, title=title)


def format_latency_hists(agg: FleetAggregate, *, title: str = "") -> str:
    """Summary rows of the merged obs latency histograms (if any)."""
    from repro.fleet.aggregate import _hists_to_dict

    hists = _hists_to_dict(agg.latency_hists)
    if not hists:
        return ""
    headers = ("histogram", "count", "mean", "max")
    rows = []
    for name, h in hists.items():
        count = h["count"]
        mean = h["total_ns"] // count if count else 0
        rows.append((name, f"{count:,}", fmt_time(mean), fmt_time(h["max_ns"])))
    return format_table(headers, rows, title=title)


def format_run_summary(name: str, grid) -> str:
    """One ``<name>: N cells, X cached, Y executed[, Z FAILED]`` line.

    The grid-outcome summary every run driver prints (``fleet run``,
    ``matrix run``): cache hits and failures are always surfaced, not
    just visible to ``--progress`` watchers.
    """
    parts = [
        f"{name}: {len(grid.specs)} cell(s)",
        f"{grid.cache_hits} cached",
        f"{grid.executed} executed",
    ]
    if grid.failed_specs:
        parts.append(f"{len(grid.failed_specs)} FAILED")
    return ", ".join(parts)


def failed_lines(grid) -> list[str]:
    """One ``[FAIL]`` line per failed spec, with its error and attempts."""
    return [
        f"[FAIL] {f.spec.display_label()}: {f.error} "
        f"(after {f.attempts} attempt{'s' if f.attempts != 1 else ''})"
        for f in grid.failed_specs
    ]


def report_lines(aggregates: Mapping[str, FleetAggregate]) -> Iterable[str]:
    """The full ``fleet report`` output, one chunk per table."""
    yield format_fleet_table(aggregates)
    for name, agg in aggregates.items():
        yield ""
        yield format_distributions(agg, title=f"{name}: distributions")
        hists = format_latency_hists(agg, title=f"{name}: latency histograms")
        if hists:
            yield ""
            yield hists
