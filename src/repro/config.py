"""Top-level configuration objects shared across the stack.

:class:`TickMode` selects the guest scheduler-tick mechanism under test —
the three columns of the paper's comparison. :class:`MachineSpec`
describes the simulated host (the paper's testbed is a 4-socket,
20-CPU-per-socket NUMA server). :class:`VmSpec` describes one guest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sim.timebase import hz_to_period_ns


class TickMode(enum.Enum):
    """Guest scheduler-tick management mechanism (paper §2, §4).

    * ``PERIODIC`` — classic periodic tick: every vCPU takes a tick
      interrupt at ``f_tick`` regardless of load (§3.1).
    * ``TICKLESS`` — Linux dynticks-idle: the tick is stopped on idle
      entry and re-armed on idle exit (§3.2, Fig. 1). This is the
      paper's "vanilla" baseline.
    * ``PARATICK`` — virtual scheduler ticks: the guest never manages a
      tick timer; the host injects vector-235 virtual ticks on VM entry
      (§4–5, Figs. 2–3). This is the paper's contribution.
    """

    PERIODIC = "periodic"
    TICKLESS = "tickless"
    PARATICK = "paratick"


class IoDeviceKind(enum.Enum):
    """Storage device latency classes (paper §4.2, §6.3)."""

    HDD = "hdd"
    SATA_SSD = "sata-ssd"
    NVME_SSD = "nvme-ssd"


@dataclass(frozen=True)
class MachineSpec:
    """Physical host description.

    Defaults mirror the paper's testbed: 4 sockets x 20 CPUs. The
    frequency is a nominal 2.2 GHz Xeon-class clock; only ratios matter
    for the reproduced results.
    """

    sockets: int = 4
    cpus_per_socket: int = 20
    freq_hz: int = 2_200_000_000
    host_tick_hz: int = 250
    #: Multiplier on wakeup/IPI cost when waker and wakee are on
    #: different sockets (NUMA effect; used by the large-VM scenario).
    cross_socket_penalty: float = 1.6

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cpus_per_socket <= 0:
            raise ConfigError("machine must have at least one socket and CPU")
        if self.freq_hz <= 0:
            raise ConfigError("CPU frequency must be positive")
        if self.host_tick_hz <= 0:
            raise ConfigError("host tick frequency must be positive")
        if self.cross_socket_penalty < 1.0:
            raise ConfigError("cross-socket penalty must be >= 1.0")

    @property
    def total_cpus(self) -> int:
        return self.sockets * self.cpus_per_socket

    @property
    def host_tick_period_ns(self) -> int:
        return hz_to_period_ns(self.host_tick_hz)

    def socket_of(self, cpu_index: int) -> int:
        """Socket number hosting physical CPU ``cpu_index``."""
        if not 0 <= cpu_index < self.total_cpus:
            raise ConfigError(f"cpu index {cpu_index} out of range")
        return cpu_index // self.cpus_per_socket


@dataclass(frozen=True)
class VmSpec:
    """One guest VM: vCPU count, tick mode and tick frequency.

    ``pinned_cpus`` optionally maps vCPUs 1:1 onto physical CPUs (the
    paper's evaluation never overcommits, so all headline experiments
    pin). Leaving it None lets the host scheduler place vCPUs.
    """

    name: str = "vm0"
    vcpus: int = 1
    tick_mode: TickMode = TickMode.TICKLESS
    tick_hz: int = 250
    pinned_cpus: tuple[int, ...] | None = None
    #: Enable the background daemon-noise model (periodic brief wakeups
    #: from kernel threads / system daemons present on any real guest).
    noise: bool = True
    #: Enable the cpuidle (C-state) model: the idle governor picks a
    #: state from the predicted idle length, wake-ups pay the state's
    #: exit latency, and per-state residency is tracked for the energy
    #: model. Off by default (the paper does not model idle states);
    #: used by the energy extension benchmark.
    cpuidle: bool = False
    #: Timer architecture this guest targets; must match the hosting
    #: hypervisor's arch (see :mod:`repro.hw.timerhw`).
    arch: str = "x86"

    def __post_init__(self) -> None:
        if self.arch not in ("x86", "arm"):
            raise ConfigError(f"unknown arch {self.arch!r}; know ('x86', 'arm')")
        if self.vcpus <= 0:
            raise ConfigError("VM must have at least one vCPU")
        if self.tick_hz <= 0:
            raise ConfigError("guest tick frequency must be positive")
        if self.pinned_cpus is not None and len(self.pinned_cpus) != self.vcpus:
            raise ConfigError(
                f"pinned_cpus has {len(self.pinned_cpus)} entries for {self.vcpus} vCPUs"
            )

    @property
    def tick_period_ns(self) -> int:
        return hz_to_period_ns(self.tick_hz)


@dataclass(frozen=True)
class HostFeatures:
    """Optional KVM features (§6: both disabled in the paper's eval).

    * ``halt_poll_ns`` — KVM halt polling window; 0 disables (paper
      disabled it because polling burns cycles without improving
      runtime for contended workloads).
    * ``ple`` — pause-loop exiting; only useful when overcommitted.
    * ``posted_interrupts`` — APICv-style posted interrupts; when True,
      external device interrupts reach a *running* vCPU without an exit.
      Default False (matches the exit accounting in the paper's §3).
    """

    halt_poll_ns: int = 0
    ple: bool = False
    posted_interrupts: bool = False
    #: §5.1's heuristic: a pending guest local-timer interrupt at VM
    #: entry is assumed to act as a tick (updates ``last_tick`` instead
    #: of injecting vector 235). Disabled only by the ablation bench.
    paratick_last_tick_heuristic: bool = True
    #: APICv-style virtual EOI. When False (pre-APICv hosts), every
    #: handled interrupt's EOI write traps — one extra MSR-write exit
    #: per injected vector, in every tick mode.
    virtual_eoi: bool = True
    #: §4.1's general design for host/guest tick-frequency mismatch:
    #: when the host tick alone cannot deliver virtual ticks at the
    #: guest's declared rate, arm the preemption timer as a backstop so
    #: an injection opportunity exists each guest tick period. The
    #: paper's own implementation omits this (§5.1 assumes equal
    #: frequencies, leaving it as future work); off by default to match
    #: the paper's artifact, exercised by the ablation bench.
    paratick_rate_adapt: bool = False

    def __post_init__(self) -> None:
        if self.halt_poll_ns < 0:
            raise ConfigError("halt_poll_ns must be >= 0")


@dataclass(frozen=True)
class ScenarioConfig:
    """A full experiment scenario: machine + VMs + duration + seed."""

    machine: MachineSpec = field(default_factory=MachineSpec)
    vms: tuple[VmSpec, ...] = field(default_factory=lambda: (VmSpec(),))
    features: HostFeatures = field(default_factory=HostFeatures)
    duration_ns: int = 1_000_000_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.vms:
            raise ConfigError("scenario needs at least one VM")
        if self.duration_ns <= 0:
            raise ConfigError("duration must be positive")
        names = [vm.name for vm in self.vms]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate VM names: {names}")
        pinned = [c for vm in self.vms if vm.pinned_cpus for c in vm.pinned_cpus]
        if len(set(pinned)) != len(pinned):
            raise ConfigError("two vCPUs pinned to the same physical CPU")
        for c in pinned:
            if not 0 <= c < self.machine.total_cpus:
                raise ConfigError(f"pinned CPU {c} outside machine (0..{self.machine.total_cpus - 1})")
