"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro table1
    python -m repro table2            # Fig. 4 + Table 2 (sequential PARSEC)
    python -m repro --jobs 4 table3 --size medium
    python -m repro table4            # Fig. 6 + Table 4 (fio)
    python -m repro run streamcluster --threads 16 --mode paratick
    python -m repro --jobs 4 ablations

The heavy sweeps accept ``--quick`` to shrink the work budget (same
relative results, less wall-clock). ``--jobs N`` fans independent grid
cells out over N worker processes; results are cached on disk
(``.repro-cache/`` by default) so a repeated sweep only executes cells
whose spec changed — ``--no-cache`` forces re-execution and
``--cache-dir`` relocates the store.
"""

from __future__ import annotations

import argparse
import sys

from contextlib import nullcontext as _nullcontext

from repro.config import TickMode
from repro.experiments import runner
from repro.experiments.scenarios import VM_SIZES
from repro.metrics.report import format_table
from repro.workloads import parsec


def _engine_kwargs(args) -> dict:
    """Engine options shared by every grid-backed command."""
    return {
        "jobs": args.jobs,
        "cache_dir": args.cache_dir,
        "use_cache": not args.no_cache,
        "progress": _progress_printer(args),
        "telemetry": getattr(args, "telemetry", None),
    }


def _progress_printer(args):
    """Per-cell progress lines on stderr (the CLI's progress callback)."""
    if args.quiet_progress:
        return None

    def cb(event) -> None:
        detail = f" ({event.error})" if event.error else ""
        if event.duration_s is not None:
            detail += f" [{event.duration_s:.2f}s]"
        print(
            f"[{event.done}/{event.total}] {event.status:<6} "
            f"{event.spec.display_label()}{detail}",
            file=sys.stderr,
        )

    return cb


def _cmd_table1(args) -> int:
    from repro.experiments import table1

    print(table1.render())
    if args.simulate:
        print("\nSimulated cross-check (exits/s at 250 Hz, 16 vCPUs):")
        for name, modes in table1.simulated_cross_check(**_engine_kwargs(args)).items():
            print(f"  {name}: " + ", ".join(f"{m}={v:,.0f}" for m, v in modes.items()))
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments import table2_fig4

    budget = 120_000_000 if args.quick else 300_000_000
    result = table2_fig4.run(target_cycles=budget, seed=args.seed, **_engine_kwargs(args))
    print(result.render())
    if args.chart:
        from repro.metrics.chart import comparison_panels

        print("\nFig. 4 —")
        print(comparison_panels(result.per_benchmark))
    return 0


def _cmd_table3(args) -> int:
    from repro.experiments import table3_fig5

    sizes = [s for s in VM_SIZES if args.size in ("all", s.name)]
    benches = tuple(args.bench) if args.bench else parsec.BENCHMARK_NAMES
    for size in sizes:
        budget = None if not args.quick else max(20_000_000, (table3_fig5.DEFAULT_BUDGETS[size.name] // 3))
        result = table3_fig5.run_size(
            size, benches=benches, target_cycles=budget, seed=args.seed,
            **_engine_kwargs(args),
        )
        print(result.render())
        if args.chart:
            from repro.metrics.chart import comparison_panels

            print("\nFig. 5 [" + size.name + "] —")
            print(comparison_panels(result.per_benchmark))
        print()
    return 0


def _cmd_table4(args) -> int:
    from repro.experiments import table4_fig6
    from repro.workloads.fio import BLOCK_SIZES

    total = (4 << 20) if args.quick else (16 << 20)
    sizes = BLOCK_SIZES[:2] if args.quick else BLOCK_SIZES
    result = table4_fig6.run(
        total_bytes=total, block_sizes=sizes, seed=args.seed, **_engine_kwargs(args)
    )
    print(result.render())
    if args.chart:
        from repro.metrics.chart import comparison_panels

        print("\nFig. 6 —")
        print(comparison_panels(
            result.per_category,
            metric_titles=("(a) VM exits", "(b) I/O throughput", "(c) execution time"),
        ))
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments import ablations

    engine = _engine_kwargs(args)
    rows = [
        ablations.ablate_keep_timer(seed=args.seed, **engine),
        ablations.ablate_last_tick_heuristic(seed=args.seed, **engine),
    ]
    print(format_table(
        ["heuristic disabled", "exits", "vs paratick default"],
        [(r.name, f"{r.variant_exits:,}", f"{r.exit_delta:+.1%}") for r in rows],
        title="Paratick design-choice ablations",
    ))
    print()
    hp = ablations.ablate_halt_polling(seed=args.seed, **engine)
    print(format_table(
        ["halt_poll_ns", "exec time (ms)", "total cycles (M)"],
        [(f"{r.poll_ns:,}", f"{r.exec_time_ns / 1e6:.2f}", f"{r.total_cycles / 1e6:.0f}") for r in hp],
        title="Halt polling (why §6 disables it)",
    ))
    print()
    mm = ablations.ablate_frequency_mismatch(seed=args.seed, **engine)
    print(format_table(
        ["host Hz", "guest Hz", "rate adapt", "ticks delivered/s", "total exits"],
        [(r.host_hz, r.guest_hz, "on" if r.rate_adapt else "off",
          f"{r.delivered_hz:.0f}", f"{r.total_exits:,}") for r in mm],
        title="Host/guest tick-frequency mismatch (§4.1) and the backstop",
    ))
    print()
    eoi = ablations.ablate_virtual_eoi(seed=args.seed, **engine)
    print(format_table(
        ["virtual EOI (APICv)", "paratick exit reduction", "baseline exits"],
        [("on" if r.virtual_eoi else "off (traps)", f"{r.exit_reduction:+.1%}", f"{r.base_exits:,}") for r in eoi],
        title="EOI virtualization sensitivity",
    ))
    print()
    est, crossover, base, para = ablations.ablate_did(seed=args.seed, **engine)
    print("DID comparison (§7): "
          f"throughput {est.throughput:+.1%} (net of dedicated core) vs "
          f"{est.throughput_without_core_loss:+.1%} gross; "
          f"exits {est.vm_exits:+.1%}; breaks even above ~{crossover:.0f} CPUs")
    return 0


def _cmd_export(args) -> int:
    from repro.experiments import export

    written = []
    if args.figure in ("fig4", "all"):
        written.append(export.export_fig4(args.out, seed=args.seed))
    if args.figure in ("fig5", "all"):
        written.extend(export.export_fig5(args.out, seed=args.seed))
    if args.figure in ("fig6", "all"):
        written.append(export.export_fig6(args.out, seed=args.seed))
    for p in written:
        print(f"wrote {p}")
    return 0


def _cmd_validate(args) -> int:
    from repro.experiments import validate

    results = validate.run_all(artifacts_dir=args.artifacts)
    for r in results:
        mark = "ok " if r.passed else "FAIL"
        print(f"[{mark}] {r.name}: {r.detail}")
    if args.artifacts:
        print(f"observability artifacts written to {args.artifacts}/")
    return 0 if all(r.passed for r in results) else 1


def _cmd_list(args) -> int:
    from repro.workloads.fio import BLOCK_SIZES, CATEGORIES
    from repro.workloads.parsec import PROFILES

    rows = [
        (name, p.sync_kind, f"{p.sync_hz:,.0f}/s", f"{p.io_read_hz:,.0f}/s")
        for name, p in sorted(PROFILES.items())
    ]
    print(format_table(
        ["PARSEC benchmark", "sync kind", "blocking sync", "input streaming"],
        rows,
        title="PARSEC models (repro.workloads.parsec)",
    ))
    print(f"\nfio (repro.workloads.fio): {', '.join(CATEGORIES)} x "
          f"{', '.join(str(b // 1024) + 'k' for b in BLOCK_SIZES)}")
    print("micro (repro.workloads.micro): idle, syncstorm, pingpong, idleperiod")
    print("netserve (repro.workloads.netserve): RPC service, 10G/100G links")
    return 0


def _cmd_check(args) -> int:
    """Run one PARSEC model under the tick sanitizer; exit 1 on violation."""
    from repro.analysis.checkers import TickSanitizer
    from repro.analysis.reconcile import reconcile_run
    from repro.config import MachineSpec

    mode = TickMode(args.mode)
    wl = parsec.benchmark(args.benchmark, threads=args.threads,
                          target_cycles=args.target_mcycles * 1_000_000)
    sanitizer = TickSanitizer(mode=mode)
    mspec = MachineSpec()
    internals: dict = {}

    def inspect(sim, machine, hv, vm) -> None:
        internals["machine"], internals["now"] = machine, sim.now

    m = runner.run_workload(wl, tick_mode=mode, seed=args.seed,
                            machine_spec=mspec, tracer=sanitizer, inspect=inspect)
    problems = [str(v) for v in sanitizer.finish()]
    problems += reconcile_run(sanitizer, m, freq_hz=mspec.freq_hz,
                              machine=internals.get("machine"),
                              now_ns=internals.get("now"))
    print(f"{m.label}: {sanitizer.summary()}")
    for p in problems:
        print(f"  VIOLATION: {p}")
    if problems:
        print(f"sanitizer: {len(problems)} problem(s)")
        return 1
    print("sanitizer: clean")
    return 0


def _cmd_fuzz(args) -> int:
    """Differential fuzz of the timer path; exit 1 on any violation."""
    from repro.analysis import fuzz

    placements = (fuzz.SOLO,) if args.solo_only else (fuzz.SOLO, fuzz.OVERCOMMIT)
    if args.seed_list:
        seeds = [int(s) for s in args.seed_list]
    else:
        seeds = list(range(args.seed, args.seed + args.runs))

    failed: list[int] = []

    def progress(report) -> None:
        mark = "ok " if report.ok else "FAIL"
        print(f"[{mark}] {report.scenario.describe()} "
              f"({report.runs} runs, {report.events} events)")
        for p in report.problems:
            print(f"       {p}")
        if not report.ok:
            failed.append(report.seed)

    if args.arch:
        # Cross-architecture sweep: every seed runs under every
        # (arch, mode) cell and the backends are diffed against each
        # other (useful-cycle equivalence + per-arch exit taxonomy).
        for seed in seeds:
            progress(fuzz.fuzz_seed_arch(seed, placements=(fuzz.SOLO,)))
        if failed:
            print(f"\n{len(failed)}/{len(seeds)} seeds failed: {failed}")
            print("replay one with: python -m repro fuzz --arch --seed-list "
                  + " ".join(str(s) for s in failed))
            return 1
        print(f"\nall {len(seeds)} seeds clean across "
              f"{len(fuzz.ARCH_SWEEP) * 3} arch/mode cells each")
        return 0

    fuzz.fuzz_many(seeds, placements=placements, perturb=args.perturb,
                   progress=progress)
    if failed:
        print(f"\n{len(failed)}/{len(seeds)} seeds failed: {failed}")
        replay = "python -m repro fuzz " + ("--perturb " if args.perturb else "")
        print("replay one with: " + replay + "--seed-list "
              + " ".join(str(s) for s in failed))
        return 1
    suffix = " (perturbed)" if args.perturb else ""
    print(f"\nall {len(seeds)} seeds clean across "
          f"{len(placements) * 3} mode/placement cells each{suffix}")
    return 0


def _cmd_table_arch(args) -> int:
    from repro.experiments import table_arch

    result = table_arch.run(seed=args.seed, quick=args.quick,
                            **_engine_kwargs(args))
    print(result.render())
    return 0


def _series_check(labeled_specs, result, *, out_dir=None) -> int:
    """Reconcile each cell's in-sim time series against its RunMetrics.

    ``labeled_specs`` is ``[(label, spec), ...]`` for the cells that ran
    with ``series=True``; returns the number of cells whose series is
    missing or does not sum exactly to the final metrics. When
    ``out_dir`` is given (``--telemetry-out``), each series is also
    written there as ``<label>.series.json``.
    """
    import json
    import os

    from repro.obs import reconcile_series

    bad = 0
    checked = 0
    for label, spec in labeled_specs:
        metrics = result.results.get(spec)
        if metrics is None:
            continue  # already reported as [FAIL]
        series = result.series.get(spec)
        if series is None:
            print(f"[series] {label}: no time-series artifact recorded")
            bad += 1
            continue
        checked += 1
        errors = reconcile_series(series, metrics)
        if errors:
            bad += 1
            print(f"[series] {label}: reconciliation FAILED:")
            for e in errors:
                print(f"    {e}")
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, label.replace("/", "__") + ".series.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(series, fh, indent=2, sort_keys=True)
            print(f"wrote time series: {path} "
                  f"({len(series['windows'])} windows)", file=sys.stderr)
    if bad:
        print(f"series: {bad} cell(s) failed exact reconciliation")
    elif checked:
        print(f"series: {checked} cell(s) reconcile exactly with their RunMetrics")
    return bad


def _cmd_matrix(args) -> int:
    """Expand / check / run a scenario-matrix file; exit 1 on problems."""
    import sys

    from repro.scenarios import check_cells, identity_problems, load_matrix, run_cells

    mx = load_matrix(args.file)
    cells = mx.expand()
    if args.action == "expand":
        for cell in cells:
            print(cell.id)
        print(f"{mx.name}: {len(cells)} cells", file=sys.stderr)
        return 0

    if args.max_cells and len(cells) > args.max_cells:
        print(f"{mx.name}: limiting to first {args.max_cells} of {len(cells)} cells",
              file=sys.stderr)
        cells = cells[: args.max_cells]

    if args.action == "check":
        failed = 0

        def progress(check) -> None:
            nonlocal failed
            mark = "ok " if check.ok else "FAIL"
            print(f"[{mark}] {check.cell.id} ({check.events} events)")
            for p in check.problems:
                print(f"       {p}")
            failed += 0 if check.ok else 1

        check_cells(cells, progress=progress,
                    telemetry=getattr(args, "telemetry", None))
        if failed:
            print(f"\n{failed}/{len(cells)} cells failed the sanitizer")
            return 1
        print(f"\nall {len(cells)} cells sanitizer-clean")
        return 0

    # run
    from repro.fleet.report import format_run_summary
    from repro.resilience import ResumeError
    from repro.scenarios import run_cells_resumable

    if args.series:
        from dataclasses import replace

        cells = [replace(c, spec=c.spec.with_(series=True)) for c in cells]
    try:
        result = run_cells_resumable(cells, journal=args.journal,
                                     resume=args.resume, **_engine_kwargs(args))
    except ResumeError as exc:
        print(f"resume failed: {exc}", file=sys.stderr)
        return 1
    failures = {f.spec: f for f in result.failed_specs}
    for cell in cells:
        metrics = result.results.get(cell.spec)
        if metrics is None:
            failed = failures.get(cell.spec)
            detail = (f": {failed.error} (after {failed.attempts} attempt(s))"
                      if failed is not None else "")
            print(f"[FAIL] {cell.id}{detail}")
        else:
            print(f"[ok ] {cell.id}: {metrics.total_exits} exits, "
                  f"{metrics.timer_exits} timer, "
                  f"overhead {metrics.overhead_ratio:.4f}")
    print("\n" + format_run_summary(mx.name, result))
    if result.report is not None:
        print(result.report.render())
    if args.series:
        bad = _series_check(
            [(cell.id, cell.spec) for cell in cells], result,
            out_dir=getattr(args, "telemetry_out", None),
        )
        if bad:
            return 1
    if args.identity:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-matrix-id-") as td:
            problems = identity_problems(
                cells, jobs=args.jobs or 2, cache_dir=td,
                progress=_progress_printer(args),
            )
        if problems:
            print(f"\nidentity check FAILED ({len(problems)} problems):")
            for p in problems:
                print(f"  {p}")
            return 1
        print("identity check: serial == pooled == cached (byte-identical)")
    return 0 if result.complete else 1


def _cmd_fleet(args) -> int:
    """Run a fleet matrix through the engine and print rack aggregates."""
    import json

    from repro.fleet import FLEET_HOST, aggregate_hosts
    from repro.fleet.report import (
        failed_lines,
        format_fleet_table,
        format_run_summary,
        report_lines,
    )
    from repro.fleet.run import group_host_cells, identity_problems_for_groups
    from repro.scenarios import load_matrix, run_cells

    mx = load_matrix(args.file)
    cells = mx.expand()
    if args.series:
        from dataclasses import replace

        cells = [replace(c, spec=c.spec.with_(series=True)) for c in cells]
    groups = group_host_cells(cells)
    if not groups:
        print(f"{mx.name}: no fleet cells — add a [fleets.*] table and put "
              f"its name on the [axes] fleet axis", file=sys.stderr)
        return 1
    fleet_cells = [c for c in cells if c.spec.workload.kind == FLEET_HOST]

    from repro.resilience import ResumeError
    from repro.scenarios import run_cells_resumable

    try:
        result = run_cells_resumable(fleet_cells, journal=args.journal,
                                     resume=args.resume, **_engine_kwargs(args))
    except ResumeError as exc:
        print(f"resume failed: {exc}", file=sys.stderr)
        return 1
    summary = format_run_summary(mx.name, result)
    if result.report is not None and result.report.outcome != "completed":
        summary += "\n" + result.report.render()
    if result.failed_specs:
        for line in failed_lines(result):
            print(line)
        print("\n" + summary)
        return 1
    artifacts = {result.results[s].label: art
                 for s, art in result.artifacts.items()}
    tel = getattr(args, "telemetry", None)
    with (tel.span("fleet.aggregate", lane="fleet", fleets=len(groups),
                   hosts=len(fleet_cells))
          if tel is not None and tel.enabled else _nullcontext()):
        aggregates = {
            key: aggregate_hosts([result.results[s] for s in specs],
                                 artifacts or None)
            for key, specs in groups.items()
        }

    if args.json:
        print(json.dumps({k: a.to_json_dict() for k, a in aggregates.items()},
                         indent=2, sort_keys=True))
        print(summary, file=sys.stderr)
    elif args.action == "report":
        for chunk in report_lines(aggregates):
            print(chunk)
        print("\n" + summary)
    else:
        print(format_fleet_table(aggregates))
        print(f"\n{mx.name}: {len(groups)} fleet(s), {len(fleet_cells)} host "
              f"shard(s)")
        print(summary)
    if args.series:
        bad = _series_check(
            [(c.id, c.spec) for c in fleet_cells], result,
            out_dir=getattr(args, "telemetry_out", None),
        )
        if bad:
            return 1

    if args.identity:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-fleet-id-") as td:
            problems = identity_problems_for_groups(
                groups, jobs=args.jobs or 2, cache_dir=td,
                progress=_progress_printer(args),
            )
        if problems:
            print(f"\nidentity check FAILED ({len(problems)} problems):")
            for p in problems:
                print(f"  {p}")
            return 1
        print("identity check: serial == pooled == cached == order-shuffled "
              "(byte-identical)")
    return 0


def _cmd_telemetry(args) -> int:
    """Summarize a ``--telemetry-out`` artifact directory."""
    from repro.telemetry.report import report_lines

    for chunk in report_lines(args.dir):
        print(chunk)
    return 0


def _cmd_cache(args) -> int:
    """Verify (checksum every entry) or garbage-collect the result cache."""
    import os

    from repro.experiments.parallel import CACHE_VERSION, DEFAULT_CACHE_DIR
    from repro.resilience import gc_cache, verify_cache

    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    if args.action == "verify":
        audit = verify_cache(root, quarantine=not args.no_quarantine)
        print(f"cache {root}: {audit.summary()}")
        for path in audit.corrupt:
            print(f"  corrupt: {path}")
        for path in audit.quarantined:
            print(f"  quarantined -> {path}")
        return 0 if audit.clean else 1
    stats = gc_cache(root, current_version=CACHE_VERSION,
                     purge_quarantine=args.purge_quarantine)
    print(f"cache {root}: {stats.summary()}")
    return 0


def _cmd_chaos(args) -> int:
    """Seeded chaos smoke: kill workers, crash the harness, corrupt the
    cache — then resume from the journal and require the fleet bytes to
    be identical to an uninterrupted run's."""
    import tempfile
    from pathlib import Path

    from repro.experiments.parallel import spec_key
    from repro.fleet import FLEET_HOST, aggregate_hosts
    from repro.fleet.aggregate import fleet_bytes
    from repro.fleet.run import group_host_cells
    from repro.resilience import ChaosAbort, ChaosPolicy
    from repro.resilience.chaos import corrupt_cache_entry
    from repro.scenarios import load_matrix, run_cells, run_cells_resumable

    mx = load_matrix(args.file)
    cells = [c for c in mx.expand() if c.spec.workload.kind == FLEET_HOST]
    if not cells:
        print(f"{mx.name}: no fleet cells to smoke", file=sys.stderr)
        return 1
    groups = group_host_cells(cells)
    engine = _engine_kwargs(args)
    engine["jobs"] = engine["jobs"] or 2

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as td:
        golden_dir = Path(td) / "golden-cache"
        chaos_dir = Path(td) / "chaos-cache"
        journal = Path(td) / "run.journal"
        fuse_dir = Path(td) / "fuses"

        # 1. Uninterrupted run: the golden fleet bytes.
        clean = run_cells(cells, **{**engine, "cache_dir": golden_dir,
                                    "use_cache": True}).raise_if_failed()
        golden = {key: fleet_bytes(aggregate_hosts([clean[s] for s in specs]))
                  for key, specs in groups.items()}

        # 2. Chaos run: seeded worker SIGKILLs, then a simulated harness
        #    crash partway through — the journal survives, the run dies.
        policy = ChaosPolicy.plan(
            [spec_key(c.spec) for c in cells],
            seed=args.chaos_seed, kills=args.kills,
            abort_after=args.abort_after, fuse_dir=str(fuse_dir))
        interrupted = False
        try:
            run_cells_resumable(cells, journal=journal, chaos=policy,
                                **{**engine, "cache_dir": chaos_dir,
                                   "use_cache": True, "retries": 2})
        except ChaosAbort as exc:
            interrupted = True
            print(f"chaos: {exc}", file=sys.stderr)
        if args.abort_after is not None and not interrupted:
            print("chaos: expected the simulated harness crash to fire",
                  file=sys.stderr)
            return 1

        # 3. Corrupt one cached entry the way a torn write would.
        if args.corrupt:
            victim = corrupt_cache_entry(chaos_dir, seed=args.chaos_seed)
            print(f"chaos: corrupted {victim.name}", file=sys.stderr)

        # 4. Resume from the journal; re-verification must catch the
        #    corruption (quarantine, re-run) and the fleet bytes must
        #    equal the golden run's.
        resumed = run_cells_resumable(
            cells, journal=journal, resume=journal,
            **{**engine, "cache_dir": chaos_dir, "use_cache": True,
               "retries": 2}).raise_if_failed()
        report = resumed.report
        print(report.render())
        recovered = {key: fleet_bytes(aggregate_hosts([resumed[s] for s in specs]))
                     for key, specs in groups.items()}

    problems = [key for key in golden if recovered[key] != golden[key]]
    if problems:
        print(f"chaos smoke FAILED: fleet bytes diverged for {problems}")
        return 1
    wanted_resume = args.abort_after is not None and report.resumed == 0
    if wanted_resume:
        print("chaos smoke FAILED: nothing was resumed from the journal")
        return 1
    print(f"chaos smoke ok: {len(groups)} fleet(s) byte-identical after "
          f"kill/crash/corrupt + resume "
          f"(resumed={report.resumed}, reverified={report.reverified}, "
          f"quarantined={report.quarantined})")
    return 0


def _make_obs(args):
    """Observability bundle for ``run``/``perf``-style commands."""
    from repro.obs import ObsConfig, Observability
    from repro.sim.timebase import USEC

    return Observability(ObsConfig(
        sample_period_ns=getattr(args, "sample_us", 10) * USEC,
        trace_export=args.trace_out is not None,
    ))


def _write_obs_outputs(obs, args) -> None:
    """Write --trace-out / --collapsed-out files, reporting each path."""
    if args.trace_out is not None:
        from repro.obs.export import validate_chrome_trace, write_chrome_trace

        doc = obs.chrome_trace()
        errors = validate_chrome_trace(doc)
        if errors:
            raise SystemExit(f"exported trace failed validation: {errors[:3]}")
        write_chrome_trace(doc, args.trace_out)
        print(f"wrote Perfetto-loadable trace: {args.trace_out} "
              f"({len(doc['traceEvents'])} events)", file=sys.stderr)
    if getattr(args, "collapsed_out", None) is not None:
        with open(args.collapsed_out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(obs.profiler.collapsed()) + "\n")
        print(f"wrote collapsed-stack profile: {args.collapsed_out}", file=sys.stderr)


def _run_parsec(args, obs=None):
    wl = parsec.benchmark(args.benchmark, threads=args.threads,
                          target_cycles=args.target_mcycles * 1_000_000)
    kwargs = {}
    if getattr(args, "overcommit", False):
        from repro.analysis.fuzz import OVERCOMMIT, placement_for

        mspec, pinned = placement_for(wl.default_vcpus(), OVERCOMMIT)
        kwargs.update(machine_spec=mspec, pinned_cpus=pinned)
    return runner.run_workload(wl, tick_mode=TickMode(args.mode), seed=args.seed,
                               obs=obs, **kwargs)


def _cmd_run(args) -> int:
    obs = _make_obs(args) if (args.profile or args.trace_out) else None
    m = _run_parsec(args, obs=obs)
    print(f"{m.label}: exec={m.exec_time_ns / 1e6:.2f} ms, exits={m.total_exits:,} "
          f"(timer {m.timer_exits:,}), cycles={m.total_cycles / 1e6:.0f} M, "
          f"overhead={m.overhead_ratio:.1%}")
    for key, count in sorted(m.exits.tag_breakdown().items(), key=lambda kv: -kv[1]):
        print(f"  {key.value:<18} {count:,}")
    if obs is not None:
        print(f"\nprofile ({obs.profiler.total_samples:,} samples, "
              f"{obs.profiler.period_ns // 1000} us busy-time period):")
        for line in obs.profiler.collapsed()[:10]:
            print(f"  {line}")
        _write_obs_outputs(obs, args)
    return 0


def _cmd_perf(args) -> int:
    """Virtual perf: run one workload with the full observability stack
    and print where the cycles went, the latency distributions, and the
    per-vCPU steal — the simulator's answer to `perf stat` + `perf
    sched` on the host."""
    import json

    from repro.metrics.report import format_overhead_breakdown
    from repro.obs.steal import runtime_steal_summary

    obs = _make_obs(args)
    internals: dict = {}

    def inspect(sim, machine, hv, vm) -> None:
        internals["hv"] = hv

    wl = parsec.benchmark(args.benchmark, threads=args.threads,
                          target_cycles=args.target_mcycles * 1_000_000)
    kwargs = {"inspect": inspect}
    if args.overcommit:
        from repro.analysis.fuzz import OVERCOMMIT, placement_for

        mspec, pinned = placement_for(wl.default_vcpus(), OVERCOMMIT)
        kwargs.update(machine_spec=mspec, pinned_cpus=pinned)
    m = runner.run_workload(wl, tick_mode=TickMode(args.mode), seed=args.seed,
                            obs=obs, **kwargs)
    steal = runtime_steal_summary(internals["hv"])

    if args.json:
        print(json.dumps({
            "metrics": m.to_json_dict(),
            "obs": obs.to_json_dict(),
            "steal_runtime": steal,
        }, indent=2, sort_keys=True))
    else:
        print(format_overhead_breakdown([m], title="Overhead breakdown"))
        print(f"\nprofile ({obs.profiler.total_samples:,} samples, "
              f"{obs.profiler.period_ns // 1000} us busy-time period):")
        for line in obs.profiler.collapsed()[: args.top]:
            print(f"  {line}")
        if len(obs.latency.registry):
            from repro.metrics.report import format_table

            print()
            print(format_table(
                ("histogram", "count", "p50", "p95", "p99", "max"),
                obs.latency.registry.summary_rows(),
                title="Latency histograms",
            ))
        print("\nsteal time (per vCPU):")
        for src, row in sorted(steal.items()):
            print(f"  {src}: {row['steal_ns'] / 1e6:.3f} ms "
                  f"over {row['episodes']} episodes")
    _write_obs_outputs(obs, args)
    return 0


def _cmd_report(args) -> int:
    """Run one PARSEC model and emit its RunMetrics (JSON on stdout with
    --json, an overhead-breakdown table otherwise) — the scriptable end
    of the CLI."""
    import json

    m = _run_parsec(args)
    if args.json:
        print(json.dumps(m.to_json_dict(), indent=2, sort_keys=True))
    else:
        from repro.metrics.report import format_overhead_breakdown

        print(format_overhead_breakdown([m]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="paratick-repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--seed", type=int, default=0, help="root RNG seed")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="run independent grid cells across N worker processes")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the on-disk result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--quiet-progress", action="store_true",
                   help="suppress per-cell grid progress lines on stderr")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="attach harness telemetry (span tracer + metrics "
                        "registry) to the command and write spans.jsonl, "
                        "metrics.prom, metrics.json and harness_trace.json "
                        "under DIR on exit")
    sub = p.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="Table 1: periodic vs tickless exit counts")
    t1.add_argument("--simulate", action="store_true", help="also run the simulated cross-check")
    t1.set_defaults(fn=_cmd_table1)

    t2 = sub.add_parser("table2", help="Table 2 / Fig. 4: sequential PARSEC")
    t2.add_argument("--quick", action="store_true")
    t2.add_argument("--chart", action="store_true", help="also draw the figure as ASCII bars")
    t2.set_defaults(fn=_cmd_table2)

    t3 = sub.add_parser("table3", help="Table 3 / Fig. 5: multithreaded PARSEC")
    t3.add_argument("--size", choices=["small", "medium", "large", "all"], default="all")
    t3.add_argument("--bench", action="append", help="restrict to specific benchmarks")
    t3.add_argument("--quick", action="store_true")
    t3.add_argument("--chart", action="store_true", help="also draw the figure as ASCII bars")
    t3.set_defaults(fn=_cmd_table3)

    t4 = sub.add_parser("table4", help="Table 4 / Fig. 6: fio storage")
    t4.add_argument("--quick", action="store_true")
    t4.add_argument("--chart", action="store_true", help="also draw the figure as ASCII bars")
    t4.set_defaults(fn=_cmd_table4)

    ab = sub.add_parser("ablations", help="design-choice ablations + DID comparison")
    ab.set_defaults(fn=_cmd_ablations)

    ta = sub.add_parser(
        "table-arch",
        help="cross-architecture comparison: paratick's win per timer backend",
    )
    ta.add_argument("--quick", action="store_true")
    ta.set_defaults(fn=_cmd_table_arch)

    ex = sub.add_parser("export", help="write figure data series as CSV")
    ex.add_argument("figure", choices=["fig4", "fig5", "fig6", "all"])
    ex.add_argument("--out", default="figures", help="output directory")
    ex.set_defaults(fn=_cmd_export)

    ls = sub.add_parser("list", help="list available workload models")
    ls.set_defaults(fn=_cmd_list)

    va = sub.add_parser("validate", help="fast self-check of the core invariants")
    va.add_argument("--artifacts", default=None, metavar="DIR",
                    help="write observability artifacts (Perfetto trace, "
                         "collapsed profile) from the battery to DIR")
    va.set_defaults(fn=_cmd_validate)

    ck = sub.add_parser("check", help="run one PARSEC model under the tick sanitizer")
    ck.add_argument("benchmark", choices=list(parsec.BENCHMARK_NAMES))
    ck.add_argument("--threads", type=int, default=1)
    ck.add_argument("--mode", choices=[m.value for m in TickMode], default="tickless")
    ck.add_argument("--target-mcycles", type=int, default=100)
    ck.set_defaults(fn=_cmd_check)

    fz = sub.add_parser(
        "fuzz", help="differential fuzz: 3 tick modes x {solo, overcommit} per seed"
    )
    fz.add_argument("--runs", type=int, default=20,
                    help="number of consecutive seeds starting at --seed")
    fz.add_argument("--seed-list", nargs="+", metavar="N",
                    help="fuzz exactly these seeds (replay failures)")
    fz.add_argument("--solo-only", action="store_true",
                    help="skip the overcommitted placement")
    fz.add_argument("--perturb", action="store_true",
                    help="additionally expand each seed into a perturbation "
                         "schedule (suspend/restore/hotplug/drift) applied to "
                         "every cell")
    fz.add_argument("--arch", action="store_true",
                    help="cross-architecture sweep instead: run each seed on "
                         "every timer backend (x86, arm) x tick mode and diff "
                         "useful cycles + per-arch exit taxonomy")
    fz.set_defaults(fn=_cmd_fuzz)

    mx = sub.add_parser(
        "matrix", help="scenario-matrix DSL: expand, sanitize, or run a grid file"
    )
    mx.add_argument("action", choices=["expand", "check", "run"],
                    help="expand: print cell IDs; check: sanitized serial runs; "
                         "run: parallel engine (cache + workers)")
    mx.add_argument("file", help="matrix file (.toml / .yaml / .yml)")
    mx.add_argument("--max-cells", type=int, default=0, metavar="N",
                    help="check/run at most the first N cells")
    mx.add_argument("--identity", action="store_true",
                    help="after run: verify serial, pooled and cached results "
                         "are byte-identical")
    mx.add_argument("--series", action="store_true",
                    help="run: record the windowed in-sim time series per "
                         "cell and require it to reconcile exactly with the "
                         "final RunMetrics")
    mx.add_argument("--journal", default=None, metavar="FILE",
                    help="run: record every cell's lifecycle to an "
                         "append-only crash-safe journal")
    mx.add_argument("--resume", default=None, metavar="FILE",
                    help="run: resume an interrupted run from its journal — "
                         "completed cells are served from the cache after "
                         "re-verifying their bytes against the journaled "
                         "result hash")
    mx.set_defaults(fn=_cmd_matrix)

    fl = sub.add_parser(
        "fleet", help="fleet-scale overcommit: run host shards, aggregate racks"
    )
    fl.add_argument("action", choices=["run", "report"],
                    help="run: summary table; report: full percentile "
                         "distributions per fleet")
    fl.add_argument("file", help="matrix file with a [fleets.*] axis "
                                 "(.toml / .yaml / .yml)")
    fl.add_argument("--identity", action="store_true",
                    help="additionally verify serial, pooled, cached and "
                         "order-shuffled aggregates are byte-identical")
    fl.add_argument("--json", action="store_true",
                    help="emit the fleet aggregates as JSON on stdout")
    fl.add_argument("--series", action="store_true",
                    help="record the windowed in-sim time series per host "
                         "shard and require exact reconciliation with the "
                         "shard's RunMetrics")
    fl.add_argument("--journal", default=None, metavar="FILE",
                    help="record every host shard's lifecycle to an "
                         "append-only crash-safe journal")
    fl.add_argument("--resume", default=None, metavar="FILE",
                    help="resume an interrupted fleet run from its journal "
                         "(cached shards re-verified byte-for-byte)")
    fl.set_defaults(fn=_cmd_fleet)

    te = sub.add_parser(
        "telemetry", help="inspect harness telemetry written by --telemetry-out"
    )
    te.add_argument("action", choices=["report"],
                    help="report: span/metrics summary tables for a directory")
    te.add_argument("dir", help="directory written by --telemetry-out")
    te.set_defaults(fn=_cmd_telemetry)

    ca = sub.add_parser(
        "cache", help="integrity tooling for the on-disk result cache"
    )
    ca.add_argument("action", choices=["verify", "gc"],
                    help="verify: checksum every entry (corrupt files are "
                         "quarantined; exit 1 if any); gc: remove staging "
                         "files, stale-version entries and orphan artifacts")
    ca.add_argument("--no-quarantine", action="store_true",
                    help="verify: report corrupt files but leave them in place")
    ca.add_argument("--purge-quarantine", action="store_true",
                    help="gc: also delete previously quarantined files")
    ca.set_defaults(fn=_cmd_cache)

    ch = sub.add_parser(
        "chaos", help="seeded fault-injection smoke for the resilience layer"
    )
    ch.add_argument("action", choices=["fleet-smoke"],
                    help="fleet-smoke: SIGKILL workers, simulate a harness "
                         "crash, corrupt the cache, resume from the journal, "
                         "and require byte-identical fleet aggregates")
    ch.add_argument("file", help="matrix file with a [fleets.*] axis")
    ch.add_argument("--kills", type=int, default=1, metavar="N",
                    help="SIGKILL the workers executing N seeded-random cells")
    ch.add_argument("--abort-after", type=int, default=None, metavar="N",
                    help="simulate the harness dying after N settled cells "
                         "(the resume path's reason to exist)")
    ch.add_argument("--corrupt", type=int, default=1, metavar="N",
                    help="corrupt a seeded-random cached entry between crash "
                         "and resume (0 disables)")
    ch.add_argument("--chaos-seed", type=int, default=0,
                    help="seed for victim selection (same seed, same faults)")
    ch.set_defaults(fn=_cmd_chaos)

    run = sub.add_parser("run", help="run one PARSEC model and print its profile")
    run.add_argument("benchmark", choices=list(parsec.BENCHMARK_NAMES))
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--mode", choices=[m.value for m in TickMode], default="paratick")
    run.add_argument("--target-mcycles", type=int, default=300)
    run.add_argument("--profile", action="store_true",
                     help="attach the virtual-perf profiler and print top stacks")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="export the run as a Perfetto-loadable Chrome trace")
    run.set_defaults(fn=_cmd_run, sample_us=10)

    pf = sub.add_parser(
        "perf", help="virtual perf: cycle profile, latency histograms, steal time"
    )
    pf.add_argument("benchmark", choices=list(parsec.BENCHMARK_NAMES))
    pf.add_argument("--threads", type=int, default=2)
    pf.add_argument("--mode", choices=[m.value for m in TickMode], default="tickless")
    pf.add_argument("--target-mcycles", type=int, default=300)
    pf.add_argument("--sample-us", type=int, default=10,
                    help="busy-time sampling period in microseconds")
    pf.add_argument("--top", type=int, default=15,
                    help="collapsed stacks to print (most samples first)")
    pf.add_argument("--overcommit", action="store_true",
                    help="squeeze vCPUs onto fewer pCPUs (exercises steal)")
    pf.add_argument("--json", action="store_true",
                    help="emit metrics + profile + histograms as JSON on stdout")
    pf.add_argument("--trace-out", default=None, metavar="FILE",
                    help="export the run as a Perfetto-loadable Chrome trace")
    pf.add_argument("--collapsed-out", default=None, metavar="FILE",
                    help="write the collapsed-stack profile (flamegraph.pl input)")
    pf.set_defaults(fn=_cmd_perf)

    rp = sub.add_parser("report", help="run one PARSEC model and report RunMetrics")
    rp.add_argument("benchmark", choices=list(parsec.BENCHMARK_NAMES))
    rp.add_argument("--threads", type=int, default=1)
    rp.add_argument("--mode", choices=[m.value for m in TickMode], default="paratick")
    rp.add_argument("--target-mcycles", type=int, default=300)
    rp.add_argument("--json", action="store_true",
                    help="RunMetrics as JSON on stdout (machine-readable)")
    rp.set_defaults(fn=_cmd_report, profile=False, trace_out=None)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tel = None
    if getattr(args, "telemetry_out", None):
        from repro.telemetry import HarnessTelemetry

        tel = HarnessTelemetry()
    args.telemetry = tel
    rc = args.fn(args)
    if tel is not None:
        paths = tel.write_outputs(args.telemetry_out)
        for kind in sorted(paths):
            print(f"telemetry: wrote {kind}: {paths[kind]}", file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
