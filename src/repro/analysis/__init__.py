"""Trace-driven analysis: the tick sanitizer and its fuzz harness.

* :mod:`repro.analysis.events` — the structured trace-event schema;
* :mod:`repro.analysis.checkers` — streaming invariant checkers and the
  :class:`~repro.analysis.checkers.TickSanitizer` tracer;
* :mod:`repro.analysis.reconcile` — post-run counter/ledger cross-checks;
* :mod:`repro.analysis.fuzz` — seed-driven differential fuzzing across
  the three tick modes.

See ``docs/sanitizer.md`` for the checker catalog and workflows.
"""

from repro.analysis.checkers import Checker, TickSanitizer, Violation, default_checkers
from repro.analysis.fuzz import FuzzReport, fuzz_many, fuzz_seed, scenario_for_seed
from repro.analysis.reconcile import reconcile_run

__all__ = [
    "Checker",
    "TickSanitizer",
    "Violation",
    "default_checkers",
    "FuzzReport",
    "fuzz_many",
    "fuzz_seed",
    "scenario_for_seed",
    "reconcile_run",
]
