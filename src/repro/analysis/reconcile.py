"""Post-run reconciliation: trace vs counters vs cycle ledger.

The streaming checkers (:mod:`repro.analysis.checkers`) validate event
*sequences*; this module cross-checks the three independent accounting
systems of a finished run against each other:

* the sanitizer's per-``(reason, tag)`` tally of traced ``vmexit``
  events against the hypervisor's :class:`~repro.metrics.counters.ExitCounters`
  — both count every exit, through entirely separate code paths, so any
  drift means an exit was counted but not traced (or vice versa);
* the per-domain busy-ns ledger against the headline cycle totals
  (``total_cycles``/``useful_cycles``/``overhead_cycles`` are all
  derived from it, at a known clock);
* the per-CPU timeline invariant ``busy_ns − HOST_TICK − HOST_IO ≤
  elapsed`` (those two domains are booked without occupying the vCPU
  timeline — see :mod:`repro.hw.cpu`).

All functions return a list of human-readable problem strings; empty
means reconciled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hw.cpu import CycleDomain, Machine, OVERHEAD_DOMAINS
from repro.metrics.perf import RunMetrics
from repro.sim.timebase import CpuClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.checkers import TickSanitizer
    from repro.sim.engine import Simulator

#: Domains that run concurrently with the vCPU timeline (see hw.cpu).
_OFF_TIMELINE = (CycleDomain.HOST_TICK, CycleDomain.HOST_IO)


def reconcile_exits(sanitizer: "TickSanitizer", metrics: RunMetrics) -> list[str]:
    """Compare the trace-observed exit tally against ExitCounters."""
    problems: list[str] = []
    counted = {
        (k.reason.value, k.tag.value): c for k, c in metrics.exits.breakdown().items()
    }
    for key in sorted(set(counted) | set(sanitizer.exit_tally)):
        traced = sanitizer.exit_tally.get(key, 0)
        booked = counted.get(key, 0)
        if traced != booked:
            problems.append(
                f"exit {key[0]}/{key[1]}: traced {traced} times but counted {booked}"
            )
    return problems


def check_ledger(metrics: RunMetrics, freq_hz: int) -> list[str]:
    """Cycle-ledger conservation at the machine's nominal clock."""
    problems: list[str] = []
    clock = CpuClock(freq_hz)
    ledger = metrics.ledger
    for domain, ns in ledger.items():
        if ns < 0:
            problems.append(f"ledger[{domain.value}] is negative: {ns}")
    total_ns = sum(ledger.values())
    if clock.ns_to_cycles(total_ns) != metrics.total_cycles:
        problems.append(
            f"sum(ledger) = {total_ns}ns = {clock.ns_to_cycles(total_ns)} cycles "
            f"but total_cycles = {metrics.total_cycles}"
        )
    useful_ns = ledger.get(CycleDomain.GUEST_USER, 0)
    if clock.ns_to_cycles(useful_ns) != metrics.useful_cycles:
        problems.append(
            f"ledger[guest_user] = {useful_ns}ns but useful_cycles = {metrics.useful_cycles}"
        )
    overhead_ns = sum(ns for d, ns in ledger.items() if d in OVERHEAD_DOMAINS)
    if clock.ns_to_cycles(overhead_ns) != metrics.overhead_cycles:
        problems.append(
            f"overhead domains sum to {overhead_ns}ns "
            f"but overhead_cycles = {metrics.overhead_cycles}"
        )
    # Floor rounding makes each part <= the whole; a breach means a
    # domain was double-booked as both useful and overhead.
    if metrics.useful_cycles + metrics.overhead_cycles > metrics.total_cycles:
        problems.append(
            f"useful ({metrics.useful_cycles}) + overhead ({metrics.overhead_cycles}) "
            f"exceed total_cycles ({metrics.total_cycles})"
        )
    return problems


def check_counters(metrics: RunMetrics) -> list[str]:
    """Internal consistency of the merged ExitCounters."""
    problems: list[str] = []
    exits = metrics.exits
    by_key = sum(exits.breakdown().values())
    if by_key != exits.total:
        problems.append(f"breakdown sums to {by_key} but total is {exits.total}")
    by_vcpu = sum(int(c) for c in exits.to_dict()["by_vcpu"].values())
    if by_vcpu != exits.total:
        problems.append(f"per-vCPU counts sum to {by_vcpu} but total is {exits.total}")
    return problems


def check_machine(machine: Machine, now_ns: int) -> list[str]:
    """Per-CPU timeline invariant at simulation end."""
    problems: list[str] = []
    for cpu in machine.cpus:
        on_timeline = cpu.busy_ns() - sum(cpu.busy_ns(d) for d in _OFF_TIMELINE)
        if on_timeline > now_ns:
            problems.append(
                f"cpu{cpu.index}: timeline busy {on_timeline}ns exceeds "
                f"elapsed {now_ns}ns"
            )
    return problems


def check_steal(
    steal_tracker,
    hv,
    machine: Optional[Machine] = None,
    now_ns: Optional[int] = None,
) -> list[str]:
    """Steal-time reconciliation (trace vs runtime vs busy timeline).

    ``steal_tracker`` is a :class:`repro.obs.steal.StealTracker` that
    observed the run's event stream. Two independent derivations of
    steal must agree exactly (dispatch-closed trace intervals vs the
    executors' runtime counters), and no vCPU's steal on a pCPU may
    exceed that CPU's on-timeline busy time — a stolen nanosecond is by
    definition a nanosecond someone else was using.
    """
    problems = steal_tracker.reconcile_runtime(hv)
    if machine is not None and now_ns is not None:
        problems += steal_tracker.reconcile_timeline(machine, now_ns)
    return problems


def reconcile_run(
    sanitizer: "TickSanitizer",
    metrics: RunMetrics,
    *,
    freq_hz: int,
    machine: Optional[Machine] = None,
    now_ns: Optional[int] = None,
    steal_tracker=None,
    hv=None,
) -> list[str]:
    """The full post-run battery; empty list means everything agrees."""
    problems = reconcile_exits(sanitizer, metrics)
    problems += check_ledger(metrics, freq_hz)
    problems += check_counters(metrics)
    if machine is not None and now_ns is not None:
        problems += check_machine(machine, now_ns)
    if steal_tracker is not None and hv is not None:
        problems += check_steal(steal_tracker, hv, machine, now_ns)
    return problems
