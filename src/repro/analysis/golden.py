"""Golden fixtures for the bit-identical engine guarantee.

The simulation core is rewritten for throughput from time to time (free
lists, re-arm fast paths, inlined dispatch loops). Every such rewrite
must be *behaviour preserving down to the bit*: same seed, same
workload, same tick mode ⇒ the same ``RunMetrics`` JSON and the same
structured event stream. This module pins that contract:

* :func:`capture` runs a fixed battery — a hand-picked workload set per
  tick mode (with a hashing tracer riding along) plus the first 20
  differential-fuzz scenarios per tick mode and placement (untraced,
  the production fast path) — and writes every metrics dict and stream
  hash to a fixture file;
* :func:`compare` re-runs the battery against the committed fixture and
  reports every divergence.

The committed fixture (``tests/fixtures/golden_simcore.json``) was
captured on the seed-era engine *before* the first fast-path rewrite;
``tests/integration/test_determinism_golden.py`` replays it on every
run. Update it only when behaviour is *intended* to change::

    PYTHONPATH=src python -m repro.analysis.golden --write

and call out the behaviour change in the PR description.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from repro.analysis.fuzz import SOLO, OVERCOMMIT, placement_for, scenario_for_seed
from repro.config import MachineSpec, TickMode
from repro.experiments.runner import run_workload
from repro.host.perturb import Perturbation
from repro.metrics.perf import RunMetrics
from repro.sim.timebase import MSEC, USEC
from repro.sim.trace import Tracer

#: Fixture location relative to the repo root.
DEFAULT_FIXTURE = Path("tests/fixtures/golden_simcore.json")

#: Perturbation-conformance fixture (every kind x every tick mode).
PERTURB_FIXTURE = Path("tests/fixtures/golden_perturb.json")

#: Fleet battery fixture (3 tick modes x 2 consolidation ratios).
FLEET_FIXTURE = Path("tests/fixtures/golden_fleet.json")

#: ARM generic-timer battery fixture — the same workload/fuzz battery
#: executed under ``arch="arm"`` (repro.hw.arm), pinning the second
#: timer architecture to the bit exactly like the x86 seed fixture.
ARM_FIXTURE = Path("tests/fixtures/golden_arm.json")

#: Seeds covered by the fuzz-equivalence section.
FUZZ_SEEDS = tuple(range(20))

#: Bump when the battery itself changes shape (invalidates old files).
SCHEMA = 1


def _canon(detail: Any) -> str:
    """Stable text form of a trace detail (tuples of ints/strs in practice)."""
    return json.dumps(detail, sort_keys=True, default=repr)


class HashTracer(Tracer):
    """Folds the full structured event stream into one SHA-256."""

    enabled = True

    def __init__(self) -> None:
        self._h = hashlib.sha256()
        self.records = 0

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        self.records += 1
        self._h.update(f"{time}|{source}|{kind}|{_canon(detail)}\n".encode())

    def hexdigest(self) -> str:
        return self._h.hexdigest()


def metrics_digest(metrics: RunMetrics) -> str:
    """Canonical SHA-256 of a run's full metrics JSON."""
    payload = json.dumps(metrics.to_json_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------- batteries


def _workload_cases() -> Iterator[tuple[str, Callable, dict]]:
    """(case name, workload factory, run_workload kwargs) triples.

    Factories, not instances: task bodies are single-use generators and
    each (case, mode) cell needs a fresh one.
    """
    from repro.workloads.micro import IdlePeriodWorkload, PingPongWorkload, SyncStormWorkload
    from repro.workloads.netserve import NetServiceWorkload

    yield (
        "syncstorm",
        lambda: SyncStormWorkload(threads=2, events_per_second=800.0, duration_cycles=20_000_000),
        {"seed": 3},
    )
    yield (
        "idleperiod",
        lambda: IdlePeriodWorkload(500 * USEC, iterations=30, work_cycles=100_000),
        {"seed": 5, "cpuidle": True},
    )
    yield (
        "netserve",
        lambda: NetServiceWorkload(workers=2, requests=120, think_cycles=30_000),
        {"seed": 7},
    )
    yield (
        "pingpong-overcommit",
        lambda: PingPongWorkload(rounds=120, work_cycles=50_000, same_vcpu=False),
        {
            "seed": 11,
            "machine_spec": MachineSpec(sockets=1, cpus_per_socket=1),
            "pinned_cpus": (0, 0),
        },
    )


def _run_workload_case(
    name: str, factory: Callable, kwargs: dict, mode: TickMode, arch: str = "x86"
) -> dict:
    tracer = HashTracer()
    prefix = "golden" if arch == "x86" else f"golden-{arch}"
    metrics = run_workload(
        factory(), tick_mode=mode, tracer=tracer, arch=arch,
        label=f"{prefix}/{name}/{mode.value}", **kwargs,
    )
    return {
        "metrics": metrics.to_json_dict(),
        "trace_sha256": tracer.hexdigest(),
        "trace_records": tracer.records,
    }


def _run_fuzz_case(seed: int, mode: TickMode, placement: str, arch: str = "x86") -> str:
    """One untraced (production fast path) fuzz-scenario run → metrics hash."""
    scenario = scenario_for_seed(seed)
    workload = scenario.make_workload()
    mspec, pinned = placement_for(workload.default_vcpus(), placement)
    label = f"fuzz{seed}/{scenario.kind}/{mode.value}/{placement}"
    if arch != "x86":
        label += f"/{arch}"
    metrics = run_workload(
        workload,
        tick_mode=mode,
        machine_spec=mspec,
        pinned_cpus=pinned,
        tick_hz=scenario.tick_hz,
        seed=scenario.seed,
        noise=scenario.noise,
        cpuidle=scenario.cpuidle,
        horizon_ns=scenario.horizon_ns,
        arch=arch,
        label=label,
    )
    return metrics_digest(metrics)


def run_battery(
    progress: Optional[Callable[[str], None]] = None, arch: str = "x86"
) -> dict:
    """Execute the full battery and return the fixture payload."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    workloads: dict[str, dict] = {}
    for name, factory, kwargs in _workload_cases():
        for mode in TickMode:
            key = f"{name}/{mode.value}"
            workloads[key] = _run_workload_case(name, factory, kwargs, mode, arch)
            note(key)
    fuzz: dict[str, str] = {}
    for seed in FUZZ_SEEDS:
        for placement in (SOLO, OVERCOMMIT):
            for mode in TickMode:
                key = f"seed{seed}/{mode.value}/{placement}"
                fuzz[key] = _run_fuzz_case(seed, mode, placement, arch)
        note(f"fuzz seed {seed}")
    return {"schema": SCHEMA, "arch": arch, "workloads": workloads, "fuzz": fuzz}


# ------------------------------------------------- perturbation battery


def perturb_cases() -> Iterator[tuple[str, tuple[Perturbation, ...]]]:
    """(case name, schedule) pairs — one per perturbation kind.

    Each schedule is applied to the same idle-period workload (long
    enough, at ~16 ms, to straddle every event) under all three tick
    modes, pinning 12 golden traces total. The schedules hit the
    interesting edges: a suspend span across halt/run boundaries, a
    save/restore with a guest-visible clock jump, a hotplug + LIFO
    unplug window, and a multi-step clock-offset drift.
    """
    yield "suspend", (Perturbation("suspend", at_ns=4 * MSEC, duration_ns=3 * MSEC),)
    yield "restore", (Perturbation("restore", at_ns=4 * MSEC, duration_ns=3 * MSEC),)
    yield "hotplug", (Perturbation("hotplug", at_ns=2 * MSEC, duration_ns=6 * MSEC),)
    yield "drift", (
        Perturbation("drift", at_ns=2 * MSEC, count=3, period_ns=4 * MSEC,
                     step_ns=250 * USEC),
    )


def _perturb_workload():
    from repro.workloads.micro import IdlePeriodWorkload

    return IdlePeriodWorkload(500 * USEC, iterations=30, work_cycles=100_000)


def run_perturb_case(name: str, schedule: tuple, mode: TickMode) -> dict:
    """One traced perturbed run → fixture entry (metrics + stream hash)."""
    tracer = HashTracer()
    metrics = run_workload(
        _perturb_workload(), tick_mode=mode, seed=5, cpuidle=True,
        perturbations=schedule, tracer=tracer,
        label=f"golden-perturb/{name}/{mode.value}",
    )
    return {
        "metrics": metrics.to_json_dict(),
        "trace_sha256": tracer.hexdigest(),
        "trace_records": tracer.records,
    }


def run_perturb_battery(progress: Optional[Callable[[str], None]] = None) -> dict:
    """Every perturbation kind under every tick mode (12 cases)."""
    cases: dict[str, dict] = {}
    for name, schedule in perturb_cases():
        for mode in TickMode:
            key = f"{name}/{mode.value}"
            cases[key] = run_perturb_case(name, schedule, mode)
            if progress is not None:
                progress(key)
    return {"schema": SCHEMA, "cases": cases}


def capture_perturb(path: Path = PERTURB_FIXTURE, progress=None) -> dict:
    payload = run_perturb_battery(progress)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def compare_perturb(path: Path = PERTURB_FIXTURE, progress=None) -> list[str]:
    """Replay the perturbation battery against its fixture."""
    golden = load(path)
    fresh = run_perturb_battery(progress)
    problems: list[str] = []
    for key, want in golden["cases"].items():
        got = fresh["cases"].get(key)
        if got is None:
            problems.append(f"perturb case {key} missing from battery")
            continue
        if got["metrics"] != want["metrics"]:
            diffs = [
                f"{field}: {want['metrics'][field]!r} -> {got['metrics'][field]!r}"
                for field in want["metrics"]
                if got["metrics"].get(field) != want["metrics"][field]
            ]
            problems.append(f"perturb {key}: RunMetrics diverged ({'; '.join(diffs)})")
        if got["trace_sha256"] != want["trace_sha256"]:
            problems.append(
                f"perturb {key}: event stream diverged "
                f"({want['trace_records']} -> {got['trace_records']} records)"
            )
    for key in fresh["cases"]:
        if key not in golden["cases"]:
            problems.append(f"perturb case {key} not pinned in fixture")
    return problems


# ------------------------------------------------------- fleet battery


def fleet_cases():
    """(case name, FleetSpec) pairs: 2 consolidation ratios x 3 modes.

    Small racks (2 hosts x 4 guests) with a poisson arrival burst — the
    profile that exercises the dedicated ``fleet.burst`` RNG stream, so
    the fixture pins the arrival sampling as well as the multi-VM
    scheduling. ``oc2`` is mild contention, ``oc8`` is the saturated
    regime (all guests time-slicing one pCPU).
    """
    from repro.experiments.parallel import WorkloadSpec
    from repro.fleet.spec import FleetSpec

    guest = WorkloadSpec.make(
        "micro.pingpong", rounds=15, work_cycles=30_000, same_vcpu=False
    )
    for oc in (2, 8):
        for mode in TickMode:
            yield f"oc{oc}/{mode.value}", FleetSpec(
                name=f"golden-fleet-oc{oc}",
                workload=guest,
                tick_mode=mode,
                hosts=2,
                guests_per_host=4,
                consolidation=oc,
                burst="poisson",
                burst_window_ns=2 * MSEC,
                seed=9,
                horizon_ns=400 * MSEC,
                label_parts=(mode.value,),
            )


def run_fleet_case(fleet) -> dict:
    """One fleet case, serially: per-host digests + the fleet aggregate.

    Hosts run through :func:`repro.fleet.hostsim.execute_fleet_spec`
    directly (no pool, no cache) — the identity gate separately proves
    the engine paths match this serial reference byte-for-byte.
    """
    from repro.fleet.aggregate import aggregate_hosts, fleet_bytes
    from repro.fleet.hostsim import execute_fleet_spec

    metrics = [execute_fleet_spec(spec)[0] for spec in fleet.host_specs()]
    agg = aggregate_hosts(metrics)
    return {
        "aggregate": agg.to_json_dict(),
        "aggregate_sha256": hashlib.sha256(fleet_bytes(agg)).hexdigest(),
        "hosts": {m.label: metrics_digest(m) for m in metrics},
    }


def run_fleet_battery(progress: Optional[Callable[[str], None]] = None) -> dict:
    cases: dict[str, dict] = {}
    for name, fleet in fleet_cases():
        cases[name] = run_fleet_case(fleet)
        if progress is not None:
            progress(name)
    return {"schema": SCHEMA, "cases": cases}


def capture_fleet(path: Path = FLEET_FIXTURE, progress=None) -> dict:
    payload = run_fleet_battery(progress)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def compare_fleet(path: Path = FLEET_FIXTURE, progress=None) -> list[str]:
    """Replay the fleet battery against its fixture."""
    golden = load(path)
    fresh = run_fleet_battery(progress)
    problems: list[str] = []
    for key, want in golden["cases"].items():
        got = fresh["cases"].get(key)
        if got is None:
            problems.append(f"fleet case {key} missing from battery")
            continue
        if got["aggregate"] != want["aggregate"]:
            diffs = [
                f"{field}: {want['aggregate'][field]!r} -> {got['aggregate'][field]!r}"
                for field in want["aggregate"]
                if got["aggregate"].get(field) != want["aggregate"][field]
            ]
            problems.append(f"fleet {key}: aggregate diverged ({'; '.join(diffs)})")
        for host, digest in want["hosts"].items():
            fresh_digest = got["hosts"].get(host)
            if fresh_digest != digest:
                problems.append(f"fleet {key}: host {host} metrics diverged")
    for key in fresh["cases"]:
        if key not in golden["cases"]:
            problems.append(f"fleet case {key} not pinned in fixture")
    return problems


# ------------------------------------------------------------ read/compare


def capture(path: Path = DEFAULT_FIXTURE, progress=None, arch: str = "x86") -> dict:
    """Run the battery and write the fixture file."""
    payload = run_battery(progress, arch=arch)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def capture_arm(path: Path = ARM_FIXTURE, progress=None) -> dict:
    """Capture the battery under the ARM generic-timer backend."""
    return capture(path, progress, arch="arm")


def load(path: Path = DEFAULT_FIXTURE) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"golden fixture schema {data.get('schema')} != expected {SCHEMA}; re-capture"
        )
    return data


def compare(path: Path = DEFAULT_FIXTURE, progress=None, arch: str = "x86") -> list[str]:
    """Re-run the battery; return human-readable divergences (empty = ok)."""
    golden = load(path)
    pinned_arch = golden.get("arch", "x86")
    if pinned_arch != arch:
        return [f"fixture {path} pins arch {pinned_arch!r}, battery ran {arch!r}"]
    fresh = run_battery(progress, arch=arch)
    problems: list[str] = []
    for key, want in golden["workloads"].items():
        got = fresh["workloads"].get(key)
        if got is None:
            problems.append(f"workload case {key} missing from battery")
            continue
        if got["metrics"] != want["metrics"]:
            diffs = [
                f"{field}: {want['metrics'][field]!r} -> {got['metrics'][field]!r}"
                for field in want["metrics"]
                if got["metrics"].get(field) != want["metrics"][field]
            ]
            problems.append(f"{key}: RunMetrics diverged ({'; '.join(diffs)})")
        if got["trace_sha256"] != want["trace_sha256"]:
            problems.append(
                f"{key}: event stream diverged "
                f"({want['trace_records']} -> {got['trace_records']} records)"
            )
    for key, want in golden["fuzz"].items():
        got = fresh["fuzz"].get(key)
        if got is None:
            problems.append(f"fuzz case {key} missing from battery")
        elif got != want:
            problems.append(f"fuzz {key}: metrics hash diverged")
    return problems


def compare_arm(path: Path = ARM_FIXTURE, progress=None) -> list[str]:
    """Replay the battery on the ARM backend against its fixture."""
    return compare(path, progress, arch="arm")


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--fixture", type=Path, default=None)
    ap.add_argument("--write", action="store_true",
                    help="re-capture the fixture instead of checking it")
    ap.add_argument("--perturb", action="store_true",
                    help="operate on the perturbation battery "
                         f"(default fixture: {PERTURB_FIXTURE})")
    ap.add_argument("--fleet", action="store_true",
                    help="operate on the fleet battery "
                         f"(default fixture: {FLEET_FIXTURE})")
    ap.add_argument("--arm", action="store_true",
                    help="operate on the ARM generic-timer battery "
                         f"(default fixture: {ARM_FIXTURE})")
    args = ap.parse_args(argv)
    if sum((args.perturb, args.fleet, args.arm)) > 1:
        ap.error("--perturb, --fleet and --arm are mutually exclusive")
    if args.arm:
        fixture, do_capture, do_compare, name = (
            ARM_FIXTURE, capture_arm, compare_arm, "arm battery")
    elif args.fleet:
        fixture, do_capture, do_compare, name = (
            FLEET_FIXTURE, capture_fleet, compare_fleet, "fleet battery")
    elif args.perturb:
        fixture, do_capture, do_compare, name = (
            PERTURB_FIXTURE, capture_perturb, compare_perturb, "perturb battery")
    else:
        fixture, do_capture, do_compare, name = (
            DEFAULT_FIXTURE, capture, compare, "golden battery")
    if args.fixture is not None:
        fixture = args.fixture
    if args.write:
        do_capture(fixture, progress=print)
        print(f"wrote {fixture}")
        return 0
    problems = do_compare(fixture, progress=None)
    for p in problems:
        print(f"DIVERGED: {p}")
    print(f"{name}:", "clean" if not problems else f"{len(problems)} divergences")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
