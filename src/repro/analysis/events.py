"""The structured trace-event schema the sanitizer checks against.

Every component on the timer path emits events through the simulator's
:class:`~repro.sim.trace.Tracer` as ``(time, source, kind, detail)``.
This module is the single registry of the *kinds* and their detail
shapes; :class:`repro.analysis.checkers.SchemaChecker` enforces it
online, so a component that starts emitting malformed or unregistered
events fails the sanitizer rather than silently degrading the analysis.

Sources follow a small naming convention:

* ``<vm>/vcpu<N>`` — the vCPU executor, the guest kernel and the
  per-vCPU timers (preemption timer, host deadline stand-in);
* ``<vm>/vcpu<N>/vlapic`` — KVM's emulation of the virtual LAPIC in
  periodic mode;
* free-form names for bare hardware models (``lapic``, ``msr``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.trace import TraceRecord

#: kind -> human-readable description of the detail payload.
EVENT_SCHEMA: dict[str, str] = {
    # Hypervisor / vCPU executor (repro.host.kvm, repro.host.vcpu)
    "vmexit": "(reason_value, tag_value) — one VM exit, as counted by ExitCounters",
    "inject": "tuple of int vectors injected at VM entry (never empty)",
    "vcpu_state": "(old_state_value, new_state_value) — _VcpuExec run-state transition",
    "deadline_set": "abs ns — guest TSC_DEADLINE armed (KVM handler)",
    "deadline_clear": "None — guest wrote 0 to TSC_DEADLINE",
    "deadline_fire": "(deadline_ns, 'ptimer'|'host') — armed deadline consumed",
    "hostdl_arm": "abs ns — host stand-in timer armed while vCPU blocked",
    "hostdl_cancel": "None — host stand-in timer cancelled (VM entry)",
    "hostdl_fire": "None — host stand-in timer fired",
    # VMX preemption timer (repro.hw.preemption)
    "ptimer_start": "abs ns — countdown started at VM entry",
    "ptimer_stop": "None — countdown paused at VM exit",
    "ptimer_fire": "None — preemption timer expired in guest mode",
    # LAPIC timer hardware model / KVM's periodic vLAPIC emulation
    "lapic_arm": "(mode_value, expiry_abs_ns) — timer programmed",
    "lapic_disarm": "None — pending expiry cancelled",
    "lapic_fire": "(mode_value, vector_int) — timer expired",
    # Host scheduler (repro.host.kvm dispatch/preempt, overcommit only)
    "sched_dispatch": "(pcpu_index, stolen_ns) — READY wait ended; vCPU got its pCPU",
    "sched_preempt": "pcpu_index — host-tick boundary requeued this vCPU",
    # Raw MSR traffic (repro.hw.msr, native path)
    "msr_write": "(index, value)",
    # ARM generic timer (repro.hw.arm: KVM's vtimer emulation)
    "cntv_cval": "abs ns — CNTV_CVAL latched (host-time translated expiry)",
    "cntv_ctl": "0|1 — CNTV_CTL ENABLE bit written",
    # Guest kernel / tick-sched policies (repro.guest)
    "idle_enter": "None — idle loop about to halt",
    "idle_exit": "None — idle loop exiting to run a task",
    "tick_stop": "None — NohzPolicy stopped the tick (Fig. 1b)",
    "tick_restart": "None — NohzPolicy restarted the tick (Fig. 1c)",
    "tick_kept": "None — idle entry kept the tick (RCU/softirq held it)",
    "timer_program_req": "abs ns or None — kernel decided to (dis)arm deadline hw",
    # Perturbation events (repro.host.perturb via repro.host.kvm);
    # sources are the bare VM name (``vm0``), not a vCPU.
    "vm_suspend": "None — VM paused; every vCPU frozen until vm_resume",
    "vm_resume": "suspended_span_ns — VM thawed after a plain suspend/resume",
    "vm_restore": "clock_jump_ns — resume came from save/restore; guest clock jumped",
    "vcpu_hotplug": "vcpu_index — a new vCPU came online while the VM runs",
    "vcpu_unplug": "vcpu_index — a hotplugged vCPU was torn down",
    "clock_drift": "offset_ns (signed) — new total guest clock offset vs host",
}

#: Timer modes a ``lapic_arm``/``lapic_fire`` detail may carry.
LAPIC_MODES = frozenset({"oneshot", "periodic", "tsc-deadline"})

#: Valid vCPU run states (mirrors repro.host.vcpu.VcpuState values).
VCPU_STATES = frozenset({"init", "guest", "exited", "halted", "ready", "suspended", "off"})


def _is_ns(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def _pair(detail: Any) -> Optional[tuple]:
    return detail if isinstance(detail, tuple) and len(detail) == 2 else None


def _validate_vmexit(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or not all(isinstance(x, str) for x in p):
        return f"expected (reason, tag) strings, got {d!r}"
    return None


def _validate_inject(d: Any) -> Optional[str]:
    if not isinstance(d, tuple) or not d:
        return f"expected non-empty vector tuple, got {d!r}"
    if not all(isinstance(v, int) for v in d):
        return f"vectors must be ints, got {d!r}"
    return None


def _validate_vcpu_state(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or not all(s in VCPU_STATES for s in p):
        return f"expected (old, new) state values, got {d!r}"
    return None


def _validate_abs_ns(d: Any) -> Optional[str]:
    return None if _is_ns(d) else f"expected absolute ns >= 0, got {d!r}"


def _validate_opt_ns(d: Any) -> Optional[str]:
    return None if d is None or _is_ns(d) else f"expected ns or None, got {d!r}"


def _validate_none(d: Any) -> Optional[str]:
    return None if d is None else f"expected no detail, got {d!r}"


def _validate_deadline_fire(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or not _is_ns(p[0]) or p[1] not in ("ptimer", "host"):
        return f"expected (deadline_ns, 'ptimer'|'host'), got {d!r}"
    return None


def _validate_lapic_arm(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or p[0] not in LAPIC_MODES or not _is_ns(p[1]):
        return f"expected (mode, expiry_ns), got {d!r}"
    return None


def _validate_lapic_fire(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or p[0] not in LAPIC_MODES or not isinstance(p[1], int):
        return f"expected (mode, vector), got {d!r}"
    return None


def _validate_sched_dispatch(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or not _is_ns(p[0]) or not _is_ns(p[1]):
        return f"expected (pcpu_index, stolen_ns) non-negative ints, got {d!r}"
    return None


def _validate_index(d: Any) -> Optional[str]:
    if not isinstance(d, int) or isinstance(d, bool) or d < 0:
        return f"expected non-negative index, got {d!r}"
    return None


def _validate_signed_ns(d: Any) -> Optional[str]:
    if not isinstance(d, int) or isinstance(d, bool):
        return f"expected signed ns int, got {d!r}"
    return None


def _validate_ctl_bit(d: Any) -> Optional[str]:
    if not isinstance(d, int) or isinstance(d, bool) or d not in (0, 1):
        return f"expected ENABLE bit 0|1, got {d!r}"
    return None


def _validate_msr_write(d: Any) -> Optional[str]:
    p = _pair(d)
    if p is None or not all(isinstance(x, int) and x >= 0 for x in p):
        return f"expected (index, value) non-negative ints, got {d!r}"
    return None


_VALIDATORS: dict[str, Callable[[Any], Optional[str]]] = {
    "vmexit": _validate_vmexit,
    "inject": _validate_inject,
    "vcpu_state": _validate_vcpu_state,
    "deadline_set": _validate_abs_ns,
    "deadline_clear": _validate_none,
    "deadline_fire": _validate_deadline_fire,
    "hostdl_arm": _validate_abs_ns,
    "hostdl_cancel": _validate_none,
    "hostdl_fire": _validate_none,
    "ptimer_start": _validate_abs_ns,
    "ptimer_stop": _validate_none,
    "ptimer_fire": _validate_none,
    "lapic_arm": _validate_lapic_arm,
    "lapic_disarm": _validate_none,
    "lapic_fire": _validate_lapic_fire,
    "sched_dispatch": _validate_sched_dispatch,
    "sched_preempt": _validate_abs_ns,
    "msr_write": _validate_msr_write,
    "cntv_cval": _validate_abs_ns,
    "cntv_ctl": _validate_ctl_bit,
    "idle_enter": _validate_none,
    "idle_exit": _validate_none,
    "tick_stop": _validate_none,
    "tick_restart": _validate_none,
    "tick_kept": _validate_none,
    "timer_program_req": _validate_opt_ns,
    "vm_suspend": _validate_none,
    "vm_resume": _validate_abs_ns,
    "vm_restore": _validate_abs_ns,
    "vcpu_hotplug": _validate_index,
    "vcpu_unplug": _validate_index,
    "clock_drift": _validate_signed_ns,
}


def validate_record(record: TraceRecord) -> Optional[str]:
    """Return an error string when ``record`` violates the schema."""
    validator = _VALIDATORS.get(record.kind)
    if validator is None:
        return f"unregistered event kind {record.kind!r}"
    err = validator(record.detail)
    return None if err is None else f"{record.kind}: {err}"


def vcpu_of(source: str) -> str:
    """Collapse sub-component sources to their owning vCPU source.

    >>> vcpu_of("vm0/vcpu1/vlapic")
    'vm0/vcpu1'
    """
    head, sep, _ = source.partition("/vlapic")
    return head if sep else source
