"""Differential fuzz harness for the timer path.

Each seed deterministically expands into one randomized scenario (a
workload, tick rate, noise/cpuidle knobs and a horizon, drawn from the
same :class:`~repro.sim.rng.RngStreams` machinery the simulator uses),
which then runs under **all three tick modes** — periodic, tickless,
paratick — in both a solo (1:1 pinned) and an overcommitted placement,
every run wrapped in the :class:`~repro.analysis.checkers.TickSanitizer`
and reconciled afterwards (:mod:`repro.analysis.reconcile`).

Two properties must hold for every seed:

1. **sanitizer-clean** — no run, in any mode or placement, violates a
   timer-path invariant or drifts from its own counters/ledger;
2. **differential** — tick management must not change the work done:
   every main task completes under every mode, and the useful
   (GUEST_USER) cycle totals agree across modes to within a small
   tolerance (preemption splits re-quantize ns↔cycles with round-up, so
   bit-equality is not expected; §4's claim is precisely that only the
   *overhead* differs).

Replay a failure with ``python -m repro fuzz --seed N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.checkers import TickSanitizer
from repro.analysis.reconcile import reconcile_run
from repro.config import MachineSpec, TickMode
from repro.errors import ReproError
from repro.experiments.runner import run_workload
from repro.host.perturb import Perturbation
from repro.metrics.perf import RunMetrics
from repro.sim.rng import RngStreams
from repro.sim.timebase import MSEC, USEC
from repro.workloads.base import Workload
from repro.workloads.micro import (
    IdlePeriodWorkload,
    IdleWorkload,
    PingPongWorkload,
    SyncStormWorkload,
)

#: Relative tolerance on useful cycles across tick modes; the absolute
#: slack covers tiny runs where one noise burst dominates the ratio.
USEFUL_REL_TOL = 0.02
USEFUL_ABS_SLACK = 200_000

#: Placement labels used in problem reports.
SOLO, OVERCOMMIT = "solo", "overcommit"


@dataclass(frozen=True)
class FuzzScenario:
    """One deterministic scenario, fully described by its seed."""

    seed: int
    kind: str
    params: tuple[tuple[str, int], ...]
    tick_hz: int
    noise: bool
    cpuidle: bool
    horizon_ns: int

    def param(self, name: str) -> int:
        return dict(self.params)[name]

    def make_workload(self) -> Workload:
        """A fresh workload instance (task generators are single-use)."""
        p = dict(self.params)
        if self.kind == "pingpong":
            return PingPongWorkload(
                rounds=p["rounds"], work_cycles=p["work_cycles"],
                same_vcpu=bool(p["same_vcpu"]),
            )
        if self.kind == "syncstorm":
            return SyncStormWorkload(
                threads=p["threads"], events_per_second=float(p["events_hz"]),
                duration_cycles=p["duration_cycles"],
            )
        if self.kind == "idleperiod":
            return IdlePeriodWorkload(
                p["idle_ns"], iterations=p["iterations"], work_cycles=p["work_cycles"],
            )
        if self.kind == "idle":
            return IdleWorkload(vcpus=p["vcpus"])
        raise ValueError(f"unknown scenario kind {self.kind!r}")

    def describe(self) -> str:
        knobs = ", ".join(f"{k}={v}" for k, v in self.params)
        return (
            f"seed {self.seed}: {self.kind}({knobs}) @ {self.tick_hz} Hz, "
            f"noise={'on' if self.noise else 'off'}, "
            f"cpuidle={'on' if self.cpuidle else 'off'}, "
            f"horizon={self.horizon_ns / MSEC:.0f}ms"
        )


def scenario_for_seed(seed: int) -> FuzzScenario:
    """Expand a seed into a scenario (pure function of the seed)."""
    rng = RngStreams(seed).stream("fuzz.scenario")

    def pick(lo: int, hi: int) -> int:
        return int(rng.integers(lo, hi + 1))

    kind = ("pingpong", "syncstorm", "idleperiod", "idle")[pick(0, 3)]
    if kind == "pingpong":
        params = (
            ("rounds", pick(50, 250)),
            ("work_cycles", pick(20_000, 120_000)),
            ("same_vcpu", pick(0, 1)),
        )
    elif kind == "syncstorm":
        params = (
            ("threads", pick(2, 4)),
            ("events_hz", pick(200, 1500)),
            ("duration_cycles", pick(20, 60) * 1_000_000),
        )
    elif kind == "idleperiod":
        params = (
            ("idle_ns", pick(50, 3000) * USEC),
            ("iterations", pick(20, 80)),
            ("work_cycles", pick(50_000, 200_000)),
        )
    else:  # idle
        params = (("vcpus", pick(1, 3)),)
    return FuzzScenario(
        seed=seed,
        kind=kind,
        params=params,
        tick_hz=(100, 250, 1000)[pick(0, 2)],
        noise=bool(pick(0, 1)),
        cpuidle=bool(pick(0, 1)),
        horizon_ns=pick(60, 200) * MSEC if kind == "idle" else 10_000 * MSEC,
    )


def perturbations_for_seed(seed: int, horizon_ns: int) -> tuple[Perturbation, ...]:
    """Expand a seed into a perturbation schedule (pure function).

    Drawn from the dedicated ``fuzz.perturb`` RNG stream, so turning
    perturbations on never changes which *scenario* a seed maps to —
    the schedule rides on top of the frozen scenario expansion.
    Times are absolute and front-loaded (0.2–5 ms) so even short runs
    meet at least the first disturbance; schedules are identical across
    tick modes and placements, keeping the differential property sound.
    """
    rng = RngStreams(seed).stream("fuzz.perturb")

    def pick(lo: int, hi: int) -> int:
        return int(rng.integers(lo, hi + 1))

    out: list[Perturbation] = []
    for _ in range(pick(1, 3)):
        kind = ("suspend", "restore", "hotplug", "drift")[pick(0, 3)]
        at_ns = pick(200, 5000) * USEC
        if kind in ("suspend", "restore"):
            out.append(Perturbation(kind, at_ns=at_ns, duration_ns=pick(100, 2000) * USEC))
        elif kind == "hotplug":
            out.append(Perturbation("hotplug", at_ns=at_ns, duration_ns=pick(0, 3000) * USEC))
        else:
            steps = pick(1, 4)
            sign = 1 if pick(0, 1) else -1
            out.append(Perturbation(
                "drift", at_ns=at_ns, count=steps,
                period_ns=pick(500, 2000) * USEC if steps > 1 else 0,
                step_ns=sign * pick(1, 500) * USEC,
            ))
    # Clamp every occurrence inside the scenario horizon: events past
    # the stop instant would never fire and add nothing.
    return tuple(
        p for p in out
        if p.at_ns + p.duration_ns + (p.count - 1) * p.period_ns < horizon_ns
    )


def placement_for(nvcpus: int, placement: str) -> tuple[MachineSpec, tuple[int, ...]]:
    """Machine + pinning for a placement. Overcommit squeezes the vCPUs
    onto one fewer physical CPU, exercising the READY/preempt paths."""
    if placement == OVERCOMMIT:
        pcpus = max(1, nvcpus - 1)
    else:
        pcpus = nvcpus
    spec = MachineSpec(sockets=1, cpus_per_socket=pcpus)
    return spec, tuple(i % pcpus for i in range(nvcpus))


def run_scenario(
    scenario: FuzzScenario,
    mode: TickMode,
    *,
    placement: str = SOLO,
    perturbations: tuple[Perturbation, ...] = (),
    arch: str = "x86",
) -> tuple[Optional[RunMetrics], TickSanitizer, list[str]]:
    """One sanitized run; returns (metrics, sanitizer, problems).

    Alongside the sanitizer, a :class:`~repro.obs.steal.StealTracker`
    rides the same event stream (via a tee) so the reconcile battery
    can cross-check trace-derived steal against the runtime counters
    and the pCPU busy timeline — the overcommit placements are exactly
    where steal accounting is exercised.
    """
    from repro.obs.steal import StealTracker
    from repro.sim.trace import TeeTracer

    workload = scenario.make_workload()
    nvcpus = workload.default_vcpus()
    mspec, pinned = placement_for(nvcpus, placement)
    sanitizer = TickSanitizer(mode=mode)
    steal = StealTracker()
    internals: dict = {}

    def inspect(sim, machine, hv, vm) -> None:
        internals["machine"] = machine
        internals["now"] = sim.now
        internals["hv"] = hv

    try:
        metrics = run_workload(
            workload,
            tick_mode=mode,
            machine_spec=mspec,
            pinned_cpus=pinned,
            tick_hz=scenario.tick_hz,
            seed=scenario.seed,
            noise=scenario.noise,
            cpuidle=scenario.cpuidle,
            horizon_ns=scenario.horizon_ns,
            perturbations=perturbations,
            arch=arch,
            tracer=TeeTracer(sanitizer, steal),
            inspect=inspect,
            label=f"fuzz{scenario.seed}/{scenario.kind}/{mode.value}/{placement}",
        )
    except ReproError as exc:
        sanitizer.finish()
        return None, sanitizer, [f"run failed: {type(exc).__name__}: {exc}"]
    problems = [str(v) for v in sanitizer.finish()]
    problems += reconcile_run(
        sanitizer, metrics,
        freq_hz=mspec.freq_hz,
        machine=internals.get("machine"),
        now_ns=internals.get("now"),
        steal_tracker=steal,
        hv=internals.get("hv"),
    )
    return metrics, sanitizer, problems


def differential_problems(per_mode: dict[TickMode, RunMetrics]) -> list[str]:
    """Cross-mode comparison: tick management must not change the work."""
    if len(per_mode) < len(TickMode):
        return []  # some run already failed; reported individually
    ref = per_mode[TickMode.TICKLESS]
    out: list[str] = []
    allowed = max(int(ref.useful_cycles * USEFUL_REL_TOL), USEFUL_ABS_SLACK)
    for mode, metrics in per_mode.items():
        if mode is TickMode.TICKLESS:
            continue
        delta = abs(metrics.useful_cycles - ref.useful_cycles)
        if delta > allowed:
            out.append(
                f"useful cycles diverge: {mode.value} did {metrics.useful_cycles} "
                f"vs tickless {ref.useful_cycles} (|delta| {delta} > {allowed})"
            )
    return out


#: Architectures the cross-arch sweep compares (x86 is the reference).
ARCH_SWEEP = ("x86", "arm")


def arch_differential_problems(
    per_arch: dict[str, RunMetrics], mode: TickMode
) -> list[str]:
    """Cross-architecture comparison for one tick mode.

    The timer architecture changes the *overhead* (exit counts, handler
    costs) but must not change the *work*: useful cycles agree across
    backends to the same tolerance the cross-mode check uses, and each
    backend stays inside its own exit taxonomy (no MSR-write exits on
    ARM, no sysreg traps on x86).
    """
    from repro.host.exitreasons import ExitReason

    if len(per_arch) < len(ARCH_SWEEP):
        return []  # some run already failed; reported individually
    ref = per_arch["x86"]
    out: list[str] = []
    allowed = max(int(ref.useful_cycles * USEFUL_REL_TOL), USEFUL_ABS_SLACK)
    for arch, metrics in per_arch.items():
        if arch != "x86":
            delta = abs(metrics.useful_cycles - ref.useful_cycles)
            if delta > allowed:
                out.append(
                    f"useful cycles diverge: {arch} did {metrics.useful_cycles} "
                    f"vs x86 {ref.useful_cycles} (|delta| {delta} > {allowed})"
                )
        foreign = (
            (ExitReason.SYSREG_TRAP, ExitReason.VTIMER_IRQ)
            if arch == "x86"
            else (ExitReason.MSR_WRITE, ExitReason.PREEMPTION_TIMER)
        )
        for reason in foreign:
            n = metrics.exits.by_reason(reason)
            if n:
                out.append(
                    f"{arch}/{mode.value}: {n} {reason.value} exit(s) — "
                    f"foreign to this architecture's taxonomy"
                )
    return out


def fuzz_seed_arch(
    seed: int,
    *,
    placements: tuple[str, ...] = (SOLO,),
) -> "FuzzReport":
    """Run one seed's scenario on every (arch, mode) cell and diff.

    The arch sweep keeps the placement list small by default (solo):
    its job is comparing timer backends, not re-testing overcommit —
    the plain :func:`fuzz_seed` already covers that per arch.
    """
    scenario = scenario_for_seed(seed)
    problems: list[str] = []
    runs = 0
    events = 0
    for placement in placements:
        for mode in TickMode:
            per_arch: dict[str, RunMetrics] = {}
            for arch in ARCH_SWEEP:
                metrics, sanitizer, probs = run_scenario(
                    scenario, mode, placement=placement, arch=arch
                )
                runs += 1
                events += sanitizer.events
                problems += [
                    f"[{arch}/{mode.value}/{placement}] {p}" for p in probs
                ]
                if metrics is not None:
                    per_arch[arch] = metrics
            problems += [
                f"[archdiff/{mode.value}/{placement}] {p}"
                for p in arch_differential_problems(per_arch, mode)
            ]
    return FuzzReport(seed=seed, scenario=scenario, problems=problems,
                      runs=runs, events=events)


@dataclass
class FuzzReport:
    """Everything learned from fuzzing one seed."""

    seed: int
    scenario: FuzzScenario
    problems: list[str]
    runs: int
    events: int

    @property
    def ok(self) -> bool:
        return not self.problems


def fuzz_seed(
    seed: int,
    *,
    placements: tuple[str, ...] = (SOLO, OVERCOMMIT),
    perturb: bool = False,
) -> FuzzReport:
    """Run one seed's scenario under every (mode, placement) cell.

    With ``perturb=True`` the seed additionally expands (via
    :func:`perturbations_for_seed`) into a perturbation schedule applied
    identically to every cell — the sanitizer's suspend/restore/hotplug
    checkers then run against real disturbances, and the differential
    property must hold *through* them.
    """
    scenario = scenario_for_seed(seed)
    perturbations = (
        perturbations_for_seed(seed, scenario.horizon_ns) if perturb else ()
    )
    problems: list[str] = []
    runs = 0
    events = 0
    for placement in placements:
        per_mode: dict[TickMode, RunMetrics] = {}
        for mode in TickMode:
            metrics, sanitizer, probs = run_scenario(
                scenario, mode, placement=placement, perturbations=perturbations
            )
            runs += 1
            events += sanitizer.events
            problems += [f"[{mode.value}/{placement}] {p}" for p in probs]
            if metrics is not None:
                per_mode[mode] = metrics
        problems += [f"[diff/{placement}] {p}" for p in differential_problems(per_mode)]
    return FuzzReport(seed=seed, scenario=scenario, problems=problems,
                      runs=runs, events=events)


def fuzz_many(
    seeds,
    *,
    placements: tuple[str, ...] = (SOLO, OVERCOMMIT),
    perturb: bool = False,
    progress=None,
) -> list[FuzzReport]:
    """Fuzz a seed range; ``progress(report)`` is called per seed."""
    reports = []
    for seed in seeds:
        report = fuzz_seed(int(seed), placements=placements, perturb=perturb)
        reports.append(report)
        if progress is not None:
            progress(report)
    return reports
