"""Streaming invariant checkers for the timer path.

Each :class:`Checker` consumes the structured trace online (no record
retention) and accumulates :class:`Violation`\\ s; :class:`TickSanitizer`
is the :class:`~repro.sim.trace.Tracer` that fans every record out to a
checker battery, so *any* run — test, benchmark, fuzz sweep — becomes a
self-checking artifact simply by passing ``tracer=TickSanitizer(...)``.

The battery encodes the legality rules behind the paper's Fig. 1/Fig. 3
state machines and KVM's preemption-timer optimization (§3):

* arm/cancel/fire pairing for LAPIC timers, the VMX preemption timer,
  the guest TSC deadline, the host stand-in timer and the ARM generic
  timer (trapped CNTV write -> deadline -> vtimer IRQ);
* the per-vCPU run-state machine of ``repro.host.kvm._VcpuExec``;
* tick-sched mode transitions (stop/restart alternation, and that only
  the tickless policy ever performs them);
* vector-235 legality (only paratick guests may receive virtual ticks);
* the event schema itself (:mod:`repro.analysis.events`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.analysis import events as ev
from repro.config import TickMode
from repro.hw.interrupts import Vector
from repro.sim.trace import TraceRecord, Tracer


@dataclass(frozen=True)
class Violation:
    """One invariant breach, attributable to a checker and a source."""

    time: int
    checker: str
    source: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:>12}ns] {self.checker}: {self.source}: {self.message}"


class Checker:
    """Base streaming checker. Subclasses implement :meth:`on_event`."""

    name = "abstract"

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        #: Records this checker actually inspected (for battery stats).
        self.seen = 0

    def report(self, record: TraceRecord, message: str) -> None:
        self.violations.append(Violation(record.time, self.name, record.source, message))

    def on_event(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """End-of-run hook for invariants that need the full stream."""


class SchemaChecker(Checker):
    """Every record must carry a registered kind and a well-formed detail."""

    name = "schema"

    def on_event(self, record: TraceRecord) -> None:
        self.seen += 1
        err = ev.validate_record(record)
        if err is not None:
            self.report(record, err)


#: Legal _VcpuExec transitions (besides ``any -> off``, shutdown).
_VCPU_TRANSITIONS = frozenset(
    {
        ("init", "exited"),    # start()
        ("exited", "guest"),   # VM entry completed
        ("guest", "exited"),   # VM exit
        ("exited", "halted"),  # HLT block
        ("halted", "exited"),  # wake
        ("exited", "ready"),   # CPU busy: queued (overcommit)
        ("ready", "exited"),   # dispatched
        # VM-wide suspend freezes a vCPU from any live state and thaws
        # it back to runnable (exited) or blocked (halted).
        ("guest", "suspended"),
        ("exited", "suspended"),
        ("halted", "suspended"),
        ("ready", "suspended"),
        ("suspended", "exited"),
        ("suspended", "halted"),
    }
)


class VcpuStateChecker(Checker):
    """The vCPU run-state machine only takes legal steps."""

    name = "vcpu-state"

    def __init__(self) -> None:
        super().__init__()
        self._state: dict[str, str] = {}

    def on_event(self, record: TraceRecord) -> None:
        if record.kind == "vcpu_hotplug" and ev.validate_record(record) is None:
            # A hotplug (or re-plug of a previously unplugged index)
            # installs a fresh vCPU object: forget any tracked state so
            # its init -> exited boot is not read as "after shutdown".
            self._state.pop(f"{record.source}/vcpu{record.detail}", None)
            return
        if record.kind != "vcpu_state" or ev.validate_record(record) is not None:
            return
        self.seen += 1
        old, new = record.detail
        known = self._state.get(record.source)
        if known is not None and known != old:
            self.report(record, f"transition from {old!r} but tracked state is {known!r}")
        if new != "off" and (old, new) not in _VCPU_TRANSITIONS:
            self.report(record, f"illegal transition {old!r} -> {new!r}")
        if known == "off":
            self.report(record, f"transition {old!r} -> {new!r} after shutdown")
        self._state[record.source] = new


class PreemptionTimerChecker(Checker):
    """VMX preemption timer start/stop/fire pairing (§3).

    The countdown runs only between a ``ptimer_start`` and the matching
    ``ptimer_stop``/``ptimer_fire``; it must fire at or after the
    deadline it was started with, and only while the owning vCPU is in
    guest mode (the hardware counts down only in non-root mode).
    """

    name = "preemption-timer"

    def __init__(self) -> None:
        super().__init__()
        self._running: dict[str, int] = {}  # source -> started deadline
        self._vcpu_state: dict[str, str] = {}

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == "vcpu_state" and ev.validate_record(record) is None:
            self._vcpu_state[record.source] = record.detail[1]
            return
        if not kind.startswith("ptimer_") or ev.validate_record(record) is not None:
            return
        self.seen += 1
        src = record.source
        if kind == "ptimer_start":
            if src in self._running:
                self.report(record, "started while already counting down")
            self._running[src] = record.detail
        elif kind == "ptimer_stop":
            if src not in self._running:
                self.report(record, "stopped but was not counting down")
            self._running.pop(src, None)
        elif kind == "ptimer_fire":
            deadline = self._running.pop(src, None)
            if deadline is None:
                self.report(record, "fired without a start")
            elif record.time < deadline:
                self.report(record, f"fired at {record.time} before deadline {deadline}")
            if self._vcpu_state.get(ev.vcpu_of(src)) not in (None, "guest"):
                self.report(record, "fired while vCPU not in guest mode")


class LapicChecker(Checker):
    """LAPIC arm/disarm/fire pairing, for the hardware model and KVM's
    periodic vLAPIC emulation alike.

    A fire requires a pending arm; a one-shot or deadline arm is
    consumed by its fire while a periodic arm survives (the hardware
    re-fires without reprogramming — the §3.1 point); re-arming without
    an intervening disarm/fire never happens in the model (the arm
    paths cancel first), so the checker flags it.
    """

    name = "lapic"

    def __init__(self) -> None:
        super().__init__()
        self._armed: dict[str, tuple[str, int]] = {}  # source -> (mode, expiry)

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if not kind.startswith("lapic_") or ev.validate_record(record) is not None:
            return
        self.seen += 1
        src = record.source
        if kind == "lapic_arm":
            if src in self._armed:
                self.report(record, "double arm without disarm/fire")
            self._armed[src] = record.detail
        elif kind == "lapic_disarm":
            self._armed.pop(src, None)  # disarming an idle timer is legal
        elif kind == "lapic_fire":
            armed = self._armed.get(src)
            if armed is None:
                self.report(record, "fired while not armed")
                return
            mode, expiry = armed
            if record.detail[0] != mode:
                self.report(record, f"fired in mode {record.detail[0]!r} but armed as {mode!r}")
            if record.time < expiry:
                self.report(record, f"fired at {record.time} before expiry {expiry}")
            if mode != "periodic":
                del self._armed[src]


class GuestDeadlineChecker(Checker):
    """Guest TSC-deadline lifecycle across KVM's two delivery paths.

    ``deadline_set`` arms (re-arming is a legal reprogram), and a
    ``deadline_fire`` — via the preemption timer in guest mode or the
    host stand-in while blocked — requires an armed deadline, must not
    fire early, and consumes it. The host stand-in timer itself must
    pair its arms with a cancel or a fire.
    """

    name = "guest-deadline"

    def __init__(self) -> None:
        super().__init__()
        self._deadline: dict[str, int] = {}
        self._host_armed: dict[str, int] = {}

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind not in (
            "deadline_set", "deadline_clear", "deadline_fire",
            "hostdl_arm", "hostdl_cancel", "hostdl_fire",
        ) or ev.validate_record(record) is not None:
            return
        self.seen += 1
        src = record.source
        if kind == "deadline_set":
            self._deadline[src] = record.detail
        elif kind == "deadline_clear":
            self._deadline.pop(src, None)
        elif kind == "deadline_fire":
            armed = self._deadline.pop(src, None)
            fired, _via = record.detail
            if armed is None:
                self.report(record, "deadline fired but none was armed")
            else:
                if fired != armed:
                    self.report(record, f"fired deadline {fired} but {armed} was armed")
                if record.time < armed:
                    self.report(record, f"fired at {record.time} before deadline {armed}")
        elif kind == "hostdl_arm":
            if src in self._host_armed:
                self.report(record, "host stand-in armed twice")
            self._host_armed[src] = record.detail
        elif kind == "hostdl_cancel":
            if src not in self._host_armed:
                self.report(record, "host stand-in cancelled but not armed")
            self._host_armed.pop(src, None)
        elif kind == "hostdl_fire":
            when = self._host_armed.pop(src, None)
            if when is None:
                self.report(record, "host stand-in fired without an arm")
            elif record.time < when:
                self.report(record, f"host stand-in fired at {record.time}, armed for {when}")


class CntvChecker(Checker):
    """ARM generic-timer trap -> deadline pairing (:mod:`repro.hw.arm`).

    KVM/arm64's vtimer emulation applies every trapped CNTV_CVAL /
    CNTV_CTL write synchronously, so for any source that traps CNTV
    sysregs (the checker is arch-aware: it engages only once a source
    emits a ``cntv_*`` record, staying inert on x86 traces):

    * a ``cntv_cval`` write while ENABLE is set must be applied as a
      ``deadline_set`` of the same host-translated expiry at the same
      instant — the single-trap steady-state re-arm;
    * ``cntv_ctl`` ENABLE=1 with a latched CVAL arms the same way, and
      setting ENABLE while already enabled never happens (Linux arm64
      leaves ENABLE set across fires and re-arms with a lone CVAL
      write);
    * ``cntv_ctl`` ENABLE=0 must be applied as a ``deadline_clear`` at
      the same instant (disarming an idle vtimer is legal);
    * ``deadline_set``/``deadline_clear`` on a CNTV source outside a
      trap application is impossible — nothing else programs the
      vtimer;
    * a ``vtimer_irq`` exit delivering the guest's tick requires an
      enabled vtimer whose latched expiry has passed (ENABLE survives
      the fire; the stale CVAL is overwritten by the next re-arm).
    """

    name = "cntv"

    def __init__(self) -> None:
        super().__init__()
        self._enabled: dict[str, bool] = {}
        self._cval: dict[str, Optional[int]] = {}
        #: source -> (expected kind, expected expiry or None, trap time)
        self._pending: dict[str, tuple[str, Optional[int], int]] = {}

    def _expect(self, record: TraceRecord, kind: str, detail: Optional[int]) -> None:
        stale = self._pending.get(record.source)
        if stale is not None:
            self.report(
                record, f"trapped write at {stale[2]} never applied as {stale[0]}"
            )
        self._pending[record.source] = (kind, detail, record.time)

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        src = record.source
        if kind in ("cntv_cval", "cntv_ctl"):
            if ev.validate_record(record) is not None:
                return
            self.seen += 1
            if kind == "cntv_cval":
                self._cval[src] = record.detail
                if self._enabled.get(src, False):
                    self._expect(record, "deadline_set", record.detail)
                else:
                    self._enabled.setdefault(src, False)
            elif record.detail:
                if self._enabled.get(src, False):
                    self.report(
                        record,
                        "ENABLE set while already enabled "
                        "(steady-state re-arm is a lone CVAL write)",
                    )
                self._enabled[src] = True
                cval = self._cval.get(src)
                if cval is not None:
                    self._expect(record, "deadline_set", cval)
            else:
                self._enabled[src] = False
                self._cval[src] = None
                self._expect(record, "deadline_clear", None)
            return
        if kind in ("deadline_set", "deadline_clear"):
            if src not in self._enabled or ev.validate_record(record) is not None:
                return
            self.seen += 1
            pending = self._pending.pop(src, None)
            if pending is None:
                self.report(record, f"{kind} on a CNTV source without a trapped write")
                return
            want_kind, want_expiry, when = pending
            if kind != want_kind:
                self.report(record, f"trap applied as {kind}, expected {want_kind}")
            elif record.time != when:
                self.report(record, f"{kind} at {record.time}, but trap was at {when}")
            elif want_expiry is not None and record.detail != want_expiry:
                self.report(
                    record,
                    f"{kind} expiry {record.detail} != trapped CVAL expiry {want_expiry}",
                )
            return
        if (
            kind == "vmexit"
            and isinstance(record.detail, tuple)
            and len(record.detail) == 2
            and record.detail[0] == "vtimer_irq"
            and record.detail[1] == "timer_guest_tick"
            and src in self._enabled
        ):
            self.seen += 1
            if not self._enabled[src]:
                self.report(record, "vtimer IRQ delivered while CNTV_CTL.ENABLE clear")
                return
            cval = self._cval.get(src)
            if cval is None:
                self.report(record, "vtimer IRQ delivered with no CVAL latched")
            elif record.time < cval:
                self.report(
                    record, f"vtimer IRQ at {record.time} before CVAL expiry {cval}"
                )

    def finish(self) -> None:
        for src, (kind, _detail, when) in sorted(self._pending.items()):
            self.violations.append(
                Violation(
                    when,
                    self.name,
                    src,
                    f"trapped write at {when} never applied as {kind}",
                )
            )


class TickSchedChecker(Checker):
    """Tick-sched legality per Fig. 1 / Fig. 3.

    Idle enters/exits alternate (an exit needs a preceding enter;
    re-entering idle without an exit is how the idle loop re-marks);
    ``tick_stop``/``tick_restart`` toggle a per-vCPU flag and never
    repeat; and only the tickless policy performs them — a periodic or
    paratick guest emitting a tick transition is a policy bug.
    """

    name = "tick-sched"

    def __init__(self, mode: Optional[TickMode] = None) -> None:
        super().__init__()
        self.mode = mode
        self._idle_depth: dict[str, int] = {}
        self._stopped: dict[str, bool] = {}

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind not in ("idle_enter", "idle_exit", "tick_stop", "tick_restart", "tick_kept"):
            return
        self.seen += 1
        src = record.source
        if kind == "idle_enter":
            self._idle_depth[src] = self._idle_depth.get(src, 0) + 1
        elif kind == "idle_exit":
            if self._idle_depth.get(src, 0) < 1:
                self.report(record, "idle_exit without idle_enter")
            self._idle_depth[src] = 0
        elif kind in ("tick_stop", "tick_restart", "tick_kept"):
            if self.mode is not None and self.mode is not TickMode.TICKLESS:
                self.report(record, f"{kind} under {self.mode.value} policy")
            stopped = self._stopped.get(src, False)
            if kind == "tick_stop":
                if stopped:
                    self.report(record, "tick stopped twice")
                self._stopped[src] = True
            elif kind == "tick_restart":
                if not stopped:
                    self.report(record, "tick restarted but was not stopped")
                self._stopped[src] = False
            elif kind == "tick_kept" and stopped:
                self.report(record, "tick_kept while tick is stopped")


class InjectChecker(Checker):
    """Injection legality: virtual ticks (vector 235) reach only
    paratick guests (§5.2.1), and every injected vector is one the
    hypervisor can legally deliver."""

    name = "inject"

    def __init__(self, mode: Optional[TickMode] = None) -> None:
        super().__init__()
        self.mode = mode
        self._legal = frozenset(int(v) for v in Vector)

    def on_event(self, record: TraceRecord) -> None:
        if record.kind != "inject" or ev.validate_record(record) is not None:
            return
        self.seen += 1
        for v in record.detail:
            if v not in self._legal:
                self.report(record, f"unknown vector {v} injected")
            if (
                v == int(Vector.PARATICK_VIRTUAL_TICK)
                and self.mode is not None
                and self.mode is not TickMode.PARATICK
            ):
                self.report(record, f"vector 235 injected into a {self.mode.value} guest")


#: Kinds that represent a timer firing or CPU activity attributable to a
#: vCPU — none may occur for a frozen VM's vCPUs (docs/scenarios.md).
_SUSPEND_FORBIDDEN = frozenset(
    {
        "lapic_fire",
        "ptimer_fire",
        "hostdl_fire",
        "deadline_fire",
        "inject",
        "vmexit",
        "sched_dispatch",
    }
)


def _vm_of(source: str) -> str:
    """Owning VM name of any per-vCPU source (``vm0/vcpu1/vlapic`` -> ``vm0``)."""
    head, _, _ = source.partition("/")
    return head


class SuspendSpanChecker(Checker):
    """No tick fires — no timer expiry, exit or dispatch at all — inside
    a suspended span.

    ``vm_suspend``/``vm_resume`` bracket a span during which every vCPU
    of that VM is frozen; host-side exit work already in flight may
    still retire (emitting e.g. ``deadline_set``), but nothing may fire,
    exit or be injected on a frozen vCPU. Also enforces suspend/resume
    pairing per VM. A span left open at end of run is legal (the run
    horizon can land mid-span).
    """

    name = "suspend-span"

    def __init__(self) -> None:
        super().__init__()
        self._suspended: dict[str, int] = {}  # vm name -> suspend time

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == "vm_suspend":
            self.seen += 1
            if record.source in self._suspended:
                self.report(record, "suspended while already suspended")
            self._suspended[record.source] = record.time
            return
        if kind in ("vm_resume", "vm_restore"):
            self.seen += 1
            if kind == "vm_resume" and record.source not in self._suspended:
                self.report(record, "resumed but was not suspended")
            if kind == "vm_resume":
                self._suspended.pop(record.source, None)
            return
        if kind not in _SUSPEND_FORBIDDEN or not self._suspended:
            return
        self.seen += 1
        vm = _vm_of(record.source)
        since = self._suspended.get(vm)
        # The suspend edge itself may process in-flight same-instant
        # events queued before the freeze; strictly-later activity is
        # what a frozen VM can never produce.
        if since is not None and record.time > since:
            self.report(record, f"{kind} inside suspended span (since {since})")


class RestoreMonotonicChecker(Checker):
    """Post-restore deadlines re-arm monotonically.

    After a ``vm_restore`` (resume with a guest clock jump), every
    timer armed for that VM — guest TSC deadline, host stand-in, VMX
    preemption timer, LAPIC — must carry an expiry at or after the
    restore instant. A stale pre-restore deadline surviving the jump
    would fire in the guest's past.
    """

    name = "restore-rearm"

    def __init__(self) -> None:
        super().__init__()
        self._restored_at: dict[str, int] = {}  # vm name -> last restore time

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == "vm_restore":
            self.seen += 1
            self._restored_at[record.source] = record.time
            return
        if kind not in (
            "deadline_set", "hostdl_arm", "ptimer_start", "lapic_arm", "cntv_cval",
        ):
            return
        if ev.validate_record(record) is not None:
            return
        since = self._restored_at.get(_vm_of(record.source))
        if since is None:
            return
        self.seen += 1
        expiry = record.detail[1] if kind == "lapic_arm" else record.detail
        if expiry < since:
            self.report(
                record,
                f"{kind} expiry {expiry} predates restore at {since} (stale deadline)",
            )


class HotplugChecker(Checker):
    """Hotplugged vCPUs enter the run-state machine cleanly.

    ``vcpu_hotplug`` must name an index that is not already online, and
    the new vCPU's first run-state transition must be the boot step
    ``init -> exited``. ``vcpu_unplug`` must name an online,
    previously-hotplugged vCPU; after it, that vCPU may only step to
    ``off``.
    """

    name = "hotplug"

    def __init__(self) -> None:
        super().__init__()
        self._online: set[str] = set()        # vcpu sources seen alive
        self._awaiting_boot: set[str] = set() # hotplugged, no state event yet
        self._unplugged: set[str] = set()

    def on_event(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind in ("vcpu_hotplug", "vcpu_unplug"):
            if ev.validate_record(record) is not None:
                return
            self.seen += 1
            src = f"{record.source}/vcpu{record.detail}"
            if kind == "vcpu_hotplug":
                if src in self._online:
                    self.report(record, f"hotplug of already-online vcpu{record.detail}")
                self._online.add(src)
                self._awaiting_boot.add(src)
                self._unplugged.discard(src)
            else:
                if src not in self._online:
                    self.report(record, f"unplug of absent vcpu{record.detail}")
                self._online.discard(src)
                self._awaiting_boot.discard(src)
                self._unplugged.add(src)
            return
        if kind != "vcpu_state" or ev.validate_record(record) is not None:
            return
        src = record.source
        old, new = record.detail
        if src in self._awaiting_boot:
            self.seen += 1
            self._awaiting_boot.discard(src)
            if (old, new) != ("init", "exited"):
                self.report(
                    record,
                    f"hotplugged vCPU entered as {old!r} -> {new!r}, expected init -> exited",
                )
        elif src in self._unplugged:
            self.seen += 1
            if new != "off":
                self.report(record, f"state change {old!r} -> {new!r} after unplug")
        else:
            self._online.add(src)


def default_checkers(mode: Optional[TickMode] = None) -> list[Checker]:
    """The full battery; ``mode`` enables mode-specific invariants."""
    return [
        SchemaChecker(),
        VcpuStateChecker(),
        PreemptionTimerChecker(),
        LapicChecker(),
        GuestDeadlineChecker(),
        CntvChecker(),
        TickSchedChecker(mode),
        InjectChecker(mode),
        SuspendSpanChecker(),
        RestoreMonotonicChecker(),
        HotplugChecker(),
    ]


class TickSanitizer(Tracer):
    """A tracer that runs the checker battery on every record, online.

    Attach directly (``run_workload(..., tracer=TickSanitizer())``) or
    alongside another tracer through :class:`~repro.sim.trace.TeeTracer`.
    It also tallies ``vmexit`` records per (reason, tag) so the exit
    counters can be reconciled afterwards
    (:func:`repro.analysis.reconcile.reconcile_exits`).
    """

    enabled = True

    def __init__(self, checkers: Optional[Iterable[Checker]] = None,
                 mode: Optional[TickMode] = None):
        self.checkers = list(checkers) if checkers is not None else default_checkers(mode)
        self.events = 0
        #: (reason_value, tag_value) -> traced exit count.
        self.exit_tally: dict[tuple[str, str], int] = {}
        self._finished = False

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        record = TraceRecord(time, source, kind, detail)
        self.events += 1
        if kind == "vmexit" and isinstance(detail, tuple) and len(detail) == 2:
            self.exit_tally[detail] = self.exit_tally.get(detail, 0) + 1
        for checker in self.checkers:
            checker.on_event(record)

    def feed(self, records: Iterable[TraceRecord]) -> "TickSanitizer":
        """Replay an existing record stream (offline checking)."""
        for r in records:
            self.emit(r.time, r.source, r.kind, r.detail)
        return self

    def finish(self) -> list[Violation]:
        """Run end-of-stream checks once and return all violations."""
        if not self._finished:
            self._finished = True
            for checker in self.checkers:
                checker.finish()
        return self.violations

    @property
    def violations(self) -> list[Violation]:
        out: list[Violation] = []
        for checker in self.checkers:
            out.extend(checker.violations)
        out.sort(key=lambda v: (v.time, v.checker))
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """One line per checker: records inspected and violations found."""
        parts = [f"{c.name}: {c.seen} seen, {len(c.violations)} bad" for c in self.checkers]
        return f"{self.events} events | " + "; ".join(parts)
