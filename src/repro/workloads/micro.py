"""Microbenchmark workloads, including §3.3's W1–W4.

* :class:`IdleWorkload` — an idle VM (W1/W2): nothing but the kernel's
  own behaviour. Runs for a fixed duration instead of to completion.
* :class:`SyncStormWorkload` — N threads synchronizing through blocking
  primitives at a configurable VM-wide rate (W3/W4).
* :class:`PingPongWorkload` — two tasks alternating through condition
  variables; the minimal blocking-sync stressor used by tests.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.sync import Barrier, CondVar
from repro.guest.task import BarrierWait, CondSignal, CondWait, Run, Sleep, Task
from repro.workloads.base import Workload
from repro.workloads.parsec import NOMINAL_HZ


class IdleWorkload(Workload):
    """A VM with no application tasks (W1; four of these make W2)."""

    name = "micro.idle"

    #: Idle workloads never "finish": the runner uses the horizon.
    runs_to_horizon = True

    def __init__(self, vcpus: int = 16):
        if vcpus <= 0:
            raise WorkloadError("vcpus must be positive")
        self.vcpus = vcpus
        self.name = f"micro.idle.{vcpus}"

    def default_vcpus(self) -> int:
        return self.vcpus

    def build(self, kernel: GuestKernel) -> list[Task]:
        return []


class SyncStormWorkload(Workload):
    """W3: threads synchronizing at a fixed VM-wide rate.

    §3.3: "a workload using 16 threads, synchronizing 1000 times per
    second through blocking synchronization". Each barrier episode
    blocks every thread but the last arriver, so the VM-wide blocking
    rate is ``barrier_hz * threads`` block events/s; we pick barrier_hz
    so the *transition* rate matches the requested events/s.
    """

    def __init__(self, *, threads: int = 16, events_per_second: float = 1000.0, duration_cycles: int = 700_000_000):
        if threads < 2:
            raise WorkloadError("sync storm needs at least two threads")
        if events_per_second <= 0:
            raise WorkloadError("event rate must be positive")
        self.threads = threads
        self.events_per_second = events_per_second
        self.duration_cycles = duration_cycles
        self.name = f"micro.syncstorm.{threads}t"

    def default_vcpus(self) -> int:
        return self.threads

    def build(self, kernel: GuestKernel) -> list[Task]:
        barrier_hz = self.events_per_second / self.threads
        step_cycles = int(NOMINAL_HZ / barrier_hz)
        steps = max(1, self.duration_cycles // step_cycles)
        barrier = Barrier(self.threads, name=f"{self.name}.bar")
        rng = kernel.sim.rng

        def body(i: int) -> Generator:
            for step in range(steps):
                work = max(1000, int(rng.stream(f"{self.name}.w{i}").normal(step_cycles, 0.15 * step_cycles)))
                yield Run(work)
                yield BarrierWait(barrier)

        tasks = [Task(f"{self.name}.t{i}", body(i), affinity=i) for i in range(self.threads)]
        for t in tasks:
            kernel.add_task(t)
        return tasks


class IdlePeriodWorkload(Workload):
    """Alternates fixed compute with idle periods of a chosen length.

    The knob behind §3.3's T_idle analysis: sweeping ``idle_ns`` maps
    out where the periodic/tickless crossover falls. Sleeps are precise
    (nanosleep/hrtimer) so the idle-period length is exact in hrtimer
    modes; classic periodic kernels degrade to jiffy resolution, which
    is itself part of the phenomenon under study.
    """

    def __init__(self, idle_ns: int, *, iterations: int = 400, work_cycles: int = 100_000):
        if idle_ns <= 0 or iterations <= 0 or work_cycles < 0:
            raise WorkloadError("idle period and iterations must be positive")
        self.idle_ns = idle_ns
        self.iterations = iterations
        self.work_cycles = work_cycles
        self.name = f"micro.idleperiod.{idle_ns}"

    def default_vcpus(self) -> int:
        return 1

    def build(self, kernel: GuestKernel) -> list[Task]:
        def body() -> Generator:
            for _ in range(self.iterations):
                yield Run(self.work_cycles)
                yield Sleep(self.idle_ns, precise=True)

        t = Task(self.name, body(), affinity=0)
        kernel.add_task(t)
        return [t]


class PingPongWorkload(Workload):
    """Two tasks alternating via condition variables (tests/examples)."""

    def __init__(self, *, rounds: int = 1000, work_cycles: int = 50_000, same_vcpu: bool = False):
        if rounds <= 0:
            raise WorkloadError("rounds must be positive")
        self.rounds = rounds
        self.work_cycles = work_cycles
        self.same_vcpu = same_vcpu
        self.name = "micro.pingpong"

    def default_vcpus(self) -> int:
        return 1 if self.same_vcpu else 2

    def build(self, kernel: GuestKernel) -> list[Task]:
        ping, pong = CondVar("ping"), CondVar("pong")

        def side_a() -> Generator:
            for _ in range(self.rounds):
                yield Run(self.work_cycles)
                yield CondSignal(pong, 1)
                yield CondWait(ping)
            yield CondSignal(pong, 1)  # release B from its final wait

        def side_b() -> Generator:
            for _ in range(self.rounds):
                yield CondWait(pong)
                yield Run(self.work_cycles)
                yield CondSignal(ping, 1)
            # Final handshake consumed by A's last CondWait? No: A waits
            # self.rounds times and B signals self.rounds times; balanced.

        a = Task(f"{self.name}.a", side_a(), affinity=0)
        b = Task(f"{self.name}.b", side_b(), affinity=0 if self.same_vcpu else 1)
        kernel.add_task(a)
        kernel.add_task(b)
        return [a, b]
