"""fio-style storage workloads (paper §6.3).

The paper runs phoronix-fio in a 1-vCPU VM: sequential read (seqr),
sequential write (seqwr), random read (rndr) and random write (rndwr),
block sizes 4 KiB–256 KiB, sync I/O engine, on a (non-SR-IOV) SATA-class
device.

Reads are modelled fully synchronously: submit, block, completion
interrupt, resume — every operation is an idle entry/exit pair. Writes
go through a writeback model: the page cache absorbs ``write_batch``
writes (CPU work only), then a blocking flush pushes the batch to the
device — fewer idle transitions per byte, which is the paper's §6.3
explanation for why "read operations benefit the most from paratick".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.config import IoDeviceKind
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.task import BlockRead, BlockWrite, Run, Task
from repro.workloads.base import Workload

#: fio block sizes the paper sweeps (4kB ... 256kB).
BLOCK_SIZES = (4096, 16384, 65536, 262144)
#: The four categories of Fig. 6.
CATEGORIES = ("seqr", "seqwr", "rndr", "rndwr")

#: Span of the test file for random offsets (4 GiB).
SPAN_BYTES = 4 << 30
#: User-side cycles per 4 KiB page touched (checksum/copy work fio does).
USER_CYCLES_PER_PAGE = 900
#: Fixed user-side cycles per operation.
USER_CYCLES_PER_OP = 3_000
#: Writes absorbed by the page cache before a blocking flush.
WRITE_BATCH = 4


@dataclass(frozen=True)
class FioJob:
    """One fio job description."""

    category: str
    block_size: int

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise WorkloadError(f"unknown fio category {self.category!r}")
        if self.block_size <= 0:
            raise WorkloadError("block size must be positive")

    @property
    def is_read(self) -> bool:
        return self.category.endswith("r") and not self.category.endswith("wr")

    @property
    def is_random(self) -> bool:
        return self.category.startswith("rnd")

    @property
    def name(self) -> str:
        return f"{self.category}.{self.block_size // 1024}k"


class FioWorkload(Workload):
    """A single fio job on a 1-vCPU VM (the paper's §6.3 setup)."""

    io_device = IoDeviceKind.SATA_SSD

    def __init__(self, job: FioJob, *, total_bytes: int = 32 << 20):
        if total_bytes < job.block_size:
            raise WorkloadError("total_bytes smaller than one block")
        self.job = job
        self.total_bytes = total_bytes
        self.ops = total_bytes // job.block_size
        self.name = f"fio.{job.name}"

    def default_vcpus(self) -> int:
        return 1

    def build(self, kernel: GuestKernel) -> list[Task]:
        body = self._read_body(kernel) if self.job.is_read else self._write_body(kernel)
        task = Task(self.name, body, affinity=0)
        kernel.add_task(task)
        return [task]

    # ---------------------------------------------------------------- bodies

    def _offset(self, kernel: GuestKernel, op_index: int) -> int | None:
        """None = sequential (driver continues); random draws are aligned."""
        if not self.job.is_random:
            return None
        slots = SPAN_BYTES // self.job.block_size
        slot = int(kernel.sim.rng.stream(f"{self.name}.offs").integers(0, slots))
        return slot * self.job.block_size

    def _user_cycles(self, nbytes: int) -> int:
        pages = max(1, -(-nbytes // 4096))
        return USER_CYCLES_PER_OP + pages * USER_CYCLES_PER_PAGE

    def _read_body(self, kernel: GuestKernel) -> Generator:
        bs = self.job.block_size
        for i in range(self.ops):
            yield BlockRead(bs, self._offset(kernel, i))
            yield Run(self._user_cycles(bs))

    def _write_body(self, kernel: GuestKernel) -> Generator:
        """Writeback: CPU-only writes, blocking flush every WRITE_BATCH."""
        bs = self.job.block_size
        pending = 0
        for i in range(self.ops):
            yield Run(self._user_cycles(bs))
            pending += 1
            if pending == WRITE_BATCH:
                yield BlockWrite(bs * pending, self._offset(kernel, i))
                pending = 0
        if pending:
            yield BlockWrite(bs * pending, self._offset(kernel, self.ops))


def job(category: str, block_size: int, *, total_bytes: int = 32 << 20) -> FioWorkload:
    """Convenience constructor: ``job("seqr", 4096)``."""
    return FioWorkload(FioJob(category, block_size), total_bytes=total_bytes)


def all_jobs(*, total_bytes: int = 32 << 20) -> list[FioWorkload]:
    """The full category x block-size sweep of Fig. 6."""
    return [
        FioWorkload(FioJob(cat, bs), total_bytes=total_bytes)
        for cat in CATEGORIES
        for bs in BLOCK_SIZES
    ]
