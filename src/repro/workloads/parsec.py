"""PARSEC benchmark models (paper §6.1–§6.2).

The paper runs PARSEC 3.0 sequentially (Table 2 / Fig. 4) and with
parallelism equal to the vCPU count (Table 3 / Fig. 5). Paratick's
effect depends only on each benchmark's *interaction pattern with the
timer path*: how often threads block/unblock (blocking synchronization),
how imbalanced the work between sync points is (idle-wait lengths), how
much non-timer exit background exists (page faults, I/O phases).

Each benchmark is therefore modelled by a :class:`ParsecProfile`
capturing its published characterization:

* ``sync_kind`` — the dominant primitive: data-parallel **barrier**
  phases (blackscholes, streamcluster, bodytrack, facesim, freqmine),
  fine-grained **lock**-based access (fluidanimate, canneal, raytrace),
  bounded-queue **pipeline** stages (dedup, ferret, vips, x264), or
  **none** (swaptions, embarrassingly parallel).
* ``sync_hz`` — blocking-sync events per thread per second when running
  parallel, the key rate in §3.2's analysis.
* ``imbalance`` — relative spread of inter-sync work, which sets how
  long early arrivers block (the T_idle of §3.2).
* ``fault_hz`` / ``io_read_hz`` — non-timer exit background; this is
  what makes the *relative* exit reduction differ per benchmark
  (Fig. 4a/5a's spread).

Rates are per-thread and deliberately round numbers: we reproduce
*shapes*, and the sensitivity of the headline results to these rates is
itself measured by ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.config import IoDeviceKind
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.sync import Barrier, BoundedQueue, CondVar, Mutex
from repro.guest.task import (
    BarrierWait,
    BlockRead,
    CondSignal,
    CondWait,
    MutexLock,
    MutexUnlock,
    PageFault,
    QueueGet,
    QueuePut,
    Run,
    Task,
)
from repro.workloads.base import Workload

#: Nominal guest clock used to convert per-second rates into cycles.
NOMINAL_HZ = 2_200_000_000


@dataclass(frozen=True)
class ParsecProfile:
    """Timer-path-relevant characterization of one PARSEC benchmark."""

    name: str
    sync_kind: str  # "barrier" | "lock" | "pipeline" | "none"
    #: Blocking-sync events per thread per second (parallel mode).
    sync_hz: float
    #: Relative spread of work between sync points (lognormal-ish).
    imbalance: float
    #: Critical-section length for lock-based benchmarks (cycles).
    critical_cycles: int
    #: EPT-class exits per thread per second (memory behaviour).
    fault_hz: float
    #: Input-streaming block reads per second (sequential phases too).
    io_read_hz: float
    #: Bytes per streaming read.
    io_read_bytes: int

    def step_cycles(self) -> int:
        """Work between sync points at the nominal clock."""
        if self.sync_hz <= 0:
            return NOMINAL_HZ // 100  # phase length for unsynchronized codes
        return int(NOMINAL_HZ / self.sync_hz)


#: The 13 PARSEC 3.0 benchmarks (§6.1: "13 varied, realistic
#: computation-intensive workloads").
PROFILES: dict[str, ParsecProfile] = {
    "blackscholes": ParsecProfile("blackscholes", "barrier", 40, 0.06, 0, 25, 0, 0),
    "bodytrack": ParsecProfile("bodytrack", "barrier", 2_000, 0.22, 0, 60, 10, 32768),
    "canneal": ParsecProfile("canneal", "lock", 600, 0.10, 9_000, 420, 20, 65536),
    "dedup": ParsecProfile("dedup", "pipeline", 4_000, 0.16, 0, 140, 420, 65536),
    "facesim": ParsecProfile("facesim", "barrier", 1_200, 0.16, 0, 80, 6, 65536),
    "ferret": ParsecProfile("ferret", "pipeline", 2_600, 0.15, 0, 100, 120, 32768),
    "fluidanimate": ParsecProfile("fluidanimate", "lock", 7_000, 0.10, 4_000, 45, 0, 0),
    "freqmine": ParsecProfile("freqmine", "barrier", 300, 0.10, 0, 120, 30, 65536),
    "raytrace": ParsecProfile("raytrace", "lock", 700, 0.12, 6_000, 60, 15, 32768),
    "streamcluster": ParsecProfile("streamcluster", "barrier", 5_000, 0.12, 0, 35, 0, 0),
    "swaptions": ParsecProfile("swaptions", "none", 0, 0.0, 0, 15, 0, 0),
    "vips": ParsecProfile("vips", "pipeline", 1_800, 0.12, 0, 90, 80, 32768),
    "x264": ParsecProfile("x264", "pipeline", 3_200, 0.26, 0, 70, 60, 65536),
}

BENCHMARK_NAMES = tuple(sorted(PROFILES))


def profile(name: str) -> ParsecProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise WorkloadError(f"unknown PARSEC benchmark {name!r}; know {BENCHMARK_NAMES}") from None


class ParsecWorkload(Workload):
    """One PARSEC benchmark, sequential or parallel.

    Args:
        bench: benchmark name.
        threads: parallelism; 1 = the paper's sequential mode.
        target_cycles: per-thread work budget (sets run length).
    """

    def __init__(self, bench: str, *, threads: int = 1, target_cycles: int = 700_000_000):
        self.profile = profile(bench)
        if threads <= 0:
            raise WorkloadError("threads must be positive")
        if target_cycles <= 0:
            raise WorkloadError("target_cycles must be positive")
        self.threads = threads
        self.target_cycles = target_cycles
        self.name = f"parsec.{bench}" + ("" if threads == 1 else f".p{threads}")
        self.io_device = IoDeviceKind.SATA_SSD if self.profile.io_read_hz > 0 else None

    def default_vcpus(self) -> int:
        return self.threads

    # ------------------------------------------------------------- building

    def build(self, kernel: GuestKernel) -> list[Task]:
        p = self.profile
        steps = max(1, self.target_cycles // p.step_cycles())
        if self.threads == 1 or p.sync_kind == "none":
            tasks = [
                Task(
                    f"{self.name}.t{i}",
                    self._unsync_body(kernel, i, steps),
                    affinity=i,
                )
                for i in range(self.threads)
            ]
        elif p.sync_kind == "barrier":
            barrier = Barrier(self.threads, name=f"{self.name}.bar")
            tasks = [
                Task(f"{self.name}.t{i}", self._barrier_body(kernel, i, steps, barrier), affinity=i)
                for i in range(self.threads)
            ]
        elif p.sync_kind == "lock":
            # Fine-grained-locking codes block when a needed element is
            # held by a neighbour; modelled as neighbour hand-offs (see
            # _lock_body) so the *blocking* rate matches sync_hz.
            conds = [CondVar(f"{self.name}.cv{j}") for j in range(self.threads)]
            locks = [Mutex(f"{self.name}.m{j}") for j in range(max(1, self.threads // 2))]
            tasks = [
                Task(f"{self.name}.t{i}", self._lock_body(kernel, i, steps, locks, conds), affinity=i)
                for i in range(self.threads)
            ]
        elif p.sync_kind == "pipeline":
            queues = [BoundedQueue(2, name=f"{self.name}.q{j}") for j in range(self.threads - 1)]
            tasks = [
                Task(f"{self.name}.t{i}", self._pipeline_body(kernel, i, steps, queues), affinity=i)
                for i in range(self.threads)
            ]
        else:  # pragma: no cover - profile table is closed
            raise WorkloadError(f"unknown sync kind {p.sync_kind!r}")
        for t in tasks:
            kernel.add_task(t)
        return tasks

    # ---------------------------------------------------------------- bodies

    def _work(self, kernel: GuestKernel, thread: int, step: int) -> int:
        """Jittered inter-sync work (the imbalance that creates waits)."""
        p = self.profile
        base = p.step_cycles()
        if p.imbalance <= 0:
            return base
        stream = f"{self.name}.work{thread}"
        return max(1000, int(kernel.sim.rng.stream(stream).normal(base, p.imbalance * base)))

    def _background(self, step: int, step_cycles: int) -> Generator:
        """Faults and input-streaming reads, spread deterministically."""
        p = self.profile
        step_s = step_cycles / NOMINAL_HZ
        if p.fault_hz > 0:
            expected = p.fault_hz * step_s
            whole = int(expected)
            frac = expected - whole
            count = whole + (1 if frac > 0 and (step * frac) % 1.0 < frac else 0)
            if count:
                yield PageFault(count)
        if p.io_read_hz > 0:
            expected = p.io_read_hz * step_s
            whole = int(expected)
            frac = expected - whole
            count = whole + (1 if frac > 0 and (step * frac) % 1.0 < frac else 0)
            for _ in range(count):
                yield BlockRead(p.io_read_bytes)

    def _unsync_body(self, kernel: GuestKernel, thread: int, steps: int) -> Generator:
        sc = self.profile.step_cycles()
        for step in range(steps):
            yield Run(self._work(kernel, thread, step))
            yield from self._background(step, sc)

    def _barrier_body(self, kernel: GuestKernel, thread: int, steps: int, barrier: Barrier) -> Generator:
        sc = self.profile.step_cycles()
        for step in range(steps):
            yield Run(self._work(kernel, thread, step))
            yield from self._background(step, sc)
            yield BarrierWait(barrier)

    def _lock_body(
        self, kernel: GuestKernel, thread: int, steps: int, locks: list[Mutex], conds: list
    ) -> Generator:
        """Fine-grained locking with data dependencies (fluidanimate,
        canneal, raytrace): work a cell, take the lock guarding the
        shared boundary, then *wait for the neighbour's hand-off* before
        the next step — each step therefore blocks once per thread, at
        sync_hz, like the cell-boundary dependencies of the real codes.
        The neighbour pairing alternates direction so waits are mutual.
        """
        p = self.profile
        sc = p.step_cycles()
        n = self.threads
        partner = thread ^ 1 if (thread ^ 1) < n else thread
        my_cv = conds[thread]
        partner_cv = conds[partner]
        m = locks[(thread // 2) % len(locks)]
        solo = partner == thread
        for step in range(steps):
            yield Run(self._work(kernel, thread, step))
            yield from self._background(step, sc)
            yield MutexLock(m)
            yield Run(p.critical_cycles)
            yield MutexUnlock(m)
            if not solo:
                yield CondSignal(partner_cv, 1)
                yield CondWait(my_cv)

    def _pipeline_body(self, kernel: GuestKernel, thread: int, steps: int, queues: list) -> Generator:
        """Linear stage pipeline (dedup/ferret/x264 structure).

        Stage 0 produces one item per step; interior stages hand items
        through bounded queues; the last stage consumes. Work jitter plus
        finite queues makes stages block and unblock at ~sync_hz — the
        microsecond idle periods of §3.2.
        """
        sc = self.profile.step_cycles()
        nstages = self.threads
        first = thread == 0
        last = thread == nstages - 1
        for step in range(steps):
            if first:
                item = step
            else:
                item = yield QueueGet(queues[thread - 1])
            yield Run(self._work(kernel, thread, step))
            yield from self._background(step, sc)
            if not last:
                yield QueuePut(queues[thread], item)


def benchmark(name: str, *, threads: int = 1, target_cycles: int = 700_000_000) -> ParsecWorkload:
    """Convenience constructor used throughout the examples and benches."""
    return ParsecWorkload(name, threads=threads, target_cycles=target_cycles)
