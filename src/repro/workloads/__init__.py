"""Workload models.

* :mod:`repro.workloads.parsec` — the 13 PARSEC benchmarks as synthetic
  models parameterized by their published synchronization behaviour
  (§6.1/§6.2's workloads);
* :mod:`repro.workloads.fio` — fio-style storage jobs (§6.3);
* :mod:`repro.workloads.micro` — the W1–W4 hypothetical workloads of
  §3.3 plus targeted microbenchmarks;
* :mod:`repro.workloads.netserve` — RPC-style network service (§8
  future work).
"""

from repro.workloads import fio, micro, netserve, parsec
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["Workload", "WorkloadResult", "parsec", "fio", "micro", "netserve"]
