"""Workload abstraction.

A :class:`Workload` knows how to populate a guest kernel with tasks and
declares what it needs from the scenario (vCPU count, a block device).
The experiment runner builds the stack, calls :meth:`Workload.build`,
runs until the main tasks finish (or a horizon), and collects metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import IoDeviceKind
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.task import Task


class Workload:
    """Base class for workload models."""

    #: Workload identifier used in labels.
    name: str = "workload"
    #: Block device class the workload needs, or None.
    io_device: Optional[IoDeviceKind] = None
    #: NIC profile the workload needs, or None (set by network workloads).
    nic_profile = None

    def default_vcpus(self) -> int:
        return 1

    def build(self, kernel: GuestKernel) -> list[Task]:
        """Create tasks on ``kernel``; return the *main* tasks whose
        completion defines execution time."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass
class WorkloadResult:
    """Completion bookkeeping the runner attaches to a run."""

    main_tasks: list[Task] = field(default_factory=list)
    finished: int = 0
    #: Simulated completion time of the last main task (ns), if all done.
    completed_at_ns: Optional[int] = None

    @property
    def all_done(self) -> bool:
        return self.finished == len(self.main_tasks) and self.main_tasks

    def check_complete(self) -> None:
        if not self.all_done:
            missing = [t.name for t in self.main_tasks if t.finished_ns is None]
            raise WorkloadError(f"workload did not finish; still running: {missing[:5]}")
