"""Network-service workload (the paper's §8 future work).

"As future work, we aim to further refine paratick and test it in more
diverse scenarios, focusing on high-performance I/O applications."

A request/response service: each worker thread issues synchronous RPCs
over the VM's NIC and does a fixed amount of request processing between
calls — the structure of a key-value store client, an RPC proxy or a
microservice tier. Round trips on datacenter networks last tens of
microseconds (§3.3 cites "Attack of the killer microseconds"), so every
request is one of the brief idle periods whose timer management paratick
removes. The extension benchmark sweeps link generations to show the
benefit growing with network speed, the same trend §6.3 demonstrates
for storage.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.task import NetRequest, Run, Task
from repro.hw.nic import DATACENTER_10G, NicProfile
from repro.workloads.base import Workload


class NetServiceWorkload(Workload):
    """RPC-style service: N workers, blocking round trips.

    Args:
        workers: worker threads (one per vCPU).
        requests: RPCs issued per worker.
        request_bytes: payload per RPC.
        think_cycles: processing between RPCs (service work per request).
        profile: NIC/link profile (sweep this for the generation study).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        requests: int = 500,
        request_bytes: int = 2048,
        think_cycles: int = 40_000,
        profile: NicProfile = DATACENTER_10G,
    ):
        if workers <= 0 or requests <= 0:
            raise WorkloadError("workers and requests must be positive")
        if think_cycles < 0:
            raise WorkloadError("think_cycles must be >= 0")
        self.workers = workers
        self.requests = requests
        self.request_bytes = request_bytes
        self.think_cycles = think_cycles
        self.profile = profile
        self.nic_profile = profile
        self.name = f"netserve.w{workers}"

    def default_vcpus(self) -> int:
        return self.workers

    def build(self, kernel: GuestKernel) -> list[Task]:
        def body() -> Generator:
            for _ in range(self.requests):
                yield NetRequest(self.request_bytes)
                yield Run(self.think_cycles)

        tasks = [Task(f"{self.name}.t{i}", body(), affinity=i) for i in range(self.workers)]
        for t in tasks:
            kernel.add_task(t)
        return tasks
