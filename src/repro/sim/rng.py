"""Deterministic, named random-number streams.

Every stochastic component draws from its own stream derived from
``(root_seed, stream_name)``. This gives two properties the experiments
rely on:

* **bit-reproducibility** — the same seed always produces the same run;
* **stream independence** — adding a new noise source (a new stream name)
  does not perturb the draws seen by existing components, so A/B
  comparisons between tick modes share identical workload randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, int):
            raise TypeError(f"root seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    @staticmethod
    def _derive(root_seed: int, name: str) -> np.random.SeedSequence:
        # Hash the stream name to integers so the derivation is stable
        # across Python versions (str hashing is salted, hashlib is not).
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        words = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
        return np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(words))

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(self._derive(self.root_seed, name)))
            self._streams[name] = gen
        return gen

    def exponential_ns(self, name: str, mean_ns: float) -> int:
        """One exponential draw in integer ns (>= 1) from stream ``name``."""
        if mean_ns <= 0:
            raise ValueError(f"mean must be positive, got {mean_ns}")
        return max(1, int(self.stream(name).exponential(mean_ns)))

    def normal_ns(self, name: str, mean_ns: float, sd_ns: float) -> int:
        """One truncated-at-1ns normal draw in integer ns."""
        return max(1, int(self.stream(name).normal(mean_ns, sd_ns)))

    def uniform_ns(self, name: str, lo_ns: int, hi_ns: int) -> int:
        """One uniform integer draw in [lo, hi]."""
        if hi_ns < lo_ns:
            raise ValueError(f"empty range [{lo_ns}, {hi_ns}]")
        return int(self.stream(name).integers(lo_ns, hi_ns + 1))

    def names(self) -> list[str]:
        """Names of the streams instantiated so far (sorted)."""
        return sorted(self._streams)
