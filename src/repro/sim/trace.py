"""Lightweight structured tracing for simulation runs.

Tracing is how we debugged the tick-sched state machines and how the
integration tests assert *sequences* of behaviour (e.g. "idle entry is
followed by exactly one MSR-write exit in tickless mode, none in
paratick"). Production experiment runs use :class:`NullTracer`, which
compiles down to a single attribute check on the hot path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: ``(time, source, kind, detail)``."""

    time: int
    source: str
    kind: str
    detail: Any = None

    def __str__(self) -> str:
        d = f" {self.detail}" if self.detail is not None else ""
        return f"[{self.time:>12}ns] {self.source}: {self.kind}{d}"


class Tracer:
    """Base tracer interface."""

    #: Fast-path flag: components skip building detail objects when False.
    enabled: bool = True

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards everything; ``enabled`` is False so callers skip work."""

    enabled = False

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        pass


class RingTracer(Tracer):
    """Keeps the last ``capacity`` records in memory.

    Optionally filters by ``kinds`` (an iterable of kind strings) so long
    runs can trace only the events of interest.
    """

    enabled = True

    def __init__(self, capacity: int = 100_000, kinds: Optional[Iterable[str]] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self._kinds = frozenset(kinds) if kinds is not None else None
        #: Total records offered, including ones filtered or evicted.
        self.offered = 0
        #: Records evicted by capacity overflow. Consumers (profiler,
        #: trace export) must surface a non-zero count instead of
        #: silently under-reporting the head of the run.
        self.dropped = 0

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        self.offered += 1
        if self._kinds is not None and kind not in self._kinds:
            return
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(TraceRecord(time, source, kind, detail))

    @property
    def truncated(self) -> bool:
        """True when the ring evicted records (output is a suffix)."""
        return self.dropped > 0

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All retained records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Histogram of retained record kinds."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out


class CallbackTracer(Tracer):
    """Forwards every record to a callable (used by the CLI ``--trace``)."""

    enabled = True

    def __init__(self, fn: Callable[[TraceRecord], None]):
        self._fn = fn

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        self._fn(TraceRecord(time, source, kind, detail))


class TeeTracer(Tracer):
    """Fans every record out to several tracers.

    This is how an analysis sink (e.g. the invariant sanitizer in
    :mod:`repro.analysis`) rides along with a user-facing tracer: both
    attach as sinks and see the identical stream. ``enabled`` is True
    iff any sink is enabled, so the NullTracer fast path is preserved
    when every sink is disabled.
    """

    def __init__(self, *sinks: Tracer):
        if not sinks:
            raise ValueError("TeeTracer needs at least one sink")
        self.sinks = tuple(sinks)
        self.enabled = any(s.enabled for s in self.sinks)

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        for s in self.sinks:
            if s.enabled:
                s.emit(time, source, kind, detail)
