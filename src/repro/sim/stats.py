"""Online statistics used by the metrics layer.

:class:`OnlineStats` implements Welford's single-pass algorithm so that
million-sample latency streams (one entry per I/O op or sync event) cost
O(1) memory. :class:`Histogram` provides fixed-bucket log2 histograms for
idle-period distributions, which is how we verify workload generators
against their configured idle-period targets.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional


class OnlineStats:
    """Single-pass count/mean/variance/min/max accumulator (Welford)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    def add(self, x: float) -> None:
        """Accumulate one sample."""
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if self.min is None or x < self.min:
            self.min = x
        if self.max is None or x > self.max:
            self.max = x

    def add_many(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two samples."""
        return self._m2 / (self.n - 1) if self.n > 1 else math.nan

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (Chan's parallel variance formula)."""
        out = OnlineStats()
        if self.n == 0:
            src = other
        elif other.n == 0:
            src = self
        else:
            out.n = self.n + other.n
            delta = other._mean - self._mean
            out._mean = self._mean + delta * other.n / out.n
            out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / out.n
            out.total = self.total + other.total
            out.min = min(self.min, other.min)  # type: ignore[arg-type]
            out.max = max(self.max, other.max)  # type: ignore[arg-type]
            return out
        out.n = src.n
        out._mean = src._mean
        out._m2 = src._m2
        out.total = src.total
        out.min = src.min
        out.max = src.max
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OnlineStats n={self.n} mean={self.mean:.3g} sd={self.stdev:.3g}>"


class Histogram:
    """Power-of-two bucketed histogram for positive integer samples.

    Bucket ``i`` counts samples ``x`` with ``2**i <= x < 2**(i+1)``;
    bucket 0 additionally holds ``x in {0, 1}``.
    """

    __slots__ = ("buckets", "n")

    #: Number of buckets: covers values up to 2**63.
    NBUCKETS = 64

    def __init__(self) -> None:
        self.buckets = [0] * self.NBUCKETS
        self.n = 0

    def add(self, x: int) -> None:
        if x < 0:
            raise ValueError(f"histogram samples must be >= 0, got {x}")
        self.buckets[x.bit_length() - 1 if x > 1 else 0] += 1
        self.n += 1

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket containing quantile ``q`` (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if self.n == 0:
            return 0
        target = q * self.n
        seen = 0
        for i, c in enumerate(self.buckets):
            seen += c
            if seen >= target and c:
                return 2 ** (i + 1) - 1
        return 2**self.NBUCKETS - 1

    def nonzero(self) -> list[tuple[int, int]]:
        """List of (bucket_floor, count) for occupied buckets."""
        return [(2**i if i else 0, c) for i, c in enumerate(self.buckets) if c]


def geomean(xs: Iterable[float]) -> float:
    """Geometric mean; the aggregation the paper's summary tables use.

    All inputs must be positive. An empty input returns NaN.
    """
    logsum = 0.0
    n = 0
    for x in xs:
        if x <= 0:
            raise ValueError(f"geomean requires positive values, got {x}")
        logsum += math.log(x)
        n += 1
    return math.exp(logsum / n) if n else math.nan
