"""Generator-based processes on top of the event engine.

Long-running behaviours (guest tasks, device firmware, noise daemons) are
written as Python generators that ``yield`` commands:

* ``Delay(ns)`` — resume after a fixed simulated delay;
* ``WaitSignal(signal)`` — park until the signal fires; the fired value
  becomes the result of the ``yield`` expression.

The scheduler is trampoline-style: resuming a process runs it until its
next yield, entirely within the current event callback, so processes add
no per-step heap allocation beyond the command objects themselves.

This layer is intentionally *not* used for the vCPU/exit machinery (which
is an explicit state machine in :mod:`repro.host.kvm`) — only for
behaviours that read naturally as sequential scripts.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Delay:
    """Process command: sleep for ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = ns


class Signal:
    """A broadcast wake-up point with an attached value.

    Multiple processes may wait on the same signal; ``fire`` resumes all
    of them (in wait order). Signals are reusable: each ``fire`` wakes the
    waiters registered since the previous fire.
    """

    __slots__ = ("name", "_waiters", "fire_count")

    def __init__(self, name: str = "signal"):
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``; returns how many woke."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(value)
        return len(waiters)


class WaitSignal:
    """Process command: park until ``signal`` fires.

    An optional ``timeout_ns`` bounds the wait; on timeout the yield
    returns :data:`TIMED_OUT`.
    """

    __slots__ = ("signal", "timeout_ns")

    def __init__(self, signal: Signal, timeout_ns: Optional[int] = None):
        if timeout_ns is not None and timeout_ns < 0:
            raise SimulationError(f"negative timeout: {timeout_ns}")
        self.signal = signal
        self.timeout_ns = timeout_ns


class _TimedOut:
    def __repr__(self) -> str:
        return "TIMED_OUT"


#: Sentinel returned by a WaitSignal yield whose timeout elapsed.
TIMED_OUT = _TimedOut()


class Process:
    """A running generator attached to a simulator.

    Create via :func:`spawn`. The ``done_signal`` fires with the
    generator's return value when it finishes.
    """

    __slots__ = ("sim", "name", "_gen", "_pending_event", "_waiting_on", "done_signal", "finished", "result")

    def __init__(self, sim: Simulator, gen: Generator, name: str):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._pending_event = None
        self._waiting_on: Optional[Signal] = None
        self.done_signal = Signal(f"{name}.done")
        self.finished = False
        self.result: Any = None

    # ------------------------------------------------------------- lifecycle

    def _start(self) -> None:
        # First advance happens via a zero-delay event so that spawn()
        # returns before any of the process body runs — creation order
        # therefore never depends on body side effects.
        self._pending_event = self.sim.schedule(0, self._resume, None)

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            cmd = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(cmd)

    def _dispatch(self, cmd: Any) -> None:
        if isinstance(cmd, Delay):
            self._pending_event = self.sim.schedule(cmd.ns, self._resume, None)
        elif isinstance(cmd, WaitSignal):
            self._waiting_on = cmd.signal
            cmd.signal._add_waiter(self)
            if cmd.timeout_ns is not None:
                self._pending_event = self.sim.schedule(cmd.timeout_ns, self._timeout, cmd.signal)
        elif isinstance(cmd, Signal):
            # Yielding a bare signal is shorthand for WaitSignal(signal).
            self._waiting_on = cmd
            cmd._add_waiter(self)
        else:
            self.kill()
            raise SimulationError(f"process {self.name!r} yielded unknown command {cmd!r}")

    def _timeout(self, signal: Signal) -> None:
        if self._waiting_on is signal:
            signal._remove_waiter(self)
            self._waiting_on = None
            self._resume(TIMED_OUT)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.done_signal.fire(result)

    def kill(self) -> None:
        """Terminate the process without running further body code."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self.sim.cancel(self._pending_event)
        self._pending_event = None
        self._gen.close()
        self._finish(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else ("waiting" if self._waiting_on else "running")
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: Generator, name: str = "proc") -> Process:
    """Attach generator ``gen`` to ``sim`` and start it at the next instant."""
    proc = Process(sim, gen, name)
    proc._start()
    return proc


def every(
    sim: Simulator,
    period_ns: int,
    fn: Callable[[], Any],
    *,
    start_after_ns: Optional[int] = None,
    name: str = "periodic",
) -> Process:
    """Spawn a process that calls ``fn()`` every ``period_ns`` forever."""
    if period_ns <= 0:
        raise SimulationError(f"period must be positive, got {period_ns}")

    def body() -> Generator:
        yield Delay(period_ns if start_after_ns is None else start_after_ns)
        while True:
            fn()
            yield Delay(period_ns)

    return spawn(sim, body(), name)
