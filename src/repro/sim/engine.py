"""The discrete-event simulator core.

A :class:`Simulator` owns the clock (integer nanoseconds since boot), the
pending-event queue, the deterministic RNG streams and the tracer. All
simulated components receive the simulator instance and schedule their
behaviour through it; nothing in the model reads wall-clock time or global
random state, which keeps every run bit-reproducible from its seed.

The dispatch loop in :meth:`Simulator.run` is the hottest code in the
repository — every guest tick, VM exit and I/O completion in every paper
experiment flows through it. It is deliberately monomorphic: the queue's
heap, free list and the heap primitives are cached in locals, the
peek/pop pair of the naive loop is fused into one drain, and dispatched
events are recycled through the queue's free list (see
:mod:`repro.sim.events` for the safety argument). Behaviour is pinned
bit-identical to the straightforward loop by the golden battery
(:mod:`repro.analysis.golden`).
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import _FREE_CAP, Event, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import NullTracer, Tracer


class Simulator:
    """Event loop, clock, RNG root and tracer for one simulation run.

    Args:
        seed: root seed from which every named RNG stream is derived.
        tracer: optional event tracer; defaults to a no-op tracer.

    The engine is single-threaded and re-entrant only in the sense that
    callbacks may schedule/cancel further events; they must not call
    :meth:`run` recursively.
    """

    def __init__(self, seed: int = 0, tracer: Optional[Tracer] = None):
        self._now: int = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.rng = RngStreams(seed)
        self.trace: Tracer = tracer if tracer is not None else NullTracer()
        #: Number of events dispatched so far (for engine benchmarks).
        self.dispatched: int = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Scheduling *at the current instant* is allowed (the event fires
        after all callbacks already queued for this instant); scheduling
        in the past is a :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self._now}): time travel"
            )
        # Inlined EventQueue.push (also below in schedule): at/schedule
        # run once per dispatched event in every simulation, and the
        # extra call frame is measurable there. Keep the three copies in
        # sync with EventQueue.push.
        queue = self._queue
        seq = queue._seq
        free = queue._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev._cancelled = False
            ev._fired = False
        else:
            ev = Event(time, seq, fn, args)
        _heappush(queue._heap, (time, seq, ev))
        queue._seq = seq + 1
        queue._live += 1
        return ev

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` ns (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue
        time = self._now + delay
        seq = queue._seq
        free = queue._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev._cancelled = False
            ev._fired = False
        else:
            ev = Event(time, seq, fn, args)
        _heappush(queue._heap, (time, seq, ev))
        queue._seq = seq + 1
        queue._live += 1
        return ev

    def rearm(self, event: Event, time: int) -> Event:
        """Re-schedule ``event``'s callback at absolute ``time``.

        The allocation-free fast path for timer churn: periodic ticks,
        preemption-timer start/stop and deadline reprogramming re-use
        their one :class:`Event` handle instead of cancelling and
        allocating a fresh one each period. Accepts pending handles
        (the event simply moves), fired ones (periodic re-fire) and
        cancelled ones (re-arm after disarm); the handle stays valid
        and is returned. Same-time re-arms queue behind events already
        scheduled for that instant, exactly like a cancel+schedule
        pair.
        """
        if event is None:
            raise SimulationError("cannot rearm None")
        if time < self._now:
            raise SimulationError(
                f"cannot rearm at t={time} (now is {self._now}): time travel"
            )
        return self._queue.rearm(event, time)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event. None and already-dead events are no-ops."""
        if event is not None and not (event._cancelled or event._fired):
            event._cancelled = True
            self._queue.notify_cancelled()

    # ------------------------------------------------------------------- run

    def step(self) -> bool:
        """Dispatch the single earliest event. Returns False when idle."""
        queue = self._queue
        ev = queue.pop()
        if ev is None:
            return False
        if ev.time < self._now:  # pragma: no cover - defended invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = ev.time
        ev._fired = True
        self.dispatched += 1
        ev.fn(*ev.args)
        queue.recycle(ev)
        return True

    def run(self, until: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: absolute stop time. Events at exactly ``until`` do
                fire; later events stay queued. ``None`` runs until the
                queue drains or :meth:`stop` is called.

        Returns:
            The simulated time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(f"run until t={until} is in the past (now {self._now})")
        self._running = True
        self._stopped = False
        # Hot-loop locals. `heap`/`free` alias list objects the queue
        # mutates only in place (compact() rebuilds with a slice
        # assignment), so the aliases stay valid across callbacks.
        queue = self._queue
        heap = queue._heap
        free = queue._free
        heappop = _heappop
        refcount = _getrefcount
        free_cap = _FREE_CAP
        dispatched = self.dispatched
        # One int comparison per event instead of a None test + compare:
        # simulated times are ns and never reach the sentinel.
        horizon = (1 << 63) if until is None else until
        try:
            while True:
                if self._stopped or not heap:
                    break
                t, entry_seq, ev = heap[0]
                if ev._cancelled or ev.seq != entry_seq:
                    # Dead entry (cancelled or orphaned by a re-arm):
                    # drop it; the discarded heappop return releases the
                    # entry tuple, so local + argument = 2 refs means
                    # the handle is gone and the object is reusable.
                    heappop(heap)
                    queue._dead -= 1
                    if ev.seq == entry_seq and len(free) < free_cap and refcount(ev) == 2:
                        ev.fn = None
                        ev.args = ()
                        free.append(ev)
                    continue
                if t > horizon:
                    break
                heappop(heap)
                queue._live -= 1
                self._now = t
                ev._fired = True
                dispatched += 1
                ev.fn(*ev.args)
                # Steady-state allocation killer: a fired, unreferenced
                # event (local + argument = 2 refs) feeds the next push.
                # A re-arm inside the callback clears _fired and skips
                # this. fn/args are left in place — push overwrites both
                # before reuse, and an engine-owned event has no other
                # observer.
                if ev._fired and len(free) < free_cap and refcount(ev) == 2:
                    free.append(ev)
            if until is not None and not self._stopped and self._now < until:
                # Queue drained early: the clock still advances to the horizon,
                # mirroring a machine sitting fully idle until the deadline.
                self._now = until
        finally:
            self.dispatched = dispatched
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this callback."""
        self._stopped = True

    # ------------------------------------------------------------- inspection

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} pending={len(self._queue)}>"
