"""The discrete-event simulator core.

A :class:`Simulator` owns the clock (integer nanoseconds since boot), the
pending-event queue, the deterministic RNG streams and the tracer. All
simulated components receive the simulator instance and schedule their
behaviour through it; nothing in the model reads wall-clock time or global
random state, which keeps every run bit-reproducible from its seed.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import NullTracer, Tracer


class Simulator:
    """Event loop, clock, RNG root and tracer for one simulation run.

    Args:
        seed: root seed from which every named RNG stream is derived.
        tracer: optional event tracer; defaults to a no-op tracer.

    The engine is single-threaded and re-entrant only in the sense that
    callbacks may schedule/cancel further events; they must not call
    :meth:`run` recursively.
    """

    def __init__(self, seed: int = 0, tracer: Optional[Tracer] = None):
        self._now: int = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.rng = RngStreams(seed)
        self.trace: Tracer = tracer if tracer is not None else NullTracer()
        #: Number of events dispatched so far (for engine benchmarks).
        self.dispatched: int = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Scheduling *at the current instant* is allowed (the event fires
        after all callbacks already queued for this instant); scheduling
        in the past is a :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self._now}): time travel"
            )
        return self._queue.push(time, fn, args)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` ns (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, fn, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event. None and already-dead events are no-ops."""
        if event is not None and event.pending:
            event.cancel()
            self._queue.notify_cancelled()

    # ------------------------------------------------------------------- run

    def step(self) -> bool:
        """Dispatch the single earliest event. Returns False when idle."""
        ev = self._queue.pop()
        if ev is None:
            return False
        if ev.time < self._now:  # pragma: no cover - defended invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = ev.time
        ev._fired = True
        self.dispatched += 1
        ev.fn(*ev.args)
        return True

    def run(self, until: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: absolute stop time. Events at exactly ``until`` do
                fire; later events stay queued. ``None`` runs until the
                queue drains or :meth:`stop` is called.

        Returns:
            The simulated time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(f"run until t={until} is in the past (now {self._now})")
        self._running = True
        self._stopped = False
        try:
            queue = self._queue
            while not self._stopped:
                t = queue.peek_time()
                if t is None:
                    break
                if until is not None and t > until:
                    break
                self.step()
            if until is not None and not self._stopped and self._now < until:
                # Queue drained early: the clock still advances to the horizon,
                # mirroring a machine sitting fully idle until the deadline.
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this callback."""
        self._stopped = True

    # ------------------------------------------------------------- inspection

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} pending={len(self._queue)}>"
