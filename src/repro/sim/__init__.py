"""Discrete-event simulation substrate.

Integer-nanosecond event engine with deterministic RNG streams,
generator-based processes, tracing and online statistics. This layer is
domain-agnostic: the virtualization model (:mod:`repro.hw`,
:mod:`repro.host`, :mod:`repro.guest`) is built entirely on top of it.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import Delay, Process, Signal, WaitSignal
from repro.sim.rng import RngStreams
from repro.sim.stats import OnlineStats
from repro.sim.timebase import (
    NSEC,
    USEC,
    MSEC,
    SEC,
    CpuClock,
    fmt_time,
    hz_to_period_ns,
)
from repro.sim.trace import NullTracer, RingTracer, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "Process",
    "Delay",
    "Signal",
    "WaitSignal",
    "RngStreams",
    "OnlineStats",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "CpuClock",
    "fmt_time",
    "hz_to_period_ns",
    "Tracer",
    "NullTracer",
    "RingTracer",
    "TraceRecord",
]
