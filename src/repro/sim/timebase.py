"""Simulated time units and CPU-clock conversions.

All simulation time is kept as **integer nanoseconds**. Using integers
(rather than floats) keeps event ordering exact and runs bit-reproducible:
two events scheduled for the same instant never reorder due to rounding.

Cycle accounting uses :class:`CpuClock` to convert between CPU cycles and
nanoseconds at a fixed nominal frequency. Conversions round *up* to the
next nanosecond so that work never takes zero time, which would allow
zero-delay event loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: One nanosecond — the base unit of simulated time.
NSEC: int = 1
#: One microsecond in nanoseconds.
USEC: int = 1_000
#: One millisecond in nanoseconds.
MSEC: int = 1_000_000
#: One second in nanoseconds.
SEC: int = 1_000_000_000


def hz_to_period_ns(hz: float) -> int:
    """Return the period in integer ns of a frequency in Hz.

    >>> hz_to_period_ns(250)
    4000000
    """
    if hz <= 0:
        raise ConfigError(f"frequency must be positive, got {hz}")
    return max(1, round(SEC / hz))


def fmt_time(ns: int) -> str:
    """Render a time/duration in the most readable unit.

    >>> fmt_time(2_500_000)
    '2.500ms'
    """
    if ns < 0:
        return "-" + fmt_time(-ns)
    if ns >= SEC:
        return f"{ns / SEC:.3f}s"
    if ns >= MSEC:
        return f"{ns / MSEC:.3f}ms"
    if ns >= USEC:
        return f"{ns / USEC:.3f}us"
    return f"{ns}ns"


@dataclass(frozen=True)
class CpuClock:
    """A fixed-frequency CPU clock used for cycles<->time conversion.

    Attributes:
        freq_hz: nominal core frequency in Hz. The paper's testbed CPUs
            are ~2.2 GHz-class Xeons; that is the default used by
            :mod:`repro.config`.
    """

    freq_hz: int

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ConfigError(f"CPU frequency must be positive, got {self.freq_hz}")

    def cycles_to_ns(self, cycles: int) -> int:
        """Duration of ``cycles`` cycles, rounded up to a whole ns.

        Zero cycles map to zero ns; any positive amount of work takes at
        least one nanosecond.
        """
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        if cycles == 0:
            return 0
        # ceil(cycles * 1e9 / freq) using exact integer arithmetic.
        return max(1, -(-cycles * SEC // self.freq_hz))

    def ns_to_cycles(self, ns: int) -> int:
        """Number of whole cycles elapsing in ``ns`` nanoseconds."""
        if ns < 0:
            raise ValueError(f"negative duration: {ns}")
        return ns * self.freq_hz // SEC

    @property
    def ghz(self) -> float:
        """Frequency in GHz, for reporting."""
        return self.freq_hz / 1e9
