"""Event objects and the pending-event priority queue.

The queue is a binary heap keyed on ``(time, seq)``: ties at the same
instant fire in scheduling order, which keeps runs deterministic. Events
are cancelled lazily — cancellation just flips a flag, and the heap pop
discards dead entries — so ``cancel`` is O(1) and the common
arm/cancel/re-arm pattern of timer hardware stays cheap.

Three throughput mechanisms ride on top of that base design, all of
them invisible to behaviour (the golden battery in
:mod:`repro.analysis.golden` pins bit-identical runs):

* **Free-list reuse** — dispatched and drained-cancelled ``Event``
  objects are recycled by :meth:`EventQueue.push` instead of
  re-allocated, but *only* when a ``sys.getrefcount`` check proves the
  engine holds the sole reference. A component that keeps a handle (a
  LAPIC, a preemption timer, a process) therefore keeps the documented
  contract — cancelling a dead handle stays a no-op forever — while the
  fire-and-forget majority of events allocate nothing in steady state.
* **Sequence numbers as generations** — a heap entry is live only while
  ``event.seq`` still equals the seq recorded in the entry.
  :meth:`EventQueue.rearm` re-schedules a handle by assigning it a
  fresh ``(time, seq)`` and pushing a new entry; the old entry's seq no
  longer matches, so it is discarded on drain exactly like a cancelled
  one. Re-arming is how timer hardware models avoid the
  cancel+allocate+push triple on their hottest path.
* **Amortized compaction** — cancellations and re-arms leave dead
  entries behind; when they outnumber the live ones (beyond a small
  floor) the heap is rebuilt in place, so pathological arm/cancel churn
  cannot grow the heap unboundedly. The rebuild is charged against the
  cancellations that created the debt: amortized O(log n) per
  operation.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Free-list bound: enough to absorb timer churn bursts, small enough
#: that an idle queue does not pin memory.
_FREE_CAP = 256

#: Compaction floor: below this many dead entries a rebuild cannot win.
_COMPACT_MIN_DEAD = 64

_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.at` /
    ``schedule`` and should be treated as opaque handles; the only public
    operations are :meth:`cancel`, re-arming through the owning
    simulator, and the read-only properties.

    A handle you hold is never recycled out from under you: the queue
    re-uses an object only once the holder's reference is provably gone.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled", "_fired")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has run (cleared again by a re-arm)."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent.

        Cancelling an event that already fired is a no-op (matching how
        hardware timer disarm races with expiry: the losing side simply
        has no effect).
        """
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} {name} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` with lazy deletion and object reuse.

    Heap entries are ``(time, seq, event)`` tuples: the unique ``seq``
    guarantees tuple comparison never reaches the event object, so
    ordering uses native tuple compare instead of a Python-level
    ``__lt__`` call — the single hottest operation in large simulations.

    An entry is *live* iff ``event.seq == seq and not event.cancelled``;
    a re-arm bumps the event's seq, orphaning its old entry. Orphaned
    and cancelled entries are dropped on drain or by the amortized
    :meth:`compact`.

    Exposed separately from the engine so property tests can exercise the
    ordering invariants in isolation.
    """

    __slots__ = ("_heap", "_seq", "_live", "_dead", "_free")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0
        #: Dead entries (cancelled or orphaned by re-arm) still in the heap.
        self._dead = 0
        self._free: list[Event] = []

    def __len__(self) -> int:
        """Number of *live* (non-cancelled, unfired) events."""
        return self._live

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Enqueue a callback at absolute time ``time`` and return its handle."""
        seq = self._seq
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev._cancelled = False
            ev._fired = False
        else:
            ev = Event(time, seq, fn, args)
        _heappush(self._heap, (time, seq, ev))
        self._seq = seq + 1
        self._live += 1
        return ev

    def rearm(self, ev: Event, time: int) -> Event:
        """Re-schedule ``ev``'s callback at absolute ``time``, in place.

        Works on pending, fired and cancelled handles alike; the handle
        stays valid and no allocation happens. A pending event's old
        heap entry is orphaned (its seq no longer matches) and cleaned
        up lazily, exactly like a cancelled one.
        """
        seq = self._seq
        if ev._cancelled or ev._fired:
            ev._cancelled = False
            ev._fired = False
            self._live += 1
        else:
            # Pending: the event moves; its old entry becomes garbage.
            self._dead += 1
        ev.time = time
        ev.seq = seq
        _heappush(self._heap, (time, seq, ev))
        self._seq = seq + 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self.compact()
        return ev

    def notify_cancelled(self) -> None:
        """Bookkeeping hook: the engine calls this when it cancels an event."""
        if self._live <= 0:
            raise SimulationError("cancelled more events than were live")
        self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self.compact()

    def recycle(self, ev: Event) -> None:
        """Offer a dispatched event back to the free list.

        Only the engine calls this, with its own local reference plus
        the call argument as the sole remaining refs (refcount 2). A
        handle retained anywhere else — component state, a closure, a
        test — fails the check and the object is simply garbage.
        """
        if ev._fired and len(self._free) < _FREE_CAP and getrefcount(ev) == 2:
            ev.fn = None
            ev.args = ()
            self._free.append(ev)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty.

        Dead (cancelled/orphaned) heap entries encountered on the way
        are dropped, and recycled when provably unreferenced.
        """
        heap = self._heap
        free = self._free
        while heap:
            _, seq, ev = _heappop(heap)
            if ev._cancelled or ev.seq != seq:
                self._dead -= 1
                # Refs here: the local + the getrefcount argument. A
                # cancelled event whose handle was dropped is reusable;
                # an orphaned (re-armed) one is alive elsewhere and its
                # seq mismatch keeps it out.
                if ev.seq == seq and len(free) < _FREE_CAP and getrefcount(ev) == 2:
                    ev.fn = None
                    ev.args = ()
                    free.append(ev)
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Firing time of the earliest live event, without removing it."""
        heap = self._heap
        free = self._free
        while heap:
            _, seq, ev = heap[0]
            if ev._cancelled or ev.seq != seq:
                _heappop(heap)
                self._dead -= 1
                if ev.seq == seq and len(free) < _FREE_CAP and getrefcount(ev) == 2:
                    ev.fn = None
                    ev.args = ()
                    free.append(ev)
                continue
            return heap[0][0]
        return None

    def compact(self) -> None:
        """Drop dead entries eagerly and rebuild the heap **in place**.

        In place matters: the engine's run loop holds a local alias of
        the heap list across callbacks, and a callback may trigger this
        via cancel/re-arm bookkeeping.
        """
        heap = self._heap
        free = self._free
        live_entries = []
        for entry in heap:
            ev = entry[2]
            if ev.seq == entry[1]:
                if not ev._cancelled:
                    live_entries.append(entry)
                    continue
                # Cancelled, current entry: refs are the heap entry (kept
                # alive by `entry`/`heap`), the local and the argument.
                if len(free) < _FREE_CAP and getrefcount(ev) == 3:
                    ev.fn = None
                    ev.args = ()
                    free.append(ev)
        heap[:] = live_entries
        heapq.heapify(heap)
        self._dead = 0
