"""Event objects and the pending-event priority queue.

The queue is a binary heap keyed on ``(time, seq)``: ties at the same
instant fire in scheduling order, which keeps runs deterministic. Events
are cancelled lazily — cancellation just flips a flag, and the heap pop
discards dead entries — so ``cancel`` is O(1) and the common
arm/cancel/re-arm pattern of timer hardware stays cheap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.at` /
    ``schedule`` and should be treated as opaque handles; the only public
    operations are :meth:`cancel` and the read-only properties.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled", "_fired")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent.

        Cancelling an event that already fired is a no-op (matching how
        hardware timer disarm races with expiry: the losing side simply
        has no effect).
        """
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} {name} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` with lazy deletion.

    Heap entries are ``(time, seq, event)`` tuples: the unique ``seq``
    guarantees tuple comparison never reaches the event object, so
    ordering uses native tuple compare instead of a Python-level
    ``__lt__`` call — the single hottest operation in large simulations.

    Exposed separately from the engine so property tests can exercise the
    ordering invariants in isolation.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled, unfired) events."""
        return self._live

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Enqueue a callback at absolute time ``time`` and return its handle."""
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._seq += 1
        self._live += 1
        return ev

    def notify_cancelled(self) -> None:
        """Bookkeeping hook: the engine calls this when it cancels an event."""
        if self._live <= 0:
            raise SimulationError("cancelled more events than were live")
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty.

        Dead (cancelled) heap entries encountered on the way are dropped.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev._cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Firing time of the earliest live event, without removing it."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def compact(self) -> None:
        """Drop cancelled entries eagerly (useful for long-lived queues)."""
        self._heap = [entry for entry in self._heap if not entry[2]._cancelled]
        heapq.heapify(self._heap)
