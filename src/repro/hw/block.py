"""Block storage devices with class-typical latency models.

Three device classes (paper §4.2 discusses how paratick's benefit scales
with device speed: "for high latency I/O devices such as HDDs ... the
potential for improvement is limited", while low-latency devices expose
the timer-path overhead). Parameters are round numbers from vendor
datasheets; only their order of magnitude matters to the reproduction.

The paper's testbed explicitly "does not possess a high-end SSD device
supporting SR-IOV" (§6.3) — the default device for the fio experiments is
therefore :func:`make_block_device` with ``IoDeviceKind.SATA_SSD``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import IoDeviceKind
from repro.errors import ConfigError
from repro.hw.iodev import CompletionFn, IoDevice, IoRequest
from repro.sim.engine import Simulator
from repro.sim.timebase import MSEC, USEC


@dataclass(frozen=True)
class BlockProfile:
    """Latency/bandwidth profile of one device class."""

    #: Fixed per-request latency for reads (controller + media access).
    read_base_ns: int
    #: Fixed per-request latency for writes.
    write_base_ns: int
    #: Extra latency when the access is non-sequential (seek/rotation).
    random_penalty_ns: int
    #: Sustained transfer bandwidth, bytes per second.
    bandwidth_bps: int
    #: Relative jitter (sd/mean) applied to the fixed part.
    jitter: float

    def __post_init__(self) -> None:
        if min(self.read_base_ns, self.write_base_ns, self.random_penalty_ns) < 0:
            raise ConfigError("latencies must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if not 0 <= self.jitter < 1:
            raise ConfigError("jitter must be in [0, 1)")


#: Device-class profiles. Values are class-typical datasheet numbers.
BLOCK_PROFILES: dict[IoDeviceKind, BlockProfile] = {
    IoDeviceKind.HDD: BlockProfile(
        read_base_ns=2 * MSEC,
        write_base_ns=2 * MSEC,
        random_penalty_ns=6 * MSEC,
        bandwidth_bps=160_000_000,
        jitter=0.25,
    ),
    IoDeviceKind.SATA_SSD: BlockProfile(
        read_base_ns=75 * USEC,
        write_base_ns=190 * USEC,
        random_penalty_ns=15 * USEC,
        bandwidth_bps=520_000_000,
        jitter=0.10,
    ),
    IoDeviceKind.NVME_SSD: BlockProfile(
        read_base_ns=14 * USEC,
        write_base_ns=18 * USEC,
        random_penalty_ns=3 * USEC,
        bandwidth_bps=3_200_000_000,
        jitter=0.08,
    ),
}


class BlockDevice(IoDevice):
    """A block device driven by a :class:`BlockProfile`.

    Sequential detection: a request is sequential when its offset equals
    the end of the previous request of the same op.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: BlockProfile,
        complete_fn: CompletionFn,
        *,
        name: str = "blk0",
        rng_stream: str | None = None,
    ):
        super().__init__(sim, name, complete_fn)
        self.profile = profile
        self._rng_stream = rng_stream if rng_stream is not None else f"blkdev.{name}"
        self._next_seq_offset: dict[str, int] = {}

    def service_time_ns(self, req: IoRequest) -> int:
        p = self.profile
        base = p.read_base_ns if req.op == "read" else p.write_base_ns
        if self._next_seq_offset.get(req.op) != req.offset:
            base += p.random_penalty_ns
        self._next_seq_offset[req.op] = req.offset + req.size
        transfer = req.size * 1_000_000_000 // p.bandwidth_bps
        if p.jitter > 0:
            base = self.sim.rng.normal_ns(self._rng_stream, base, p.jitter * base)
        return base + transfer


def make_block_device(
    sim: Simulator,
    kind: IoDeviceKind,
    complete_fn: CompletionFn,
    *,
    name: str = "blk0",
) -> BlockDevice:
    """Instantiate a block device of the given class."""
    return BlockDevice(sim, BLOCK_PROFILES[kind], complete_fn, name=name)
