"""Interrupt vector space.

Vector numbers follow Linux's x86 layout where it matters to the paper:
the local APIC timer uses vector 236 (``LOCAL_TIMER_VECTOR``) and
paratick reserves **vector 235** for virtual scheduler ticks (§5.1:
"We reserve vector 235 for this purpose").
"""

from __future__ import annotations

import enum


class Vector(enum.IntEnum):
    """Interrupt vectors used by the simulation."""

    #: Guest-visible local APIC timer interrupt (Linux LOCAL_TIMER_VECTOR).
    LOCAL_TIMER = 236
    #: Paratick virtual scheduler tick (paper §5.1 reserves vector 235).
    PARATICK_VIRTUAL_TICK = 235
    #: Reschedule IPI (Linux RESCHEDULE_VECTOR).
    RESCHEDULE = 253
    #: Generic function-call IPI.
    CALL_FUNCTION = 251
    #: Block-device completion interrupt (virtio-blk queue).
    BLOCK_IO = 81
    #: Network-device interrupt (virtio-net queue).
    NET_IO = 82
    #: Host-side scheduler tick on the physical LAPIC.
    HOST_TIMER = 239

    @property
    def is_timer(self) -> bool:
        """True for vectors that drive scheduler-tick work."""
        return self in (Vector.LOCAL_TIMER, Vector.PARATICK_VIRTUAL_TICK)


#: Vectors a guest may receive (injected by the hypervisor).
GUEST_VECTORS = frozenset(
    {
        Vector.LOCAL_TIMER,
        Vector.PARATICK_VIRTUAL_TICK,
        Vector.RESCHEDULE,
        Vector.CALL_FUNCTION,
        Vector.BLOCK_IO,
        Vector.NET_IO,
    }
)
