"""VMX preemption timer.

The paper (§3): "Some hypervisors (e.g. KVM) optimize this process by
using the preemption timer rather than the LAPIC timer to signal guest
timer interrupts. Upon each VM exit induced by a guest attempting to
write to the TSC_DEADLINE MSR, the hypervisor arms the preemption timer
for the vCPU in question ... When the preemption timer expires, a (less
costly) VM exit is triggered which allows the hypervisor to inject a
timer interrupt."

The preemption timer only counts down while the vCPU is in guest mode;
KVM re-arms it on every VM entry from the saved deadline and falls back
to a host-side timer while the vCPU is scheduled out. We expose exactly
that interface: ``start(deadline_ns)`` on entry, ``stop()`` on exit.

Every start/stop/fire is a structured trace event (kinds ``ptimer_*``)
so :mod:`repro.analysis` can check the pairing online.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class PreemptionTimer:
    """Per-vCPU VMX preemption timer (active only while in guest mode)."""

    __slots__ = ("_sim", "_callback", "_event", "deadline_ns", "fire_count", "name")

    def __init__(self, sim: Simulator, callback: Callable[[], None], *, name: str = "ptimer"):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        #: Absolute deadline currently programmed (None = not armed).
        self.deadline_ns: Optional[int] = None
        self.fire_count = 0
        #: Trace source label (the owning vCPU names it after itself).
        self.name = name

    @property
    def running(self) -> bool:
        """True while counting down (vCPU in guest mode with a deadline)."""
        return self._event is not None and self._event.pending

    def set_deadline(self, deadline_ns: Optional[int]) -> None:
        """Record the absolute deadline to enforce (does not start counting)."""
        if deadline_ns is not None and deadline_ns < self._sim.now:
            # An already-expired deadline fires immediately on start.
            deadline_ns = self._sim.now
        self.deadline_ns = deadline_ns

    def start(self) -> None:
        """VM entry: begin counting toward the recorded deadline."""
        if self.running:
            raise HardwareError("preemption timer started twice")
        if self.deadline_ns is None:
            return
        when = max(self.deadline_ns, self._sim.now)
        # Entry/exit churn is the hottest timer path in overcommit runs:
        # one Event handle per timer, re-armed on every VM entry.
        if self._event is None:
            self._event = self._sim.at(when, self._fire)
        else:
            self._sim.rearm(self._event, when)
        if self._sim.trace.enabled:
            self._sim.trace.emit(self._sim.now, self.name, "ptimer_start", when)

    def stop(self) -> None:
        """VM exit: pause the countdown (deadline is retained)."""
        ev = self._event
        if ev is not None and ev.pending:
            self._sim.cancel(ev)
            if self._sim.trace.enabled:
                self._sim.trace.emit(self._sim.now, self.name, "ptimer_stop")

    def clear(self) -> None:
        """Drop the deadline entirely (guest disarmed its timer)."""
        self.stop()
        self.deadline_ns = None

    def _fire(self) -> None:
        self.deadline_ns = None
        self.fire_count += 1
        if self._sim.trace.enabled:
            self._sim.trace.emit(self._sim.now, self.name, "ptimer_fire")
        self._callback()
