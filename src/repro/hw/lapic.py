"""Local APIC timer model.

One LAPIC timer per CPU, supporting the three architectural modes:

* **oneshot** — fire once after a programmed delay;
* **periodic** — fire repeatedly at a programmed period (the classic
  periodic scheduler tick of §3.1);
* **TSC-deadline** — fire when the TSC reaches an absolute count written
  to ``IA32_TSC_DEADLINE`` (the mode tickless Linux uses, §3).

Expiry calls the delivery callback with the configured vector. Whether
delivery means "interrupt the host kernel" or "force a VM exit and inject
into a guest" is decided by whoever owns the timer — the hardware model
is identical either way.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.interrupts import Vector
from repro.hw.tsc import Tsc
from repro.sim.engine import Simulator
from repro.sim.events import Event


#: fn(vector) -> None, called at expiry time.
DeliveryFn = Callable[[Vector], None]


class TimerMode(enum.Enum):
    ONESHOT = "oneshot"
    PERIODIC = "periodic"
    TSC_DEADLINE = "tsc-deadline"


class LapicTimer:
    """A single LAPIC timer instance."""

    __slots__ = ("_sim", "_tsc", "name", "vector", "_deliver", "mode", "_event", "_period_ns", "arm_count", "fire_count")

    def __init__(
        self,
        sim: Simulator,
        tsc: Tsc,
        deliver: DeliveryFn,
        *,
        vector: Vector = Vector.LOCAL_TIMER,
        name: str = "lapic",
    ):
        self._sim = sim
        self._tsc = tsc
        self._deliver = deliver
        self.vector = vector
        self.name = name
        self.mode: Optional[TimerMode] = None
        self._event: Optional[Event] = None
        self._period_ns = 0
        #: Programming operations performed (each is an MSR write on real hw).
        self.arm_count = 0
        #: Interrupts delivered.
        self.fire_count = 0

    # ------------------------------------------------------------- queries

    @property
    def armed(self) -> bool:
        """True if an expiry is pending."""
        return self._event is not None and self._event.pending

    @property
    def expiry_ns(self) -> Optional[int]:
        """Absolute sim time of the pending expiry, or None."""
        return self._event.time if self.armed else None  # type: ignore[union-attr]

    # ------------------------------------------------------------- arming

    def arm_oneshot_ns(self, delay_ns: int) -> None:
        """Program a one-shot expiry ``delay_ns`` from now."""
        if delay_ns < 0:
            raise HardwareError(f"{self.name}: negative delay {delay_ns}")
        self._disarm_event()
        self.mode = TimerMode.ONESHOT
        self.arm_count += 1
        self._arm_at(self._sim.now + delay_ns)
        self._trace_arm(self._sim.now + delay_ns)

    def arm_periodic_ns(self, period_ns: int, *, first_after_ns: Optional[int] = None) -> None:
        """Program periodic expiry every ``period_ns``."""
        if period_ns <= 0:
            raise HardwareError(f"{self.name}: period must be positive, got {period_ns}")
        self._disarm_event()
        self.mode = TimerMode.PERIODIC
        self._period_ns = period_ns
        self.arm_count += 1
        first = period_ns if first_after_ns is None else first_after_ns
        self._arm_at(self._sim.now + first)
        self._trace_arm(self._sim.now + first)

    def arm_tsc_deadline(self, tsc_deadline: int) -> None:
        """Program expiry at an absolute TSC count (deadline mode).

        Writing 0 disarms the timer, exactly like the real MSR.
        """
        self._disarm_event()
        if tsc_deadline == 0:
            self.mode = None
            self.arm_count += 1  # the disarming write is still a write
            return
        self.mode = TimerMode.TSC_DEADLINE
        self.arm_count += 1
        when = self._tsc.deadline_to_ns(tsc_deadline)
        self._arm_at(when)
        self._trace_arm(when)

    def disarm(self) -> None:
        """Cancel any pending expiry."""
        self._disarm_event()
        self.mode = None

    # ----------------------------------------------------- suspend support

    def pause(self) -> Optional[int]:
        """Stop this timer's clock, preserving its phase.

        Returns the nanoseconds that remained until expiry (to hand to
        :meth:`resume`), or None if nothing was pending. The programmed
        mode and period survive, exactly like a LAPIC whose core clock
        is gated during a VM-wide suspend.
        """
        if not self.armed:
            return None
        remaining = self._event.time - self._sim.now  # type: ignore[union-attr]
        self._disarm_event()
        return remaining

    def resume(self, remaining_ns: int) -> None:
        """Re-arm a paused timer ``remaining_ns`` from now, same mode.

        The suspended span is host time the guest never sees: the timer
        picks up where :meth:`pause` left it rather than replaying the
        expiries the span swallowed.
        """
        if remaining_ns < 0:
            raise HardwareError(f"{self.name}: negative resume remainder {remaining_ns}")
        if self.mode is None:
            raise HardwareError(f"{self.name}: resume but no mode was paused")
        self._arm_at(self._sim.now + remaining_ns)
        self._trace_arm(self._sim.now + remaining_ns)

    def _arm_at(self, when: int) -> None:
        # The one Event handle lives as long as the timer: after the
        # first arm, every reprogram/expiry cycle goes through the
        # allocation-free re-arm path.
        if self._event is None:
            self._event = self._sim.at(when, self._fire)
        else:
            self._sim.rearm(self._event, when)

    def _disarm_event(self) -> None:
        ev = self._event
        if ev is not None and ev.pending:
            self._sim.cancel(ev)
            if self._sim.trace.enabled:
                self._sim.trace.emit(self._sim.now, self.name, "lapic_disarm")

    def _trace_arm(self, expiry_ns: int) -> None:
        if self._sim.trace.enabled:
            self._sim.trace.emit(
                self._sim.now, self.name, "lapic_arm", (self.mode.value, expiry_ns)
            )

    # -------------------------------------------------------------- expiry

    def _fire(self) -> None:
        self.fire_count += 1
        if self._sim.trace.enabled:
            self._sim.trace.emit(
                self._sim.now, self.name, "lapic_fire", (self.mode.value, int(self.vector))
            )
        if self.mode is TimerMode.PERIODIC:
            # Re-arm before delivery so the handler observes a live timer
            # (periodic mode needs no reprogramming — that is exactly why
            # classic ticks cost only the delivery, not an extra write).
            self._sim.rearm(self._event, self._sim.now + self._period_ns)
        else:
            self.mode = None
        self._deliver(self.vector)
