"""A simple network interface model.

Not part of the paper's headline evaluation (its fio runs are storage),
but §4.2 and §6.3 both argue paratick's benefit grows with
"high-performance NICs"; the `examples/tick_mode_sweep.py` example and
the extension benches use this model to demonstrate that claim.

The model is request/response: ``send`` transmits a message and the
round-trip completion (remote processing + 2x wire latency) arrives via
the completion callback, just like a storage completion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.iodev import CompletionFn, IoDevice, IoRequest
from repro.sim.engine import Simulator
from repro.sim.timebase import USEC


@dataclass(frozen=True)
class NicProfile:
    """Round-trip profile of a NIC + peer."""

    #: One-way wire+switch latency.
    wire_ns: int
    #: Remote service time per request.
    remote_service_ns: int
    #: Link bandwidth, bytes/second.
    bandwidth_bps: int
    #: Relative jitter on the round trip.
    jitter: float

    def __post_init__(self) -> None:
        if self.wire_ns < 0 or self.remote_service_ns < 0:
            raise ConfigError("latencies must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if not 0 <= self.jitter < 1:
            raise ConfigError("jitter must be in [0, 1)")


#: A 10GbE datacenter link with a fast peer.
DATACENTER_10G = NicProfile(wire_ns=25 * USEC, remote_service_ns=30 * USEC, bandwidth_bps=1_250_000_000, jitter=0.15)
#: A 100GbE link with kernel-bypass-class peer latency.
DATACENTER_100G = NicProfile(wire_ns=5 * USEC, remote_service_ns=8 * USEC, bandwidth_bps=12_500_000_000, jitter=0.10)


class Nic(IoDevice):
    """Request/response NIC; ``op`` is reused as 'read' (rx-wait) semantics."""

    def __init__(
        self,
        sim: Simulator,
        profile: NicProfile,
        complete_fn: CompletionFn,
        *,
        name: str = "nic0",
    ):
        super().__init__(sim, name, complete_fn)
        self.profile = profile
        self._rng_stream = f"nic.{name}"

    def service_time_ns(self, req: IoRequest) -> int:
        p = self.profile
        rtt = 2 * p.wire_ns + p.remote_service_ns
        rtt += 2 * req.size * 1_000_000_000 // p.bandwidth_bps
        if p.jitter > 0:
            rtt = self.sim.rng.normal_ns(self._rng_stream, rtt, p.jitter * rtt)
        return rtt
