"""Per-architecture timer-hardware personality (ROADMAP item 4).

The paper's analysis is x86-specific: the guest arms its tick timer by
writing the ``TSC_DEADLINE`` MSR (or the virtual LAPIC's ``TMICT`` in
periodic mode), and KVM turns the write into the VMX preemption-timer
optimization (§3). Whether paratick's win *generalizes* depends on the
timer hardware's exit economics — on ARM the generic timer is a
system-register compare-value unit (CNTV) whose trapped accesses and
in-guest expiry have different costs (arXiv 2206.00258 supplies the
measured framing).

:class:`TimerHardware` is the seam: everything architecture-specific
about how a guest touches timer/interrupt-controller registers — and
how the hypervisor decodes the resulting traps — lives behind it.

* **Guest-side emission** — which primitive guest ops
  (:mod:`repro.guest.ops`) a (dis)arm of the one-shot deadline, the
  boot-time periodic tick, an EOI, or a cross-vCPU IPI compile to.
* **Host-side decode** — mapping a trapped op to the
  ``(reason, tag, handler_cycles, effect)`` tuple the vCPU executor's
  ``_begin_exit`` consumes. Exit counting, tracing and cost accounting
  stay arch-neutral in :mod:`repro.host.kvm`.
* **Deadline expiry in guest mode** — which exit reason and handler
  cost an armed guest deadline firing while the vCPU runs produces
  (x86: the VMX preemption timer; ARM: the vtimer's own IRQ).

The generic deadline machinery — :class:`repro.hw.preemption.PreemptionTimer`
counting down while in guest mode, the host stand-in timer while
blocked, ``vcpu.guest_deadline_ns`` — is shared by all backends; only
the register interface and the exit taxonomy differ.

Contract notes for backend authors (see ``docs/architectures.md``):

* ``guest_*`` methods run at op-*emission* time inside the guest
  kernel; any per-vCPU guest register state belongs in
  ``VcpuCtx.hw_state`` (reset on vCPU re-plug).
* ``decode`` runs at trap time; host-side register state belongs in
  ``_VcpuExec.timerhw_state``. Effects must translate guest-clock
  deadlines to host time through the VM's ``guest_clock_offset_ns``
  and clamp into the present, mirroring x86's ``_apply_deadline``.
* Backends without a self-reloading periodic mode return
  ``has_periodic_mode = False``; :class:`repro.guest.ticksched.PeriodicPolicy`
  then re-arms a one-shot every tick boundary instead of programming
  the hardware once at boot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigError
from repro.guest import ops as gops
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.interrupts import Vector
from repro.hw.msr import Msr

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel
    from repro.host.costs import CostModel
    from repro.hw.tsc import Tsc

#: Architectures with a registered backend.
ARCHES = ("x86", "arm")

#: A decoded synchronous exit: (reason, tag, handler_cycles, effect).
DecodedExit = tuple[ExitReason, ExitTag, int, Optional[Callable[[], None]]]


class TimerHardware:
    """Abstract per-architecture timer/interrupt register interface."""

    #: Architecture name (matches ``RunSpec.arch`` / ``VmSpec.arch``).
    arch = "abstract"
    #: True when the hardware offers a self-reloading periodic mode the
    #: guest can program once at boot (x86's LAPIC TMICT).
    has_periodic_mode = False

    # ------------------------------------------------- guest-side emission

    def guest_deadline_ops(
        self, kernel: "GuestKernel", vidx: int, desired: Optional[int]
    ) -> tuple[gops.GuestOp, ...]:
        """Ops that (dis)arm the one-shot deadline at ``desired`` abs ns.

        ``desired`` is on the *guest's* clock (``kernel.now()``); the
        host-side decode translates back. ``None`` disarms.
        """
        raise NotImplementedError

    def guest_periodic_ops(
        self, kernel: "GuestKernel", vidx: int, period_ns: int
    ) -> tuple[gops.GuestOp, ...]:
        """Ops that program the boot-time periodic tick (periodic mode
        only; callers must check :attr:`has_periodic_mode` first)."""
        raise NotImplementedError

    def guest_eoi_op(self, vector: Vector) -> gops.GuestOp:
        """The trapped end-of-interrupt write (virtual EOI disabled)."""
        raise NotImplementedError

    def guest_ipi_op(self, target_vidx: int, vector: Vector) -> gops.GuestOp:
        """The trapped write sending an IPI to ``target_vidx``."""
        raise NotImplementedError

    # --------------------------------------------------- host-side decode

    def decode(self, execu, op: gops.GuestOp) -> Optional[DecodedExit]:
        """Decode a trapped register write into a synchronous exit.

        Returns ``(reason, tag, handler_cycles, effect)`` for ops this
        architecture traps, or None for ops it does not recognize (the
        executor then falls through to the arch-neutral op dispatch).
        """
        raise NotImplementedError

    def deadline_fire_exit(self, costs: "CostModel") -> tuple[ExitReason, int]:
        """(reason, handler_cycles) of an armed deadline expiring while
        the vCPU is in guest mode."""
        raise NotImplementedError


class X86TimerHardware(TimerHardware):
    """x86: TSC-deadline MSR + virtual LAPIC, intercepted via WRMSR.

    This backend reproduces the pre-abstraction behaviour of
    :mod:`repro.host.kvm` exactly — the x86 golden batteries pin every
    emitted op value, exit tuple and trace byte.
    """

    arch = "x86"
    has_periodic_mode = True

    def __init__(self, tsc: "Tsc"):
        self.tsc = tsc

    # ------------------------------------------------- guest-side emission

    def guest_deadline_ops(self, kernel, vidx, desired):
        value = 0 if desired is None else self.tsc.clock.ns_to_cycles(
            max(desired, kernel.now() + 1)
        )
        return (gops.Wrmsr(Msr.TSC_DEADLINE, value),)

    def guest_periodic_ops(self, kernel, vidx, period_ns):
        return (gops.Wrmsr(Msr.X2APIC_TMICT, period_ns),)

    def guest_eoi_op(self, vector):
        return gops.Wrmsr(Msr.X2APIC_EOI, int(vector))

    def guest_ipi_op(self, target_vidx, vector):
        return gops.Wrmsr(Msr.X2APIC_ICR, target_vidx * 256 + int(vector))

    # --------------------------------------------------- host-side decode

    def decode(self, execu, op):
        if not isinstance(op, gops.Wrmsr):
            return None
        c = execu.costs
        if op.index == Msr.TSC_DEADLINE:
            return (
                ExitReason.MSR_WRITE,
                ExitTag.TIMER_PROGRAM,
                c.handler_msr_tsc_deadline,
                lambda: execu._apply_deadline(op.value),
            )
        if op.index == Msr.X2APIC_TMICT:
            # Virtual LAPIC in periodic mode: KVM emulates the
            # repeating timer host-side (classic periodic ticks, §3.1).
            return (
                ExitReason.MSR_WRITE,
                ExitTag.TIMER_PROGRAM,
                c.handler_msr_tsc_deadline,
                lambda: execu._start_virtual_periodic(op.value),
            )
        if op.index == Msr.X2APIC_EOI:
            return (ExitReason.MSR_WRITE, ExitTag.EOI, c.handler_msr_eoi, None)
        if op.index == Msr.X2APIC_ICR:
            dest, vector = divmod(op.value, 256)
            return (
                ExitReason.MSR_WRITE,
                ExitTag.IPI,
                c.handler_msr_icr,
                lambda: execu.hv.send_ipi(execu.vm, execu.vcpu, dest, Vector(vector)),
            )
        return (ExitReason.MSR_WRITE, ExitTag.OTHER, c.handler_msr_tsc_deadline, None)

    def deadline_fire_exit(self, costs):
        return (ExitReason.PREEMPTION_TIMER, costs.handler_preemption_timer)


def make_timer_hardware(arch: str, hv) -> TimerHardware:
    """Instantiate the backend for ``arch`` against a hypervisor."""
    if arch == "x86":
        return X86TimerHardware(hv.tsc)
    if arch == "arm":
        from repro.hw.arm import ArmTimerHardware

        return ArmTimerHardware(hv.sim, hv.machine.clock)
    raise ConfigError(f"unknown timer architecture {arch!r}; know {ARCHES}")
