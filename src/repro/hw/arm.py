"""ARM generic-timer backend (ROADMAP item 4).

The ARM world's timer hardware differs from x86 in exactly the ways
that matter for paratick's exit budget:

* The timer is a **compare-value unit integrated with the CPU** — the
  virtual generic timer (vtimer). The guest arms it by writing the
  compare value ``CNTV_CVAL_EL0`` and enabling it via ``CNTV_CTL_EL0``;
  there is no self-reloading periodic mode, so a "periodic" tick is the
  kernel re-arming a one-shot every period (Linux clockevents ONESHOT
  emulation — see :class:`repro.guest.ticksched.PeriodicPolicy`).
* Register accesses are **trapped system-register instructions**, not
  MSR/MMIO writes. Trap decode at EL2 is cheaper than the x86 MSR exit
  path (arXiv 2206.00258 measures per-hypervisor-instruction costs);
  the default :class:`repro.host.costs.CostModel` encodes that with the
  ``handler_sysreg_*`` fields.
* Expiry in guest mode raises the **vtimer's own IRQ at EL2**
  (:attr:`ExitReason.VTIMER_IRQ`) rather than a VMX preemption-timer
  exit. The simulation reuses the generic
  :class:`repro.hw.preemption.PreemptionTimer` deadline machinery —
  only the exit reason and handler cost differ.
* ``CNTVCT_EL0`` (the virtual count) reads **without trapping**, like
  x86's RDTSC; KVM keeps it consistent across migration with a vtimer
  offset, which is how guest clock-drift perturbations are translated
  back to host time here (mirroring x86's ``_apply_deadline``).

Linux's arm64 arch timer driver keeps ``CNTV_CTL.ENABLE`` set across
fires and re-arms by writing only ``CVAL`` — so the steady-state tick
costs one trap, while the first arm (and any disarm) costs the extra
CTL write. :class:`ArmTimerHardware` models exactly that, which is what
makes the ARM/x86 exit-economics comparison interesting: programming is
cheaper, but there is no LAPIC periodic mode to hide behind.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import HardwareError
from repro.guest import ops as gops
from repro.host.exitreasons import ExitReason, ExitTag
from repro.hw.interrupts import Vector
from repro.hw.timerhw import TimerHardware
from repro.sim.engine import Simulator
from repro.sim.timebase import CpuClock


class Sysreg(enum.IntEnum):
    """Trapped system registers the simulation intercepts.

    Values are symbolic small integers — the real arm64 encodings
    (op0/op1/CRn/CRm/op2 tuples) are not load-bearing for the model.
    """

    #: Virtual timer control (ENABLE/IMASK/ISTATUS bits; we model bit 0).
    CNTV_CTL = 0x01
    #: Virtual timer compare value (absolute CNTVCT count).
    CNTV_CVAL = 0x02
    #: Virtual count (reads untrapped; listed for completeness).
    CNTVCT = 0x03
    #: GIC CPU-interface end-of-interrupt register.
    ICC_EOIR1 = 0x10
    #: GIC software-generated-interrupt (IPI) register.
    ICC_SGI1R = 0x11


class ArmGenericTimer:
    """The virtual generic timer's counter: CNTVCT at nominal frequency.

    Mirrors :class:`repro.hw.tsc.Tsc` — the model runs the generic
    timer at the CPU's nominal frequency rather than a separate
    CNTFRQ, so cycle arithmetic is shared with the rest of the machine.
    """

    __slots__ = ("_sim", "clock")

    def __init__(self, sim: Simulator, clock: CpuClock):
        self._sim = sim
        self.clock = clock

    def read(self) -> int:
        """Current CNTVCT value (untrapped read)."""
        return self.clock.ns_to_cycles(self._sim.now)

    def cval_to_ns(self, cval: int) -> int:
        """Absolute sim time (ns) at which ``cval`` is reached.

        A compare value at or before the current count has its
        condition already met — the IRQ asserts at once (ARM ARM:
        ``CNTVCT >= CVAL`` levels the interrupt), so it maps to now.
        """
        if cval < 0:
            raise HardwareError(f"negative CNTV_CVAL: {cval}")
        now_cnt = self.read()
        if cval <= now_cnt:
            return self._sim.now
        return -(-cval * 1_000_000_000 // self.clock.freq_hz)


class _GuestVtimerState:
    """Guest-side view of its vtimer registers (lives in VcpuCtx.hw_state)."""

    __slots__ = ("ctl_enabled",)

    def __init__(self):
        self.ctl_enabled = False


class _HostVtimerState:
    """Host-side vtimer emulation state (lives in _VcpuExec.timerhw_state)."""

    __slots__ = ("cval_ns", "enabled")

    def __init__(self):
        self.cval_ns: Optional[int] = None
        self.enabled = False


class ArmTimerHardware(TimerHardware):
    """ARM generic timer + GIC system-register interface."""

    arch = "arm"
    has_periodic_mode = False

    def __init__(self, sim: Simulator, clock: CpuClock):
        self.timer = ArmGenericTimer(sim, clock)

    # ------------------------------------------------- guest-side emission

    def _guest_state(self, kernel, vidx) -> _GuestVtimerState:
        ctx = kernel.ctx(vidx)
        if ctx.hw_state is None:
            ctx.hw_state = _GuestVtimerState()
        return ctx.hw_state

    def guest_deadline_ops(self, kernel, vidx, desired):
        state = self._guest_state(kernel, vidx)
        if desired is None:
            # Disarm: clear ENABLE (Linux sets CTL=0 on shutdown).
            state.ctl_enabled = False
            return (gops.SysregWrite(Sysreg.CNTV_CTL, 0),)
        value = self.timer.clock.ns_to_cycles(max(desired, kernel.now() + 1))
        if state.ctl_enabled:
            # Steady state: ENABLE stays set across fires; re-arming is
            # a single CVAL write (the cheap path Linux relies on).
            return (gops.SysregWrite(Sysreg.CNTV_CVAL, value),)
        state.ctl_enabled = True
        return (
            gops.SysregWrite(Sysreg.CNTV_CVAL, value),
            gops.SysregWrite(Sysreg.CNTV_CTL, 1),
        )

    def guest_periodic_ops(self, kernel, vidx, period_ns):
        raise HardwareError("ARM generic timer has no periodic mode")

    def guest_eoi_op(self, vector):
        return gops.SysregWrite(Sysreg.ICC_EOIR1, int(vector))

    def guest_ipi_op(self, target_vidx, vector):
        return gops.SysregWrite(Sysreg.ICC_SGI1R, target_vidx * 256 + int(vector))

    # --------------------------------------------------- host-side decode

    def _host_state(self, execu) -> _HostVtimerState:
        if execu.timerhw_state is None:
            execu.timerhw_state = _HostVtimerState()
        return execu.timerhw_state

    def decode(self, execu, op):
        if not isinstance(op, gops.SysregWrite):
            return None
        c = execu.costs
        if op.reg == Sysreg.CNTV_CVAL:
            return (
                ExitReason.SYSREG_TRAP,
                ExitTag.TIMER_PROGRAM,
                c.handler_sysreg_cntv,
                lambda: self._apply_cval(execu, op.value),
            )
        if op.reg == Sysreg.CNTV_CTL:
            return (
                ExitReason.SYSREG_TRAP,
                ExitTag.TIMER_PROGRAM,
                c.handler_sysreg_cntv,
                lambda: self._apply_ctl(execu, op.value),
            )
        if op.reg == Sysreg.ICC_EOIR1:
            return (ExitReason.SYSREG_TRAP, ExitTag.EOI, c.handler_sysreg_eoi, None)
        if op.reg == Sysreg.ICC_SGI1R:
            dest, vector = divmod(op.value, 256)
            return (
                ExitReason.SYSREG_TRAP,
                ExitTag.IPI,
                c.handler_sysreg_sgi,
                lambda: execu.hv.send_ipi(execu.vm, execu.vcpu, dest, Vector(vector)),
            )
        return (ExitReason.SYSREG_TRAP, ExitTag.OTHER, c.handler_sysreg_cntv, None)

    def deadline_fire_exit(self, costs):
        return (ExitReason.VTIMER_IRQ, costs.handler_vtimer_irq)

    # ------------------------------------------------- vtimer emulation

    def _apply_cval(self, execu, cval: int) -> None:
        """KVM's CNTV_CVAL write handler: latch the compare value and,
        if the timer is enabled, (re)program the vCPU's deadline."""
        st = self._host_state(execu)
        deadline = self.timer.cval_to_ns(cval)
        offset = execu.vm.guest_clock_offset_ns
        if offset:
            # vtimer offset: the guest computed this compare value on
            # its drifted view of CNTVCT; translate to the host
            # timeline, clamped so it never lands in the past.
            deadline = max(deadline - offset, execu.sim.now)
        st.cval_ns = deadline
        execu._trace("cntv_cval", deadline)
        if st.enabled:
            execu.vcpu.guest_deadline_ns = deadline
            execu._trace("deadline_set", deadline)

    def _apply_ctl(self, execu, value: int) -> None:
        """KVM's CNTV_CTL write handler: ENABLE bit gates the deadline."""
        st = self._host_state(execu)
        st.enabled = bool(value & 1)
        execu._trace("cntv_ctl", value & 1)
        if st.enabled:
            if st.cval_ns is not None:
                execu.vcpu.guest_deadline_ns = st.cval_ns
                execu._trace("deadline_set", st.cval_ns)
        else:
            st.cval_ns = None
            execu.vcpu.guest_deadline_ns = None
            execu.preempt_timer.clear()
            execu._trace("deadline_clear")
