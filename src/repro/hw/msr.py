"""Model-specific registers relevant to the timer path.

Only the registers the mechanism touches are modelled. What matters for
the reproduction is *which writes are intercepted*: in a virtualized
environment every guest write to ``IA32_TSC_DEADLINE`` (and to the x2APIC
ICR, for IPIs) traps to the hypervisor — that trap is the VM exit the
paper sets out to eliminate.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import HardwareError


class Msr(enum.IntEnum):
    """MSR indices (values match the x86 architectural numbers)."""

    #: IA32_TSC_DEADLINE — arms the LAPIC timer in TSC-deadline mode.
    TSC_DEADLINE = 0x6E0
    #: x2APIC Interrupt Command Register — sending an IPI writes here.
    X2APIC_ICR = 0x830
    #: x2APIC End-Of-Interrupt register — written after every handled
    #: interrupt; trapped unless the host virtualizes EOI (APICv).
    X2APIC_EOI = 0x80B
    #: x2APIC LVT timer register (mode configuration).
    X2APIC_LVT_TIMER = 0x832
    #: x2APIC initial-count register (oneshot/periodic mode arming).
    X2APIC_TMICT = 0x838


#: Handler invoked on a write: fn(index, value) -> None.
WriteHook = Callable[[int, int], None]


class MsrFile:
    """A CPU's MSR state with optional per-register write hooks.

    The hypervisor installs hooks on the intercepted registers; the
    hook abstraction is also how the native (non-virtualized) LAPIC
    wires ``TSC_DEADLINE`` writes to its timer model.

    When constructed with a simulator, every write additionally emits a
    structured ``msr_write`` trace event so the analysis layer can see
    the raw register traffic behind the timer path.
    """

    __slots__ = ("_values", "_write_hooks", "_sim", "name")

    def __init__(self, sim=None, *, name: str = "msr") -> None:
        self._values: dict[int, int] = {}
        self._write_hooks: dict[int, WriteHook] = {}
        self._sim = sim
        self.name = name

    def install_write_hook(self, index: int, hook: WriteHook) -> None:
        """Register ``hook`` to run on every write to MSR ``index``."""
        if index in self._write_hooks:
            raise HardwareError(f"write hook already installed for MSR {index:#x}")
        self._write_hooks[index] = hook

    def write(self, index: int, value: int) -> None:
        """WRMSR: store the value and fire the hook, if any."""
        if value < 0:
            raise HardwareError(f"MSR {index:#x}: negative value {value}")
        self._values[index] = value
        if self._sim is not None and self._sim.trace.enabled:
            self._sim.trace.emit(self._sim.now, self.name, "msr_write", (int(index), int(value)))
        hook = self._write_hooks.get(index)
        if hook is not None:
            hook(index, value)

    def read(self, index: int) -> int:
        """RDMSR: last written value, or 0 (reset state)."""
        return self._values.get(index, 0)
