"""The time stamp counter (TSC).

The paper (§3): "If available, Linux uses the per-CPU time stamp counter
(TSC), which is the most accurate timer hardware available for
programming timers. It is armed by writing the desired expiration time to
the TSC_DEADLINE MSR."

We model an invariant (constant-rate, socket-synchronized) TSC, which is
what any modern Xeon provides: its value is simply simulated-time scaled
by the nominal frequency, so all CPUs read the same count.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.sim.engine import Simulator
from repro.sim.timebase import CpuClock


class Tsc:
    """Invariant TSC shared by all CPUs of the machine."""

    __slots__ = ("_sim", "clock")

    def __init__(self, sim: Simulator, clock: CpuClock):
        self._sim = sim
        self.clock = clock

    def read(self) -> int:
        """Current TSC value (RDTSC)."""
        return self.clock.ns_to_cycles(self._sim.now)

    def deadline_to_ns(self, tsc_deadline: int) -> int:
        """Absolute sim time (ns) at which ``tsc_deadline`` is reached.

        A deadline at or before the current count is "immediately
        expired" and maps to the current instant, matching LAPIC
        behaviour (the interrupt fires at once).
        """
        if tsc_deadline < 0:
            raise HardwareError(f"negative TSC deadline: {tsc_deadline}")
        now_tsc = self.read()
        if tsc_deadline <= now_tsc:
            return self._sim.now
        return self.ns_of_tsc(tsc_deadline)

    def ns_of_tsc(self, tsc_value: int) -> int:
        """Convert an absolute TSC count to absolute sim-time ns (ceil)."""
        return -(-tsc_value * 1_000_000_000 // self.clock.freq_hz)

    def after_ns(self, delta_ns: int) -> int:
        """TSC value ``delta_ns`` nanoseconds from now (for arming deadlines)."""
        if delta_ns < 0:
            raise HardwareError(f"negative delta: {delta_ns}")
        return self.clock.ns_to_cycles(self._sim.now + delta_ns)
