"""Physical CPUs and per-domain cycle accounting.

The paper's throughput metric is CPU cycles consumed (§6: "We use CPU
cycles as a measure for system throughput"). We therefore attribute every
busy nanosecond on every physical CPU to a :class:`CycleDomain`, which
lets the reports split useful guest work from virtualization overhead
exactly the way ``perf`` split it on the authors' testbed.

Accounting convention: the per-vCPU state machine in :mod:`repro.host.kvm`
is the only driver of a pinned CPU's timeline and accounts each execution
segment exactly once, *in arrears* (when the segment ends — which is the
only correct choice under preemption, since an interrupt may truncate a
segment that was scheduled to run longer). The ledger itself is therefore
a plain per-domain counter. Two domains — ``HOST_TICK`` (a host tick
arriving while already in root mode) and ``HOST_IO`` (vhost backend
service) — represent work that runs concurrently with the vCPU timeline
and are booked without occupying it. Timeline consistency is asserted by
the integration tests via the invariant
``busy_ns(cpu) − HOST_TICK − HOST_IO <= elapsed``.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.config import MachineSpec
from repro.errors import HardwareError
from repro.sim.engine import Simulator
from repro.sim.timebase import CpuClock


class CycleDomain(enum.Enum):
    """Where a busy CPU nanosecond was spent."""

    #: Application work inside the guest (the "useful" cycles).
    GUEST_USER = "guest_user"
    #: Guest kernel work (tick handlers, scheduler, syscalls, IRQ glue).
    GUEST_KERNEL = "guest_kernel"
    #: Hardware world-switch cost of VM exits and entries.
    VMX_TRANSITION = "vmx_transition"
    #: Cache/TLB refill penalty the guest pays after each world switch.
    POLLUTION = "pollution"
    #: Hypervisor exit-handler work (KVM).
    HOST_HANDLER = "host_handler"
    #: Host scheduler tick processing.
    HOST_TICK = "host_tick"
    #: Host-side I/O backend work (virtio/vhost service).
    HOST_IO = "host_io"
    #: Host scheduling (vCPU block/wake, context switches).
    HOST_SCHED = "host_sched"
    #: KVM halt-polling busy-wait cycles.
    HALT_POLL = "halt_poll"


#: Domains counted as virtualization overhead in reports.
OVERHEAD_DOMAINS = frozenset(
    {
        CycleDomain.VMX_TRANSITION,
        CycleDomain.POLLUTION,
        CycleDomain.HOST_HANDLER,
        CycleDomain.HOST_SCHED,
        CycleDomain.HALT_POLL,
    }
)


class PhysicalCPU:
    """One physical CPU: identity, socket, and busy-time ledger."""

    __slots__ = ("index", "socket", "clock", "_sim", "_busy_ns", "observer")

    def __init__(self, sim: Simulator, index: int, socket: int, clock: CpuClock):
        self._sim = sim
        self.index = index
        self.socket = socket
        self.clock = clock
        self._busy_ns: dict[CycleDomain, int] = {d: 0 for d in CycleDomain}
        #: Ledger observer (the obs-layer sampling profiler). None in
        #: production runs, so the hot path pays one attribute check —
        #: the accounting analogue of ``Tracer.enabled``.
        self.observer = None

    # -------------------------------------------------------------- ledger

    def account(self, domain: CycleDomain, ns: int) -> None:
        """Record ``ns`` nanoseconds of busy time in ``domain``."""
        if ns < 0:
            raise HardwareError(f"cpu{self.index}: negative busy time {ns}")
        self._busy_ns[domain] += ns
        if self.observer is not None:
            self.observer.on_account(self, domain, ns)

    def account_cycles(self, domain: CycleDomain, cycles: int) -> int:
        """Record busy time for ``cycles`` CPU cycles; returns the ns used."""
        ns = self.clock.cycles_to_ns(cycles)
        self.account(domain, ns)
        return ns

    # ------------------------------------------------------------- readouts

    def busy_ns(self, domain: Optional[CycleDomain] = None) -> int:
        """Busy nanoseconds in one domain, or total across all."""
        if domain is not None:
            return self._busy_ns[domain]
        return sum(self._busy_ns.values())

    def busy_cycles(self, domain: Optional[CycleDomain] = None) -> int:
        """Busy cycles (ns converted at the nominal clock)."""
        return self.clock.ns_to_cycles(self.busy_ns(domain))

    def ledger(self) -> dict[CycleDomain, int]:
        """Copy of the per-domain busy-ns table."""
        return dict(self._busy_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<pCPU{self.index} socket={self.socket} busy={self.busy_ns()}ns>"


class Machine:
    """The physical host: a set of CPUs plus the spec they were built from."""

    def __init__(self, sim: Simulator, spec: MachineSpec):
        self.sim = sim
        self.spec = spec
        self.clock = CpuClock(spec.freq_hz)
        self.cpus = [
            PhysicalCPU(sim, i, spec.socket_of(i), self.clock)
            for i in range(spec.total_cpus)
        ]

    def cpu(self, index: int) -> PhysicalCPU:
        if not 0 <= index < len(self.cpus):
            raise HardwareError(f"no such CPU: {index}")
        return self.cpus[index]

    def total_busy_ns(self, domain: Optional[CycleDomain] = None) -> int:
        """Machine-wide busy time, optionally filtered by domain."""
        return sum(c.busy_ns(domain) for c in self.cpus)

    def total_busy_cycles(self, domain: Optional[CycleDomain] = None) -> int:
        return self.clock.ns_to_cycles(self.total_busy_ns(domain))

    def ledger(self) -> dict[CycleDomain, int]:
        """Machine-wide per-domain busy-ns table."""
        out = {d: 0 for d in CycleDomain}
        for c in self.cpus:
            for d, ns in c.ledger().items():
                out[d] += ns
        return out

    def same_socket(self, a: int, b: int) -> bool:
        """True when CPUs ``a`` and ``b`` share a socket (NUMA locality)."""
        return self.cpu(a).socket == self.cpu(b).socket
