"""Simulated hardware: CPUs, timers, interrupt plumbing and I/O devices.

This layer models the x86 timer hardware the paper's mechanism touches —
the TSC, the ``TSC_DEADLINE`` MSR, the per-CPU LAPIC timer and the VMX
preemption timer — plus physical CPUs with per-domain cycle accounting
and storage/network devices with latency models.
"""

from repro.hw.cpu import CycleDomain, Machine, PhysicalCPU
from repro.hw.interrupts import Vector
from repro.hw.lapic import LapicTimer, TimerMode
from repro.hw.msr import Msr, MsrFile
from repro.hw.preemption import PreemptionTimer
from repro.hw.tsc import Tsc

__all__ = [
    "CycleDomain",
    "Machine",
    "PhysicalCPU",
    "Vector",
    "LapicTimer",
    "TimerMode",
    "Msr",
    "MsrFile",
    "PreemptionTimer",
    "Tsc",
]
