"""Base class for queueing I/O devices.

A device accepts requests, services them one at a time (queue depth 1 —
the paper's fio runs use the sync engine, so there is never more than one
outstanding request per job anyway) and signals completion through a
callback. Service time comes from a per-device latency model plus
deterministic per-stream jitter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import HardwareError
from repro.sim.engine import Simulator
from repro.sim.stats import OnlineStats


@dataclass
class IoRequest:
    """One device request."""

    op: str  # "read" | "write"
    offset: int
    size: int
    submit_ns: int = 0
    complete_ns: int = 0
    #: Opaque cookie for the submitter (e.g. the waiting guest task).
    cookie: object = None


CompletionFn = Callable[[IoRequest], None]


class IoDevice:
    """Queue-depth-1 device with a pluggable service-time model."""

    def __init__(self, sim: Simulator, name: str, complete_fn: CompletionFn):
        self.sim = sim
        self.name = name
        self._complete_fn = complete_fn
        self._queue: deque[IoRequest] = deque()
        self._busy = False
        #: Completed-request service-time statistics (ns).
        self.service_stats = OnlineStats()
        self.completed = 0

    # ------------------------------------------------------------ interface

    def service_time_ns(self, req: IoRequest) -> int:
        """Service latency for ``req``; subclasses implement the model."""
        raise NotImplementedError

    def submit(self, req: IoRequest) -> None:
        """Enqueue a request; it completes via the completion callback."""
        if req.size <= 0:
            raise HardwareError(f"{self.name}: request size must be positive")
        if req.op not in ("read", "write"):
            raise HardwareError(f"{self.name}: unknown op {req.op!r}")
        req.submit_ns = self.sim.now
        self._queue.append(req)
        if not self._busy:
            self._start_next()

    @property
    def queue_depth(self) -> int:
        """Requests waiting or in service."""
        return len(self._queue) + (1 if self._busy else 0)

    # ------------------------------------------------------------- internals

    def _start_next(self) -> None:
        if not self._queue:
            return
        self._busy = True
        req = self._queue.popleft()
        dur = self.service_time_ns(req)
        if dur < 0:
            raise HardwareError(f"{self.name}: negative service time {dur}")
        self.sim.schedule(dur, self._finish, req)

    def _finish(self, req: IoRequest) -> None:
        req.complete_ns = self.sim.now
        self.completed += 1
        self.service_stats.add(req.complete_ns - req.submit_ns)
        self._busy = False
        # Deliver completion before starting the next request so the
        # submitter observes strict FIFO completion order.
        self._complete_fn(req)
        self._start_next()
