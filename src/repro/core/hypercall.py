"""The paratick boot hypercall (paper §4.1).

"The guest should declare its tick frequency to the host during the boot
sequence through a hypercall."

The guest side issues :data:`HC_PARATICK_SET_PERIOD` with the tick
period in nanoseconds (see ``ParatickPolicy.on_boot``); the host side
(``VirtualMachine.handle_hypercall``) records the period and enables
virtual-tick injection for every vCPU of the VM.

The paper's implementation (§5.1) assumes host and guest share a tick
frequency and leaves general rate adaptation as future work; we
implement the general design: the host injects at the *guest's declared
rate* regardless of its own, because injection opportunities (VM entries
from host ticks and other exits) are checked against ``last_tick`` —
when the host tick is slower than the guest tick, the guest's own
idle-entry wake timers and workload exits provide additional injection
points, and the Fig. 2 elapsed-time check naturally paces them. The
frequency-mismatch ablation bench quantifies how tick delivery accuracy
degrades when the host rate is not a multiple of the guest rate.
"""

from __future__ import annotations

from repro.host.kvm import HC_PARATICK_SET_PERIOD

__all__ = ["HC_PARATICK_SET_PERIOD"]
