"""Guest-side paratick (paper §5.2, Fig. 3).

The policy that replaces tickless tick management:

* **boot** (§5.2.1) — declare the tick frequency to the host through a
  hypercall; install the vector-235 handler; never arm a tick timer.
* **virtual tick handling** (§5.2.2, Fig. 3a) — perform the standard
  tick work but *never* (re)arm timer hardware.
* **physical tick handling** (§5.2.3, Fig. 3b) — a physical deadline
  programmed at idle entry fires: if the vCPU is still idle the
  interrupt is crucial (treat it as a virtual tick); if the vCPU is
  active, virtual ticks are already flowing, so return without work.
* **idle entry** (§5.2.4, Fig. 3c) — if the recycled tickless logic says
  the tick must be retained, program a one-shot at the regular tick
  interval; else if an RCU event/soft interrupt needs a wake-up, program
  for it — in both cases only when no earlier-or-equal timer is already
  running (the §4.1/§5.2.4 comparison).
* **idle exit** (§5.2.5, Fig. 3d) — nothing: timers set at idle entry
  are deliberately left armed (the keep-timer heuristic; firing while
  active costs one cheap exit, cheaper than a cancel+re-arm pair).
"""

from __future__ import annotations

from repro.guest import ops as gops
from repro.guest.ticksched import TickPolicy
from repro.host.kvm import HC_PARATICK_SET_PERIOD


class ParatickPolicy(TickPolicy):
    """Virtual scheduler ticks — the paper's mechanism."""

    name = "paratick"

    #: Ablation knob (§5.2.5): when False, idle exit cancels the wake
    #: timer like tickless would — the paper's heuristic keeps it armed.
    keep_timer_on_idle_exit: bool = True

    # --------------------------------------------------------------- boot

    def on_boot(self, vidx: int) -> None:
        """§4.1: declare the guest tick frequency through a hypercall."""
        if vidx == 0:
            self.k.push(vidx, gops.Hypercall(HC_PARATICK_SET_PERIOD, self.k.period_ns))

    # ------------------------------------------------------- virtual ticks

    def on_virtual_tick(self, vidx: int) -> None:
        """Fig. 3a: standard tick work, never touches timer hardware."""
        self.k.push_tick_work(vidx)

    # ------------------------------------------------------ physical timer

    def on_timer_irq(self, vidx: int) -> None:
        """Fig. 3b: a physical deadline fired.

        Expired application hrtimers (nanosleep etc.) are processed in
        any state — paratick paravirtualizes only the *scheduler tick*,
        not the hrtimer subsystem. Tick work happens only when the vCPU
        is still idle; an active vCPU is already receiving virtual
        ticks, so the handler performs no tick work and never re-arms.
        """
        k = self.k
        ctx = k.ctx(vidx)
        for timer in ctx.hrtimers.pop_expired(k.now()):
            timer.callback()
        if ctx.idle:
            # Still idle: this interrupt is crucial — treat it as a
            # virtual tick (which also services the wheel/RCU event it
            # was armed for).
            k.push_tick_work(vidx)
            k.service_wheel(vidx)
        # Remaining app hrtimers still need hardware (the §5.2.4
        # comparison: program only if sooner than anything armed —
        # nothing is armed now, the deadline just fired).
        nxt = ctx.hrtimers.next_expiry()
        if nxt is not None:
            k.program_hw(vidx, nxt)

    # ----------------------------------------------------------- idle hooks

    def on_idle_enter(self, vidx: int) -> None:
        """Fig. 3c: conditionally program a wake-up timer."""
        k = self.k
        ctx = k.ctx(vidx)
        if k.rcu.needs_cpu(vidx):
            # "Tick must be retained": wake at the regular tick interval.
            desired = k.now() + k.period_ns
        else:
            desired = k.next_soft_event_ns(vidx)
            if desired is None:
                return  # nothing scheduled; sleep until an external event
        # §5.2.4: compare with the currently-running timer; only program
        # if none is running or the new expiry is sooner.
        if ctx.armed_deadline_ns is None or desired < ctx.armed_deadline_ns:
            k.program_hw(vidx, desired)

    def on_idle_exit(self, vidx: int) -> None:
        """Fig. 3d: nothing — §5.2.5's keep-timer heuristic."""
        if not self.keep_timer_on_idle_exit:
            # Ablation variant: tear the timer down like tickless does.
            ctx = self.k.ctx(vidx)
            if ctx.armed_deadline_ns is not None:
                self.k.program_hw(vidx, None)
