"""Direct Interrupt Delivery (DID) comparison model (paper §7).

DID [36] eliminates timer-related VM exits in hardware: the EIE bit is
cleared so external interrupts reach the VM directly, and timer-MSR
writes are not intercepted. Its price (per the paper's related-work
analysis): "timers set by the hypervisor and descheduled vCPUs are
restricted to a designated core ... Moreover, the designated core can
not be used by VMs. This can be interpreted as a static virtualization
overhead inversely proportional to the number of CPUs in the system."

We model DID analytically on top of measured paratick/tickless runs:

* DID removes the same timer exits paratick removes, **plus** the
  host-tick external-interrupt exits paratick keeps (EIE cleared);
* DID surrenders one physical CPU: a multiplicative ``(n-1)/n``
  throughput factor.

That yields the crossover the paper argues for: below some machine size
the dedicated core costs more than the exits saved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.metrics.perf import RunMetrics


@dataclass(frozen=True)
class DidEstimate:
    """Estimated DID performance relative to a tickless baseline."""

    #: Throughput change vs tickless (positive = better), incl. core loss.
    throughput: float
    #: Exit-count change vs tickless.
    vm_exits: float
    #: The throughput change ignoring the dedicated-core loss.
    throughput_without_core_loss: float


def estimate_did(
    baseline: RunMetrics,
    paratick: RunMetrics,
    *,
    machine_cpus: int,
    exit_cost_cycles: int,
    clock_hz: int,
) -> DidEstimate:
    """Estimate DID from a measured tickless/paratick pair.

    Args:
        baseline: the tickless run.
        paratick: the paratick run on the same workload/seed.
        machine_cpus: physical CPUs, one of which DID dedicates.
        exit_cost_cycles: all-in cost of one exit (cost model:
            ``vmexit_hw + handler + vmentry_hw + pollution``).
        clock_hz: CPU clock, to convert exit savings into cycles.
    """
    if machine_cpus < 2:
        raise ConfigError("DID needs at least two CPUs (one is dedicated)")
    # Exits DID removes: everything paratick removed, plus the host-tick
    # exits paratick still takes while running.
    paratick_removed = baseline.total_exits - paratick.total_exits
    host_tick_exits = paratick.exits.by_tag(_host_tick_tag())
    did_removed = paratick_removed + host_tick_exits
    did_exits = baseline.total_exits - did_removed
    # Cycle savings from the extra removed exits, relative to baseline.
    cycles_saved = did_removed * exit_cost_cycles
    gross = baseline.total_cycles / max(baseline.total_cycles - cycles_saved, 1) - 1.0
    core_factor = (machine_cpus - 1) / machine_cpus
    net = (1.0 + gross) * core_factor - 1.0
    return DidEstimate(
        throughput=net,
        vm_exits=did_exits / baseline.total_exits - 1.0,
        throughput_without_core_loss=gross,
    )


def crossover_cpus(gross_throughput_gain: float) -> float:
    """Machine size above which DID's core loss is amortized.

    DID nets positive when ``(1+g)·(n−1)/n > 1``, i.e. ``n > (1+g)/g``.
    """
    if gross_throughput_gain <= 0:
        return float("inf")
    return (1.0 + gross_throughput_gain) / gross_throughput_gain


def _host_tick_tag():
    from repro.host.exitreasons import ExitTag

    return ExitTag.TIMER_HOST_TICK
