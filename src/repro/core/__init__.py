"""Paratick — the paper's contribution.

Virtual scheduler ticks (§4): the guest stops managing its own scheduler
tick; the host injects virtual ticks (vector 235) on VM entry, reusing
the VM exits its own host ticks already cause. Split exactly like the
paper's implementation (§5): a guest side
(:mod:`repro.core.paratick_guest`, the tick policy replacing
``kernel/time/tick-sched.c`` behaviour) and a host side
(the entry hook living in :mod:`repro.host.kvm`, governed by the state
declared through :mod:`repro.core.hypercall`). The analytical models of
§3 are in :mod:`repro.core.model`.
"""

from repro.core.paratick_guest import ParatickPolicy
from repro.core.model import (
    periodic_exits,
    tickless_exits,
    paratick_exits,
    crossover_idle_period_ns,
    table1_row,
)

__all__ = [
    "ParatickPolicy",
    "periodic_exits",
    "tickless_exits",
    "paratick_exits",
    "crossover_idle_period_ns",
    "table1_row",
]
