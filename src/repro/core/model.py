"""Analytical VM-exit models (paper §3.1–§3.3).

The paper derives closed-form exit counts for tick management:

* periodic (§3.1):   ``exits = 2 · t · Σ (n_vCPU · f_tick)``
* tickless (§3.2):   ``exits = 2 · t · Σ (L·n_vCPU·f_tick + (1−L)·n_vCPU / T_idle)``

and instantiates them for four workloads in **Table 1**. The printed
table, however, corresponds to counting **one** exit per tick and **two**
per idle entry/exit pair (e.g. W1: 10 s × 16 vCPU × 250 Hz = 40 000, not
80 000) — the leading factor 2 of the §3.1 formula is dropped. Both
conventions are exposed here; the Table 1 benchmark uses
:data:`TABLE1_CONVENTION` to reproduce the printed values and
EXPERIMENTS.md records the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ExitConvention:
    """How many exits each mechanical event costs.

    * ``per_tick`` — exits per delivered scheduler tick (delivery, and
      optionally the EOI/re-arm write).
    * ``per_idle_transition_pair`` — exits per idle entry+exit pair in a
      tickless guest (stop write + restart write).
    """

    per_tick: int
    per_idle_transition_pair: int

    def __post_init__(self) -> None:
        if self.per_tick < 0 or self.per_idle_transition_pair < 0:
            raise ConfigError("exit convention counts must be >= 0")


#: The §3.1/§3.2 formulas as written (leading factor 2).
FORMULA_CONVENTION = ExitConvention(per_tick=2, per_idle_transition_pair=2)
#: The convention that reproduces Table 1's printed numbers.
TABLE1_CONVENTION = ExitConvention(per_tick=1, per_idle_transition_pair=2)


@dataclass(frozen=True)
class VmLoadModel:
    """One VM's parameters for the analytical model."""

    vcpus: int
    tick_hz: float
    #: Utilization as a fraction of maximum VM throughput (paper's L_n).
    load: float
    #: Idle entry+exit pairs per second, VM-wide. For blocking-sync
    #: workloads this is the synchronization rate (§3.3's W3: "16
    #: threads, synchronizing 1000 times per second" → 1000/s).
    idle_transitions_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ConfigError("vcpus must be positive")
        if self.tick_hz <= 0:
            raise ConfigError("tick frequency must be positive")
        if not 0.0 <= self.load <= 1.0:
            raise ConfigError(f"load must be in [0,1], got {self.load}")
        if self.idle_transitions_hz < 0:
            raise ConfigError("idle transition rate must be >= 0")


def periodic_exits(
    vms: list[VmLoadModel], duration_s: float, convention: ExitConvention = FORMULA_CONVENTION
) -> float:
    """§3.1: every vCPU ticks at f_tick regardless of load."""
    return convention.per_tick * duration_s * sum(m.vcpus * m.tick_hz for m in vms)


def tickless_exits(
    vms: list[VmLoadModel], duration_s: float, convention: ExitConvention = FORMULA_CONVENTION
) -> float:
    """§3.2: active vCPUs tick; idle transitions reprogram the hardware."""
    total = 0.0
    for m in vms:
        active_ticks = m.load * m.vcpus * m.tick_hz * convention.per_tick
        transitions = m.idle_transitions_hz * convention.per_idle_transition_pair
        total += duration_s * (active_ticks + transitions)
    return total


def paratick_exits(
    vms: list[VmLoadModel],
    duration_s: float,
    *,
    arm_fraction: float = 0.1,
) -> float:
    """Guest-initiated timer exits under paratick (§4.2).

    Virtual ticks piggyback on exits the host causes anyway, so the only
    guest-initiated timer exits left are idle-entry wake-timer
    programmings — and the §5.2.4 comparison skips the write whenever an
    earlier-or-equal timer is still armed, leaving only a fraction
    (``arm_fraction``) of idle entries paying one exit.
    """
    if not 0.0 <= arm_fraction <= 1.0:
        raise ConfigError(f"arm_fraction must be in [0,1], got {arm_fraction}")
    return duration_s * sum(m.idle_transitions_hz * arm_fraction for m in vms)


def tickless_exits_from_idle_period(
    vms: list[VmLoadModel], duration_s: float, t_idle_s: float,
    convention: ExitConvention = FORMULA_CONVENTION,
) -> float:
    """The §3.2 formula in its published form, parameterized by T_idle:

    ``exits = c · t · Σ (L·n·f + (1−L)·n / T_idle)``
    """
    if t_idle_s <= 0:
        raise ConfigError("T_idle must be positive")
    total = 0.0
    for m in vms:
        active = m.load * m.vcpus * m.tick_hz
        idle = (1.0 - m.load) * m.vcpus / t_idle_s
        total += duration_s * (convention.per_tick * active + convention.per_idle_transition_pair * idle)
    return total


def crossover_idle_period_ns(tick_period_ns: int, vcpus_per_pcpu: float) -> float:
    """§3.3: tickless beats periodic iff the average idle period exceeds
    the vCPU tick period divided by the CPU sharing ratio."""
    if tick_period_ns <= 0 or vcpus_per_pcpu <= 0:
        raise ConfigError("tick period and sharing ratio must be positive")
    return tick_period_ns / vcpus_per_pcpu


# ---------------------------------------------------------------------------
# Table 1 workloads (§3.3)
# ---------------------------------------------------------------------------

#: The four hypothetical workloads of §3.3. All run 10 s at 250 Hz on a
#: 16-pCPU host.
TABLE1_DURATION_S = 10.0


def table1_workloads() -> dict[str, list[VmLoadModel]]:
    """W1–W4 as defined in §3.3."""
    idle_vm = VmLoadModel(vcpus=16, tick_hz=250, load=0.0, idle_transitions_hz=0.0)
    sync_vm = VmLoadModel(vcpus=16, tick_hz=250, load=1.0, idle_transitions_hz=1000.0)
    return {
        "W1": [idle_vm],
        "W2": [idle_vm] * 4,
        "W3": [sync_vm],
        "W4": [sync_vm] * 4,
    }


def table1_row(name: str) -> tuple[int, int]:
    """(periodic, tickless) exit counts for one Table 1 workload, using
    the convention that reproduces the printed table."""
    vms = table1_workloads()[name]
    return (
        round(periodic_exits(vms, TABLE1_DURATION_S, TABLE1_CONVENTION)),
        round(tickless_exits(vms, TABLE1_DURATION_S, TABLE1_CONVENTION)),
    )


#: The values printed in the paper's Table 1.
TABLE1_PAPER = {
    "W1": (40_000, 0),
    "W2": (160_000, 0),
    "W3": (40_000, 60_000),
    "W4": (160_000, 240_000),
}
