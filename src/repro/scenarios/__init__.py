"""Scenario-matrix DSL: declarative experiment grids + perturbations.

See :mod:`repro.scenarios.matrix` for the file format,
:mod:`repro.scenarios.fuzzbridge` for the fuzz-seed bridge, and
:mod:`repro.scenarios.runcheck` for sanitized conformance checking and
grid execution. CLI: ``python -m repro matrix {expand,check,run} FILE``.
"""

from repro.scenarios.fuzzbridge import fuzz_cells, fuzz_matrix_cells, workload_spec_for
from repro.scenarios.matrix import AXES, Cell, Matrix, load_matrix, parse_matrix
from repro.scenarios.runcheck import (
    CellCheck,
    check_cell,
    check_cells,
    identity_problems,
    run_cells,
    run_cells_resumable,
)

__all__ = [
    "AXES",
    "Cell",
    "CellCheck",
    "Matrix",
    "check_cell",
    "check_cells",
    "fuzz_cells",
    "fuzz_matrix_cells",
    "identity_problems",
    "load_matrix",
    "parse_matrix",
    "run_cells",
    "run_cells_resumable",
    "workload_spec_for",
]
