"""Bridge the differential fuzzer's seed expansion into matrix cells.

The fuzz harness (:mod:`repro.analysis.fuzz`) expands a seed into a
scenario plus (optionally) a perturbation schedule. This module compiles
that expansion into the same :class:`~repro.scenarios.matrix.Cell`
representation the matrix DSL produces, so random fuzz scenarios and
hand-written matrices share one schema, one cell-ID convention, one
cache key and one check/run path (:mod:`repro.scenarios.runcheck`).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.fuzz import (
    OVERCOMMIT,
    SOLO,
    FuzzScenario,
    perturbations_for_seed,
    placement_for,
    scenario_for_seed,
)
from repro.config import TickMode
from repro.experiments.parallel import RunSpec, WorkloadSpec
from repro.scenarios.matrix import Cell

#: Fuzz scenario kind -> registered workload-factory kind, with the
#: parameter spellings :meth:`FuzzScenario.make_workload` applies.
_KIND_MAP = {
    "pingpong": "micro.pingpong",
    "syncstorm": "micro.syncstorm",
    "idleperiod": "micro.idleperiod",
    "idle": "micro.idle",
}


def workload_spec_for(scenario: FuzzScenario) -> WorkloadSpec:
    """The scenario's workload as a grid-compatible :class:`WorkloadSpec`."""
    p = dict(scenario.params)
    if scenario.kind == "pingpong":
        params = {"rounds": p["rounds"], "work_cycles": p["work_cycles"],
                  "same_vcpu": bool(p["same_vcpu"])}
    elif scenario.kind == "syncstorm":
        params = {"threads": p["threads"],
                  "events_per_second": float(p["events_hz"]),
                  "duration_cycles": p["duration_cycles"]}
    elif scenario.kind == "idleperiod":
        params = {"idle_ns": p["idle_ns"], "iterations": p["iterations"],
                  "work_cycles": p["work_cycles"]}
    elif scenario.kind == "idle":
        params = {"vcpus": p["vcpus"]}
    else:
        raise ValueError(f"unknown scenario kind {scenario.kind!r}")
    return WorkloadSpec.make(_KIND_MAP[scenario.kind], **params)


def fuzz_cells(
    seed: int,
    *,
    placements: tuple[str, ...] = (SOLO, OVERCOMMIT),
    perturb: bool = False,
) -> list[Cell]:
    """Expand one fuzz seed into matrix cells (mode x placement).

    Cell IDs follow the fuzz run labels (``fuzz<seed>/<kind>/<mode>/
    <placement>[/perturbed]``), and since the ID becomes the spec's
    ``label`` — part of the content-addressed cache key — a fuzz cell
    and a matrix cell can never collide in the result cache.
    """
    scenario = scenario_for_seed(seed)
    perturbations = (
        perturbations_for_seed(seed, scenario.horizon_ns) if perturb else ()
    )
    ws = workload_spec_for(scenario)
    nvcpus = scenario.make_workload().default_vcpus()
    cells: list[Cell] = []
    for placement in placements:
        mspec, pinned = placement_for(nvcpus, placement)
        for mode in TickMode:
            cid = f"fuzz{seed}/{scenario.kind}/{mode.value}/{placement}"
            perturb_coord = "none"
            if perturb:
                cid += "/perturbed"
                perturb_coord = "fuzzed"
            spec = RunSpec(
                workload=ws,
                tick_mode=mode,
                seed=seed,
                vcpus=nvcpus,
                machine=mspec,
                pinned_cpus=pinned,
                tick_hz=scenario.tick_hz,
                noise=scenario.noise,
                cpuidle=scenario.cpuidle,
                horizon_ns=scenario.horizon_ns,
                perturbations=perturbations,
                label=cid,
            )
            cells.append(Cell(
                id=cid,
                coords=(
                    ("workload", scenario.kind),
                    ("mode", mode.value),
                    ("placement", placement),
                    ("stress", _stress_name(scenario)),
                    ("host_timer", f"hz{scenario.tick_hz}"),
                    ("perturb", perturb_coord),
                    ("seed", str(seed)),
                ),
                spec=spec,
            ))
    return cells


def fuzz_matrix_cells(
    seeds: Iterable[int],
    *,
    placements: tuple[str, ...] = (SOLO, OVERCOMMIT),
    perturb: bool = False,
) -> list[Cell]:
    """Expand a seed range into one flat, deterministic cell list."""
    out: list[Cell] = []
    for seed in seeds:
        out.extend(fuzz_cells(int(seed), placements=placements, perturb=perturb))
    return out


def _stress_name(scenario: FuzzScenario) -> str:
    if scenario.noise and scenario.cpuidle:
        return "noise+cpuidle"
    if scenario.noise:
        return "noise"
    if scenario.cpuidle:
        return "cpuidle"
    return "none"
