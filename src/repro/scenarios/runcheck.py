"""Run and check expanded scenario cells.

Three entry points, all over the shared :class:`~repro.scenarios.matrix.Cell`
representation (hand-written matrices and fuzz expansions alike):

* :func:`check_cell` / :func:`check_cells` — serial **conformance** runs:
  every cell executes under the full :class:`~repro.analysis.checkers.TickSanitizer`
  (including the perturbation-aware suspend-span / restore-rearm /
  hotplug checkers) with a :class:`~repro.obs.steal.StealTracker` teed
  onto the same event stream, then goes through the reconcile battery.
* :func:`run_cells` — throughput path: compile to specs and hand the
  grid to :func:`repro.experiments.parallel.run_grid` (cache + workers).
* :func:`identity_problems` — the determinism gate: the same cells run
  serially, pooled, and from a warm cache must produce **byte-identical**
  canonical metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.analysis.checkers import TickSanitizer
from repro.analysis.reconcile import reconcile_run
from repro.config import MachineSpec
from repro.errors import ReproError
from repro.experiments.parallel import GridResult, RunSpec, _keep_timer, run_grid
from repro.metrics.perf import RunMetrics
from repro.scenarios.matrix import Cell


@dataclass
class CellCheck:
    """Outcome of one sanitized cell run."""

    cell: Cell
    metrics: Optional[RunMetrics]
    problems: list[str]
    events: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems


def check_cell(cell: Cell) -> CellCheck:
    """Execute one cell serially under the sanitizer + reconcile battery.

    Mirrors :func:`repro.experiments.parallel.execute_spec` (costs,
    keep-timer policy, horizon default) but wraps the run in the tracer
    stack the fuzz harness uses, so matrix cells and fuzz scenarios are
    checked to exactly the same standard.
    """
    from repro.experiments.parallel import FLEET_HOST
    from repro.experiments.runner import DEFAULT_HORIZON_NS, run_workload
    from repro.host.costs import DEFAULT_COSTS
    from repro.obs.steal import StealTracker
    from repro.sim.trace import TeeTracer

    spec = cell.spec
    sanitizer = TickSanitizer(mode=spec.tick_mode)
    steal = StealTracker()
    internals: dict = {}

    def inspect(sim, machine, hv, vm) -> None:
        internals["machine"] = machine
        internals["now"] = sim.now
        internals["hv"] = hv

    costs = DEFAULT_COSTS
    if spec.cost_overrides:
        costs = costs.with_overrides(**dict(spec.cost_overrides))
    try:
        with _keep_timer(spec.keep_timer_on_idle_exit):
            if spec.workload.kind == FLEET_HOST:
                # A fleet host shard: the same tracer stack and the same
                # battery, over the multi-VM host simulation.
                from repro.fleet.hostsim import run_host
                from repro.fleet.spec import fleet_params

                metrics = run_host(
                    tick_mode=spec.tick_mode,
                    seed=spec.seed,
                    tick_hz=spec.tick_hz,
                    noise=spec.noise,
                    cpuidle=spec.cpuidle,
                    costs=costs,
                    features=spec.features,
                    horizon_ns=spec.horizon_ns,
                    label=spec.label or cell.id,
                    perturbations=spec.perturbations,
                    tracer=TeeTracer(sanitizer, steal),
                    inspect=inspect,
                    **fleet_params(spec),
                )
            else:
                metrics = run_workload(
                    spec.workload.build(),
                    tick_mode=spec.tick_mode,
                    vcpus=spec.vcpus,
                    pinned_cpus=spec.pinned_cpus,
                    machine_spec=spec.machine,
                    features=spec.features,
                    costs=costs,
                    tick_hz=spec.tick_hz,
                    seed=spec.seed,
                    noise=spec.noise,
                    cpuidle=spec.cpuidle,
                    device_kind=spec.device_kind,
                    horizon_ns=spec.horizon_ns if spec.horizon_ns is not None else DEFAULT_HORIZON_NS,
                    label=spec.label or cell.id,
                    perturbations=spec.perturbations,
                    tracer=TeeTracer(sanitizer, steal),
                    inspect=inspect,
                )
    except ReproError as exc:
        sanitizer.finish()
        return CellCheck(cell, None, [f"run failed: {type(exc).__name__}: {exc}"],
                         events=sanitizer.events)
    problems = [str(v) for v in sanitizer.finish()]
    machine_spec = spec.machine if spec.machine is not None else MachineSpec()
    problems += reconcile_run(
        sanitizer, metrics,
        freq_hz=machine_spec.freq_hz,
        machine=internals.get("machine"),
        now_ns=internals.get("now"),
        steal_tracker=steal,
        hv=internals.get("hv"),
    )
    return CellCheck(cell, metrics, problems, events=sanitizer.events)


def check_cells(
    cells: Iterable[Cell],
    *,
    progress: Optional[Callable[[CellCheck], None]] = None,
    telemetry=None,
) -> list[CellCheck]:
    """Sanitize every cell; ``progress(check)`` is called per cell.

    ``telemetry`` records a ``check.cell`` span per cell on the
    ``sanitizer`` lane plus pass/fail counters; detached costs one
    boolean check per cell.
    """
    tel = telemetry if (telemetry is not None and telemetry.enabled) else None
    checks = []
    for cell in cells:
        if tel is not None:
            with tel.span("check.cell", lane="sanitizer", cell=cell.id) as attrs:
                check = check_cell(cell)
                attrs.update(ok=check.ok, events=check.events)
            tel.counter("cells_checked", help="sanitizer cells checked",
                        outcome="ok" if check.ok else "failed")
        else:
            check = check_cell(cell)
        checks.append(check)
        if progress is not None:
            progress(check)
    return checks


def run_cells(cells: Iterable[Cell], **grid_kwargs: Any) -> GridResult:
    """Run cells through the parallel engine (cache, workers, retries)."""
    return run_grid([c.spec for c in cells], **grid_kwargs)


def run_cells_resumable(
    cells: Iterable[Cell],
    *,
    journal=None,
    resume=None,
    **grid_kwargs: Any,
) -> GridResult:
    """:func:`run_cells` with crash-safe journaling and ``--resume``.

    ``journal`` (a path) records every cell's lifecycle durably;
    ``resume`` (a path) replays a previous journal, skipping completed
    cells after re-verifying their cached bytes. Resuming without a
    separate ``journal`` appends the new lifecycle to the resumed file
    — the common ``--resume run.journal`` shape. Raises
    :class:`~repro.resilience.journal.ResumeError` when the matrix no
    longer matches the journaled grid.
    """
    if resume is not None and journal is None:
        journal = resume
    return run_grid([c.spec for c in cells], journal=journal, resume=resume,
                    **grid_kwargs)


def canonical_result_bytes(result: Any) -> bytes:
    """Deterministic byte encoding of a run result (identity compares)."""
    from repro.experiments.parallel import encode_result

    return json.dumps(encode_result(result), sort_keys=True,
                      separators=(",", ":")).encode()


def identity_problems(
    cells: list[Cell],
    *,
    jobs: int = 2,
    cache_dir: str,
    progress: Optional[Callable[[Any], None]] = None,
) -> list[str]:
    """Check serial / pooled / cached execution agree byte-for-byte.

    Runs the grid three ways — serially without a cache, pooled without
    a cache, and pooled into ``cache_dir`` followed by a serial pass
    that must be served entirely from that cache — and compares each
    cell's canonical result bytes across all four readings.
    """
    specs = [c.spec for c in cells]
    serial = run_grid(specs, jobs=None, use_cache=False, progress=progress).raise_if_failed()
    pooled = run_grid(specs, jobs=jobs, use_cache=False, progress=progress).raise_if_failed()
    warm = run_grid(specs, jobs=jobs, cache_dir=cache_dir,
                    use_cache=True, progress=progress).raise_if_failed()
    cached = run_grid(specs, jobs=None, cache_dir=cache_dir,
                      use_cache=True, progress=progress).raise_if_failed()

    problems: list[str] = []
    if cached.cache_hits != len(set(specs)):
        problems.append(
            f"cache replay served {cached.cache_hits}/{len(set(specs))} "
            f"cells from the store"
        )
    for cell in cells:
        readings = {
            "serial": canonical_result_bytes(serial[cell.spec]),
            "pooled": canonical_result_bytes(pooled[cell.spec]),
            "warm": canonical_result_bytes(warm[cell.spec]),
            "cached": canonical_result_bytes(cached[cell.spec]),
        }
        reference = readings.pop("serial")
        for name, blob in readings.items():
            if blob != reference:
                problems.append(f"{cell.id}: {name} result differs from serial run")
    return problems
