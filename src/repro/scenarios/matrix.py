"""Scenario-matrix DSL: declarative experiment grids with perturbations.

A *matrix file* (TOML or YAML) names options along eight axes —

    workload x mode x arch x placement x stress x host_timer x perturb x fleet

— plus a seed list, and expands their Cartesian product into
:class:`Cell` objects, each carrying a stable human-readable **cell ID**
(``netserve/paratick/oc4/suspend@5ms``) and a fully compiled
:class:`~repro.experiments.parallel.RunSpec`. The ID doubles as the
spec's ``label``, so it round-trips through the content-addressed result
cache: the same cell always lands on the same cache key, and two cells
never share one.

Minimal example::

    [matrix]
    name = "smoke"
    seeds = [0, 1]

    [axes]
    workload = ["ping"]
    mode = ["tickless", "paratick"]
    perturb = ["none", "suspend@5ms"]

    [workloads.ping]
    kind = "micro.pingpong"
    params = { rounds = 40, work_cycles = 30000, same_vcpu = false }

    [perturbs."suspend@5ms"]
    kind = "suspend"
    at_ms = 5
    duration_ms = 2

    [[exclude]]
    mode = "paratick"
    perturb = "suspend@5ms"

Axis options resolve through *named definition tables* (``[workloads.X]``,
``[placements.X]``, ``[stresses.X]``, ``[host_timers.X]``,
``[perturbs.X]``) or through built-ins:

* ``mode`` — ``periodic`` / ``tickless`` / ``paratick``;
* ``arch`` — ``x86`` (default) or ``arm``: the timer architecture both
  the guests and the hypervisor simulate (:mod:`repro.hw.timerhw`);
* ``placement`` — ``solo`` (1:1 pinned) or ``oc<K>`` (K vCPUs share
  each physical CPU); a ``[placements.X]`` table may give ``pcpus``
  explicitly;
* ``stress`` — ``none``, ``noise``, ``cpuidle``, ``noise+cpuidle``;
* ``host_timer`` — ``hz<N>`` (host tick rate);
* ``perturb`` — ``none``, or a ``[perturbs.X]`` table holding one
  perturbation's fields (or ``events = [...]`` for a schedule).
  Durations accept ``_ns`` / ``_us`` / ``_ms`` suffixes.
* ``fleet`` — ``none`` (single-VM cells, the default), or a
  ``[fleets.X]`` table (``hosts``, ``guests``, ``consolidation``,
  ``burst``, optional ``burst_window_ms``/``burst_waves``). A fleet
  option fans the cell into ``hosts`` independent host shards — cell
  IDs gain a ``/h<NN>`` suffix and each shard compiles to one
  ``fleet.host`` spec riding the same cache keys, pool, and sanitizer
  battery as every other cell. Fleet cells require the ``solo``
  placement (the host's physical CPU count comes from the
  consolidation ratio); pair other placements with fleets via
  ``[[exclude]]``.

``[[exclude]]`` tables remove cells whose coordinates match *all* the
given ``axis = "option"`` pairs. Expansion order is deterministic:
axes in the fixed order above, options in file order, seeds last,
host shards innermost.

The differential fuzzer's seed expansion compiles into the very same
:class:`Cell` representation (:mod:`repro.scenarios.fuzzbridge`), so
hand-written matrices and random fuzz scenarios share one schema and
one execution/checking path (:mod:`repro.scenarios.runcheck`).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.config import MachineSpec, TickMode
from repro.errors import ConfigError
from repro.experiments.parallel import RunSpec, WorkloadSpec
from repro.host.perturb import Perturbation
from repro.sim.timebase import MSEC, USEC

#: Fixed axis order (expansion order and cell-ID part order).
AXES = ("workload", "mode", "arch", "placement", "stress", "host_timer", "perturb", "fleet")

#: Recognised timer architectures (see :mod:`repro.hw.timerhw`).
ARCH_OPTIONS = ("x86", "arm")

#: Axes that always contribute a cell-ID part, even with one option.
ALWAYS_IN_ID = ("workload", "mode")

_OC_RE = re.compile(r"^oc(\d+)$")
_HZ_RE = re.compile(r"^hz(\d+)$")


@dataclass(frozen=True)
class Cell:
    """One expanded matrix cell: ID + coordinates + compiled spec."""

    id: str
    #: ``(axis, option)`` pairs in axis order, seed last.
    coords: tuple[tuple[str, str], ...]
    spec: RunSpec

    def coord(self, axis: str) -> str:
        return dict(self.coords)[axis]


def _ns_field(table: dict, base: str, *, default: Optional[int] = None) -> int:
    """Read ``<base>_ns`` / ``<base>_us`` / ``<base>_ms`` (exactly one)."""
    present = [u for u in ("ns", "us", "ms") if f"{base}_{u}" in table]
    if not present:
        if default is None:
            raise ConfigError(f"perturbation needs {base}_ns/{base}_us/{base}_ms")
        return default
    if len(present) > 1:
        raise ConfigError(f"give {base} in one unit, not {present}")
    unit = present[0]
    value = int(table[f"{base}_{unit}"])
    return value * {"ns": 1, "us": USEC, "ms": MSEC}[unit]


def _perturbation_from_table(table: dict) -> Perturbation:
    known = {
        "kind", "count",
        "at_ns", "at_us", "at_ms",
        "duration_ns", "duration_us", "duration_ms",
        "period_ns", "period_us", "period_ms",
        "step_ns", "step_us", "step_ms",
    }
    unknown = set(table) - known
    if unknown:
        raise ConfigError(f"unknown perturbation fields {sorted(unknown)}")
    return Perturbation(
        kind=table.get("kind", ""),
        at_ns=_ns_field(table, "at"),
        duration_ns=_ns_field(table, "duration", default=0),
        count=int(table.get("count", 1)),
        period_ns=_ns_field(table, "period", default=0),
        step_ns=_ns_field(table, "step", default=0),
    )


class Matrix:
    """A parsed scenario matrix; :meth:`expand` compiles the grid."""

    def __init__(self, doc: dict, *, origin: str = "<matrix>"):
        self.origin = origin
        if not isinstance(doc, dict):
            raise ConfigError(f"{origin}: top level must be a table/mapping")
        meta = doc.get("matrix", {})
        self.name: str = meta.get("name") or "matrix"
        seeds = meta.get("seeds", [0])
        if not isinstance(seeds, list) or not seeds:
            raise ConfigError(f"{origin}: matrix.seeds must be a non-empty list")
        self.seeds: tuple[int, ...] = tuple(int(s) for s in seeds)
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError(f"{origin}: duplicate seeds {seeds}")
        self.horizon_ns: Optional[int] = (
            _ns_field(meta, "horizon") if any(f"horizon_{u}" in meta for u in ("ns", "us", "ms"))
            else None
        )

        axes_doc = doc.get("axes")
        if not isinstance(axes_doc, dict):
            raise ConfigError(f"{origin}: an [axes] table is required")
        unknown = set(axes_doc) - set(AXES)
        if unknown:
            raise ConfigError(f"{origin}: unknown axes {sorted(unknown)} (know {AXES})")
        defaults = {"arch": ["x86"], "placement": ["solo"], "stress": ["none"],
                    "host_timer": ["hz250"], "perturb": ["none"],
                    "fleet": ["none"]}
        self.axes: dict[str, tuple[str, ...]] = {}
        for axis in AXES:
            options = axes_doc.get(axis, defaults.get(axis))
            if options is None:
                raise ConfigError(f"{origin}: axis {axis!r} is required")
            if not isinstance(options, list) or not options:
                raise ConfigError(f"{origin}: axis {axis!r} must be a non-empty list")
            options = [str(o) for o in options]
            if len(set(options)) != len(options):
                raise ConfigError(f"{origin}: axis {axis!r} repeats an option")
            self.axes[axis] = tuple(options)
        for a in self.axes["arch"]:
            if a not in ARCH_OPTIONS:
                raise ConfigError(
                    f"{origin}: unknown arch {a!r} (know {ARCH_OPTIONS})"
                )

        self._workloads: dict = doc.get("workloads", {})
        self._placements: dict = doc.get("placements", {})
        self._stresses: dict = doc.get("stresses", {})
        self._host_timers: dict = doc.get("host_timers", {})
        self._perturbs: dict = doc.get("perturbs", {})
        self._fleets: dict = doc.get("fleets", {})
        self.excludes: list[dict[str, str]] = []
        for ex in doc.get("exclude", []):
            if not isinstance(ex, dict) or not ex:
                raise ConfigError(f"{origin}: [[exclude]] entries must be non-empty tables")
            bad = set(ex) - set(AXES) - {"seed"}
            if bad:
                raise ConfigError(f"{origin}: exclude on unknown axes {sorted(bad)}")
            self.excludes.append({k: str(v) for k, v in ex.items()})

        # Resolve every referenced option eagerly so bad names fail at
        # load time, not mid-expansion.
        self._resolved_workloads = {n: self._workload_def(n) for n in self.axes["workload"]}
        self._resolved_stress = {n: self._stress_def(n) for n in self.axes["stress"]}
        self._resolved_hz = {n: self._host_timer_def(n) for n in self.axes["host_timer"]}
        self._resolved_perturbs = {n: self._perturb_def(n) for n in self.axes["perturb"]}
        self._resolved_fleets = {n: self._fleet_def(n) for n in self.axes["fleet"]}
        for name in self.axes["placement"]:
            self._placement_def(name)  # validates

    # ----------------------------------------------------- option resolvers

    def _workload_def(self, name: str) -> tuple[WorkloadSpec, int]:
        table = self._workloads.get(name)
        if not isinstance(table, dict) or "kind" not in table:
            raise ConfigError(
                f"{self.origin}: workload {name!r} needs a [workloads.{name}] "
                f"table with a 'kind'"
            )
        params = table.get("params", {})
        if not isinstance(params, dict):
            raise ConfigError(f"{self.origin}: workloads.{name}.params must be a table")
        ws = WorkloadSpec.make(str(table["kind"]), **params)
        vcpus = table.get("vcpus")
        nv = int(vcpus) if vcpus is not None else ws.build().default_vcpus()
        if nv < 1:
            raise ConfigError(f"{self.origin}: workload {name!r} resolves to {nv} vCPUs")
        return ws, nv

    def _placement_def(self, name: str):
        table = self._placements.get(name)
        if isinstance(table, dict):
            pcpus = int(table.get("pcpus", 0))
            if pcpus < 1:
                raise ConfigError(f"{self.origin}: placements.{name} needs pcpus >= 1")
            return lambda nv: _squeeze(nv, pcpus)
        if name == "solo":
            return lambda nv: _squeeze(nv, nv)
        m = _OC_RE.match(name)
        if m:
            k = int(m.group(1))
            if k < 2:
                raise ConfigError(f"{self.origin}: {name!r} must overcommit (oc2+)")
            return lambda nv: _squeeze(nv, max(1, -(-nv // k)))
        raise ConfigError(
            f"{self.origin}: unknown placement {name!r} (builtin: solo, oc<K>; "
            f"or define [placements.{name}])"
        )

    def _stress_def(self, name: str) -> tuple[bool, bool]:
        table = self._stresses.get(name)
        if isinstance(table, dict):
            return bool(table.get("noise", False)), bool(table.get("cpuidle", False))
        builtin = {
            "none": (False, False), "noise": (True, False),
            "cpuidle": (False, True), "noise+cpuidle": (True, True),
        }
        if name in builtin:
            return builtin[name]
        raise ConfigError(
            f"{self.origin}: unknown stress {name!r} "
            f"(builtin: {sorted(builtin)}; or define [stresses.{name}])"
        )

    def _host_timer_def(self, name: str) -> int:
        table = self._host_timers.get(name)
        if isinstance(table, dict):
            hz = int(table.get("tick_hz", 0))
            if hz < 1:
                raise ConfigError(f"{self.origin}: host_timers.{name} needs tick_hz >= 1")
            return hz
        m = _HZ_RE.match(name)
        if m:
            return int(m.group(1))
        raise ConfigError(
            f"{self.origin}: unknown host_timer {name!r} (builtin: hz<N>; "
            f"or define [host_timers.{name}])"
        )

    def _fleet_def(self, name: str) -> Optional[dict]:
        """Resolve one fleet option; None means a plain single-VM cell."""
        if name == "none":
            return None
        table = self._fleets.get(name)
        if not isinstance(table, dict):
            raise ConfigError(
                f"{self.origin}: unknown fleet {name!r} "
                f"(builtin: none; or define [fleets.{name}])"
            )
        from repro.fleet.spec import BURSTS, DEFAULT_BURST_WINDOW_NS

        known = {
            "hosts", "guests", "consolidation", "burst", "burst_waves",
            "burst_window_ns", "burst_window_us", "burst_window_ms",
        }
        unknown = set(table) - known
        if unknown:
            raise ConfigError(
                f"{self.origin}: unknown fleet fields {sorted(unknown)} "
                f"in [fleets.{name}]"
            )
        fdef = {
            "hosts": int(table.get("hosts", 4)),
            "guests": int(table.get("guests", 8)),
            "consolidation": int(table.get("consolidation", 4)),
            "burst": str(table.get("burst", "burst")),
            "burst_window_ns": _ns_field(
                table, "burst_window", default=DEFAULT_BURST_WINDOW_NS
            ),
            "burst_waves": int(table.get("burst_waves", 4)),
        }
        if fdef["hosts"] < 1 or fdef["guests"] < 1 or fdef["consolidation"] < 1:
            raise ConfigError(
                f"{self.origin}: fleets.{name} needs hosts/guests/consolidation >= 1"
            )
        if fdef["burst"] not in BURSTS:
            raise ConfigError(
                f"{self.origin}: fleets.{name} has unknown burst "
                f"{fdef['burst']!r} (know {BURSTS})"
            )
        return fdef

    def _perturb_def(self, name: str) -> tuple[Perturbation, ...]:
        table = self._perturbs.get(name)
        if isinstance(table, dict):
            if "events" in table:
                events = table["events"]
                if not isinstance(events, list) or not events:
                    raise ConfigError(
                        f"{self.origin}: perturbs.{name}.events must be a non-empty list"
                    )
                return tuple(_perturbation_from_table(e) for e in events)
            return (_perturbation_from_table(table),)
        if name == "none":
            return ()
        raise ConfigError(
            f"{self.origin}: unknown perturb {name!r} "
            f"(builtin: none; or define [perturbs.{name}])"
        )

    # ------------------------------------------------------------ expansion

    def _excluded(self, coords: dict[str, str]) -> bool:
        return any(
            all(coords.get(axis) == value for axis, value in ex.items())
            for ex in self.excludes
        )

    def cell_id(self, coords: dict[str, str]) -> str:
        parts = [
            coords[axis] for axis in AXES
            if axis in ALWAYS_IN_ID or len(self.axes[axis]) > 1
        ]
        if len(self.seeds) > 1:
            parts.append(f"s{coords['seed']}")
        return "/".join(parts)

    def expand(self) -> list[Cell]:
        """The full grid, exclusions applied, in deterministic order."""
        cells: list[Cell] = []
        seen: set[str] = set()
        option_lists = [self.axes[a] for a in AXES]
        for combo in itertools.product(*option_lists):
            axis_coords = dict(zip(AXES, combo))
            for seed in self.seeds:
                coords = {**axis_coords, "seed": str(seed)}
                if self._excluded(coords):
                    continue
                cid = self.cell_id(coords)
                fdef = self._resolved_fleets[axis_coords["fleet"]]
                if fdef is None:
                    shards = [(cid, coords, self._compile(axis_coords, seed, cid))]
                else:
                    shards = [
                        (
                            f"{cid}/h{h:02d}",
                            {**coords, "host": str(h)},
                            self._compile_fleet(axis_coords, seed, fdef, h,
                                                f"{cid}/h{h:02d}"),
                        )
                        for h in range(fdef["hosts"])
                    ]
                for shard_id, shard_coords, spec in shards:
                    if shard_id in seen:
                        raise ConfigError(
                            f"{self.origin}: duplicate cell id {shard_id!r}"
                        )
                    seen.add(shard_id)
                    cells.append(Cell(
                        id=shard_id,
                        coords=tuple(shard_coords.items()),
                        spec=spec,
                    ))
        return cells

    def _compile(self, coords: dict[str, str], seed: int, cid: str) -> RunSpec:
        ws, nv = self._resolved_workloads[coords["workload"]]
        machine, pinned = self._placement_def(coords["placement"])(nv)
        noise, cpuidle = self._resolved_stress[coords["stress"]]
        return RunSpec(
            workload=ws,
            tick_mode=TickMode(coords["mode"]),
            seed=seed,
            vcpus=nv,
            machine=machine,
            pinned_cpus=pinned,
            tick_hz=self._resolved_hz[coords["host_timer"]],
            noise=noise,
            cpuidle=cpuidle,
            horizon_ns=self.horizon_ns,
            perturbations=self._resolved_perturbs[coords["perturb"]],
            arch=coords["arch"],
            label=cid,
        )

    def _compile_fleet(
        self, coords: dict[str, str], seed: int, fdef: dict, host: int, cid: str
    ) -> RunSpec:
        """One host shard of a fleet cell, as a ``fleet.host`` spec."""
        from repro.fleet.spec import host_run_spec

        if coords["placement"] != "solo":
            raise ConfigError(
                f"{self.origin}: fleet cells require the 'solo' placement "
                f"(the host's pCPUs come from the consolidation ratio); "
                f"exclude the ({coords['placement']!r}, "
                f"{coords['fleet']!r}) combination with [[exclude]]"
            )
        ws, _nv = self._resolved_workloads[coords["workload"]]
        noise, cpuidle = self._resolved_stress[coords["stress"]]
        return host_run_spec(
            guest_workload=ws,
            guests=fdef["guests"],
            consolidation=fdef["consolidation"],
            tick_mode=TickMode(coords["mode"]),
            burst=fdef["burst"],
            burst_window_ns=fdef["burst_window_ns"],
            burst_waves=fdef["burst_waves"],
            host_index=host,
            seed=seed,
            tick_hz=self._resolved_hz[coords["host_timer"]],
            noise=noise,
            cpuidle=cpuidle,
            horizon_ns=self.horizon_ns,
            perturbations=self._resolved_perturbs[coords["perturb"]],
            arch=coords["arch"],
            label=cid,
        )


def _squeeze(nvcpus: int, pcpus: int) -> tuple[MachineSpec, tuple[int, ...]]:
    """``nvcpus`` vCPUs round-robined onto ``pcpus`` physical CPUs."""
    return (
        MachineSpec(sockets=1, cpus_per_socket=pcpus),
        tuple(i % pcpus for i in range(nvcpus)),
    )


# ----------------------------------------------------------------- loading


def parse_matrix(text: str, fmt: str = "toml", *, origin: str = "<matrix>") -> Matrix:
    """Parse matrix source text (``fmt``: ``toml`` or ``yaml``)."""
    if fmt == "toml":
        import tomllib

        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"{origin}: invalid TOML: {exc}") from None
    elif fmt == "yaml":
        try:
            import yaml
        except ImportError:  # pragma: no cover - environment-dependent
            raise ConfigError(f"{origin}: YAML matrices need PyYAML installed") from None
        try:
            doc = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigError(f"{origin}: invalid YAML: {exc}") from None
    else:
        raise ConfigError(f"{origin}: unknown matrix format {fmt!r} (toml|yaml)")
    return Matrix(doc, origin=origin)


def load_matrix(path: str | Path) -> Matrix:
    """Load a matrix file; the format follows the extension."""
    path = Path(path)
    suffix = path.suffix.lower()
    fmt = {".toml": "toml", ".yaml": "yaml", ".yml": "yaml"}.get(suffix)
    if fmt is None:
        raise ConfigError(f"{path}: unknown matrix extension {suffix!r} (.toml/.yaml/.yml)")
    return parse_matrix(path.read_text(), fmt, origin=str(path))
