"""Structured wall-clock span/event tracing for the *harness* itself.

:mod:`repro.sim.trace` observes simulated time; this module observes
the platform that schedules simulations — where real wall-clock goes
while a grid runs. The shape is deliberately the same as the Chrome
``trace_event`` model the observability exporter already speaks:

* a **span** is a named interval on a *lane* (worker process, the grid
  scheduler, the sanitizer) with free-form scalar attributes;
* an **instant** is a point event (a cache probe, a retry, a write).

Records land in a bounded in-memory ring (constant memory, overflow
counted — never silently unbounded) and, optionally, stream to a JSONL
sink as they are recorded, so a crashed run still leaves a usable
partial trace on disk. Timestamps are ``time.monotonic_ns()`` relative
to the tracer's construction epoch — monotonic, comparable across all
spans of one tracer, immune to wall-clock steps.

A failing sink must never sink the experiment it observes: the first
write error disables the sink with a warning and recording continues
in memory only.
"""

from __future__ import annotations

import contextlib
import json
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, TextIO

#: Default ring capacity (records). A grid cell contributes a handful
#: of records, so this covers grids of tens of thousands of cells.
DEFAULT_CAPACITY = 200_000

#: Lane used when the caller does not name one (the scheduler thread).
DEFAULT_LANE = "harness"


@dataclass(frozen=True)
class SpanRecord:
    """One finished harness span: ``[ts_ns, ts_ns + dur_ns)`` on a lane."""

    name: str
    ts_ns: int
    dur_ns: int
    lane: str = DEFAULT_LANE
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {"type": "span", "name": self.name, "ts_ns": self.ts_ns,
                "dur_ns": self.dur_ns, "lane": self.lane, "attrs": self.attrs}


@dataclass(frozen=True)
class InstantRecord:
    """One point event on a lane (cache probe, retry, artifact write)."""

    name: str
    ts_ns: int
    lane: str = DEFAULT_LANE
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {"type": "instant", "name": self.name, "ts_ns": self.ts_ns,
                "lane": self.lane, "attrs": self.attrs}


class SpanTracer:
    """Bounded ring of harness spans/instants with an optional JSONL sink."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: Optional[TextIO] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.records: deque[SpanRecord | InstantRecord] = deque(maxlen=capacity)
        #: Records evicted by ring overflow (the JSONL sink, when
        #: attached, still received them).
        self.dropped = 0
        #: Wall-clock (epoch seconds) at tracer construction — lets a
        #: reader anchor the monotonic timeline to calendar time.
        self.wall_epoch_s = time.time()
        self._epoch_ns = time.monotonic_ns()
        self._sink = sink

    # ------------------------------------------------------------ recording

    def now_ns(self) -> int:
        """Monotonic ns since this tracer's construction."""
        return time.monotonic_ns() - self._epoch_ns

    def add_span(self, name: str, ts_ns: int, dur_ns: int,
                 lane: str = DEFAULT_LANE, **attrs: Any) -> SpanRecord:
        """Record an externally-measured span (e.g. a worker's run)."""
        rec = SpanRecord(name, max(0, ts_ns), max(0, dur_ns), lane, attrs)
        self._push(rec)
        return rec

    def instant(self, name: str, lane: str = DEFAULT_LANE, **attrs: Any) -> InstantRecord:
        """Record a point event at the current time."""
        rec = InstantRecord(name, self.now_ns(), lane, attrs)
        self._push(rec)
        return rec

    @contextlib.contextmanager
    def span(self, name: str, lane: str = DEFAULT_LANE, **attrs: Any) -> Iterator[dict]:
        """Measure a ``with`` body as one span.

        Yields the (mutable) attrs dict so the body can attach results
        (`attrs["cells"] = n`); the span is recorded on exit, including
        the exceptional path (with ``attrs["error"]`` set).
        """
        start = self.now_ns()
        try:
            yield attrs
        except BaseException as exc:
            attrs.setdefault("error", repr(exc))
            raise
        finally:
            self.add_span(name, start, self.now_ns() - start, lane, **attrs)

    def _push(self, rec: SpanRecord | InstantRecord) -> None:
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(rec)
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(rec.to_json_dict(), sort_keys=True))
                self._sink.write("\n")
            except (OSError, ValueError) as exc:
                # A full disk / closed file must not sink the grid.
                self._sink = None
                warnings.warn(f"telemetry JSONL sink disabled: {exc}",
                              RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------- readouts

    def __len__(self) -> int:
        return len(self.records)

    def spans(self) -> list[SpanRecord]:
        return [r for r in self.records if isinstance(r, SpanRecord)]

    def instants(self) -> list[InstantRecord]:
        return [r for r in self.records if isinstance(r, InstantRecord)]

    def lanes(self) -> list[str]:
        """Lane names in first-appearance order (stable track layout)."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.lane)
        return list(seen)

    def write_jsonl(self, path: str) -> int:
        """Dump the retained ring as JSON-lines; returns records written.

        The first line is a header record carrying the epoch and drop
        count, so a reader knows whether the file is complete.
        """
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "type": "header", "wall_epoch_s": self.wall_epoch_s,
                "dropped": self.dropped, "records": len(self.records),
            }, sort_keys=True) + "\n")
            for rec in self.records:
                fh.write(json.dumps(rec.to_json_dict(), sort_keys=True) + "\n")
        return len(self.records)


def read_jsonl(path: str) -> tuple[dict, list[dict]]:
    """Load a spans JSONL file: ``(header, records)``.

    Tolerates a missing header (streamed sinks have none) and skips
    corrupt lines rather than failing — a telemetry reader must cope
    with a file truncated by a crash.
    """
    header: dict = {}
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if not isinstance(obj, dict):
                continue
            if obj.get("type") == "header":
                header = obj
            elif obj.get("type") in ("span", "instant"):
                records.append(obj)
    return header, records
