"""Text rendering of a telemetry output directory.

``python -m repro telemetry report DIR`` reads the artifacts that
:meth:`repro.telemetry.HarnessTelemetry.write_outputs` wrote
(``spans.jsonl``, ``metrics.json``) and prints an operator-facing
summary: where wall-clock went by span name, per-lane totals, and the
counter/histogram readouts. Pure read-side code — nothing here touches
the recording path.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Iterable

from repro.metrics.report import format_table
from repro.telemetry.spans import read_jsonl

#: Artifact filenames inside a ``--telemetry-out`` directory.
SPANS_FILE = "spans.jsonl"
METRICS_JSON_FILE = "metrics.json"
METRICS_PROM_FILE = "metrics.prom"
TRACE_FILE = "harness_trace.json"


def _fmt_wall(ns: float) -> str:
    """Human wall-clock: harness spans range from µs to minutes."""
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def span_summary_rows(records: Iterable[dict]) -> list[tuple[str, ...]]:
    """Aggregate spans by name: count, total/mean/max wall, lanes."""
    total: dict[str, int] = defaultdict(int)
    count: dict[str, int] = defaultdict(int)
    peak: dict[str, int] = defaultdict(int)
    lanes: dict[str, set] = defaultdict(set)
    for rec in records:
        if rec.get("type") != "span":
            continue
        name = rec["name"]
        dur = int(rec.get("dur_ns", 0))
        total[name] += dur
        count[name] += 1
        peak[name] = max(peak[name], dur)
        lanes[name].add(rec.get("lane", ""))
    rows = []
    for name in sorted(total, key=lambda n: -total[n]):
        rows.append((
            name,
            f"{count[name]:,}",
            _fmt_wall(total[name]),
            _fmt_wall(total[name] / count[name] if count[name] else 0),
            _fmt_wall(peak[name]),
            str(len(lanes[name])),
        ))
    return rows


def instant_summary_rows(records: Iterable[dict]) -> list[tuple[str, str]]:
    counts: dict[str, int] = defaultdict(int)
    for rec in records:
        if rec.get("type") == "instant":
            counts[rec["name"]] += 1
    return [(name, f"{counts[name]:,}")
            for name in sorted(counts, key=lambda n: (-counts[n], n))]


def metrics_summary_rows(metrics: dict) -> list[tuple[str, ...]]:
    """Flatten a metrics.json snapshot into report rows."""
    rows = []
    for name, fam in sorted(metrics.items()):
        for s in fam.get("series", []):
            labels = ",".join(f"{k}={v}" for k, v in sorted(s.get("labels", {}).items()))
            v = s.get("value")
            if fam.get("type") == "histogram" and isinstance(v, dict):
                count = int(v.get("count", 0))
                mean = (int(v.get("total_ns", 0)) // count) if count else 0
                shown = f"n={count:,} mean={_fmt_wall(mean)} max={_fmt_wall(int(v.get('max_ns', 0)))}"
            else:
                shown = str(v)
            rows.append((name, fam.get("type", "?"), labels or "-", shown))
    return rows


#: Counters the recovery section surfaces (journal resume, integrity
#: quarantine, degradation ladder) — absent counters are simply omitted.
RESILIENCE_COUNTERS = (
    ("cells_resumed", "cells resumed from the run journal"),
    ("cells_reverified", "resumed cells re-verified against journaled hashes"),
    ("resume_mismatches", "resume re-verifications that failed (re-run)"),
    ("cache_quarantined", "corrupt cache files quarantined"),
    ("pool_rebuilds", "process pool crash recoveries"),
    ("pool_degrades", "degradation ladder steps taken"),
)

#: Instants counted in the recovery section.
RESILIENCE_INSTANTS = ("resume.hit", "resume.miss", "resume.mismatch",
                       "cache.quarantine", "chaos.abort", "pool.degrade",
                       "pool.rebuild")


def resilience_summary_rows(metrics: dict,
                            records: Iterable[dict] = ()) -> list[tuple[str, str, str]]:
    """Recovery/resilience readout: resumes, quarantines, degradation.

    Pulls the journal/integrity/degradation counters out of the metrics
    snapshot and the matching instants out of the span stream, so an
    operator sees at a glance whether a run leaned on its recovery
    machinery. Empty when the run was clean and un-resumed.
    """
    rows: list[tuple[str, str, str]] = []
    for name, what in RESILIENCE_COUNTERS:
        fam = metrics.get(name)
        if not fam:
            continue
        total = 0
        for s in fam.get("series", []):
            v = s.get("value")
            if isinstance(v, (int, float)):
                total += int(v)
        rows.append((name, f"{total:,}", what))
    counts: dict[str, int] = defaultdict(int)
    for rec in records:
        if rec.get("type") == "instant" and rec.get("name") in RESILIENCE_INSTANTS:
            counts[rec["name"]] += 1
    seen = {name for name, _, _ in rows}
    for name in sorted(counts):
        if name not in seen:
            rows.append((name, f"{counts[name]:,}", "instant events"))
    return rows


def report_lines(out_dir: str) -> Iterable[str]:
    """Full ``telemetry report`` output for one artifact directory."""
    spans_path = os.path.join(out_dir, SPANS_FILE)
    metrics_path = os.path.join(out_dir, METRICS_JSON_FILE)
    found = False
    records: list[dict] = []
    metrics: dict = {}
    if os.path.exists(spans_path):
        found = True
        header, records = read_jsonl(spans_path)
        dropped = int(header.get("dropped", 0))
        note = f" ({dropped:,} dropped by ring overflow)" if dropped else ""
        yield f"spans: {len(records):,} records{note}"
        rows = span_summary_rows(records)
        if rows:
            yield format_table(
                ("span", "count", "total", "mean", "max", "lanes"),
                rows, title="wall-clock by span")
        inst = instant_summary_rows(records)
        if inst:
            yield ""
            yield format_table(("instant", "count"), inst, title="instant events")
    if os.path.exists(metrics_path):
        found = True
        with open(metrics_path, "r", encoding="utf-8") as fh:
            metrics = json.load(fh)
        rows = metrics_summary_rows(metrics)
        if rows:
            yield ""
            yield format_table(("metric", "type", "labels", "value"),
                               rows, title="metrics snapshot")
    if found:
        rows = resilience_summary_rows(metrics, records)
        if rows:
            yield ""
            yield format_table(("event", "count", "meaning"), rows,
                               title="recovery / resilience")
    if not found:
        yield (f"no telemetry artifacts in {out_dir} "
               f"(expected {SPANS_FILE} and/or {METRICS_JSON_FILE})")
