"""Harness metrics registry: counters, gauges, and log2 histograms.

A minimal, dependency-free metrics model shaped after the Prometheus
client data model: a metric has a name, HELP text, a type, and one
time-series per label-set. Counters are monotonic ints, gauges are
set-to-anything numbers, and histograms reuse
:class:`repro.obs.histograms.Log2Histogram` so the harness and the
simulator report distributions with the same bucket layout.

Two exports:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` + sample lines, cumulative ``le`` buckets),
  scrape-able or artifact-uploadable as ``metrics.prom``;
* :meth:`MetricsRegistry.to_json_dict` — a canonical JSON snapshot for
  programmatic reconciliation in tests and the report subcommand.

:func:`validate_prometheus_text` is the exposition-format linter the CI
job runs over the uploaded snapshot.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Union

from repro.obs.histograms import Log2Histogram

Number = Union[int, float]

#: Prometheus metric/label name grammar (exposition format spec).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Canonical label-set key: a sorted tuple of (label, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name: {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Metric:
    """One named metric family: type, help, per-label-set series."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.series: dict[LabelKey, Union[Number, Log2Histogram]] = {}


class MetricsRegistry:
    """Counters, gauges, and log2 histograms for the harness."""

    def __init__(self, prefix: str = "repro_harness") -> None:
        if not _NAME_RE.match(prefix):
            raise ValueError(f"invalid metric prefix: {prefix!r}")
        self.prefix = prefix
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------ recording

    def _family(self, name: str, kind: str, help: str) -> _Metric:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = _Metric(name, kind, help)
        elif m.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {m.kind}, not {kind}")
        return m

    def counter(self, name: str, amount: int = 1, help: str = "",
                **labels: str) -> int:
        """Increment a monotonic counter; returns the new value."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        m = self._family(name, "counter", help)
        key = _label_key(labels)
        value = int(m.series.get(key, 0)) + amount
        m.series[key] = value
        return value

    def gauge(self, name: str, value: Number, help: str = "",
              **labels: str) -> None:
        """Set a gauge to an arbitrary current value."""
        m = self._family(name, "gauge", help)
        m.series[_label_key(labels)] = value

    def observe(self, name: str, value_ns: int, help: str = "",
                **labels: str) -> None:
        """Record one observation into a log2 histogram (ns-valued)."""
        m = self._family(name, "histogram", help)
        key = _label_key(labels)
        h = m.series.get(key)
        if not isinstance(h, Log2Histogram):
            h = m.series[key] = Log2Histogram()
        h.record(max(0, int(value_ns)))

    # ------------------------------------------------------------- readouts

    def counter_value(self, name: str, **labels: str) -> int:
        m = self._metrics.get(name)
        if m is None:
            return 0
        return int(m.series.get(_label_key(labels), 0))

    def histogram(self, name: str, **labels: str) -> Optional[Log2Histogram]:
        m = self._metrics.get(name)
        if m is None:
            return None
        h = m.series.get(_label_key(labels))
        return h if isinstance(h, Log2Histogram) else None

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -------------------------------------------------------------- exports

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4).

        Histograms emit cumulative ``le`` buckets at the log2 bucket
        upper bounds (``2^b - 1`` ns, matching
        :meth:`Log2Histogram.nonzero_buckets`), a ``+Inf`` bucket, and
        ``_sum`` / ``_count`` series.
        """
        lines: list[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            full = f"{self.prefix}_{m.name}"
            if m.help:
                lines.append(f"# HELP {full} {m.help}")
            lines.append(f"# TYPE {full} {m.kind}")
            if m.kind == "counter":
                # The exposition format expects counters suffixed _total.
                sample = full if full.endswith("_total") else f"{full}_total"
                for key in sorted(m.series):
                    lines.append(f"{sample}{_format_labels(key)} "
                                 f"{_format_value(m.series[key])}")
            elif m.kind == "gauge":
                for key in sorted(m.series):
                    lines.append(f"{full}{_format_labels(key)} "
                                 f"{_format_value(m.series[key])}")
            else:
                for key in sorted(m.series):
                    h = m.series[key]
                    assert isinstance(h, Log2Histogram)
                    cumulative = 0
                    for b, c in enumerate(h.counts):
                        if not c:
                            continue
                        cumulative += c
                        le = str((1 << b) - 1) if b else "0"
                        lines.append(
                            f"{full}_bucket"
                            f"{_format_labels(key, (('le', le),))} {cumulative}")
                    lines.append(
                        f"{full}_bucket"
                        f"{_format_labels(key, (('le', '+Inf'),))} {h.count}")
                    lines.append(f"{full}_sum{_format_labels(key)} {h.total}")
                    lines.append(f"{full}_count{_format_labels(key)} {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json_dict(self) -> dict:
        """Canonical JSON snapshot: ``{name: {type, help, series: [...]}}``."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            series = []
            for key in sorted(m.series):
                v = m.series[key]
                series.append({
                    "labels": dict(key),
                    "value": v.to_json_dict() if isinstance(v, Log2Histogram) else v,
                })
            out[m.name] = {"type": m.kind, "help": m.help, "series": series}
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges
        take the other's value, histograms merge bucket-wise)."""
        for name, om in other._metrics.items():
            m = self._family(name, om.kind, om.help or
                             (self._metrics[name].help if name in self._metrics else ""))
            for key, v in om.series.items():
                if om.kind == "counter":
                    m.series[key] = int(m.series.get(key, 0)) + int(v)
                elif om.kind == "gauge":
                    m.series[key] = v
                else:
                    assert isinstance(v, Log2Histogram)
                    cur = m.series.get(key)
                    m.series[key] = cur.merge(v) if isinstance(cur, Log2Histogram) else v.merge(Log2Histogram())


# ---------------------------------------------------------------- validation

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(\s+(?P<ts>-?\d+))?$"
)


def validate_prometheus_text(text: str) -> list[str]:
    """Lint a text-format exposition; returns violations (empty == OK).

    Checks the subset a scraper actually parses: TYPE lines precede
    their samples, sample names match their family (modulo the
    ``_total`` / ``_bucket`` / ``_sum`` / ``_count`` suffixes), values
    parse as floats, histogram buckets are cumulative and end in a
    ``+Inf`` bucket that equals ``_count``.
    """
    errors: list[str] = []
    typed: dict[str, str] = {}
    # family -> label-prefix -> (last cumulative, inf seen, count value)
    bucket_state: dict[tuple[str, str], list] = {}

    def family_of(name: str) -> Optional[str]:
        for fam, kind in typed.items():
            if kind == "counter" and name in (fam, f"{fam}_total"):
                return fam
            if kind == "gauge" and name == fam:
                return fam
            if kind == "histogram" and name in (
                    f"{fam}_bucket", f"{fam}_sum", f"{fam}_count"):
                return fam
        return None

    for n, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                errors.append(f"line {n}: malformed HELP")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"line {n}: malformed TYPE")
                continue
            if parts[2] in typed:
                errors.append(f"line {n}: duplicate TYPE for {parts[2]}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {n}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {n}: non-numeric value {m.group('value')!r}")
            continue
        fam = family_of(name)
        if fam is None:
            errors.append(f"line {n}: sample {name!r} has no preceding TYPE")
            continue
        if typed[fam] == "counter" and value < 0:
            errors.append(f"line {n}: negative counter {name}")
        if typed[fam] == "histogram" and name == f"{fam}_bucket":
            labels = m.group("labels") or "{}"
            le_m = re.search(r'le="([^"]*)"', labels)
            if not le_m:
                errors.append(f"line {n}: bucket without le label")
                continue
            prefix = re.sub(r',?le="[^"]*"', "", labels)
            st = bucket_state.setdefault((fam, prefix), [0.0, False, None])
            if value < st[0]:
                errors.append(f"line {n}: non-cumulative bucket for {fam}")
            st[0] = value
            if le_m.group(1) == "+Inf":
                st[1] = True
                st[2] = value
    for (fam, _prefix), (last, inf_seen, _inf_val) in bucket_state.items():
        if not inf_seen:
            errors.append(f"histogram {fam}: missing +Inf bucket")
    return errors
