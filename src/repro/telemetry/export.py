"""Perfetto/Chrome export of the *harness* execution timeline.

Same JSON Object Format that :mod:`repro.obs.export` produces for
simulated time, applied to harness wall-clock: one process track
(``pid 0`` = "harness"), one thread track per lane (the scheduler,
each worker process, the sanitizer), spans as complete (``X``) slices
and instants (cache probes, retries) as ``i`` events. The output must
pass :func:`repro.obs.export.validate_chrome_trace` — the CI job
asserts exactly that before uploading the artifact.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.spans import InstantRecord, SpanRecord, SpanTracer

#: All harness tracks live in one trace "process".
HARNESS_PID = 0
HARNESS_PROCESS_NAME = "harness"


def _json_safe(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def harness_chrome_trace(tracer: SpanTracer) -> dict:
    """Convert a :class:`SpanTracer` ring to a Chrome trace document.

    Lanes become thread tracks in first-appearance order (tid 1..N;
    tid 0 is reserved for the process-name row, matching the obs
    exporter's convention). Timestamps convert tracer-ns to trace-µs.
    """
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": HARNESS_PID, "tid": 0,
        "args": {"name": HARNESS_PROCESS_NAME},
    }]
    tid_of: dict[str, int] = {}
    for lane in tracer.lanes():
        tid = tid_of[lane] = len(tid_of) + 1
        events.append({
            "ph": "M", "name": "thread_name", "pid": HARNESS_PID, "tid": tid,
            "args": {"name": lane},
        })
    for rec in tracer.records:
        tid = tid_of[rec.lane]
        args = {k: _json_safe(v) for k, v in rec.attrs.items()}
        if isinstance(rec, SpanRecord):
            events.append({
                "ph": "X", "name": rec.name, "cat": "harness",
                "pid": HARNESS_PID, "tid": tid,
                "ts": rec.ts_ns / 1000.0, "dur": rec.dur_ns / 1000.0,
                "args": args,
            })
        elif isinstance(rec, InstantRecord):
            events.append({
                "ph": "i", "name": rec.name, "cat": "harness", "s": "t",
                "pid": HARNESS_PID, "tid": tid,
                "ts": rec.ts_ns / 1000.0,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.telemetry.export",
            "clock": "wall-monotonic",
            "wall_epoch_s": tracer.wall_epoch_s,
            "dropped": tracer.dropped,
        },
    }
