"""Harness telemetry: spans, metrics, Prometheus/Perfetto export.

`repro.obs` makes the *simulated machines* observable; this package
makes the *platform that runs them* observable — the parallel pool,
the content-addressed cache, fleet sharding and aggregation. One
:class:`HarnessTelemetry` object rides through ``run_grid`` /
``run_fleet`` / ``check_cells`` and collects:

* wall-clock **spans** (grid scheduling, per-shard execute/retry,
  fleet aggregation) and **instants** (cache probe/hit/miss/write) in
  a bounded ring with an optional streaming JSONL sink
  (:mod:`repro.telemetry.spans`);
* **metrics** — counters, gauges, and log2 histograms shared with
  :mod:`repro.obs.histograms` — exported as Prometheus text and
  canonical JSON (:mod:`repro.telemetry.metrics`);
* a **Perfetto-loadable timeline** of the harness execution (worker
  lanes as tracks) via :mod:`repro.telemetry.export`.

House guarantees, mirrored from ``repro.obs``:

* **zero overhead when detached** — every producer call site is
  guarded by ``telemetry is not None and telemetry.enabled``; the
  exploding-telemetry test proves a disabled object is never touched;
* **bit-identical results** — telemetry observes only harness
  wall-clock, never simulated state, so RunMetrics and cache keys are
  unchanged whether it is attached or not (golden batteries enforce
  this).

The deterministic *in-sim* time-series companion (windowed exits /
steal / halt / tick-latency over simulated time) lives in
:mod:`repro.obs.series` because it derives from the simulation trace,
not from harness wall-clock.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any, Iterator, Optional, TextIO

from repro.telemetry.export import harness_chrome_trace
from repro.telemetry.metrics import MetricsRegistry, validate_prometheus_text
from repro.telemetry.report import (
    METRICS_JSON_FILE,
    METRICS_PROM_FILE,
    SPANS_FILE,
    TRACE_FILE,
)
from repro.telemetry.spans import DEFAULT_CAPACITY, SpanTracer

__all__ = [
    "HarnessTelemetry",
    "MetricsRegistry",
    "SpanTracer",
    "harness_chrome_trace",
    "validate_prometheus_text",
]


class HarnessTelemetry:
    """The facade a harness entry point threads through its layers.

    ``enabled`` is the single fast-path flag: producers check it (via
    the module-level convention ``telemetry is not None and
    telemetry.enabled``) before paying for any argument construction.
    Constructing with ``enabled=False`` yields an inert object whose
    recording methods are never called by conforming producers.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        capacity: int = DEFAULT_CAPACITY,
        sink: Optional[TextIO] = None,
        prefix: str = "repro_harness",
    ) -> None:
        self.enabled = enabled
        self.tracer = SpanTracer(capacity=capacity, sink=sink)
        self.metrics = MetricsRegistry(prefix=prefix)

    # ------------------------------------------------------------ recording

    @contextlib.contextmanager
    def span(self, name: str, lane: str = "harness", **attrs: Any) -> Iterator[dict]:
        with self.tracer.span(name, lane, **attrs) as a:
            yield a

    def add_span(self, name: str, ts_ns: int, dur_ns: int,
                 lane: str = "harness", **attrs: Any) -> None:
        self.tracer.add_span(name, ts_ns, dur_ns, lane, **attrs)

    def instant(self, name: str, lane: str = "harness", **attrs: Any) -> None:
        self.tracer.instant(name, lane, **attrs)

    def now_ns(self) -> int:
        return self.tracer.now_ns()

    def counter(self, name: str, amount: int = 1, help: str = "",
                **labels: str) -> int:
        return self.metrics.counter(name, amount, help=help, **labels)

    def gauge(self, name: str, value: "int | float", help: str = "",
              **labels: str) -> None:
        self.metrics.gauge(name, value, help=help, **labels)

    def observe(self, name: str, value_ns: int, help: str = "",
                **labels: str) -> None:
        self.metrics.observe(name, value_ns, help=help, **labels)

    # -------------------------------------------------------------- outputs

    def chrome_trace(self) -> dict:
        """The harness timeline as a Chrome/Perfetto trace document."""
        return harness_chrome_trace(self.tracer)

    def write_outputs(self, out_dir: str) -> dict[str, str]:
        """Write all four artifacts into ``out_dir``; returns name->path.

        Produces ``spans.jsonl`` (the ring), ``metrics.prom``
        (Prometheus text), ``metrics.json`` (canonical snapshot), and
        ``harness_trace.json`` (Perfetto timeline).
        """
        os.makedirs(out_dir, exist_ok=True)
        paths: dict[str, str] = {}

        spans_path = os.path.join(out_dir, SPANS_FILE)
        self.tracer.write_jsonl(spans_path)
        paths["spans"] = spans_path

        prom_path = os.path.join(out_dir, METRICS_PROM_FILE)
        with open(prom_path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics.to_prometheus())
        paths["prometheus"] = prom_path

        json_path = os.path.join(out_dir, METRICS_JSON_FILE)
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(self.metrics.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths["metrics_json"] = json_path

        trace_path = os.path.join(out_dir, TRACE_FILE)
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, separators=(",", ":"))
        paths["trace"] = trace_path
        return paths
