"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator-domain failures without masking programming
errors (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    has already been torn down, re-firing a one-shot signal.
    """


class ConfigError(ReproError):
    """A scenario/machine/cost-model configuration is invalid."""


class HardwareError(ReproError):
    """A simulated hardware device was programmed incorrectly.

    Mirrors the class of bugs that on real hardware would be #GP faults
    or undefined behaviour (e.g. writing a malformed MSR value).
    """


class GuestError(ReproError):
    """The simulated guest kernel reached an inconsistent state."""


class HostError(ReproError):
    """The simulated hypervisor reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload definition is invalid or failed to run to completion."""
