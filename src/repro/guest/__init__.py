"""The simulated guest kernel.

A Linux-like kernel model: tasks on per-vCPU run queues, an idle loop
with HLT, hrtimers, a timer wheel, softirqs, an RCU callback model,
futex-style blocking synchronization, sync block I/O — and, at the heart
of the reproduction, the scheduler-tick management modes of
:mod:`repro.guest.ticksched` (periodic / tickless) and
:mod:`repro.core.paratick_guest` (the paper's contribution).
"""

from repro.guest.kernel import GuestKernel
from repro.guest.task import Task, TaskState

__all__ = ["GuestKernel", "Task", "TaskState"]
