"""Primitive guest-CPU operations.

The guest kernel expresses everything a vCPU does as a stream of these
primitive ops; the hypervisor's per-vCPU executor (:mod:`repro.host.kvm`)
consumes the stream, advancing simulated time and taking VM exits where
the real hardware would.

Ops that trap (``Wrmsr``, ``Hlt``, ``IoKick``, ``Hypercall``) are exactly
the instructions that trap under hardware-assisted virtualization; the
executor charges their exit costs. ``Compute`` is preemptible: an
asynchronous interrupt may cut it short, in which case the executor
accounts the elapsed portion and re-queues the remainder — the guest
code never observes the split.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import GuestError
from repro.hw.cpu import CycleDomain
from repro.hw.iodev import IoRequest


class GuestOp:
    """Base class for primitive guest operations."""

    __slots__ = ()


class Compute(GuestOp):
    """Burn ``cycles`` of CPU in ``domain``; preemptible.

    ``on_done`` (if given) runs in guest context when the full amount has
    been executed — interrupt-induced splits do not re-trigger it.
    """

    __slots__ = ("cycles", "domain", "on_done")

    def __init__(
        self,
        cycles: int,
        domain: CycleDomain = CycleDomain.GUEST_USER,
        on_done: Optional[Callable[[], None]] = None,
    ):
        if cycles < 0:
            raise GuestError(f"negative compute: {cycles}")
        if domain not in (CycleDomain.GUEST_USER, CycleDomain.GUEST_KERNEL):
            raise GuestError(f"guest compute must be guest-domain, got {domain}")
        self.cycles = cycles
        self.domain = domain
        self.on_done = on_done

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.cycles}, {self.domain.value})"


class Wrmsr(GuestOp):
    """Write a model-specific register — intercepted, causes a VM exit."""

    __slots__ = ("index", "value")

    def __init__(self, index: int, value: int):
        self.index = index
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Wrmsr({self.index:#x}, {self.value})"


class SysregWrite(GuestOp):
    """Write a trapped system register (ARM MSR-to-sysreg instruction).

    The ARM analogue of :class:`Wrmsr`: generic-timer (CNTV_*) and
    GIC system-register accesses trap to EL2 when the hypervisor
    intercepts them, causing a VM exit.
    """

    __slots__ = ("reg", "value")

    def __init__(self, reg: int, value: int):
        self.reg = reg
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"SysregWrite({self.reg:#x}, {self.value})"


class Hlt(GuestOp):
    """Halt until the next interrupt — causes a VM exit and blocks the vCPU."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "Hlt()"


class IoKick(GuestOp):
    """Notify the host I/O backend of a new request (virtio doorbell).

    Causes an I/O-instruction VM exit; the host submits ``request`` to
    ``device`` and execution continues (completion arrives later as a
    device interrupt).
    """

    __slots__ = ("device", "request")

    def __init__(self, device: object, request: IoRequest):
        self.device = device
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover
        return f"IoKick({self.request.op}, {self.request.size})"


class Hypercall(GuestOp):
    """Explicit guest->host call (paratick uses one at boot, §4.1)."""

    __slots__ = ("nr", "arg")

    def __init__(self, nr: int, arg: int = 0):
        self.nr = nr
        self.arg = arg

    def __repr__(self) -> str:  # pragma: no cover
        return f"Hypercall({self.nr}, {self.arg})"


class Pause(GuestOp):
    """PAUSE-loop iteration (spinning). Exits only when PLE is enabled."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles <= 0:
            raise GuestError("pause loop must burn a positive cycle count")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pause({self.cycles})"


class Fault(GuestOp):
    """An EPT-violation-class exit (page fault, instruction emulation).

    Workload models use this to represent the background of *non-timer*
    exits every real application produces; the paper's per-benchmark
    variance in Fig. 4a/5a/6a comes from how this background dilutes the
    timer-exit reduction.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "Fault()"
