"""Guest CPU scheduler: per-vCPU run queues, block/wake, reschedule IPIs.

Round-robin within a run queue with preemption decided at tick
boundaries (the tick handler sets ``need_resched`` when other tasks
wait — one reason the scheduler tick exists at all, §2).

Waking a task whose vCPU is different from the waker's sends a
reschedule IPI, which under virtualization costs an ICR-write VM exit on
the waker and an interrupt delivery on the target — the dominant
*non-timer* exits of multithreaded workloads (§6.2): paratick does not
remove them, which is exactly why its exit reduction saturates around
40–50 % there.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import GuestError
from repro.guest.task import Task, TaskState


class RunQueue:
    """FIFO run queue of one vCPU."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, task: Task) -> None:
        if task in self._queue:
            raise GuestError(f"{task!r} enqueued twice")
        self._queue.append(task)

    def pop(self) -> Optional[Task]:
        return self._queue.popleft() if self._queue else None

    def remove(self, task: Task) -> None:
        try:
            self._queue.remove(task)
        except ValueError:
            pass


class GuestScheduler:
    """Task placement and state transitions for one VM.

    The kernel provides two callbacks:

    * ``notify_resched(vcpu_index)`` — a runnable task appeared for a
      vCPU; the kernel decides whether an IPI is needed;
    * ``on_task_done(task)`` — a task body finished.
    """

    def __init__(
        self,
        nvcpus: int,
        notify_resched: Callable[[int], None],
        on_task_done: Callable[[Task], None],
    ):
        self.nvcpus = nvcpus
        self._queues = [RunQueue() for _ in range(nvcpus)]
        self._current: list[Optional[Task]] = [None] * nvcpus
        self._notify_resched = notify_resched
        self._on_task_done = on_task_done
        #: Context switches performed per vCPU.
        self.switches = [0] * nvcpus
        self.tasks: list[Task] = []

    # ------------------------------------------------------------ placement

    def grow(self) -> None:
        """Extend per-vCPU structures for a hotplugged vCPU."""
        self.nvcpus += 1
        self._queues.append(RunQueue())
        self._current.append(None)
        self.switches.append(0)

    def add_task(self, task: Task) -> None:
        """Register a new runnable task on its affinity vCPU."""
        if not 0 <= task.affinity < self.nvcpus:
            raise GuestError(f"{task!r}: affinity outside VM ({self.nvcpus} vCPUs)")
        self.tasks.append(task)
        task.state = TaskState.RUNNABLE
        self._queues[task.affinity].push(task)

    # -------------------------------------------------------------- queries

    def current(self, vcpu_index: int) -> Optional[Task]:
        return self._current[vcpu_index]

    def runnable_waiting(self, vcpu_index: int) -> int:
        """Tasks queued (not counting the one currently running)."""
        return len(self._queues[vcpu_index])

    def has_work(self, vcpu_index: int) -> bool:
        return self._current[vcpu_index] is not None or len(self._queues[vcpu_index]) > 0

    def alive_tasks(self) -> int:
        return sum(1 for t in self.tasks if t.state is not TaskState.DONE)

    # ---------------------------------------------------------- transitions

    def pick_next(self, vcpu_index: int) -> Optional[Task]:
        """Dispatch the next runnable task on ``vcpu_index``."""
        if self._current[vcpu_index] is not None:
            raise GuestError(f"vCPU{vcpu_index}: pick_next with a task still current")
        task = self._queues[vcpu_index].pop()
        if task is not None:
            task.state = TaskState.RUNNING
            self._current[vcpu_index] = task
            self.switches[vcpu_index] += 1
        return task

    def preempt_current(self, vcpu_index: int) -> None:
        """Round-robin: current task returns to the queue tail."""
        task = self._current[vcpu_index]
        if task is None:
            return
        self._current[vcpu_index] = None
        task.state = TaskState.RUNNABLE
        self._queues[vcpu_index].push(task)

    def block_current(self, vcpu_index: int, reason: str) -> Task:
        """The running task blocks (futex, I/O, sleep)."""
        task = self._current[vcpu_index]
        if task is None:
            raise GuestError(f"vCPU{vcpu_index}: block with no running task")
        self._current[vcpu_index] = None
        task.state = TaskState.BLOCKED
        task.wait_reason = reason
        return task

    def wake(self, task: Task) -> None:
        """Make a blocked task runnable and poke its vCPU."""
        if task.state is TaskState.DONE:
            return
        if task.state is not TaskState.BLOCKED:
            raise GuestError(f"waking {task!r} which is not blocked")
        task.state = TaskState.RUNNABLE
        task.wait_reason = None
        self._queues[task.affinity].push(task)
        self._notify_resched(task.affinity)

    def finish_current(self, vcpu_index: int) -> Task:
        """The running task's body returned."""
        task = self._current[vcpu_index]
        if task is None:
            raise GuestError(f"vCPU{vcpu_index}: finish with no running task")
        self._current[vcpu_index] = None
        task.state = TaskState.DONE
        self._on_task_done(task)
        return task
