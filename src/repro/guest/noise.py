"""Background daemon noise.

Any real guest runs kernel threads and system daemons that wake briefly
at irregular intervals (journald, ksoftirqd housekeeping, cron, NTP...).
This background matters to the reproduction because each wakeup is an
idle exit+entry pair — exactly the events whose timer cost differs
between tickless and paratick. A "sequential PARSEC benchmark on a
1-vCPU VM" (§6.1) is never a perfectly quiet machine.

Rates are deterministic per seed. The default (one daemon per vCPU,
~50 ms mean sleep → ~20 wakeups/s/vCPU) is in the range reported by
``powertop`` for a stock Ubuntu 20.04 guest.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ConfigError
from repro.guest.kernel import GuestKernel
from repro.guest.task import Run, Sleep, Task
from repro.sim.timebase import MSEC


#: Default mean sleep between daemon wakeups.
DEFAULT_MEAN_SLEEP_NS = 50 * MSEC
#: Default work burst per wakeup (cycles).
DEFAULT_BURST_CYCLES = 15_000
#: Daemons per vCPU.
DEFAULT_DAEMONS_PER_VCPU = 1


def daemon_body(
    kernel: GuestKernel,
    stream: str,
    *,
    mean_sleep_ns: int = DEFAULT_MEAN_SLEEP_NS,
    burst_cycles: int = DEFAULT_BURST_CYCLES,
) -> Generator:
    """An endless sleep/work loop with exponential sleep times."""
    if mean_sleep_ns <= 0 or burst_cycles <= 0:
        raise ConfigError("noise daemon parameters must be positive")
    rng = kernel.sim.rng
    while True:
        yield Sleep(rng.exponential_ns(stream, mean_sleep_ns))
        yield Run(burst_cycles)


def install_noise(
    kernel: GuestKernel,
    *,
    daemons_per_vcpu: int = DEFAULT_DAEMONS_PER_VCPU,
    mean_sleep_ns: int = DEFAULT_MEAN_SLEEP_NS,
    burst_cycles: int = DEFAULT_BURST_CYCLES,
) -> list[Task]:
    """Add background daemons to every vCPU of a VM (when the spec asks)."""
    tasks = []
    for vidx in range(kernel.nvcpus):
        for d in range(daemons_per_vcpu):
            name = f"{kernel.vm.name}.noise{vidx}.{d}"
            body = daemon_body(
                kernel, stream=name, mean_sleep_ns=mean_sleep_ns, burst_cycles=burst_cycles
            )
            task = Task(name, body, affinity=vidx)
            kernel.add_task(task)
            tasks.append(task)
    return tasks
