"""Scheduler-tick management policies (paper §2, Fig. 1).

Three policies exist; two live here and the paravirtualized one
(:class:`repro.core.paratick_guest.ParatickPolicy`) subclasses the same
base:

* :class:`PeriodicPolicy` — the classic periodic tick (§3.1): the guest
  programs its virtual LAPIC in periodic mode once at boot; every tick
  is delivered regardless of load.
* :class:`NohzPolicy` — Linux dynticks-idle (§3.2, Fig. 1): the tick is
  an hrtimer whose handler re-arms the ``TSC_DEADLINE`` MSR each period;
  idle entry stops the tick (one MSR write), idle exit restarts it
  (another MSR write).

A policy's job is exactly to decide *which timer-hardware interactions
happen when* — every hardware touch it makes becomes a VM exit upstream,
so these ~200 lines are where the paper's entire exit budget comes from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import GuestError
from repro.guest import ops as gops
from repro.hw.cpu import CycleDomain

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel

K = CycleDomain.GUEST_KERNEL


class TickPolicy:
    """Base tick-management policy; one instance serves all vCPUs of a VM."""

    name = "abstract"

    def __init__(self, kernel: "GuestKernel"):
        self.k = kernel

    # Hooks ------------------------------------------------------------

    def on_boot(self, vidx: int) -> None:
        """Install the tick mechanism during boot."""
        raise NotImplementedError

    def on_timer_irq(self, vidx: int) -> None:
        """A LOCAL_TIMER interrupt (vector 236) was injected."""
        raise NotImplementedError

    def on_virtual_tick(self, vidx: int) -> None:
        """A paratick virtual tick (vector 235) was injected.

        §5.2.1: ticks arriving when the mode does not expect them are
        rejected — we ignore them (the injection cost was already paid).
        """

    def on_idle_enter(self, vidx: int) -> None:
        """The idle loop is about to halt (runs on every loop pass)."""
        raise NotImplementedError

    def on_idle_exit(self, vidx: int) -> None:
        """The idle loop is exiting to run a task."""
        raise NotImplementedError

    def on_clock_jump(self, vidx: int, jump_ns: int) -> None:
        """The guest clock jumped forward (restore from a saved image).

        Default: nothing — the periodic tick keeps its phase (the paused
        virtual LAPIC resumed where it left off), and paratick re-bases
        on the host side (``last_virtual_tick_ns`` is reset at restore).
        """


class PeriodicPolicy(TickPolicy):
    """Classic periodic scheduler tick.

    On hardware with a self-reloading periodic mode (x86's virtual
    LAPIC), boot programs it once (one TMICT write); thereafter the
    hypervisor delivers LOCAL_TIMER at the fixed rate, waking the vCPU
    if it is halted — which is precisely why §3.1 finds periodic ticks
    so costly on idle, overcommitted hosts. On compare-value-only
    hardware (ARM's CNTV), the kernel re-arms a one-shot at every tick
    boundary from the tick handler, the way Linux's clockevents layer
    emulates periodic mode on ONESHOT-only devices.
    """

    name = "periodic"

    def on_boot(self, vidx: int) -> None:
        k = self.k
        if k.hv.timerhw.has_periodic_mode:
            k.push(vidx, gops.Compute(k.costs.guest_timer_program, K))
            for op in k.hv.timerhw.guest_periodic_ops(k, vidx, k.period_ns):
                k.push(vidx, op)
        else:
            period = k.period_ns
            k.program_hw(vidx, (k.now() // period + 1) * period)

    def on_timer_irq(self, vidx: int) -> None:
        # Fig. 1a without the reprogramming step: periodic hardware
        # re-fires by itself (or the one-shot emulation re-arms below).
        self.k.push_tick_work(vidx)
        k = self.k
        if not k.hv.timerhw.has_periodic_mode:
            # LOCAL_TIMER delivery already cleared armed_deadline_ns, so
            # this always programs the next boundary.
            period = k.period_ns
            k.program_hw(vidx, (k.now() // period + 1) * period)

    def on_idle_enter(self, vidx: int) -> None:
        """No tick management on idle entry — the tick just keeps firing."""

    def on_idle_exit(self, vidx: int) -> None:
        """No tick management on idle exit either."""


class NohzPolicy(TickPolicy):
    """Linux dynticks-idle ("tickless") — Fig. 1.

    Per-vCPU state lives in the kernel's vCPU context:
    ``tick_stopped`` plus the tick hrtimer handle.
    """

    name = "tickless"

    def on_boot(self, vidx: int) -> None:
        self._enqueue_tick(vidx)
        self.k.reprogram_hw(vidx)

    # ------------------------------------------------------------ tick timer

    def _enqueue_tick(self, vidx: int) -> None:
        """Arm the tick hrtimer for the next aligned tick boundary."""
        ctx = self.k.ctx(vidx)
        period = self.k.period_ns
        expires = (self.k.now() // period + 1) * period
        timer = ctx.tick_hrtimer
        if timer is None:
            # First arm only; every restart re-uses this one handle
            # (Linux's hrtimer_restart on tick_sched_timer).
            ctx.tick_hrtimer = ctx.hrtimers.add(
                expires, lambda: self._tick_fired(vidx), name="tick_sched_timer"
            )
        else:
            ctx.hrtimers.rearm(timer, expires)

    def _tick_fired(self, vidx: int) -> None:
        """hrtimer callback: do tick work, restart the timer (Fig. 1a)."""
        self.k.push_tick_work(vidx)
        ctx = self.k.ctx(vidx)
        if not ctx.tick_stopped:
            self._enqueue_tick(vidx)

    # -------------------------------------------------------------- LOCAL_TIMER

    def on_timer_irq(self, vidx: int) -> None:
        ctx = self.k.ctx(vidx)
        expired = ctx.hrtimers.pop_expired(self.k.now())
        for timer in expired:
            timer.callback()
        if ctx.tick_stopped:
            # The deadline stood in for a deferred wheel/RCU event
            # (Fig. 1b's "program tick to expire at next event").
            self.k.service_wheel(vidx)
        # Fig. 1a: "tick deferred or disabled? -> skip reprogramming";
        # reprogram_hw is a no-op when nothing needs the hardware.
        self.k.reprogram_hw(vidx)

    # ------------------------------------------------------------- idle hooks

    def on_idle_enter(self, vidx: int) -> None:
        """Fig. 1b: decide whether to stop the tick before halting."""
        ctx = self.k.ctx(vidx)
        k = self.k
        if not ctx.tick_stopped:
            if self._must_keep_tick(vidx):
                k.trace_mark(vidx, "tick_kept")
                return  # tick stays armed; no hardware touched
            # Cancel but keep the handle: the restart on idle exit
            # re-arms it instead of allocating a fresh timer.
            ctx.hrtimers.cancel(ctx.tick_hrtimer)
            ctx.tick_stopped = True
            k.trace_mark(vidx, "tick_stop")
            k.reprogram_hw(vidx)  # defer to next event, or disarm entirely
        else:
            # Re-entering idle after an interrupt that woke nothing: the
            # next-event deadline may have moved.
            k.reprogram_hw(vidx)

    def _must_keep_tick(self, vidx: int) -> bool:
        """RCU/softirq checks of Fig. 1b."""
        k = self.k
        if k.rcu.needs_cpu(vidx):
            return True
        nxt = k.next_soft_event_ns(vidx)
        return nxt is not None and nxt <= k.now() + k.period_ns

    def on_idle_exit(self, vidx: int) -> None:
        """Fig. 1c: restart the tick if it was stopped."""
        ctx = self.k.ctx(vidx)
        if not ctx.tick_stopped:
            return
        ctx.tick_stopped = False
        self.k.trace_mark(vidx, "tick_restart")
        self._enqueue_tick(vidx)
        self.k.reprogram_hw(vidx)

    # ------------------------------------------------------------ restore

    def on_clock_jump(self, vidx: int, jump_ns: int) -> None:
        """Post-restore re-base (Linux's ``tick_resume`` path).

        A busy vCPU's tick hrtimer now points into the pre-save past:
        re-arm it on the new clock's tick grid and reprogram the
        hardware so the deadline MSR holds a post-restore expiry. Idle
        vCPUs keep their deferred wake — the host stand-in timer clamps
        the stale deadline to the resume instant, so it fires right
        after thaw and the normal ``on_timer_irq`` path re-evaluates.
        """
        ctx = self.k.ctx(vidx)
        if ctx.idle or ctx.tick_stopped:
            return
        self._enqueue_tick(vidx)
        self.k.reprogram_hw(vidx)


def make_policy(kernel: "GuestKernel") -> TickPolicy:
    """Instantiate the policy selected by the VM spec."""
    from repro.config import TickMode
    from repro.core.paratick_guest import ParatickPolicy

    mode = kernel.tick_mode
    if mode is TickMode.PERIODIC:
        return PeriodicPolicy(kernel)
    if mode is TickMode.TICKLESS:
        return NohzPolicy(kernel)
    if mode is TickMode.PARATICK:
        return ParatickPolicy(kernel)
    raise GuestError(f"unknown tick mode {mode}")
