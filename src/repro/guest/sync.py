"""Blocking synchronization primitives (futex-style).

These are the mechanisms behind §3.2's problem statement: "multithreaded
applications employing blocking synchronization ... may block and
unblock thousands of times per second", each block/unblock pair forcing
a tickless guest to touch timer hardware twice.

Objects here are passive state holders; the guest kernel performs the
actual block/wake transitions (and pays the futex-path cycle costs) when
translating task ops. Methods return which tasks must be woken so the
kernel can route reschedule IPIs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import GuestError
from repro.guest.task import Task


class Mutex:
    """A blocking mutex (futex fast path + wait queue)."""

    __slots__ = ("name", "owner", "waiters", "contended_acquires", "acquires")

    def __init__(self, name: str = "mutex"):
        self.name = name
        self.owner: Optional[Task] = None
        self.waiters: deque[Task] = deque()
        self.acquires = 0
        self.contended_acquires = 0

    def try_lock(self, task: Task) -> bool:
        """Attempt acquisition; on failure the task joins the wait queue."""
        if self.owner is None:
            self.owner = task
            self.acquires += 1
            return True
        if self.owner is task:
            raise GuestError(f"{task.name} double-locks {self.name}")
        self.waiters.append(task)
        self.contended_acquires += 1
        return False

    def unlock(self, task: Task) -> Optional[Task]:
        """Release; returns the waiter that now owns the mutex, if any."""
        if self.owner is not task:
            raise GuestError(f"{task.name} unlocks {self.name} owned by {self.owner}")
        if self.waiters:
            nxt = self.waiters.popleft()
            self.owner = nxt
            self.acquires += 1
            return nxt
        self.owner = None
        return None


class Barrier:
    """A cyclic barrier for ``parties`` tasks."""

    __slots__ = ("name", "parties", "waiters", "generations")

    def __init__(self, parties: int, name: str = "barrier"):
        if parties <= 0:
            raise GuestError("barrier needs at least one party")
        self.name = name
        self.parties = parties
        self.waiters: list[Task] = []
        #: Completed barrier episodes.
        self.generations = 0

    def arrive(self, task: Task) -> list[Task]:
        """Register arrival.

        Returns the list of tasks to wake when this arrival completes the
        barrier (the arriving task itself is *not* in the list — it never
        blocked); otherwise an empty list, meaning the caller blocks.
        """
        if task in self.waiters:
            raise GuestError(f"{task.name} arrives twice at {self.name}")
        if len(self.waiters) + 1 == self.parties:
            woken, self.waiters = self.waiters, []
            self.generations += 1
            return woken
        self.waiters.append(task)
        return []


class CondVar:
    """Condition variable with permit-accumulating signals.

    Real pthread condvars lose signals that arrive before the wait; real
    *programs* do not, because the wait sits inside a mutex-protected
    predicate re-check. We do not model the enclosing predicate, so
    signals targeting an empty wait queue accumulate as permits that
    satisfy future waits — which reproduces the program-level blocking
    pattern without the race. Broadcasts never accumulate (a broadcast
    of nobody is a no-op, matching predicate semantics).
    """

    __slots__ = ("name", "waiters", "signals", "permits")

    def __init__(self, name: str = "cond"):
        self.name = name
        self.waiters: deque[Task] = deque()
        self.signals = 0
        self.permits = 0

    def wait(self, task: Task) -> bool:
        """Returns True when the task must block (no banked permit)."""
        if self.permits > 0:
            self.permits -= 1
            return False
        self.waiters.append(task)
        return True

    def take(self, n: int) -> list[Task]:
        """Wake up to ``n`` waiters (-1 = all), banking any surplus."""
        self.signals += 1
        if n == -1:
            out = list(self.waiters)
            self.waiters.clear()
            return out
        out = [self.waiters.popleft() for _ in range(min(n, len(self.waiters)))]
        self.permits += n - len(out)
        return out


class BoundedQueue:
    """A bounded producer/consumer queue (pipeline-parallel workloads).

    Models the hand-off structure of PARSEC's dedup/ferret/x264
    pipelines: producers block when the queue is full, consumers when it
    is empty — generating exactly the brief, frequent idle periods the
    paper targets.
    """

    __slots__ = ("name", "capacity", "items", "put_waiters", "get_waiters")

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise GuestError("queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self.put_waiters: deque[tuple[Task, Any]] = deque()
        self.get_waiters: deque[Task] = deque()

    def put(self, task: Task, item: Any) -> tuple[bool, Optional[Task]]:
        """Returns (blocked, consumer_to_wake)."""
        if self.get_waiters:
            consumer = self.get_waiters.popleft()
            consumer.pending_value = item
            return False, consumer
        if len(self.items) < self.capacity:
            self.items.append(item)
            return False, None
        self.put_waiters.append((task, item))
        return True, None

    def get(self, task: Task) -> tuple[bool, Any, Optional[Task]]:
        """Returns (blocked, item, producer_to_wake)."""
        if self.items:
            item = self.items.popleft()
            producer = None
            if self.put_waiters:
                producer, pending = self.put_waiters.popleft()
                self.items.append(pending)
            return False, item, producer
        if self.put_waiters:
            # Capacity 0..N edge: hand off directly from a blocked producer.
            producer, pending = self.put_waiters.popleft()
            return False, pending, producer
        self.get_waiters.append(task)
        return True, None, None
