"""Hierarchical timer wheel (guest-side soft timers).

Models Linux's timer wheel (§2: "the application timer is added to a
dedicated data structure (e.g. the timer wheel in Linux)"). Soft timers
(``nanosleep``, network timeouts, writeback deadlines) live here; they
are serviced from the timer softirq, which runs when a scheduler tick —
physical, deferred-deadline or paratick-virtual — arrives.

The implementation is the classic cascading hierarchy: level 0 buckets
have jiffy resolution, each higher level is ``LVL_SIZE`` times coarser.
Timers on higher levels cascade down as their slot boundary is crossed;
they fire on jiffy granularity, possibly *later* than requested but never
earlier — a property the hypothesis tests pin down.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import GuestError


class WheelTimer:
    """One soft timer."""

    __slots__ = ("expires_jiffies", "callback", "name", "_active")

    def __init__(self, expires_jiffies: int, callback: Callable[[], None], name: str):
        self.expires_jiffies = expires_jiffies
        self.callback = callback
        self.name = name
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WheelTimer {self.name} @j{self.expires_jiffies}>"


class TimerWheel:
    """Hierarchical wheel keyed in jiffies (guest tick units)."""

    LVL_BITS = 6
    LVL_SIZE = 1 << LVL_BITS  # 64 buckets per level
    LEVELS = 8

    def __init__(self, *, start_jiffies: int = 0) -> None:
        self._buckets: list[list[list[WheelTimer]]] = [
            [[] for _ in range(self.LVL_SIZE)] for _ in range(self.LEVELS)
        ]
        self._current = start_jiffies
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def current_jiffies(self) -> int:
        return self._current

    # -------------------------------------------------------------- placing

    def _place(self, timer: WheelTimer) -> None:
        """Append ``timer`` to the bucket covering its expiry."""
        delta = max(timer.expires_jiffies - self._current, 0)
        level = 0
        span = self.LVL_SIZE
        while delta >= span and level < self.LEVELS - 1:
            level += 1
            span <<= self.LVL_BITS
        gran_bits = level * self.LVL_BITS
        slot = (timer.expires_jiffies >> gran_bits) & (self.LVL_SIZE - 1)
        self._buckets[level][slot].append(timer)

    def add(self, expires_jiffies: int, callback: Callable[[], None], *, name: str = "timer") -> WheelTimer:
        """Enqueue a timer for an absolute jiffy count."""
        if expires_jiffies <= self._current:
            expires_jiffies = self._current + 1  # fires on the next advance
        t = WheelTimer(expires_jiffies, callback, name)
        self._place(t)
        self._count += 1
        return t

    def cancel(self, timer: Optional[WheelTimer]) -> bool:
        """Deactivate a timer; returns True if it had not fired yet."""
        if timer is None or not timer._active:
            return False
        timer._active = False
        self._count -= 1
        return True

    # ------------------------------------------------------------- advancing

    def advance_to(self, jiffies: int) -> list[WheelTimer]:
        """Move time forward; return fired timers in expiry order."""
        if jiffies < self._current:
            raise GuestError(f"wheel cannot run backwards ({jiffies} < {self._current})")
        fired: list[WheelTimer] = []
        while self._current < jiffies:
            self._current += 1
            self._step(fired)
        fired.sort(key=lambda t: t.expires_jiffies)
        return fired

    def _step(self, fired: list[WheelTimer]) -> None:
        """Process one jiffy: fire level 0, cascade crossed boundaries."""
        cur = self._current
        # Level 0: every live timer in this slot is due (placement
        # guarantees expiry within one wheel revolution).
        slot0 = cur & (self.LVL_SIZE - 1)
        self._drain(self._buckets[0][slot0], fired)
        # Higher levels: when a level's granularity boundary is crossed,
        # re-place (cascade) that slot's timers; due ones fire.
        for level in range(1, self.LEVELS):
            gran_bits = level * self.LVL_BITS
            if cur & ((1 << gran_bits) - 1):
                break
            slot = (cur >> gran_bits) & (self.LVL_SIZE - 1)
            self._drain(self._buckets[level][slot], fired)

    def _drain(self, bucket: list[WheelTimer], fired: list[WheelTimer]) -> None:
        pending = [t for t in bucket if t._active]
        bucket.clear()
        for t in pending:
            if t.expires_jiffies <= self._current:
                t._active = False
                self._count -= 1
                fired.append(t)
            else:
                self._place(t)

    # -------------------------------------------------------------- queries

    def next_expiry(self) -> Optional[int]:
        """Earliest pending expiry in jiffies, or None if empty.

        O(live timers) scan — acceptable because the idle path calls it
        once per idle entry and guest timer queues are short.
        """
        best: Optional[int] = None
        for level in self._buckets:
            for bucket in level:
                for t in bucket:
                    if t._active and (best is None or t.expires_jiffies < best):
                        best = t.expires_jiffies
        return best
