"""cpuidle: C-states and a menu-like idle governor (opt-in extension).

Why this exists in a timer-path reproduction: the depth of the idle
state a CPU may enter is bounded by the *next timer event* — exactly the
quantity tick management controls. §2 cites the motivating data ([12]:
idle phones spending "two thirds of their energy usage on processing
scheduler ticks"), and §6.2 claims paratick's throughput gain "reduces
energy consumption"; with a C-state model both claims become measurable
(see ``repro.metrics.energy`` and ``benchmarks/bench_extension_energy``).

The model is deliberately small: four states with datasheet-class exit
latencies and powers, and a governor that (like Linux's menu governor)
picks the deepest state whose target residency fits the predicted idle
period. Enabled per-VM via ``VmSpec.cpuidle``; off by default so the
calibrated headline results are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.timebase import USEC


@dataclass(frozen=True)
class CState:
    """One processor idle state."""

    name: str
    #: Wake-up cost paid when leaving the state.
    exit_latency_ns: int
    #: Minimum stay for the state to be worth entering.
    target_residency_ns: int
    #: Power while resident, as a fraction of active power.
    power_fraction: float

    def __post_init__(self) -> None:
        if self.exit_latency_ns < 0 or self.target_residency_ns < 0:
            raise ConfigError("latencies must be non-negative")
        if not 0.0 <= self.power_fraction <= 1.0:
            raise ConfigError("power fraction must be in [0,1]")


#: Skylake-class state table (shallow to deep).
C1 = CState("C1", exit_latency_ns=2 * USEC, target_residency_ns=2 * USEC, power_fraction=0.45)
C1E = CState("C1E", exit_latency_ns=10 * USEC, target_residency_ns=20 * USEC, power_fraction=0.30)
C3 = CState("C3", exit_latency_ns=33 * USEC, target_residency_ns=100 * USEC, power_fraction=0.12)
C6 = CState("C6", exit_latency_ns=90 * USEC, target_residency_ns=400 * USEC, power_fraction=0.03)

C_STATES: tuple[CState, ...] = (C1, C1E, C3, C6)


class MenuGovernor:
    """Pick the deepest state whose residency fits the predicted idle.

    The prediction is the time to the next armed timer event — which is
    why tick management matters: a tickless guest that stopped its tick
    (or a paratick guest that never armed one) predicts long idle and
    reaches deep states; a periodic guest is always at most one tick
    period away from a wake-up.
    """

    def __init__(self, states: tuple[CState, ...] = C_STATES):
        if not states:
            raise ConfigError("need at least one C-state")
        self.states = tuple(sorted(states, key=lambda s: s.target_residency_ns))

    def select(self, predicted_idle_ns: int | None) -> CState:
        """Choose a state; ``None`` means no timer armed (sleep 'forever')."""
        if predicted_idle_ns is None:
            return self.states[-1]
        chosen = self.states[0]
        for state in self.states:
            if state.target_residency_ns <= predicted_idle_ns:
                chosen = state
        return chosen
