"""High-resolution timers (guest-side).

A per-vCPU queue of absolute-deadline timers, mirroring Linux's hrtimer
red-black tree. The scheduler tick in tickless mode *is* an hrtimer
(``tick_sched_timer``); paratick's idle wake timer is one too. The
earliest enqueued timer is what the clockevents layer programs into the
``TSC_DEADLINE`` MSR — so the number of hardware (re)programmings, and
therefore VM exits, falls out of this queue's behaviour.

Implemented exactly like the engine's event queue: a heap of
``(expires, seq, timer)`` tuples (native tuple compare, no Python-level
``__lt__`` on the hot path) with lazy deletion. A heap entry is live iff
the timer is active *and* its seq still matches — :meth:`HrtimerQueue.rearm`
moves a timer by assigning a fresh seq and pushing a new entry, so the
tick restart of tickless/paratick mode (the single hottest hrtimer
operation) allocates nothing. Dead entries are dropped on drain or by an
amortized in-place compaction.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import GuestError

#: Compaction floor, matching the engine queue's rationale: below this
#: many dead entries a rebuild cannot win.
_COMPACT_MIN_DEAD = 32


class Hrtimer:
    """One high-resolution timer."""

    __slots__ = ("expires_ns", "callback", "name", "_seq", "_active")

    def __init__(self, expires_ns: int, callback: Callable[[], None], name: str, seq: int):
        self.expires_ns = expires_ns
        self.callback = callback
        self.name = name
        self._seq = seq
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def __lt__(self, other: "Hrtimer") -> bool:
        return (self.expires_ns, self._seq) < (other.expires_ns, other._seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "" if self._active else " cancelled"
        return f"<Hrtimer {self.name} @{self.expires_ns}{state}>"


class HrtimerQueue:
    """Per-vCPU set of pending hrtimers."""

    __slots__ = ("_heap", "_live", "_dead", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Hrtimer]] = []
        self._live = 0
        #: Dead entries (cancelled or orphaned by re-arm) still heaped.
        self._dead = 0
        self._seq = 0

    def __len__(self) -> int:
        return self._live

    def add(self, expires_ns: int, callback: Callable[[], None], *, name: str = "hrtimer") -> Hrtimer:
        """Enqueue a timer with an absolute expiry."""
        if expires_ns < 0:
            raise GuestError(f"negative expiry {expires_ns}")
        seq = self._seq
        self._seq = seq + 1
        t = Hrtimer(expires_ns, callback, name, seq)
        heapq.heappush(self._heap, (expires_ns, seq, t))
        self._live += 1
        return t

    def rearm(self, timer: Hrtimer, expires_ns: int) -> Hrtimer:
        """Re-enqueue ``timer`` at a new expiry without allocating.

        Accepts active timers (the old heap entry is orphaned — its seq
        no longer matches — and dropped lazily), as well as expired or
        cancelled ones (Linux's ``hrtimer_restart``). This is the tick
        restart path of tickless and paratick modes.
        """
        if expires_ns < 0:
            raise GuestError(f"negative expiry {expires_ns}")
        seq = self._seq
        self._seq = seq + 1
        if timer._active:
            self._dead += 1
        else:
            timer._active = True
            self._live += 1
        timer.expires_ns = expires_ns
        timer._seq = seq
        heapq.heappush(self._heap, (expires_ns, seq, timer))
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()
        return timer

    def cancel(self, timer: Optional[Hrtimer]) -> bool:
        """Deactivate a timer; returns True if it was still pending."""
        if timer is None or not timer._active:
            return False
        timer._active = False
        self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()
        return True

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap:
            _, seq, t = heap[0]
            if t._active and t._seq == seq:
                return
            heapq.heappop(heap)
            self._dead -= 1

    def _compact(self) -> None:
        """Rebuild the heap in place, dropping every dead entry."""
        heap = self._heap
        heap[:] = [e for e in heap if e[2]._active and e[2]._seq == e[1]]
        heapq.heapify(heap)
        self._dead = 0

    def next_expiry(self) -> Optional[int]:
        """Earliest pending expiry, or None when the queue is empty."""
        self._drop_dead()
        return self._heap[0][0] if self._heap else None

    def pop_expired(self, now_ns: int) -> list[Hrtimer]:
        """Remove and return every timer with ``expires <= now``, in order."""
        out: list[Hrtimer] = []
        heap = self._heap
        while heap:
            expires, seq, t = heap[0]
            if not (t._active and t._seq == seq):
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if expires > now_ns:
                break
            heapq.heappop(heap)
            t._active = False
            self._live -= 1
            out.append(t)
        return out

    def pending_names(self) -> list[str]:
        """Names of live timers (for tests/traces)."""
        return sorted(t.name for _, seq, t in self._heap if t._active and t._seq == seq)
