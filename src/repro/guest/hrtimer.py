"""High-resolution timers (guest-side).

A per-vCPU queue of absolute-deadline timers, mirroring Linux's hrtimer
red-black tree. The scheduler tick in tickless mode *is* an hrtimer
(``tick_sched_timer``); paratick's idle wake timer is one too. The
earliest enqueued timer is what the clockevents layer programs into the
``TSC_DEADLINE`` MSR — so the number of hardware (re)programmings, and
therefore VM exits, falls out of this queue's behaviour.

Implemented as a heap with lazy deletion (same pattern as the engine's
event queue): cancel is O(1), peek/pop skip dead entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import GuestError


class Hrtimer:
    """One high-resolution timer."""

    __slots__ = ("expires_ns", "callback", "name", "_seq", "_active")

    def __init__(self, expires_ns: int, callback: Callable[[], None], name: str, seq: int):
        self.expires_ns = expires_ns
        self.callback = callback
        self.name = name
        self._seq = seq
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def __lt__(self, other: "Hrtimer") -> bool:
        return (self.expires_ns, self._seq) < (other.expires_ns, other._seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "" if self._active else " cancelled"
        return f"<Hrtimer {self.name} @{self.expires_ns}{state}>"


class HrtimerQueue:
    """Per-vCPU set of pending hrtimers."""

    def __init__(self) -> None:
        self._heap: list[Hrtimer] = []
        self._live = 0
        self._seq = itertools.count()

    def __len__(self) -> int:
        return self._live

    def add(self, expires_ns: int, callback: Callable[[], None], *, name: str = "hrtimer") -> Hrtimer:
        """Enqueue a timer with an absolute expiry."""
        if expires_ns < 0:
            raise GuestError(f"negative expiry {expires_ns}")
        t = Hrtimer(expires_ns, callback, name, next(self._seq))
        heapq.heappush(self._heap, t)
        self._live += 1
        return t

    def cancel(self, timer: Optional[Hrtimer]) -> bool:
        """Deactivate a timer; returns True if it was still pending."""
        if timer is None or not timer._active:
            return False
        timer._active = False
        self._live -= 1
        return True

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and not heap[0]._active:
            heapq.heappop(heap)

    def next_expiry(self) -> Optional[int]:
        """Earliest pending expiry, or None when the queue is empty."""
        self._drop_dead()
        return self._heap[0].expires_ns if self._heap else None

    def pop_expired(self, now_ns: int) -> list[Hrtimer]:
        """Remove and return every timer with ``expires <= now``, in order."""
        out: list[Hrtimer] = []
        while True:
            self._drop_dead()
            if not self._heap or self._heap[0].expires_ns > now_ns:
                break
            t = heapq.heappop(self._heap)
            t._active = False
            self._live -= 1
            out.append(t)
        return out

    def pending_names(self) -> list[str]:
        """Names of live timers (for tests/traces)."""
        return sorted(t.name for t in self._heap if t._active)
