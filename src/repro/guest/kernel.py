"""The guest kernel: op-stream generation, IRQ handling, task translation.

One :class:`GuestKernel` drives all vCPUs of one VM. The hypervisor's
per-vCPU executors pull primitive ops via :meth:`next_op`; interrupts
arrive via :meth:`on_interrupts`. Internally the kernel keeps a per-vCPU
op deque: task bodies, IRQ handlers, the idle loop and the tick policy
all append to it.

Convention (shared with the executor): *state changes are immediate,
cycle costs are replayed as ops*. When an IRQ handler wakes a task, the
runqueue is updated at delivery time, and the handler's cycle cost is
pushed as a ``Compute`` op that the executor accounts right after. Exit
counts are exact; intra-microsecond orderings are approximate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import TickMode
from repro.errors import GuestError
from repro.guest import ops as gops
from repro.guest import task as tsk
from repro.guest.hrtimer import HrtimerQueue
from repro.guest.rcu import Rcu
from repro.guest.sched import GuestScheduler
from repro.guest.task import Task
from repro.guest.timerwheel import TimerWheel
from repro.host.exitreasons import ExitTag
from repro.hw.cpu import CycleDomain
from repro.hw.interrupts import Vector
from repro.hw.iodev import IoRequest

K = CycleDomain.GUEST_KERNEL
U = CycleDomain.GUEST_USER

PAGE = 4096


class VcpuCtx:
    """Per-vCPU guest state."""

    __slots__ = (
        "index",
        "ops",
        "idle",
        "tick_stopped",
        "tick_hrtimer",
        "hrtimers",
        "wheel",
        "armed_deadline_ns",
        "need_resched",
        "io_done",
        "hw_state",
    )

    def __init__(self, index: int):
        self.index = index
        self.ops: deque[gops.GuestOp] = deque()
        self.idle = False
        self.tick_stopped = False
        self.tick_hrtimer = None
        self.hrtimers = HrtimerQueue()
        self.wheel = TimerWheel()
        #: The guest's view of the deadline armed in hardware (abs ns).
        self.armed_deadline_ns: Optional[int] = None
        self.need_resched = False
        self.io_done: deque[IoRequest] = deque()
        #: Backend-owned guest-side timer register state (lazily created
        #: by the arch's TimerHardware; None on x86).
        self.hw_state = None


class GuestKernel:
    """A Linux-like kernel model for one VM."""

    def __init__(self, vm) -> None:
        from repro.guest.ticksched import make_policy

        self.vm = vm
        self.hv = vm.hv
        self.sim = vm.hv.sim
        self.costs = vm.hv.costs
        self.tick_mode: TickMode = vm.spec.tick_mode
        self.period_ns: int = vm.spec.tick_period_ns
        self.nvcpus = vm.spec.vcpus
        self._ctx = [VcpuCtx(i) for i in range(self.nvcpus)]
        self.rcu = Rcu(self.nvcpus)
        self.sched = GuestScheduler(self.nvcpus, self._notify_resched, self._task_done)
        self.block_device = None
        self.nic = None
        self._active_vidx: Optional[int] = None
        self._push_sink: Optional[list] = None
        self._io_seq: dict[tuple[int, str], int] = {}
        self._stopped = False
        #: Called with each finishing task (workloads hook this).
        self.task_done_callbacks: list[Callable[[Task], None]] = []
        if vm.spec.cpuidle:
            from repro.guest.cpuidle import MenuGovernor

            self.cpuidle_governor = MenuGovernor()
        else:
            self.cpuidle_governor = None
        self.policy = make_policy(self)
        vm.attach_kernel(self)
        for vidx in range(self.nvcpus):
            # §5.2.1: high-resolution timers, and with them the final
            # tick mode, only come up partway through boot. The boot
            # work also de-phases each vCPU's timers from the host tick
            # grid (staggered per vCPU, like real kernel SMP bring-up).
            boot = self.costs.guest_boot_init + vidx * 40_000
            self.push(vidx, gops.Compute(boot, K))
            self._with_vcpu(vidx, lambda v=vidx: self.policy.on_boot(v))

    # ----------------------------------------------------------- wiring

    def attach_block_device(self, device) -> None:
        """Install the VM's block device (virtio-blk front end)."""
        if self.block_device is not None:
            raise GuestError("block device already attached")
        self.block_device = device

    def attach_nic(self, nic) -> None:
        """Install the VM's network interface (virtio-net front end)."""
        if self.nic is not None:
            raise GuestError("NIC already attached")
        self.nic = nic

    def add_task(self, task: Task) -> None:
        """Register a task (normally before the VM starts)."""
        self.sched.add_task(task)

    def spawn_external(self, task: Task) -> None:
        """Add a task to a running VM, poking its vCPU if halted."""
        self.sched.add_task(task)
        vcpu = self.vm.vcpus[task.affinity]
        vcpu.exec.deliver(Vector.RESCHEDULE, ExitTag.IPI)

    def stop(self) -> None:
        """Shut the VM down: executors stop at their next op fetch."""
        self._stopped = True

    # ----------------------------------------------------- perturbations

    def on_clock_jump(self, jump_ns: int) -> None:
        """The guest clock jumped forward ``jump_ns`` (restore from save).

        Mirrors Linux's ``timekeeping_resume()``: every online vCPU's
        tick machinery re-bases on the new clock before the vCPUs thaw.
        Hardware writes queued here go through :meth:`program_hw`, which
        clamps stale expiries forward — re-armed deadlines always land
        at or after the restore instant.
        """
        for vidx in range(min(self.nvcpus, len(self.vm.vcpus))):
            self._with_vcpu(vidx, lambda v=vidx: self.policy.on_clock_jump(v, jump_ns))

    def on_vcpu_hotplug(self, vidx: int) -> None:
        """A vCPU came online at index ``vidx`` (host-side hotplug).

        Grows the per-vCPU kernel structures — or resets them when a
        previously offlined index comes back — then replays the same
        staggered boot sequence the boot-time vCPUs ran.
        """
        if vidx == self.nvcpus:
            self.nvcpus += 1
            self._ctx.append(VcpuCtx(vidx))
            self.rcu.grow()
            self.sched.grow()
        elif 0 <= vidx < self.nvcpus:
            # Re-plug of an offlined index: fresh per-vCPU state.
            self._ctx[vidx] = VcpuCtx(vidx)
        else:
            raise GuestError(f"hotplug at index {vidx} skips slot {self.nvcpus}")
        boot = self.costs.guest_boot_init + vidx * 40_000
        self.push(vidx, gops.Compute(boot, K))
        self._with_vcpu(vidx, lambda v=vidx: self.policy.on_boot(v))

    def on_vcpu_unplug(self, vidx: int) -> None:
        """A vCPU went offline; drop its queued kernel work.

        The context object is replaced wholesale on a re-plug, so
        clearing the op queue suffices — hrtimers and wheel state die
        with the context.
        """
        ctx = self._ctx[vidx]
        ctx.ops.clear()
        ctx.idle = False

    # ------------------------------------------------------- small helpers

    def now(self) -> int:
        """The guest's clock: host time plus any drift perturbation.

        Everything the kernel model does with time — tick-boundary
        arithmetic, hrtimer expiry checks, deadline programming — reads
        this clock, so a drifted guest stays self-consistent: it
        programs deadlines on its own timeline and the hypervisor's
        ``TSC_DEADLINE`` handler translates them back to host time.
        Reading ``sim.now`` here instead desynchronizes the two views
        and a drift of a full tick period turns every timer IRQ into a
        spurious one (the guest's clock says "not yet" forever).
        """
        return self.sim.now + self.vm.guest_clock_offset_ns

    def ctx(self, vidx: int) -> VcpuCtx:
        return self._ctx[vidx]

    def trace_mark(self, vidx: int, kind: str, detail=None) -> None:
        """Emit a structured guest-side trace event for one vCPU.

        Callers that would *build* a detail object should pre-check
        ``kernel.sim.trace.enabled`` so NullTracer runs do zero work.
        """
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, f"{self.vm.name}/vcpu{vidx}", kind, detail)

    def push(self, vidx: int, op: gops.GuestOp) -> None:
        """Append an op for ``vidx`` (redirected during IRQ processing)."""
        if self._push_sink is not None and vidx == self._active_vidx:
            self._push_sink.append(op)
        else:
            self._ctx[vidx].ops.append(op)

    def _cb(self, vidx: int, fn: Callable[[], None]) -> Callable[[], None]:
        """Wrap a callback so kernel work it does is attributed to vidx."""

        def run() -> None:
            prev = self._active_vidx
            self._active_vidx = vidx
            try:
                fn()
            finally:
                self._active_vidx = prev

        return run

    def _with_vcpu(self, vidx: int, fn: Callable[[], None]) -> None:
        self._cb(vidx, fn)()

    # =================================================================
    # Executor-facing interface
    # =================================================================

    def next_op(self, vidx: int):
        """Produce the next primitive op for a vCPU (see module docstring)."""
        ctx = self._ctx[vidx]
        prev = self._active_vidx
        self._active_vidx = vidx
        try:
            for _ in range(100_000):
                if ctx.ops:
                    op = ctx.ops.popleft()
                    if isinstance(op, gops.Hlt) and self.sched.has_work(vidx):
                        # Linux's sti;hlt race guard: a wakeup arrived
                        # between the idle-entry decision and the HLT —
                        # re-run the idle loop instead of halting with
                        # runnable work (would be a lost wakeup).
                        continue
                    return op
                if self._stopped:
                    return None
                cur = self.sched.current(vidx)
                if cur is not None:
                    if ctx.need_resched and self.sched.runnable_waiting(vidx) > 0:
                        ctx.need_resched = False
                        self.sched.preempt_current(vidx)
                        self._push_switch(vidx)
                        continue
                    ctx.need_resched = False
                    self._advance_task(vidx, cur)
                    continue
                if self.sched.runnable_waiting(vidx) > 0:
                    ctx.need_resched = False
                    if ctx.idle:
                        ctx.idle = False
                        self._push_idle_exit(vidx)
                    self._push_switch(vidx)
                    continue
                # Nothing runnable: idle loop pass (Fig. 1b / 3c).
                ctx.idle = True
                self._push_idle_enter(vidx)
            raise GuestError(f"vCPU{vidx}: kernel op loop made no progress")
        finally:
            self._active_vidx = prev

    def requeue_front(self, vidx: int, op: gops.GuestOp) -> None:
        """Executor returns the unexecuted remainder of a preempted op."""
        self._ctx[vidx].ops.appendleft(op)

    def on_interrupts(self, vidx: int, vectors: tuple) -> None:
        """Injected interrupts: build handler op sequences (front of queue)."""
        ctx = self._ctx[vidx]
        prev_active, prev_sink = self._active_vidx, self._push_sink
        self._active_vidx = vidx
        seq: list[gops.GuestOp] = []
        self._push_sink = seq
        try:
            eoi_trapped = not self.hv.features.virtual_eoi
            for vector in vectors:
                seq.append(gops.Compute(self.costs.guest_irq_glue, K))
                if eoi_trapped:
                    # Pre-APICv host: the handler's EOI write traps.
                    seq.append(self.hv.timerhw.guest_eoi_op(vector))
                if vector is Vector.LOCAL_TIMER:
                    ctx.armed_deadline_ns = None  # the hardware deadline fired
                    self.policy.on_timer_irq(vidx)
                elif vector is Vector.PARATICK_VIRTUAL_TICK:
                    self.policy.on_virtual_tick(vidx)
                elif vector is Vector.RESCHEDULE:
                    ctx.need_resched = True
                elif vector is Vector.BLOCK_IO:
                    self._handle_block_io_irq(vidx, seq)
                elif vector is Vector.NET_IO:
                    self._handle_block_io_irq(vidx, seq)
                # Unknown vectors: spurious; glue cost only.
        finally:
            self._push_sink = prev_sink
            self._active_vidx = prev_active
        ctx.ops.extendleft(reversed(seq))

    def io_complete(self, vidx: int, req: IoRequest) -> None:
        """Hypervisor posted a completed request (before injecting the IRQ)."""
        self._ctx[vidx].io_done.append(req)

    # =================================================================
    # Tick-policy services
    # =================================================================

    def push_tick_work(self, vidx: int) -> None:
        """Standard tick-handler body: accounting, sched check, softirqs."""
        self.push(
            vidx,
            gops.Compute(self.costs.guest_tick_work, K, on_done=self._cb(vidx, lambda: self._tick_effects(vidx))),
        )

    def _tick_effects(self, vidx: int) -> None:
        ctx = self._ctx[vidx]
        self.rcu.note_quiescent_state(vidx)
        ready = self.rcu.take_ready(vidx)
        if ready:
            self.push(vidx, gops.Compute(ready * self.costs.guest_softirq_cb, K))
        if self.sched.runnable_waiting(vidx) > 0:
            ctx.need_resched = True
        self.service_wheel(vidx)

    def service_wheel(self, vidx: int) -> None:
        """Advance the timer wheel to the current jiffy; run expiries."""
        ctx = self._ctx[vidx]
        fired = ctx.wheel.advance_to(self.now() // self.period_ns)
        for timer in fired:
            self.push(vidx, gops.Compute(self.costs.guest_softirq_cb, K))
            timer.callback()

    def next_soft_event_ns(self, vidx: int) -> Optional[int]:
        """Earliest pending soft-timer expiry, in absolute ns."""
        j = self._ctx[vidx].wheel.next_expiry()
        return None if j is None else j * self.period_ns

    def reprogram_hw(self, vidx: int) -> None:
        """Tickless clockevents reprogramming: earliest hrtimer (plus the
        wheel when the tick is stopped); writes only on change."""
        ctx = self._ctx[vidx]
        desired = ctx.hrtimers.next_expiry()
        if ctx.tick_stopped:
            w = self.next_soft_event_ns(vidx)
            if w is not None and (desired is None or w < desired):
                desired = w
        self.program_hw(vidx, desired)

    def program_hw(self, vidx: int, desired: Optional[int]) -> None:
        """Arm (or disarm, with None) the deadline hardware if it changed."""
        ctx = self._ctx[vidx]
        if desired == ctx.armed_deadline_ns:
            return
        ctx.armed_deadline_ns = desired
        self.trace_mark(vidx, "timer_program_req", desired)
        self.push(vidx, gops.Compute(self.costs.guest_timer_program, K))
        for op in self.hv.timerhw.guest_deadline_ops(self, vidx, desired):
            self.push(vidx, op)

    # =================================================================
    # Idle loop
    # =================================================================

    def _push_idle_enter(self, vidx: int) -> None:
        def after_entry_code() -> None:
            self.trace_mark(vidx, "idle_enter")
            self.policy.on_idle_enter(vidx)
            if self.cpuidle_governor is not None:
                # cpuidle: pick an idle state from the time to the next
                # armed timer — the quantity tick management controls.
                armed = self._ctx[vidx].armed_deadline_ns
                predicted = None if armed is None else max(armed - self.now(), 0)
                self.vm.vcpus[vidx].requested_cstate = self.cpuidle_governor.select(predicted)
            self.push(vidx, gops.Hlt())

        self.push(vidx, gops.Compute(self.costs.guest_idle_entry, K, on_done=self._cb(vidx, after_entry_code)))

    def _push_idle_exit(self, vidx: int) -> None:
        def after_exit_code() -> None:
            self.trace_mark(vidx, "idle_exit")
            self.policy.on_idle_exit(vidx)

        self.push(
            vidx,
            gops.Compute(self.costs.guest_idle_exit, K, on_done=self._cb(vidx, after_exit_code)),
        )

    def _push_switch(self, vidx: int) -> None:
        def do_switch() -> None:
            self.rcu.note_quiescent_state(vidx)
            if self.sched.current(vidx) is None:
                self.sched.pick_next(vidx)

        self.push(vidx, gops.Compute(self.costs.guest_sched_switch, K, on_done=self._cb(vidx, do_switch)))

    # =================================================================
    # Task-op translation
    # =================================================================

    def _advance_task(self, vidx: int, task: Task) -> None:
        if task.started_ns is None:
            task.started_ns = self.now()
        value, task.pending_value = task.pending_value, None
        try:
            top = task.body.send(value)
        except StopIteration:
            task.finished_ns = self.now()
            self.sched.finish_current(vidx)
            self.push(vidx, gops.Compute(self.costs.guest_sched_switch, K))
            return
        self._translate(vidx, task, top)

    def _translate(self, vidx: int, task: Task, top: tsk.TaskOp) -> None:
        c = self.costs
        if isinstance(top, tsk.Run):
            self.push(vidx, gops.Compute(top.cycles, U))
        elif isinstance(top, tsk.Sleep):
            self.push(vidx, gops.Compute(c.guest_syscall + c.guest_hrtimer_soft, K,
                                         on_done=self._cb(vidx, lambda: self._do_sleep(vidx, task, top.ns, top.precise))))
        elif isinstance(top, (tsk.BlockRead, tsk.BlockWrite)):
            op = "read" if isinstance(top, tsk.BlockRead) else "write"
            pages = max(1, -(-top.size // PAGE))
            cycles = c.guest_syscall + c.guest_io_submit + pages * c.guest_io_per_page
            self.push(vidx, gops.Compute(cycles, K,
                                         on_done=self._cb(vidx, lambda: self._do_block_io(vidx, task, op, top.size, top.offset))))
        elif isinstance(top, tsk.NetRequest):
            pages = max(1, -(-top.size // PAGE))
            cycles = c.guest_syscall + c.guest_io_submit // 2 + pages * c.guest_io_per_page
            self.push(vidx, gops.Compute(cycles, K,
                                         on_done=self._cb(vidx, lambda: self._do_net_request(vidx, task, top.size))))
        elif isinstance(top, tsk.MutexLock):
            self.push(vidx, gops.Compute(c.guest_futex_wait, K,
                                         on_done=self._cb(vidx, lambda: self._do_lock(vidx, task, top.mutex))))
        elif isinstance(top, tsk.MutexUnlock):
            self.push(vidx, gops.Compute(c.guest_futex_wake, K,
                                         on_done=self._cb(vidx, lambda: self._do_unlock(vidx, task, top.mutex))))
        elif isinstance(top, tsk.BarrierWait):
            self.push(vidx, gops.Compute(c.guest_futex_wait, K,
                                         on_done=self._cb(vidx, lambda: self._do_barrier(vidx, task, top.barrier))))
        elif isinstance(top, tsk.CondWait):
            self.push(vidx, gops.Compute(c.guest_futex_wait, K,
                                         on_done=self._cb(vidx, lambda: self._do_cond_wait(vidx, task, top.cond))))
        elif isinstance(top, tsk.CondSignal):
            self.push(vidx, gops.Compute(c.guest_futex_wake, K,
                                         on_done=self._cb(vidx, lambda: self._do_cond_signal(vidx, top.cond, top.n))))
        elif isinstance(top, tsk.QueuePut):
            self.push(vidx, gops.Compute(c.guest_futex_wake, K,
                                         on_done=self._cb(vidx, lambda: self._do_queue_put(vidx, task, top.queue, top.item))))
        elif isinstance(top, tsk.QueueGet):
            self.push(vidx, gops.Compute(c.guest_futex_wait, K,
                                         on_done=self._cb(vidx, lambda: self._do_queue_get(vidx, task, top.queue))))
        elif isinstance(top, tsk.PageFault):
            for _ in range(top.count):
                self.push(vidx, gops.Fault())
        elif isinstance(top, tsk.YieldCpu):
            def do_yield() -> None:
                self._ctx[vidx].need_resched = True

            self.push(vidx, gops.Compute(c.guest_syscall, K, on_done=self._cb(vidx, do_yield)))
        else:
            raise GuestError(f"task {task.name} yielded unknown op {top!r}")

    # ------------------------------------------------------ blocking actions

    def _block(self, vidx: int, reason: str) -> Task:
        """Block the running task; the schedule() this implies is an RCU
        quiescent state for the vCPU."""
        self.rcu.note_quiescent_state(vidx)
        return self.sched.block_current(vidx, reason)

    def _do_sleep(self, vidx: int, task: Task, ns: int, precise: bool) -> None:
        self.rcu.note_update_op(vidx)
        self._block(vidx, "sleep")
        if precise and self.tick_mode is not TickMode.PERIODIC:
            # nanosleep: an hrtimer with a hardware deadline. (Classic
            # periodic kernels run low-resolution timers: nanosleep
            # degrades to jiffy granularity, hence the wheel fallback.)
            expiry = self.now() + ns
            ctx = self._ctx[task.affinity]
            ctx.hrtimers.add(expiry, lambda: self.sched.wake(task), name=f"nanosleep:{task.name}")
            self.hrtimer_started(vidx)
        else:
            expiry_j = -(-(self.now() + ns) // self.period_ns)  # ceil: never early
            self._ctx[task.affinity].wheel.add(expiry_j, lambda: self.sched.wake(task), name=f"sleep:{task.name}")

    def hrtimer_started(self, vidx: int) -> None:
        """An hrtimer was enqueued: reprogram hardware if it is now the
        earliest event (hrtimer subsystem behaviour, below tick-sched)."""
        ctx = self._ctx[vidx]
        if self.tick_mode is TickMode.PARATICK:
            nxt = ctx.hrtimers.next_expiry()
            if nxt is not None and (ctx.armed_deadline_ns is None or nxt < ctx.armed_deadline_ns):
                self.program_hw(vidx, nxt)
        else:
            self.reprogram_hw(vidx)

    def _do_block_io(self, vidx: int, task: Task, op: str, size: int, offset: Optional[int]) -> None:
        if self.block_device is None:
            raise GuestError(f"VM {self.vm.name}: block I/O without a device")
        self.rcu.note_update_op(vidx)
        if offset is None:
            key = (task.affinity, op)
            offset = self._io_seq.get(key, 0)
            self._io_seq[key] = offset + size
        req = IoRequest(op, offset, size, cookie=task)
        self._block(vidx, "block-io")
        self.push(vidx, gops.IoKick(self.block_device, req))

    def _do_net_request(self, vidx: int, task: Task, size: int) -> None:
        if self.nic is None:
            raise GuestError(f"VM {self.vm.name}: network I/O without a NIC")
        self.rcu.note_update_op(vidx)
        req = IoRequest("read", 0, size, cookie=task)
        self._block(vidx, "net-rpc")
        self.push(vidx, gops.IoKick(self.nic, req))

    def _do_lock(self, vidx: int, task: Task, mutex) -> None:
        self.rcu.note_update_op(vidx)
        if not mutex.try_lock(task):
            self._block(vidx, f"mutex:{mutex.name}")

    def _do_unlock(self, vidx: int, task: Task, mutex) -> None:
        self.rcu.note_update_op(vidx)
        woken = mutex.unlock(task)
        if woken is not None:
            self.sched.wake(woken)

    def _do_barrier(self, vidx: int, task: Task, barrier) -> None:
        self.rcu.note_update_op(vidx)
        woken = barrier.arrive(task)
        if woken:
            for t in woken:
                self.sched.wake(t)
        else:
            self._block(vidx, f"barrier:{barrier.name}")

    def _do_cond_wait(self, vidx: int, task: Task, cond) -> None:
        self.rcu.note_update_op(vidx)
        if cond.wait(task):
            self._block(vidx, f"cond:{cond.name}")

    def _do_cond_signal(self, vidx: int, cond, n: int) -> None:
        self.rcu.note_update_op(vidx)
        for t in cond.take(n):
            self.sched.wake(t)

    def _do_queue_put(self, vidx: int, task: Task, queue, item) -> None:
        self.rcu.note_update_op(vidx)
        blocked, consumer = queue.put(task, item)
        if consumer is not None:
            self.sched.wake(consumer)
        if blocked:
            self._block(vidx, f"queue-full:{queue.name}")

    def _do_queue_get(self, vidx: int, task: Task, queue) -> None:
        self.rcu.note_update_op(vidx)
        blocked, item, producer = queue.get(task)
        if producer is not None:
            self.sched.wake(producer)
        if blocked:
            self._block(vidx, f"queue-empty:{queue.name}")
        else:
            task.pending_value = item

    # ------------------------------------------------------------ IRQ bodies

    def _handle_block_io_irq(self, vidx: int, seq: list) -> None:
        c = self.costs

        def drain() -> None:
            ctx = self._ctx[vidx]
            while ctx.io_done:
                req = ctx.io_done.popleft()
                pages = max(1, -(-req.size // PAGE))
                self.push(vidx, gops.Compute(pages * c.guest_io_per_page, K))
                task = req.cookie
                if isinstance(task, tuple):  # executor wrapped (vcpu_idx, task)
                    task = task[1]
                if task is not None:
                    self.sched.wake(task)

        seq.append(gops.Compute(c.guest_io_complete, K, on_done=self._cb(vidx, drain)))

    # --------------------------------------------------------------- wakeups

    def _notify_resched(self, target_vidx: int) -> None:
        """A task became runnable on ``target_vidx``; poke that vCPU."""
        src = self._active_vidx
        if src is None or src == target_vidx:
            self._ctx[target_vidx].need_resched = True
            return
        # Cross-vCPU wake: the waker sends a reschedule IPI (a trapped
        # ICR/SGI write -> a VM exit on the waker; delivery cost lands on
        # the target).
        self.push(src, self.hv.timerhw.guest_ipi_op(target_vidx, Vector.RESCHEDULE))

    def _task_done(self, task: Task) -> None:
        task.finished_ns = self.now()
        for cb in list(self.task_done_callbacks):
            cb(task)
