"""Guest tasks (threads) and the high-level operations their bodies yield.

A task body is a Python generator yielding :class:`TaskOp` objects; the
guest kernel translates each into primitive CPU ops and kernel state
changes. This is the level workload models are written at — a PARSEC-like
thread is ``yield Run(...); yield BarrierWait(...)`` in a loop; an fio
job is ``yield BlockRead(...)`` in a loop.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.errors import GuestError


class TaskState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Task:
    """One guest thread."""

    __slots__ = ("name", "body", "affinity", "state", "wait_reason", "started_ns", "finished_ns", "pending_value")

    def __init__(self, name: str, body: Generator, affinity: int):
        if affinity < 0:
            raise GuestError(f"negative vCPU affinity for task {name}")
        self.name = name
        self.body = body
        #: vCPU this task runs on (workloads pin one thread per vCPU,
        #: like PARSEC with parallelism == CPU count).
        self.affinity = affinity
        self.state = TaskState.RUNNABLE
        #: Human-readable blocking site (tests and traces).
        self.wait_reason: Optional[str] = None
        self.started_ns: Optional[int] = None
        self.finished_ns: Optional[int] = None
        #: Value delivered to the generator on next resume (QueueGet etc.).
        self.pending_value: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.state.value} vcpu={self.affinity}>"


# --------------------------------------------------------------------------
# Task operations
# --------------------------------------------------------------------------


class TaskOp:
    """Base class for operations a task body may yield."""

    __slots__ = ()


class Run(TaskOp):
    """Execute ``cycles`` of user-mode computation."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise GuestError(f"negative run cycles {cycles}")
        self.cycles = cycles


class Sleep(TaskOp):
    """Block for at least ``ns``.

    ``precise=False`` (default) models poll/epoll-style timeouts backed
    by the timer wheel: jiffy granularity, serviced by ticks.
    ``precise=True`` models ``nanosleep``: an hrtimer with its own
    hardware deadline — which paratick deliberately does *not* remove
    (only the scheduler tick is paravirtualized; application timers
    still program the TSC_DEADLINE MSR in every mode).
    """

    __slots__ = ("ns", "precise")

    def __init__(self, ns: int, *, precise: bool = False):
        if ns <= 0:
            raise GuestError(f"sleep must be positive, got {ns}")
        self.ns = ns
        self.precise = precise


class BlockRead(TaskOp):
    """Synchronous read from the VM's block device; blocks until done."""

    __slots__ = ("size", "offset")

    def __init__(self, size: int, offset: Optional[int] = None):
        if size <= 0:
            raise GuestError("read size must be positive")
        self.size = size
        #: None means sequential (next offset after the previous request).
        self.offset = offset


class BlockWrite(TaskOp):
    """Synchronous write to the VM's block device; blocks until done."""

    __slots__ = ("size", "offset")

    def __init__(self, size: int, offset: Optional[int] = None):
        if size <= 0:
            raise GuestError("write size must be positive")
        self.size = size
        self.offset = offset


class NetRequest(TaskOp):
    """Synchronous request/response over the VM's NIC; blocks for the
    round trip (RPC / key-value-store style network service)."""

    __slots__ = ("size",)

    def __init__(self, size: int):
        if size <= 0:
            raise GuestError("request size must be positive")
        self.size = size


class MutexLock(TaskOp):
    """Acquire a blocking mutex (futex path on contention)."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: object):
        self.mutex = mutex


class MutexUnlock(TaskOp):
    """Release a mutex, waking one waiter if present."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: object):
        self.mutex = mutex


class BarrierWait(TaskOp):
    """Wait on a barrier; the last arriver wakes everyone."""

    __slots__ = ("barrier",)

    def __init__(self, barrier: object):
        self.barrier = barrier


class CondWait(TaskOp):
    """Block on a condition variable until signalled."""

    __slots__ = ("cond",)

    def __init__(self, cond: object):
        self.cond = cond


class CondSignal(TaskOp):
    """Wake ``n`` waiters of a condition variable (-1 = broadcast)."""

    __slots__ = ("cond", "n")

    def __init__(self, cond: object, n: int = 1):
        if n == 0 or n < -1:
            raise GuestError(f"invalid signal count {n}")
        self.cond = cond
        self.n = n


class QueuePut(TaskOp):
    """Put an item into a bounded pipeline queue (blocks when full)."""

    __slots__ = ("queue", "item")

    def __init__(self, queue: object, item: Any = None):
        self.queue = queue
        self.item = item


class QueueGet(TaskOp):
    """Take an item from a pipeline queue (blocks when empty).

    The item becomes the value of the ``yield`` expression.
    """

    __slots__ = ("queue",)

    def __init__(self, queue: object):
        self.queue = queue


class PageFault(TaskOp):
    """Take ``count`` EPT-violation-class exits (background noise)."""

    __slots__ = ("count",)

    def __init__(self, count: int = 1):
        if count <= 0:
            raise GuestError("fault count must be positive")
        self.count = count


class YieldCpu(TaskOp):
    """sched_yield: go to the back of the run queue."""

    __slots__ = ()
