"""A compact RCU callback model.

Why RCU exists in this simulator at all: the tickless idle-entry decision
(Fig. 1b) and paratick's idle-entry decision (Fig. 3c) both ask "does any
system component — RCU, irq work — explicitly need the tick to remain
enabled?". Whether RCU has pending callbacks on a vCPU therefore changes
*which timer hardware writes happen*, which is the quantity under study.

Model: kernel activity (scheduler switches, futex operations, I/O
completions) enqueues callbacks at a deterministic rate (every Nth
update-side operation). A callback becomes runnable after the vCPU has
passed two quiescent states (ticks or context switches), approximating a
grace period; runnable callbacks are invoked from the tick softirq.
"""

from __future__ import annotations

from repro.errors import GuestError


class RcuState:
    """Per-vCPU RCU bookkeeping."""

    __slots__ = ("waiting", "ready", "qs_count", "total_invoked", "total_enqueued")

    def __init__(self) -> None:
        #: Callbacks waiting for a grace period, as (enqueue_qs, count).
        self.waiting: list[list[int]] = []
        #: Callbacks past their grace period, ready to invoke.
        self.ready = 0
        #: Quiescent states observed by this vCPU.
        self.qs_count = 0
        self.total_invoked = 0
        self.total_enqueued = 0


class Rcu:
    """VM-wide RCU with per-vCPU callback lists.

    Args:
        nvcpus: number of vCPUs.
        ops_per_callback: one callback is enqueued per this many
            update-side operations (deterministic, so runs are exactly
            reproducible and A/B comparisons see identical RCU load).
    """

    #: Quiescent states a callback must wait through (grace period).
    GRACE_QS = 2

    def __init__(self, nvcpus: int, *, ops_per_callback: int = 256):
        if nvcpus <= 0:
            raise GuestError("need at least one vCPU")
        if ops_per_callback <= 0:
            raise GuestError("ops_per_callback must be positive")
        self._states = [RcuState() for _ in range(nvcpus)]
        self._ops_per_callback = ops_per_callback
        self._op_counter = 0

    def grow(self) -> None:
        """Add per-vCPU state for a hotplugged vCPU (rcutree_prepare_cpu)."""
        self._states.append(RcuState())

    # ----------------------------------------------------------- update side

    def note_update_op(self, vcpu_index: int) -> None:
        """An update-side kernel operation ran on ``vcpu_index``."""
        self._op_counter += 1
        if self._op_counter % self._ops_per_callback == 0:
            st = self._states[vcpu_index]
            st.waiting.append([st.qs_count, 1])
            st.total_enqueued += 1

    # -------------------------------------------------------- quiescence

    def note_quiescent_state(self, vcpu_index: int) -> None:
        """The vCPU passed a quiescent state (tick or context switch)."""
        st = self._states[vcpu_index]
        st.qs_count += 1
        still_waiting: list[list[int]] = []
        for enq_qs, count in st.waiting:
            if st.qs_count - enq_qs >= self.GRACE_QS:
                st.ready += count
            else:
                still_waiting.append([enq_qs, count])
        st.waiting = still_waiting

    # -------------------------------------------------------- invoke side

    def take_ready(self, vcpu_index: int) -> int:
        """Remove and return the number of invocable callbacks."""
        st = self._states[vcpu_index]
        n, st.ready = st.ready, 0
        st.total_invoked += n
        return n

    # ----------------------------------------------------------- idle query

    def needs_cpu(self, vcpu_index: int) -> bool:
        """True when this vCPU must keep receiving ticks (Fig. 1b check)."""
        st = self._states[vcpu_index]
        return bool(st.waiting) or st.ready > 0

    def pending(self, vcpu_index: int) -> int:
        st = self._states[vcpu_index]
        return st.ready + sum(c for _, c in st.waiting)

    def stats(self) -> dict[str, int]:
        """Aggregate enqueue/invoke counts across vCPUs."""
        return {
            "enqueued": sum(s.total_enqueued for s in self._states),
            "invoked": sum(s.total_invoked for s in self._states),
        }
