"""Degradation policy: backoff, circuit breaker, structured run report.

The engine's original failure handling was binary — retry once, then
report. Under correlated failure (a cgroup OOM-killing every worker, a
flaky filesystem) that either hammers the failing resource at full
parallelism or gives up a thousand-cell grid over a transient. This
module gives the grid a *ladder* instead:

* :class:`RetryPolicy` — exponential backoff with deterministic,
  key-seeded jitter between attempts of one cell (no synchronized
  retry stampede, no ``random`` state shared with the simulation);
* :class:`CircuitBreaker` — a windowed failure-rate monitor; when it
  trips, the pool is shrunk (half the workers), then execution falls
  back to serial in-process, *then* the remaining cells are failed —
  degrade before giving up;
* :class:`RunReport` — the structured outcome every driver can print
  or serialize: ``completed`` (clean), ``degraded`` (finished, but
  recovery machinery had to act), or ``failed`` (cells permanently
  lost), with the evidence attached.
"""

from __future__ import annotations

import hashlib
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Optional

#: Failure kinds the engine distinguishes (satellite: a timeout, a
#: worker crash, and an in-worker exception are different diseases).
FAILURE_KINDS = ("timeout", "crash", "error")


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry budget and backoff schedule.

    ``delay_s(key, attempt)`` is a pure function of (policy, spec key,
    attempt) — deterministic across resumes, de-synchronized across
    cells by the key-derived jitter.
    """

    retries: int = 1
    #: Base delay before the first retry; 0 disables sleeping entirely
    #: (the in-tree tests' default via ``run_grid(retries=N)``).
    base_delay_s: float = 0.0
    factor: float = 2.0
    max_delay_s: float = 30.0
    #: Jitter band as a fraction of the nominal delay: the result lies
    #: in ``[nominal * (1 - jitter/2), nominal * (1 + jitter/2)]``.
    jitter: float = 0.5
    seed: int = 0

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retrying ``key`` after failed attempt N (1-based)."""
        if self.base_delay_s <= 0:
            return 0.0
        nominal = min(self.max_delay_s,
                      self.base_delay_s * (self.factor ** max(0, attempt - 1)))
        if self.jitter <= 0:
            return nominal
        h = hashlib.sha256(f"{self.seed}:{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(h[:8], "big") / float(1 << 64)  # [0, 1)
        return nominal * (1.0 - self.jitter / 2.0 + self.jitter * unit)


@dataclass
class CircuitBreaker:
    """Windowed failure-rate monitor over settled grid attempts.

    ``record(ok)`` after every attempt outcome; :attr:`tripped` once at
    least ``min_events`` of the last ``window`` attempts are recorded
    and the failure fraction reaches ``threshold``. ``reset()`` after
    the caller has degraded (new pool, new chances).
    """

    threshold: float = 0.5
    min_events: int = 4
    window: int = 20
    trips: int = 0
    _outcomes: deque = field(default_factory=lambda: deque(maxlen=20), repr=False)

    def __post_init__(self) -> None:
        self._outcomes = deque(maxlen=self.window)

    def record(self, ok: bool) -> None:
        self._outcomes.append(bool(ok))

    @property
    def events(self) -> int:
        return len(self._outcomes)

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - (sum(self._outcomes) / len(self._outcomes))

    @property
    def tripped(self) -> bool:
        return (len(self._outcomes) >= self.min_events
                and self.failure_rate >= self.threshold)

    def trip_and_reset(self) -> int:
        """Acknowledge a trip: bump the counter, clear the window."""
        self.trips += 1
        self._outcomes.clear()
        return self.trips


@dataclass
class RunReport:
    """Structured outcome of one grid execution.

    ``outcome``:

    * ``"completed"`` — every cell has a result and no recovery
      machinery had to act;
    * ``"degraded"`` — every cell has a result, but the run leaned on
      retries, pool rebuilds, degradation steps, quarantine, or resume
      re-verification mismatches to get there;
    * ``"failed"`` — at least one cell is permanently failed.
    """

    cells: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Cells served by ``--resume`` verification (subset of cache_hits).
    resumed: int = 0
    #: Cells whose cached bytes were re-verified against the journal.
    reverified: int = 0
    #: Resume verifications that failed (entry quarantined, cell re-run).
    resume_mismatches: int = 0
    #: Cache files quarantined during this run (corrupt on read).
    quarantined: int = 0
    retries: Counter = field(default_factory=Counter)      # kind -> count
    failures: Counter = field(default_factory=Counter)     # kind -> count
    pool_rebuilds: int = 0
    #: Human-readable ladder steps taken ("pool shrunk to 2", ...).
    degradation: list = field(default_factory=list)

    @property
    def failed(self) -> int:
        return sum(self.failures.values())

    @property
    def outcome(self) -> str:
        if self.failed:
            return "failed"
        if (self.retries or self.pool_rebuilds or self.degradation
                or self.quarantined or self.resume_mismatches):
            return "degraded"
        return "completed"

    def to_json_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "resumed": self.resumed,
            "reverified": self.reverified,
            "resume_mismatches": self.resume_mismatches,
            "quarantined": self.quarantined,
            "retries": dict(self.retries),
            "failures": dict(self.failures),
            "failed": self.failed,
            "pool_rebuilds": self.pool_rebuilds,
            "degradation": list(self.degradation),
        }

    def render(self) -> str:
        """One operator-facing summary line."""
        parts = [f"outcome={self.outcome}", f"cells={self.cells}",
                 f"cached={self.cache_hits}", f"executed={self.executed}"]
        if self.resumed:
            parts.append(f"resumed={self.resumed}")
        if self.reverified:
            parts.append(f"reverified={self.reverified}")
        if self.resume_mismatches:
            parts.append(f"resume_mismatches={self.resume_mismatches}")
        if self.quarantined:
            parts.append(f"quarantined={self.quarantined}")
        if self.retries:
            parts.append("retries=" + ",".join(
                f"{k}:{v}" for k, v in sorted(self.retries.items())))
        if self.failed:
            parts.append("failed=" + ",".join(
                f"{k}:{v}" for k, v in sorted(self.failures.items())))
        if self.pool_rebuilds:
            parts.append(f"pool_rebuilds={self.pool_rebuilds}")
        for step in self.degradation:
            parts.append(f"degraded[{step}]")
        return " ".join(parts)


def classify_failure(exc: BaseException) -> str:
    """Map an attempt's exception to a :data:`FAILURE_KINDS` member."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.experiments.parallel import RunTimeout

    if isinstance(exc, RunTimeout):
        return "timeout"
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    return "error"
